//! Whole-program reverse-mode transformation (store-all / split mode).
//!
//! The adjoint of a subroutine is `forward sweep ; backward sweep`:
//!
//! - The **forward sweep** re-executes the primal, pushing the
//!   to-be-overwritten value of every *recorded* location onto a
//!   (thread-local) tape, and pushing branch decisions of `if`s that will
//!   need reversal. Parallel loops stay parallel — each thread pushes to
//!   its own tape.
//! - The **backward sweep** processes statements in reverse. Each recorded
//!   assignment first pops (restores) its left-hand side, re-establishing
//!   the exact primal memory state in which the statement executed, then
//!   emits the adjoint increments from the chain-rule walker. Loops run
//!   with reversed iteration order; parallel loops stay parallel with the
//!   *same static schedule*, so every thread pops exactly what it pushed
//!   (this is the standard treatment from Hückelheim & Hascoët,
//!   "Source-to-Source AD of OpenMP Parallel Loops", reference \[12\] of the
//!   paper).
//!
//! Which locations are recorded is decided by a TBR-lite analysis: a
//! location is recorded only if its primal *value* appears in some adjoint
//! statement (a partial derivative, an adjoint index expression, or a loop
//! bound). Arrays that are only ever updated by exact increments therefore
//! need no tape at all — this is what makes the FormAD stencil adjoint as
//! cheap as the primal (paper §7.1, §5.4).

use std::collections::{HashMap, HashSet};

use formad_analysis::Activity;
use formad_ir::{
    BinOp, BoolExpr, CmpOp, Decl, Expr, ForLoop, Intent, LValue, ParallelInfo, Program, RedOp,
    Stmt, Ty,
};

use crate::adjoint_expr::{adjoint_of_assign, AdjCtx};
use crate::options::{AdError, AdjointOptions, IncMode};

/// Differentiate `p` in reverse mode.
///
/// The generated subroutine is named `{p.name}_b` and takes the primal
/// parameters followed by one `intent(inout)` adjoint parameter for every
/// *active* primal parameter. On entry the caller seeds the adjoints of the
/// dependents; on exit the adjoints of the independents hold the gradient
/// contributions (accumulated, per adjoint convention).
pub fn differentiate(p: &Program, opts: &AdjointOptions) -> Result<Program, AdError> {
    formad_ir::validate_strict(p).map_err(|e| AdError::new(format!("invalid primal: {e}")))?;
    for s in &p.body {
        let mut bad = false;
        s.walk(&mut |st| {
            if matches!(st, Stmt::Push(_) | Stmt::Pop(_)) {
                bad = true;
            }
        });
        if bad {
            return Err(AdError::new("primal contains tape statements"));
        }
    }
    for name in opts.independents.iter().chain(&opts.dependents) {
        if p.decl(name).is_none() {
            return Err(AdError::new(format!(
                "independent/dependent `{name}` is not a parameter of `{}`",
                p.name
            )));
        }
    }

    let act = Activity::analyze(p, &opts.independents, &opts.dependents);
    let mut xf = Xform::new(p, act, opts)?;
    xf.compute_needed_values();
    xf.index_regions();

    let fwd = xf.fwd_sweep(&p.body);
    let bwd = xf.bwd_sweep(&p.body)?;

    // Assemble the adjoint subroutine.
    let mut adj = Program::new(format!("{}_b", p.name));
    adj.params = p.params.clone();
    for d in &p.params {
        if xf.is_active(&d.name) {
            let mut a = d.clone();
            a.name = xf.adjoint_name(&d.name);
            a.intent = Intent::InOut;
            adj.params.push(a);
        }
    }
    adj.locals = p.locals.clone();
    for d in &p.locals {
        if xf.is_active(&d.name) {
            let mut a = d.clone();
            a.name = xf.adjoint_name(&d.name);
            adj.locals.push(a);
        }
    }
    adj.locals.extend(xf.new_locals.clone());
    adj.body = fwd;
    adj.body.extend(bwd);
    Ok(adj)
}

struct Xform<'a> {
    prog: &'a Program,
    act: Activity,
    opts: &'a AdjointOptions,
    /// Primal names whose values appear in adjoint statements or loop
    /// bounds: these must be taped when overwritten.
    needed: HashSet<String>,
    /// Pre-order region index of each parallel loop (keyed by address).
    region_of: HashMap<usize, usize>,
    branch_counter: usize,
    new_locals: Vec<Decl>,
}

impl<'a> Xform<'a> {
    fn new(p: &'a Program, act: Activity, opts: &'a AdjointOptions) -> Result<Xform<'a>, AdError> {
        // Adjoint-name collisions with existing declarations are errors.
        for d in p.decls() {
            if act.is_active(&d.name) && d.ty == Ty::Real {
                let b = format!("{}{}", d.name, opts.adjoint_suffix);
                if p.decl(&b).is_some() {
                    return Err(AdError::new(format!(
                        "adjoint name `{b}` collides with an existing declaration"
                    )));
                }
            }
        }
        Ok(Xform {
            prog: p,
            act,
            opts,
            needed: HashSet::new(),
            region_of: HashMap::new(),
            branch_counter: 0,
            new_locals: Vec::new(),
        })
    }

    fn is_active(&self, name: &str) -> bool {
        self.prog.ty_of(name) == Some(Ty::Real) && self.act.is_active(name)
    }

    fn adjoint_name(&self, name: &str) -> String {
        format!("{}{}", name, self.opts.adjoint_suffix)
    }

    /// Map an adjoint name back to its primal name, if it is one.
    fn primal_of_adjoint(&self, name: &str) -> Option<String> {
        let stem = name.strip_suffix(&self.opts.adjoint_suffix)?;
        if self.is_active(stem) {
            Some(stem.to_string())
        } else {
            None
        }
    }

    fn walker_ctx(&self) -> AdjCtx<'_> {
        AdjCtx {
            is_active: Box::new(move |n: &str| self.is_active(n)),
            adjoint_name: Box::new(move |n: &str| self.adjoint_name(n)),
        }
    }

    /// Adjoint statements of one assignment (shared by the dry run and the
    /// real emission). Returns `(increments, vb-finalization)`.
    fn assign_adjoint(&self, lhs: &LValue, rhs: &Expr) -> (Vec<Stmt>, Option<Stmt>) {
        let seed = match lhs {
            LValue::Var(n) => Expr::var(self.adjoint_name(n)),
            LValue::Index { array, indices } => {
                Expr::index(self.adjoint_name(array), indices.clone())
            }
        };
        let ctx = self.walker_ctx();
        let adj = adjoint_of_assign(lhs, rhs, &seed, &ctx);
        let adjoint_lv = match lhs {
            LValue::Var(n) => LValue::var(self.adjoint_name(n)),
            LValue::Index { array, indices } => {
                LValue::index(self.adjoint_name(array), indices.clone())
            }
        };
        let finalize = if adj.self_seeds.is_empty() {
            Some(Stmt::assign(adjoint_lv, Expr::real(0.0)))
        } else if adj.self_seeds.len() == 1 && adj.self_seeds[0] == seed {
            // Exact increment: the adjoint of the lhs is unchanged
            // (paper §5.4) — no statement at all.
            None
        } else {
            let mut sum = adj.self_seeds[0].clone();
            for s in &adj.self_seeds[1..] {
                sum = sum + s.clone();
            }
            Some(Stmt::assign(adjoint_lv, sum))
        };
        (adj.increments, finalize)
    }

    /// TBR-lite: collect every primal name whose value occurs in any
    /// adjoint statement or loop bound expression.
    fn compute_needed_values(&mut self) {
        let mut needed: HashSet<String> = HashSet::new();
        let mut scan_expr = |e: &Expr, needed: &mut HashSet<String>| {
            e.walk(&mut |sub| match sub {
                Expr::Var(n) if self.prog.decl(n).is_some() => {
                    needed.insert(n.clone());
                }
                Expr::Index { array, indices: _ } if self.prog.decl(array).is_some() => {
                    needed.insert(array.clone());
                }
                _ => {}
            });
        };
        fn scan_stmts(
            stmts: &[Stmt],
            scan_expr: &mut impl FnMut(&Expr, &mut HashSet<String>),
            needed: &mut HashSet<String>,
        ) {
            for s in stmts {
                s.walk_exprs(&mut |e| scan_expr(e, needed));
            }
        }

        self.prog.walk_stmts(&mut |s| match s {
            Stmt::Assign { lhs, rhs } if self.is_active(lhs.name()) => {
                let (incs, fin) = self.assign_adjoint(lhs, rhs);
                scan_stmts(&incs, &mut scan_expr, &mut needed);
                if let Some(f) = fin {
                    scan_stmts(std::slice::from_ref(&f), &mut scan_expr, &mut needed);
                }
            }
            Stmt::AtomicAdd { lhs, rhs } if self.is_active(lhs.name()) => {
                let full = lhs.as_expr() + rhs.clone();
                let (incs, fin) = self.assign_adjoint(lhs, &full);
                scan_stmts(&incs, &mut scan_expr, &mut needed);
                if let Some(f) = fin {
                    scan_stmts(std::slice::from_ref(&f), &mut scan_expr, &mut needed);
                }
            }
            Stmt::For(l) => {
                // Reversed loops re-evaluate their bound expressions.
                scan_expr(&l.lo, &mut needed);
                scan_expr(&l.hi, &mut needed);
                scan_expr(&l.step, &mut needed);
            }
            _ => {}
        });

        // Adjoint names are not primal declarations, so the decl check above
        // already filtered them out.
        self.needed = needed;
    }

    fn index_regions(&mut self) {
        for (k, l) in self.prog.parallel_loops().into_iter().enumerate() {
            self.region_of.insert(l as *const ForLoop as usize, k);
        }
    }

    /// Is this assignment's old lhs value recorded on the tape?
    fn taped(&self, lhs: &LValue) -> bool {
        self.needed.contains(lhs.name())
    }

    /// Does this statement subtree require any backward-sweep work
    /// (adjoint statements or restores)?
    fn needs_reversal(&self, stmts: &[Stmt]) -> bool {
        let mut yes = false;
        for s in stmts {
            s.walk(&mut |st| match st {
                Stmt::Assign { lhs, .. } | Stmt::AtomicAdd { lhs, .. }
                    if (self.is_active(lhs.name()) || self.taped(lhs)) =>
                {
                    yes = true;
                }
                _ => {}
            });
        }
        yes
    }

    /// Scalars assigned inside a parallel-loop body whose values the
    /// adjoint needs (gather indices, accumulators). Loop counters are
    /// excluded: reversed loops re-establish them. Sorted for a
    /// deterministic push/pop order.
    fn iteration_scalars(&self, body: &[Stmt]) -> Vec<String> {
        let mut assigned = Vec::new();
        let mut counters = HashSet::new();
        for s in body {
            s.walk(&mut |st| match st {
                Stmt::Assign {
                    lhs: LValue::Var(v),
                    ..
                }
                | Stmt::AtomicAdd {
                    lhs: LValue::Var(v),
                    ..
                } if !assigned.contains(v) => {
                    assigned.push(v.clone());
                }
                Stmt::For(inner) => {
                    counters.insert(inner.var.clone());
                }
                _ => {}
            });
        }
        let mut out: Vec<String> = assigned
            .into_iter()
            .filter(|v| !counters.contains(v) && self.needed.contains(v))
            .collect();
        out.sort();
        out
    }

    // ------------------------------------------------------------------
    // Forward sweep
    // ------------------------------------------------------------------

    fn fwd_sweep(&mut self, stmts: &[Stmt]) -> Vec<Stmt> {
        let mut out = Vec::new();
        for s in stmts {
            self.fwd_stmt(s, &mut out);
        }
        out
    }

    fn fwd_stmt(&mut self, s: &Stmt, out: &mut Vec<Stmt>) {
        match s {
            Stmt::Assign { lhs, .. } | Stmt::AtomicAdd { lhs, .. } => {
                if self.taped(lhs) {
                    out.push(Stmt::Push(lhs.as_expr()));
                }
                out.push(s.clone());
            }
            Stmt::Push(_) | Stmt::Pop(_) => unreachable!("rejected in differentiate"),
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                if !self.needs_reversal(then_body) && !self.needs_reversal(else_body) {
                    out.push(s.clone());
                    return;
                }
                let mut then_f = self.fwd_sweep(then_body);
                then_f.push(Stmt::Push(Expr::IntLit(1)));
                let mut else_f = self.fwd_sweep(else_body);
                else_f.push(Stmt::Push(Expr::IntLit(0)));
                out.push(Stmt::If {
                    cond: cond.clone(),
                    then_body: then_f,
                    else_body: else_f,
                });
            }
            Stmt::For(l) => {
                let mut body = self.fwd_sweep(&l.body);
                if l.parallel.is_some() && self.needs_reversal(&l.body) {
                    // End-of-iteration snapshot: the backward parallel loop
                    // reverses each thread's chunk independently, so unlike
                    // a sequential reversal it cannot rely on later
                    // iterations' pops to restore iteration-local scalars.
                    // Push their post-iteration values here; the backward
                    // body pops them first.
                    for v in self.iteration_scalars(&l.body) {
                        body.push(Stmt::Push(Expr::var(v)));
                    }
                }
                let parallel = if self.opts.parallel.is_serial() {
                    None
                } else {
                    l.parallel.clone()
                };
                out.push(Stmt::For(Box::new(ForLoop {
                    var: l.var.clone(),
                    lo: l.lo.clone(),
                    hi: l.hi.clone(),
                    step: l.step.clone(),
                    body,
                    parallel,
                })));
            }
        }
    }

    // ------------------------------------------------------------------
    // Backward sweep
    // ------------------------------------------------------------------

    fn bwd_sweep(&mut self, stmts: &[Stmt]) -> Result<Vec<Stmt>, AdError> {
        let mut out = Vec::new();
        for s in stmts.iter().rev() {
            self.bwd_stmt(s, &mut out)?;
        }
        Ok(out)
    }

    fn bwd_stmt(&mut self, s: &Stmt, out: &mut Vec<Stmt>) -> Result<(), AdError> {
        match s {
            Stmt::Assign { lhs, rhs } => {
                if self.taped(lhs) {
                    out.push(Stmt::Pop(lhs.clone()));
                }
                if self.is_active(lhs.name()) {
                    let (incs, fin) = self.assign_adjoint(lhs, rhs);
                    out.extend(incs);
                    out.extend(fin);
                }
                Ok(())
            }
            Stmt::AtomicAdd { lhs, rhs } => {
                if self.taped(lhs) {
                    out.push(Stmt::Pop(lhs.clone()));
                }
                if self.is_active(lhs.name()) {
                    let full = lhs.as_expr() + rhs.clone();
                    let (incs, fin) = self.assign_adjoint(lhs, &full);
                    out.extend(incs);
                    out.extend(fin);
                }
                Ok(())
            }
            Stmt::Push(_) | Stmt::Pop(_) => unreachable!("rejected in differentiate"),
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                if !self.needs_reversal(then_body) && !self.needs_reversal(else_body) {
                    return Ok(());
                }
                let bv = format!("ad_branch{}", self.branch_counter);
                self.branch_counter += 1;
                self.new_locals.push(Decl::local(bv.clone(), Ty::Int));
                out.push(Stmt::Pop(LValue::var(bv.clone())));
                let then_b = self.bwd_sweep(then_body)?;
                let else_b = self.bwd_sweep(else_body)?;
                out.push(Stmt::If {
                    cond: BoolExpr::cmp(CmpOp::Eq, Expr::var(bv), Expr::IntLit(1)),
                    then_body: then_b,
                    else_body: else_b,
                });
                Ok(())
            }
            Stmt::For(l) => {
                if !self.needs_reversal(&l.body) {
                    return Ok(());
                }
                // Bound variables must be loop-invariant for the reversed
                // bounds to be correct.
                let mut bound_vars = Vec::new();
                for e in [&l.lo, &l.hi, &l.step] {
                    e.scalar_vars(&mut bound_vars);
                }
                let mut assigned = HashSet::new();
                for s in &l.body {
                    s.walk(&mut |st| {
                        if let Stmt::Assign {
                            lhs: LValue::Var(v),
                            ..
                        } = st
                        {
                            assigned.insert(v.clone());
                        }
                        if let Stmt::For(inner) = st {
                            assigned.insert(inner.var.clone());
                        }
                    });
                }
                if let Some(v) = bound_vars.iter().find(|v| assigned.contains(*v)) {
                    return Err(AdError::new(format!(
                        "loop bound variable `{v}` is modified inside the loop; \
                         reversal would be incorrect"
                    )));
                }

                let mut body = self.bwd_sweep(&l.body)?;
                if l.parallel.is_some() {
                    // Mirror of the forward snapshot: restore the
                    // iteration-defined scalars before any adjoint work.
                    let mut pops = Vec::new();
                    for v in self.iteration_scalars(&l.body).into_iter().rev() {
                        pops.push(Stmt::Pop(LValue::var(v)));
                    }
                    pops.extend(body);
                    body = pops;
                }
                let (last, first, neg_step) = reversed_bounds(l);
                let region = self.region_of.get(&(l.as_ref() as *const ForLoop as usize));
                match (region, &l.parallel) {
                    (Some(&region), Some(primal_info)) if !self.opts.parallel.is_serial() => {
                        let (info, body) =
                            self.parallel_adjoint_pragma(region, primal_info, &l.var, body);
                        out.push(Stmt::For(Box::new(ForLoop {
                            var: l.var.clone(),
                            lo: last,
                            hi: first,
                            step: neg_step,
                            body,
                            parallel: Some(info),
                        })));
                    }
                    _ => {
                        out.push(Stmt::For(Box::new(ForLoop {
                            var: l.var.clone(),
                            lo: last,
                            hi: first,
                            step: neg_step,
                            body,
                            parallel: None,
                        })));
                    }
                }
                Ok(())
            }
        }
    }

    /// Build the data-sharing clauses of an adjoint parallel loop and apply
    /// the per-array safeguard modes to its body.
    fn parallel_adjoint_pragma(
        &mut self,
        region: usize,
        primal: &ParallelInfo,
        counter: &str,
        body: Vec<Stmt>,
    ) -> (ParallelInfo, Vec<Stmt>) {
        // Names assigned (scalars) and referenced in the body.
        let mut assigned_scalars: HashSet<String> = HashSet::new();
        let mut referenced: HashSet<String> = HashSet::new();
        let mut incremented_adjoint_arrays: HashSet<String> = HashSet::new();
        let mut incremented_adjoint_scalars: HashSet<String> = HashSet::new();
        for s in &body {
            s.walk(&mut |st| match st {
                Stmt::Assign { lhs, .. } | Stmt::AtomicAdd { lhs, .. } | Stmt::Pop(lhs) => {
                    if let LValue::Var(v) = lhs {
                        assigned_scalars.insert(v.clone());
                    }
                    if let Some(primal_name) = self.primal_of_adjoint(lhs.name()) {
                        if st.as_increment().is_some() || matches!(st, Stmt::AtomicAdd { .. }) {
                            if matches!(lhs, LValue::Index { .. }) {
                                incremented_adjoint_arrays.insert(primal_name);
                            } else {
                                incremented_adjoint_scalars.insert(lhs.name().to_string());
                            }
                        }
                    }
                }
                Stmt::For(inner) => {
                    assigned_scalars.insert(inner.var.clone());
                }
                _ => {}
            });
            s.walk_exprs(&mut |e| match e {
                Expr::Var(n) => {
                    referenced.insert(n.clone());
                }
                Expr::Index { array, .. } => {
                    referenced.insert(array.clone());
                }
                _ => {}
            });
            // Lvalue names too.
            s.walk(&mut |st| match st {
                Stmt::Assign { lhs, .. } | Stmt::AtomicAdd { lhs, .. } | Stmt::Pop(lhs) => {
                    referenced.insert(lhs.name().to_string());
                }
                _ => {}
            });
        }

        let is_array = |n: &str| -> bool {
            if let Some(d) = self.prog.decl(n) {
                return d.is_array();
            }
            // Adjoint array of a primal array.
            if let Some(p) = self.primal_of_adjoint(n) {
                return self.prog.decl(&p).map(|d| d.is_array()).unwrap_or(false);
            }
            false
        };

        let mut info = ParallelInfo::default();
        let mut body = body;

        // Zero-init adjoints of primal-private real scalars at iteration
        // start (OpenMP privates are uninitialized).
        let mut preamble = Vec::new();
        for pvar in &primal.private {
            if self.is_active(pvar) {
                let b = self.adjoint_name(pvar);
                if referenced.contains(&b) {
                    preamble.push(Stmt::assign(LValue::var(b), Expr::real(0.0)));
                }
            }
        }
        if !preamble.is_empty() {
            preamble.extend(body);
            body = preamble;
        }

        // An adjoint array may only be privatized by a reduction clause if
        // its *every* appearance in the region is an increment (lhs and
        // the matching self-read): any other read would see the private
        // zero-initialized copy instead of the incoming seed values, and
        // any overwrite could not be merged. Mixed-access arrays fall back
        // to atomics on their increments.
        let mut reduction_eligible: HashSet<String> = HashSet::new();
        let mut reduction_fallback_atomic: HashSet<String> = HashSet::new();
        for primal_name in &incremented_adjoint_arrays {
            if self.opts.parallel.mode_of(region, primal_name) != IncMode::Reduction {
                continue;
            }
            let bname = self.adjoint_name(primal_name);
            let mut total_reads = 0usize;
            let mut self_reads = 0usize;
            let mut non_increment_writes = 0usize;
            for s in &body {
                s.walk(&mut |st| {
                    let is_inc =
                        st.as_increment().is_some() || matches!(st, Stmt::AtomicAdd { .. });
                    match st {
                        Stmt::Assign { lhs, .. } | Stmt::AtomicAdd { lhs, .. }
                            if lhs.name() == bname =>
                        {
                            if is_inc {
                                self_reads += 1;
                            } else {
                                non_increment_writes += 1;
                            }
                        }
                        Stmt::Pop(lhs) if lhs.name() == bname => {
                            non_increment_writes += 1;
                        }
                        _ => {}
                    }
                });
                s.walk_exprs(&mut |e| {
                    if let Expr::Index { array, .. } = e {
                        if array == &bname {
                            total_reads += 1;
                        }
                    }
                });
            }
            // Each increment's rhs contains exactly one self-read; index
            // expressions inside the lhs do not read the adjoint array.
            if non_increment_writes == 0 && total_reads == self_reads {
                reduction_eligible.insert(primal_name.clone());
            } else {
                reduction_fallback_atomic.insert(primal_name.clone());
            }
        }

        for name in &referenced {
            if name == counter {
                continue;
            }
            if is_array(name) {
                let red = self
                    .primal_of_adjoint(name)
                    .map(|p| reduction_eligible.contains(&p))
                    .unwrap_or(false);
                if red {
                    info.reductions.push((RedOp::Add, name.clone()));
                } else {
                    info.shared.push(name.clone());
                }
            } else {
                // Scalar.
                let primal_private = primal.is_privatized(name) || {
                    self.primal_of_adjoint(name)
                        .map(|p| primal.is_privatized(&p))
                        .unwrap_or(false)
                };
                if incremented_adjoint_scalars.contains(name) && !primal_private {
                    // Shared scalar read by all threads in the primal:
                    // its adjoint accumulates across threads.
                    info.reductions.push((RedOp::Add, name.clone()));
                } else if assigned_scalars.contains(name) {
                    info.private.push(name.clone());
                } else {
                    info.shared.push(name.clone());
                }
            }
        }
        // Scalars that are only ever written — e.g. an inner sequential
        // loop counter whose body never reads it — appear in no
        // expression, so the `referenced` pass above misses them. They
        // still race without a clause: privatize them.
        for name in &assigned_scalars {
            if name != counter && !referenced.contains(name) && !is_array(name) {
                info.private.push(name.clone());
            }
        }
        info.shared.sort();
        info.private.sort();
        info.reductions.sort_by(|a, b| a.1.cmp(&b.1));

        // Apply atomic mode: rewrite plain increments to AtomicAdd — both
        // for arrays the plan marked Atomic and for reduction-ineligible
        // mixed-access arrays.
        let atomic_arrays: HashSet<String> = incremented_adjoint_arrays
            .iter()
            .filter(|p| {
                self.opts.parallel.mode_of(region, p) == IncMode::Atomic
                    || reduction_fallback_atomic.contains(*p)
            })
            .map(|p| self.adjoint_name(p))
            .collect();
        if !atomic_arrays.is_empty() {
            body = body
                .into_iter()
                .map(|s| apply_atomic(s, &atomic_arrays))
                .collect();
        }
        (info, body)
    }
}

/// Rewrite increments to the given adjoint arrays as atomic updates,
/// recursively through control flow.
fn apply_atomic(s: Stmt, arrays: &HashSet<String>) -> Stmt {
    match s {
        Stmt::Assign { .. } => {
            if let Some((lhs, added)) = s.as_increment() {
                if matches!(lhs, LValue::Index { .. }) && arrays.contains(lhs.name()) {
                    return Stmt::AtomicAdd {
                        lhs: lhs.clone(),
                        rhs: added,
                    };
                }
            }
            s
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => Stmt::If {
            cond,
            then_body: then_body
                .into_iter()
                .map(|t| apply_atomic(t, arrays))
                .collect(),
            else_body: else_body
                .into_iter()
                .map(|t| apply_atomic(t, arrays))
                .collect(),
        },
        Stmt::For(mut l) => {
            l.body = l
                .body
                .into_iter()
                .map(|t| apply_atomic(t, arrays))
                .collect();
            Stmt::For(l)
        }
        other => other,
    }
}

/// Bounds of the reversed loop: `do v = last, lo, -step` where
/// `last = lo + ((hi - lo) / step) * step` is the final iterate actually
/// executed by the primal loop (integer division truncates toward zero,
/// which also yields an empty reversed loop when the primal was empty).
fn reversed_bounds(l: &ForLoop) -> (Expr, Expr, Expr) {
    let last = if l.step == Expr::IntLit(1) {
        l.hi.clone()
    } else {
        l.lo.clone()
            + Expr::binary(BinOp::Div, l.hi.clone() - l.lo.clone(), l.step.clone()) * l.step.clone()
    };
    let neg_step = match &l.step {
        Expr::IntLit(v) => Expr::IntLit(-v),
        other => other.clone().neg(),
    };
    (last, l.lo.clone(), neg_step)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::ParallelTreatment;
    use formad_ir::{parse_program, program_to_string};

    fn diff(src: &str, indep: &[&str], dep: &[&str], par: ParallelTreatment) -> Program {
        let p = parse_program(src).unwrap();
        differentiate(&p, &AdjointOptions::new(indep, dep, par)).unwrap()
    }

    const SAXPY: &str = r#"
subroutine saxpy(n, a, x, y)
  integer, intent(in) :: n
  real, intent(in) :: a
  real, intent(in) :: x(n)
  real, intent(inout) :: y(n)
  integer :: i
  !$omp parallel do shared(x, y)
  do i = 1, n
    y(i) = y(i) + a * x(i)
  end do
end subroutine
"#;

    #[test]
    fn saxpy_adjoint_shape() {
        let adj = diff(
            SAXPY,
            &["x"],
            &["y"],
            ParallelTreatment::Uniform(IncMode::Plain),
        );
        assert_eq!(adj.name, "saxpy_b");
        // Params: n, a, x, y, then adjoints of active ones (x, y; a is
        // independent? no — a not in independents so varied(a)=false).
        let names: Vec<&str> = adj.params.iter().map(|d| d.name.as_str()).collect();
        assert!(names.contains(&"xb"));
        assert!(names.contains(&"yb"));
        assert!(!names.contains(&"ab"));
        let text = program_to_string(&adj);
        // The adjoint loop increments xb and leaves yb alone except reads.
        assert!(text.contains("xb(i) = xb(i) + yb(i) * a"), "{text}");
        // Exact increment: no push/pop of y and no yb zeroing.
        assert!(!text.contains("push"), "{text}");
        assert!(!text.contains("yb(i) = 0"), "{text}");
    }

    #[test]
    fn saxpy_with_a_active_gets_reduction() {
        let adj = diff(
            SAXPY,
            &["x", "a"],
            &["y"],
            ParallelTreatment::Uniform(IncMode::Plain),
        );
        let text = program_to_string(&adj);
        assert!(text.contains("reduction(+: ab)"), "{text}");
        assert!(text.contains("ab = ab + yb(i) * x(i)"), "{text}");
    }

    #[test]
    fn atomic_mode_rewrites_increments() {
        let adj = diff(
            SAXPY,
            &["x"],
            &["y"],
            ParallelTreatment::Uniform(IncMode::Atomic),
        );
        let text = program_to_string(&adj);
        assert!(text.contains("!$omp atomic"), "{text}");
    }

    #[test]
    fn reduction_mode_adds_clause() {
        let adj = diff(
            SAXPY,
            &["x"],
            &["y"],
            ParallelTreatment::Uniform(IncMode::Reduction),
        );
        let text = program_to_string(&adj);
        assert!(text.contains("reduction(+: xb)"), "{text}");
        assert!(!text.contains("!$omp atomic"), "{text}");
    }

    #[test]
    fn serial_mode_strips_pragmas() {
        let adj = diff(SAXPY, &["x"], &["y"], ParallelTreatment::Serial);
        let text = program_to_string(&adj);
        assert!(!text.contains("!$omp"), "{text}");
    }

    #[test]
    fn overwrite_gets_tape_and_restore() {
        // z overwrites its input: nonlinear, so x must be recorded.
        let src = r#"
subroutine sq(n, x)
  integer, intent(in) :: n
  real, intent(inout) :: x(n)
  integer :: i
  do i = 1, n
    x(i) = x(i) * x(i)
  end do
end subroutine
"#;
        let adj = diff(src, &["x"], &["x"], ParallelTreatment::Serial);
        let text = program_to_string(&adj);
        assert!(text.contains("call push(x(i))"), "{text}");
        assert!(text.contains("call pop(x(i))"), "{text}");
        // Self-seed: xb(i) = xb(i)*x(i) + xb(i)*x(i).
        assert!(
            text.contains("xb(i) = xb(i) * x(i) + xb(i) * x(i)"),
            "{text}"
        );
    }

    #[test]
    fn reversed_loop_bounds_with_stride() {
        let src = r#"
subroutine st(n, x, y)
  integer, intent(in) :: n
  real, intent(in) :: x(n)
  real, intent(inout) :: y(n)
  integer :: i
  do i = 2, n - 1, 2
    y(i) = y(i) + x(i)
  end do
end subroutine
"#;
        let adj = diff(src, &["x"], &["y"], ParallelTreatment::Serial);
        let text = program_to_string(&adj);
        assert!(
            text.contains("do i = 2 + (n - 1 - 2) / 2 * 2, 2, -2"),
            "{text}"
        );
    }

    #[test]
    fn branch_decisions_pushed_and_popped() {
        let src = r#"
subroutine br(n, x, y, c)
  integer, intent(in) :: n
  integer, intent(in) :: c(n)
  real, intent(in) :: x(n)
  real, intent(inout) :: y(n)
  integer :: i
  do i = 1, n
    if (c(i) .gt. 0) then
      y(i) = y(i) + 2.0 * x(i)
    end if
  end do
end subroutine
"#;
        let adj = diff(src, &["x"], &["y"], ParallelTreatment::Serial);
        let text = program_to_string(&adj);
        assert!(text.contains("call push(1)"), "{text}");
        assert!(text.contains("call push(0)"), "{text}");
        assert!(text.contains("call pop(ad_branch0)"), "{text}");
        assert!(text.contains("if (ad_branch0 .eq. 1) then"), "{text}");
        // The branch local is declared.
        assert!(adj.locals.iter().any(|d| d.name == "ad_branch0"));
    }

    #[test]
    fn inactive_if_left_alone() {
        let src = r#"
subroutine br(n, w, y)
  integer, intent(in) :: n
  integer :: w
  real, intent(inout) :: y(n)
  integer :: i
  do i = 1, n
    if (i .gt. 1) then
      w = i
    end if
  end do
end subroutine
"#;
        // w is integer and never feeds an adjoint: the if is not reversed.
        let adj = diff(src, &["y"], &["y"], ParallelTreatment::Serial);
        let text = program_to_string(&adj);
        assert!(!text.contains("ad_branch"), "{text}");
    }

    #[test]
    fn loop_bound_modified_in_body_rejected() {
        let src = r#"
subroutine bad(n, y)
  integer, intent(in) :: n
  integer :: m, i
  real, intent(inout) :: y(n)
  m = n
  do i = 1, m
    y(i) = y(i) * 2.0
    m = m - 1
  end do
end subroutine
"#;
        let p = parse_program(src).unwrap();
        let err = differentiate(
            &p,
            &AdjointOptions::new(&["y"], &["y"], ParallelTreatment::Serial),
        )
        .unwrap_err();
        assert!(err.message.contains("loop bound"), "{err}");
    }

    #[test]
    fn unknown_independent_rejected() {
        let p = parse_program(SAXPY).unwrap();
        let err = differentiate(
            &p,
            &AdjointOptions::new(&["zzz"], &["y"], ParallelTreatment::Serial),
        )
        .unwrap_err();
        assert!(err.message.contains("zzz"));
    }

    #[test]
    fn fig2_indirect_adjoint() {
        let src = r#"
subroutine fig2(n, x, y, c)
  integer, intent(in) :: n
  real, intent(in) :: x(n)
  real, intent(inout) :: y(n)
  integer, intent(in) :: c(n)
  integer :: i
  !$omp parallel do shared(x, y, c)
  do i = 1, n
    y(c(i)) = x(c(i) + 7)
  end do
end subroutine
"#;
        let adj = diff(
            src,
            &["x"],
            &["y"],
            ParallelTreatment::Uniform(IncMode::Plain),
        );
        let text = program_to_string(&adj);
        // xb(c(i)+7) += yb(c(i)); yb(c(i)) = 0 — as in the paper's Fig. 2.
        assert!(
            text.contains("xb(c(i) + 7) = xb(c(i) + 7) + yb(c(i))"),
            "{text}"
        );
        assert!(text.contains("yb(c(i)) = 0"), "{text}");
        // Reversed parallel loop.
        assert!(text.contains("do i = n, 1, -1"), "{text}");
    }

    #[test]
    fn private_scalar_adjoint_zero_initialized() {
        let src = r#"
subroutine gg(n, dv, grad, e2n, sij)
  integer, intent(in) :: n
  real, intent(in) :: dv(n)
  real, intent(inout) :: grad(n)
  integer, intent(in) :: e2n(n)
  real, intent(in) :: sij(n)
  integer :: ie, i
  real :: dvface
  !$omp parallel do shared(dv, grad, e2n, sij) private(i, dvface)
  do ie = 1, n
    i = e2n(ie)
    dvface = 0.5 * dv(i)
    grad(i) = grad(i) + dvface * sij(ie)
  end do
end subroutine
"#;
        let adj = diff(
            src,
            &["dv"],
            &["grad"],
            ParallelTreatment::Uniform(IncMode::Plain),
        );
        let text = program_to_string(&adj);
        assert!(text.contains("dvfaceb = 0.0"), "{text}");
        assert!(text.contains("private"), "{text}");
        // dvfaceb must be in the private clause of the adjoint loop.
        let adj_pragmas: Vec<&str> = text
            .lines()
            .filter(|l| l.contains("!$omp parallel do"))
            .collect();
        assert!(
            adj_pragmas.iter().any(|l| l.contains("dvfaceb")),
            "{adj_pragmas:?}"
        );
    }

    #[test]
    fn write_only_inner_counter_privatized_in_adjoint() {
        // Found by the differential fuzzer: `j` is assigned by the inner
        // `do` header but never read, so the reference scan misses it and
        // the adjoint region used to emit no clause for it at all — the
        // bytecode compiler then rejects the adjoint.
        let src = r#"
subroutine rep(n, x, y)
  integer, intent(in) :: n
  real, intent(in) :: x(n)
  real, intent(inout) :: y(n)
  integer :: i, j
  !$omp parallel do shared(x, y) private(j)
  do i = 1, n
    do j = 1, 3
      y(i) = y(i) + x(i)
    end do
  end do
end subroutine
"#;
        let adj = diff(
            src,
            &["x"],
            &["y"],
            ParallelTreatment::Uniform(IncMode::Plain),
        );
        let region = adj
            .body
            .iter()
            .find_map(|s| match s {
                Stmt::For(l) if l.parallel.is_some() => l.parallel.as_ref(),
                _ => None,
            })
            .expect("adjoint keeps the parallel region");
        assert!(
            region.private.contains(&"j".to_string()),
            "inner counter must be private: {region:?}"
        );
    }
}
