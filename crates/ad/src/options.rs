//! Options and safeguard plans for the reverse-mode transformation.

use std::collections::HashMap;
use std::fmt;

/// How increments to a shared adjoint array are protected inside a
/// parallel adjoint loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IncMode {
    /// Plain increment — FormAD proved the accesses disjoint (or the user
    /// asserts it).
    Plain,
    /// `!$omp atomic` guarded increment.
    Atomic,
    /// Privatize the array in a `reduction(+:...)` clause.
    Reduction,
}

impl fmt::Display for IncMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IncMode::Plain => write!(f, "plain"),
            IncMode::Atomic => write!(f, "atomic"),
            IncMode::Reduction => write!(f, "reduction"),
        }
    }
}

/// Treatment of parallel loops in the generated adjoint, corresponding to
/// the program versions benchmarked in the paper (§7):
/// *Adjoint Serial*, *Adjoint Atomic*, *Adjoint Reduction*,
/// *Adjoint FormAD* (per-array modes from the analysis).
#[derive(Debug, Clone)]
pub enum ParallelTreatment {
    /// Strip all parallel pragmas: sequential adjoint (and sequential
    /// forward sweep).
    Serial,
    /// Same safeguard for every shared adjoint array in every region.
    Uniform(IncMode),
    /// Per-region (pre-order over parallel loops), per-primal-array modes.
    /// Arrays absent from a region's map default to `Atomic` (the safe
    /// fallback).
    PerArray(Vec<HashMap<String, IncMode>>),
}

impl ParallelTreatment {
    /// Mode for increments to the adjoint of `array` in region `region`.
    pub fn mode_of(&self, region: usize, array: &str) -> IncMode {
        match self {
            ParallelTreatment::Serial => IncMode::Plain,
            ParallelTreatment::Uniform(m) => *m,
            ParallelTreatment::PerArray(maps) => maps
                .get(region)
                .and_then(|m| m.get(array).copied())
                .unwrap_or(IncMode::Atomic),
        }
    }

    /// True if parallel pragmas are dropped entirely.
    pub fn is_serial(&self) -> bool {
        matches!(self, ParallelTreatment::Serial)
    }
}

/// Options for [`crate::differentiate`].
#[derive(Debug, Clone)]
pub struct AdjointOptions {
    /// Differentiation inputs (independent variables).
    pub independents: Vec<String>,
    /// Differentiation outputs (dependent variables).
    pub dependents: Vec<String>,
    /// Safeguard selection for parallel adjoint loops.
    pub parallel: ParallelTreatment,
    /// Suffix appended to primal names to form adjoint names (`"b"` in the
    /// paper, read "bar").
    pub adjoint_suffix: String,
}

impl AdjointOptions {
    /// Conventional options: differentiate `dependents` w.r.t.
    /// `independents` with the given parallel treatment.
    pub fn new(
        independents: &[&str],
        dependents: &[&str],
        parallel: ParallelTreatment,
    ) -> AdjointOptions {
        AdjointOptions {
            independents: independents.iter().map(|s| s.to_string()).collect(),
            dependents: dependents.iter().map(|s| s.to_string()).collect(),
            parallel,
            adjoint_suffix: "b".to_string(),
        }
    }
}

/// Errors from the reverse-mode transformation.
#[derive(Debug, Clone, PartialEq)]
pub struct AdError {
    pub message: String,
}

impl fmt::Display for AdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "reverse-mode AD error: {}", self.message)
    }
}

impl std::error::Error for AdError {}

impl AdError {
    pub(crate) fn new(msg: impl Into<String>) -> AdError {
        AdError {
            message: msg.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_lookup_defaults_to_atomic() {
        let t =
            ParallelTreatment::PerArray(vec![HashMap::from([("u".to_string(), IncMode::Plain)])]);
        assert_eq!(t.mode_of(0, "u"), IncMode::Plain);
        assert_eq!(t.mode_of(0, "v"), IncMode::Atomic);
        assert_eq!(t.mode_of(1, "u"), IncMode::Atomic);
    }

    #[test]
    fn uniform_and_serial() {
        assert_eq!(
            ParallelTreatment::Uniform(IncMode::Reduction).mode_of(3, "x"),
            IncMode::Reduction
        );
        assert!(ParallelTreatment::Serial.is_serial());
        assert_eq!(ParallelTreatment::Serial.mode_of(0, "x"), IncMode::Plain);
    }
}
