//! Chain-rule walker: adjoint statements for a single assignment.
//!
//! Implements the per-instruction reverse-mode rule of paper §4.1,
//!
//! ```text
//! z = x Op y      ⇒      x̄ += z̄ · ∂Op/∂x
//!                        ȳ += z̄ · ∂Op/∂y
//!                        z̄  = 0
//! ```
//!
//! generalized to arbitrary expression trees: the walker descends through
//! the right-hand side carrying the symbolic *seed* (the adjoint value
//! flowing into the subtree) and emits one increment statement per active
//! leaf reference. Non-smooth intrinsics (`abs`/`min`/`max`) emit guarded
//! `if` statements selecting the active branch. Occurrences of the
//! assignment's own left-hand side are collected separately so the caller
//! can implement the `z̄ = Σ self-seeds` (or `z̄ = 0`, or — for exact
//! increments — no statement at all, paper §5.4) rule.

use formad_ir::{BinOp, BoolExpr, CmpOp, Expr, Intrinsic, LValue, Stmt, UnOp};

/// Result of differentiating one right-hand side.
#[derive(Debug, Default)]
pub struct ExprAdjoint {
    /// Increment statements `r̄ += seed` for every active non-self read.
    pub increments: Vec<Stmt>,
    /// Seeds flowing into occurrences of the lhs itself (`z̄·∂e/∂z` terms).
    pub self_seeds: Vec<Expr>,
}

/// Environment for the walker.
pub struct AdjCtx<'a> {
    /// Is this variable/array active (has an adjoint)?
    pub is_active: Box<dyn Fn(&str) -> bool + 'a>,
    /// Adjoint name of a primal variable (`u` → `ub`).
    pub adjoint_name: Box<dyn Fn(&str) -> String + 'a>,
}

/// Differentiate `lhs = rhs`, producing adjoint increments with the given
/// seed (normally the adjoint of `lhs`).
pub fn adjoint_of_assign(lhs: &LValue, rhs: &Expr, seed: &Expr, ctx: &AdjCtx<'_>) -> ExprAdjoint {
    let mut out = ExprAdjoint::default();
    let lhs_expr = lhs.as_expr();
    walk(
        rhs,
        seed.clone(),
        &lhs_expr,
        ctx,
        &mut out.increments,
        &mut out.self_seeds,
    );
    out
}

fn is_self(e: &Expr, lhs: &Expr) -> bool {
    e == lhs
}

fn walk(
    e: &Expr,
    seed: Expr,
    lhs: &Expr,
    ctx: &AdjCtx<'_>,
    out: &mut Vec<Stmt>,
    self_seeds: &mut Vec<Expr>,
) {
    if is_self(e, lhs) {
        self_seeds.push(seed);
        return;
    }
    match e {
        Expr::IntLit(_) | Expr::RealLit(_) => {}
        Expr::Var(name) => {
            if (ctx.is_active)(name) {
                let b = (ctx.adjoint_name)(name);
                out.push(Stmt::increment(LValue::var(b), seed));
            }
        }
        Expr::Index { array, indices } => {
            if (ctx.is_active)(array) {
                let b = (ctx.adjoint_name)(array);
                out.push(Stmt::increment(LValue::index(b, indices.clone()), seed));
            }
        }
        Expr::Unary { op: UnOp::Neg, arg } => {
            walk(arg, seed.neg(), lhs, ctx, out, self_seeds);
        }
        Expr::Binary { op, lhs: a, rhs: b } => match op {
            BinOp::Add => {
                walk(a, seed.clone(), lhs, ctx, out, self_seeds);
                walk(b, seed, lhs, ctx, out, self_seeds);
            }
            BinOp::Sub => {
                walk(a, seed.clone(), lhs, ctx, out, self_seeds);
                walk(b, seed.neg(), lhs, ctx, out, self_seeds);
            }
            BinOp::Mul => {
                walk(a, seed.clone() * (**b).clone(), lhs, ctx, out, self_seeds);
                walk(b, seed * (**a).clone(), lhs, ctx, out, self_seeds);
            }
            BinOp::Div => {
                // d(a/b) = da/b − a·db/b².
                walk(a, seed.clone() / (**b).clone(), lhs, ctx, out, self_seeds);
                let b_sq = (**b).clone() * (**b).clone();
                walk(
                    b,
                    (seed * (**a).clone()).neg() / b_sq,
                    lhs,
                    ctx,
                    out,
                    self_seeds,
                );
            }
            BinOp::Pow => {
                // d(a**k) = k·a**(k−1)·da; exponent treated as constant
                // w.r.t. the base (integer exponents in practice). If the
                // exponent is itself active, d/dk = a**k·log(a)·dk.
                let k = (**b).clone();
                let da = seed.clone()
                    * k.clone()
                    * Expr::binary(BinOp::Pow, (**a).clone(), k.clone() - Expr::IntLit(1));
                walk(a, da, lhs, ctx, out, self_seeds);
                if expr_may_be_active(b, ctx) {
                    let dk = seed
                        * Expr::binary(BinOp::Pow, (**a).clone(), k)
                        * Expr::call(Intrinsic::Log, vec![(**a).clone()]);
                    walk(b, dk, lhs, ctx, out, self_seeds);
                }
            }
            BinOp::Mod => {
                // Integer-only operation: no derivative flows.
            }
        },
        Expr::Call { func, args } => match func {
            Intrinsic::Sin => {
                let d = seed * Expr::call(Intrinsic::Cos, vec![args[0].clone()]);
                walk(&args[0], d, lhs, ctx, out, self_seeds);
            }
            Intrinsic::Cos => {
                let d = (seed * Expr::call(Intrinsic::Sin, vec![args[0].clone()])).neg();
                walk(&args[0], d, lhs, ctx, out, self_seeds);
            }
            Intrinsic::Exp => {
                let d = seed * Expr::call(Intrinsic::Exp, vec![args[0].clone()]);
                walk(&args[0], d, lhs, ctx, out, self_seeds);
            }
            Intrinsic::Log => {
                let d = seed / args[0].clone();
                walk(&args[0], d, lhs, ctx, out, self_seeds);
            }
            Intrinsic::Sqrt => {
                let d = seed
                    / (Expr::RealLit(2.0) * Expr::call(Intrinsic::Sqrt, vec![args[0].clone()]));
                walk(&args[0], d, lhs, ctx, out, self_seeds);
            }
            Intrinsic::Tanh => {
                let t = Expr::call(Intrinsic::Tanh, vec![args[0].clone()]);
                let d = seed * (Expr::RealLit(1.0) - t.clone() * t);
                walk(&args[0], d, lhs, ctx, out, self_seeds);
            }
            Intrinsic::Abs => {
                // Guarded subgradient: sign(x)·seed, with sign(0) = +1.
                let mut then_out = Vec::new();
                let mut else_out = Vec::new();
                let mut then_selfs = Vec::new();
                let mut else_selfs = Vec::new();
                walk(
                    &args[0],
                    seed.clone(),
                    lhs,
                    ctx,
                    &mut then_out,
                    &mut then_selfs,
                );
                walk(
                    &args[0],
                    seed.neg(),
                    lhs,
                    ctx,
                    &mut else_out,
                    &mut else_selfs,
                );
                emit_guarded(
                    BoolExpr::cmp(CmpOp::Ge, args[0].clone(), Expr::RealLit(0.0)),
                    then_out,
                    else_out,
                    then_selfs,
                    else_selfs,
                    out,
                    self_seeds,
                );
            }
            Intrinsic::Min | Intrinsic::Max => {
                let cmp = if *func == Intrinsic::Min {
                    CmpOp::Le
                } else {
                    CmpOp::Ge
                };
                let mut then_out = Vec::new();
                let mut else_out = Vec::new();
                let mut then_selfs = Vec::new();
                let mut else_selfs = Vec::new();
                walk(
                    &args[0],
                    seed.clone(),
                    lhs,
                    ctx,
                    &mut then_out,
                    &mut then_selfs,
                );
                walk(&args[1], seed, lhs, ctx, &mut else_out, &mut else_selfs);
                emit_guarded(
                    BoolExpr::cmp(cmp, args[0].clone(), args[1].clone()),
                    then_out,
                    else_out,
                    then_selfs,
                    else_selfs,
                    out,
                    self_seeds,
                );
            }
        },
    }
}

/// Emit a guarded `if` for non-smooth branches. Self-seed collection cannot
/// be made control-dependent with the caller's flat `z̄ = Σ seeds` rule, so
/// rhs expressions where the lhs occurs *under* a non-smooth intrinsic are
/// rejected (a pathological shape none of the paper's kernels use).
fn emit_guarded(
    guard: BoolExpr,
    then_out: Vec<Stmt>,
    else_out: Vec<Stmt>,
    then_selfs: Vec<Expr>,
    else_selfs: Vec<Expr>,
    out: &mut Vec<Stmt>,
    _self_seeds: &mut [Expr],
) {
    assert!(
        then_selfs.is_empty() && else_selfs.is_empty(),
        "assignment lhs under abs/min/max on its own rhs is not supported"
    );
    if then_out.is_empty() && else_out.is_empty() {
        return;
    }
    out.push(Stmt::If {
        cond: guard,
        then_body: then_out,
        else_body: else_out,
    });
}

/// Could any leaf of `e` be active?
fn expr_may_be_active(e: &Expr, ctx: &AdjCtx<'_>) -> bool {
    let mut active = false;
    e.walk(&mut |sub| match sub {
        Expr::Var(n) => active |= (ctx.is_active)(n),
        Expr::Index { array, .. } => active |= (ctx.is_active)(array),
        _ => {}
    });
    active
}

#[cfg(test)]
mod tests {
    use super::*;
    use formad_ir::expr_to_string;

    fn ctx_all_active() -> AdjCtx<'static> {
        AdjCtx {
            is_active: Box::new(|n: &str| !n.ends_with(char::from(98)) && n != "c"),
            adjoint_name: Box::new(|n: &str| format!("{n}b")),
        }
    }

    fn v(n: &str) -> Expr {
        Expr::var(n)
    }

    fn run(lhs: LValue, rhs: Expr) -> ExprAdjoint {
        let seed = match &lhs {
            LValue::Var(n) => Expr::var(format!("{n}b")),
            LValue::Index { array, indices } => Expr::index(format!("{array}b"), indices.clone()),
        };
        adjoint_of_assign(&lhs, &rhs, &seed, &ctx_all_active())
    }

    #[test]
    fn paper_figure1_assignment_example() {
        // u(i-1) = a*v(i,j) + 1.5
        let lhs = LValue::index("u", vec![v("i") - Expr::int(1)]);
        let rhs = v("a") * Expr::index("v", vec![v("i"), v("j")]) + Expr::real(1.5);
        let adj = run(lhs, rhs);
        // vb(i,j) += a*ub(i-1) ; ab += v(i,j)*ub(i-1)
        assert_eq!(adj.increments.len(), 2);
        let printed: Vec<String> = adj
            .increments
            .iter()
            .map(|s| {
                let mut t = String::new();
                formad_ir::printer::write_body(&mut t, std::slice::from_ref(s), 0);
                t.trim().to_string()
            })
            .collect();
        assert_eq!(printed[0], "ab = ab + ub(i - 1) * v(i, j)");
        assert_eq!(printed[1], "vb(i, j) = vb(i, j) + ub(i - 1) * a");
        // Plain assignment: lhs does not occur on the rhs.
        assert!(adj.self_seeds.is_empty());
    }

    #[test]
    fn paper_figure1_increment_example() {
        // u(2*i) = u(2*i) + 2*a
        let lhs = LValue::index("u", vec![Expr::int(2) * v("i")]);
        let rhs = lhs.as_expr() + Expr::int(2) * v("a");
        let adj = run(lhs, rhs);
        // ab += 2*ub(2*i); self seed is exactly ub(2*i) (coefficient 1).
        assert_eq!(adj.increments.len(), 1);
        assert_eq!(adj.self_seeds.len(), 1);
        assert_eq!(expr_to_string(&adj.self_seeds[0]), "ub(2 * i)");
    }

    #[test]
    fn product_rule() {
        // z = x * y → xb += zb*y; yb += zb*x
        let adj = run(LValue::var("z"), v("x") * v("y"));
        assert_eq!(adj.increments.len(), 2);
        let s0 = format!("{:?}", adj.increments[0]);
        assert!(s0.contains('y'), "first increment seeds with y: {s0}");
    }

    #[test]
    fn scaled_self_reference() {
        // z = 2*z + x → self seed 2*zb (after commuting, zb*2).
        let adj = run(LValue::var("z"), Expr::int(2) * v("z") + v("x"));
        assert_eq!(adj.self_seeds.len(), 1);
        assert_eq!(adj.increments.len(), 1);
        assert_eq!(expr_to_string(&adj.self_seeds[0]), "zb * 2");
    }

    #[test]
    fn division_rule() {
        let adj = run(LValue::var("z"), v("x") / v("y"));
        assert_eq!(adj.increments.len(), 2);
        let all = format!("{:?}", adj.increments);
        assert!(all.contains("Div"));
    }

    #[test]
    fn sin_chain_rule() {
        let adj = run(
            LValue::var("z"),
            Expr::call(Intrinsic::Sin, vec![v("x") * v("x")]),
        );
        // xb += zb*cos(x*x)*x twice (both occurrences of x).
        assert_eq!(adj.increments.len(), 2);
        let all = format!("{:?}", adj.increments);
        assert!(all.contains("Cos"));
    }

    #[test]
    fn min_emits_guard() {
        let adj = run(
            LValue::var("z"),
            Expr::call(Intrinsic::Min, vec![v("x"), v("y")]),
        );
        assert_eq!(adj.increments.len(), 1);
        match &adj.increments[0] {
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                assert_eq!(then_body.len(), 1);
                assert_eq!(else_body.len(), 1);
            }
            other => panic!("expected guard, got {other:?}"),
        }
    }

    #[test]
    fn abs_emits_sign_guard() {
        let adj = run(LValue::var("z"), Expr::call(Intrinsic::Abs, vec![v("x")]));
        assert!(matches!(adj.increments[0], Stmt::If { .. }));
    }

    #[test]
    fn inactive_leaves_ignored() {
        // c is inactive (index array) in the test context.
        let adj = run(
            LValue::var("z"),
            v("c") * v("x") + Expr::index("c", vec![v("i")]),
        );
        // Only xb receives a contribution.
        assert_eq!(adj.increments.len(), 1);
        assert!(format!("{:?}", adj.increments[0]).contains("xb"));
    }

    #[test]
    fn integer_pow_rule() {
        let adj = run(
            LValue::var("z"),
            Expr::binary(BinOp::Pow, v("x"), Expr::int(3)),
        );
        assert_eq!(adj.increments.len(), 1);
        let s = format!("{:?}", adj.increments[0]);
        assert!(s.contains("Pow"), "{s}");
    }

    #[test]
    fn constant_rhs_no_adjoints() {
        let adj = run(
            LValue::var("z"),
            Expr::real(3.5) + Expr::int(2) * Expr::real(1.0),
        );
        assert!(adj.increments.is_empty());
        assert!(adj.self_seeds.is_empty());
    }
}
