//! Forward (tangent) mode source transformation.
//!
//! The tangent of `v = e` is `vd = Σ_r (∂e/∂r)·rd`, inserted *before* the
//! primal statement so every value reference sees pre-assignment state.
//! No tape, no reversal, and no race-safety analysis is needed: tangent
//! writes mirror the primal writes one-to-one, so a correctly
//! parallelized primal yields a correctly parallelized tangent — which is
//! exactly why the paper focuses on the much harder reverse mode.
//!
//! Provided here both for API completeness (Tapenade offers it) and as a
//! third oracle in the test suite: `⟨ȳ, ẏ⟩ = ⟨x̄, ẋ⟩` must hold between
//! tangent and adjoint results.

use formad_ir::{
    BinOp, BoolExpr, CmpOp, Expr, ForLoop, Intent, Intrinsic, LValue, ParallelInfo, Program, Stmt,
    Ty, UnOp,
};

use formad_analysis::Activity;

use crate::options::{AdError, AdjointOptions};

/// Differentiate `p` in forward mode.
///
/// The generated subroutine is named `{p.name}_d`; each active parameter
/// `x` gains a tangent parameter `xd` (seeded by the caller for the
/// independents; the dependents' tangents hold the directional
/// derivatives on exit). Uses the same options type as the reverse mode;
/// the `parallel` treatment is ignored (tangent loops need no guards).
pub fn differentiate_tangent(p: &Program, opts: &AdjointOptions) -> Result<Program, AdError> {
    formad_ir::validate_strict(p).map_err(|e| AdError::new(format!("invalid primal: {e}")))?;
    for name in opts.independents.iter().chain(&opts.dependents) {
        if p.decl(name).is_none() {
            return Err(AdError::new(format!(
                "independent/dependent `{name}` is not a parameter of `{}`",
                p.name
            )));
        }
    }
    let act = Activity::analyze(p, &opts.independents, &opts.dependents);
    let tg = Tangent {
        prog: p,
        act,
        suffix: "d".to_string(),
    };

    let mut out = Program::new(format!("{}_d", p.name));
    out.params = p.params.clone();
    for d in &p.params {
        if tg.is_active(&d.name) {
            let mut t = d.clone();
            t.name = tg.tname(&d.name);
            t.intent = Intent::InOut;
            out.params.push(t);
        }
    }
    out.locals = p.locals.clone();
    for d in &p.locals {
        if tg.is_active(&d.name) {
            let mut t = d.clone();
            t.name = tg.tname(&d.name);
            out.locals.push(t);
        }
    }
    out.body = tg.body(&p.body)?;
    Ok(out)
}

struct Tangent<'a> {
    prog: &'a Program,
    act: Activity,
    suffix: String,
}

impl<'a> Tangent<'a> {
    fn is_active(&self, name: &str) -> bool {
        self.prog.ty_of(name) == Some(Ty::Real) && self.act.is_active(name)
    }

    fn tname(&self, name: &str) -> String {
        format!("{}{}", name, self.suffix)
    }

    fn body(&self, stmts: &[Stmt]) -> Result<Vec<Stmt>, AdError> {
        let mut out = Vec::new();
        for s in stmts {
            self.stmt(s, &mut out)?;
        }
        Ok(out)
    }

    fn stmt(&self, s: &Stmt, out: &mut Vec<Stmt>) -> Result<(), AdError> {
        match s {
            Stmt::Assign { lhs, rhs } => {
                if self.is_active(lhs.name()) {
                    let lhs_d = match lhs {
                        LValue::Var(n) => LValue::var(self.tname(n)),
                        LValue::Index { array, indices } => {
                            LValue::index(self.tname(array), indices.clone())
                        }
                    };
                    out.extend(self.tangent_assign(lhs_d, rhs));
                }
                out.push(s.clone());
                Ok(())
            }
            Stmt::AtomicAdd { lhs, rhs } => {
                if self.is_active(lhs.name()) {
                    let lhs_d = match lhs {
                        LValue::Var(n) => LValue::var(self.tname(n)),
                        LValue::Index { array, indices } => {
                            LValue::index(self.tname(array), indices.clone())
                        }
                    };
                    // Tangent of an increment is an increment.
                    let full = lhs.as_expr() + rhs.clone();
                    out.extend(self.tangent_assign(lhs_d, &full));
                }
                out.push(s.clone());
                Ok(())
            }
            Stmt::Push(_) | Stmt::Pop(_) => Err(AdError::new("primal contains tape statements")),
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                out.push(Stmt::If {
                    cond: cond.clone(),
                    then_body: self.body(then_body)?,
                    else_body: self.body(else_body)?,
                });
                Ok(())
            }
            Stmt::For(l) => {
                let mut parallel = l.parallel.clone();
                if let Some(info) = &mut parallel {
                    self.extend_clauses(info);
                }
                out.push(Stmt::For(Box::new(ForLoop {
                    var: l.var.clone(),
                    lo: l.lo.clone(),
                    hi: l.hi.clone(),
                    step: l.step.clone(),
                    body: self.body(&l.body)?,
                    parallel,
                })));
                Ok(())
            }
        }
    }

    /// Tangent arrays/scalars inherit the primal's sharing.
    fn extend_clauses(&self, info: &mut ParallelInfo) {
        let shared: Vec<String> = info
            .shared
            .iter()
            .filter(|v| self.is_active(v))
            .map(|v| self.tname(v))
            .collect();
        info.shared.extend(shared);
        let private: Vec<String> = info
            .private
            .iter()
            .filter(|v| self.is_active(v))
            .map(|v| self.tname(v))
            .collect();
        info.private.extend(private);
    }

    /// Statements assigning the directional derivative of `e` to `lhs_d`,
    /// branching on non-smooth intrinsics.
    fn tangent_assign(&self, lhs_d: LValue, e: &Expr) -> Vec<Stmt> {
        // Enumerate non-smooth call sites; each gets a branch decision.
        let mut guards: Vec<BoolExpr> = Vec::new();
        collect_guards(e, &mut guards);
        if guards.is_empty() {
            return vec![Stmt::assign(lhs_d, self.texpr(e, &[]))];
        }
        // 2^k combinations of guard outcomes, nested ifs (k is tiny).
        self.emit_guarded(lhs_d, e, &guards, &mut Vec::new())
    }

    fn emit_guarded(
        &self,
        lhs_d: LValue,
        e: &Expr,
        guards: &[BoolExpr],
        choices: &mut Vec<bool>,
    ) -> Vec<Stmt> {
        if choices.len() == guards.len() {
            return vec![Stmt::assign(lhs_d, self.texpr(e, choices))];
        }
        let g = guards[choices.len()].clone();
        choices.push(true);
        let then_body = self.emit_guarded(lhs_d.clone(), e, guards, choices);
        choices.pop();
        choices.push(false);
        let else_body = self.emit_guarded(lhs_d, e, guards, choices);
        choices.pop();
        vec![Stmt::If {
            cond: g,
            then_body,
            else_body,
        }]
    }

    /// Directional-derivative expression of `e`, with non-smooth branch
    /// choices fixed by `choices` (consumed in collection order).
    fn texpr(&self, e: &Expr, choices: &[bool]) -> Expr {
        let mut k = 0;
        self.texpr_inner(e, choices, &mut k)
    }

    fn texpr_inner(&self, e: &Expr, choices: &[bool], k: &mut usize) -> Expr {
        match e {
            Expr::IntLit(_) | Expr::RealLit(_) => Expr::real(0.0),
            Expr::Var(n) => {
                if self.is_active(n) {
                    Expr::var(self.tname(n))
                } else {
                    Expr::real(0.0)
                }
            }
            Expr::Index { array, indices } => {
                if self.is_active(array) {
                    Expr::index(self.tname(array), indices.clone())
                } else {
                    Expr::real(0.0)
                }
            }
            Expr::Unary { op: UnOp::Neg, arg } => self.texpr_inner(arg, choices, k).neg(),
            Expr::Binary { op, lhs, rhs } => match op {
                BinOp::Add => self.texpr_inner(lhs, choices, k) + self.texpr_inner(rhs, choices, k),
                BinOp::Sub => self.texpr_inner(lhs, choices, k) - self.texpr_inner(rhs, choices, k),
                BinOp::Mul => {
                    self.texpr_inner(lhs, choices, k) * (**rhs).clone()
                        + (**lhs).clone() * self.texpr_inner(rhs, choices, k)
                }
                BinOp::Div => {
                    let dl = self.texpr_inner(lhs, choices, k);
                    let dr = self.texpr_inner(rhs, choices, k);
                    dl / (**rhs).clone()
                        - (**lhs).clone() * dr / ((**rhs).clone() * (**rhs).clone())
                }
                BinOp::Pow => {
                    let da = self.texpr_inner(lhs, choices, k);
                    (**rhs).clone()
                        * Expr::binary(
                            BinOp::Pow,
                            (**lhs).clone(),
                            (**rhs).clone() - Expr::IntLit(1),
                        )
                        * da
                }
                BinOp::Mod => Expr::real(0.0),
            },
            Expr::Call { func, args } => match func {
                Intrinsic::Sin => {
                    Expr::call(Intrinsic::Cos, vec![args[0].clone()])
                        * self.texpr_inner(&args[0], choices, k)
                }
                Intrinsic::Cos => (Expr::call(Intrinsic::Sin, vec![args[0].clone()])
                    * self.texpr_inner(&args[0], choices, k))
                .neg(),
                Intrinsic::Exp => {
                    Expr::call(Intrinsic::Exp, vec![args[0].clone()])
                        * self.texpr_inner(&args[0], choices, k)
                }
                Intrinsic::Log => self.texpr_inner(&args[0], choices, k) / args[0].clone(),
                Intrinsic::Sqrt => {
                    self.texpr_inner(&args[0], choices, k)
                        / (Expr::real(2.0) * Expr::call(Intrinsic::Sqrt, vec![args[0].clone()]))
                }
                Intrinsic::Tanh => {
                    let t = Expr::call(Intrinsic::Tanh, vec![args[0].clone()]);
                    (Expr::real(1.0) - t.clone() * t) * self.texpr_inner(&args[0], choices, k)
                }
                Intrinsic::Abs | Intrinsic::Min | Intrinsic::Max => {
                    let choice = choices[*k];
                    *k += 1;
                    match func {
                        Intrinsic::Abs => {
                            let d = self.texpr_inner(&args[0], choices, k);
                            if choice {
                                d
                            } else {
                                d.neg()
                            }
                        }
                        _ => {
                            // min/max select one operand's tangent. The
                            // *other* operand's guard counter must still
                            // advance, so walk both and discard one.
                            let d0 = self.texpr_inner(&args[0], choices, k);
                            let d1 = self.texpr_inner(&args[1], choices, k);
                            if choice {
                                d0
                            } else {
                                d1
                            }
                        }
                    }
                }
            },
        }
    }
}

/// Guards for non-smooth intrinsics, in the same traversal order as
/// `texpr_inner` consumes choices.
fn collect_guards(e: &Expr, out: &mut Vec<BoolExpr>) {
    match e {
        Expr::IntLit(_) | Expr::RealLit(_) | Expr::Var(_) => {}
        Expr::Index { .. } => {}
        Expr::Unary { arg, .. } => collect_guards(arg, out),
        Expr::Binary { lhs, rhs, .. } => {
            collect_guards(lhs, out);
            collect_guards(rhs, out);
        }
        Expr::Call { func, args } => match func {
            Intrinsic::Abs => {
                out.push(BoolExpr::cmp(CmpOp::Ge, args[0].clone(), Expr::real(0.0)));
                collect_guards(&args[0], out);
            }
            Intrinsic::Min => {
                out.push(BoolExpr::cmp(CmpOp::Le, args[0].clone(), args[1].clone()));
                collect_guards(&args[0], out);
                collect_guards(&args[1], out);
            }
            Intrinsic::Max => {
                out.push(BoolExpr::cmp(CmpOp::Ge, args[0].clone(), args[1].clone()));
                collect_guards(&args[0], out);
                collect_guards(&args[1], out);
            }
            _ => {
                for a in args {
                    collect_guards(a, out);
                }
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::{IncMode, ParallelTreatment};
    use formad_ir::{parse_program, program_to_string};

    fn tangent(src: &str, indep: &[&str], dep: &[&str]) -> Program {
        let p = parse_program(src).unwrap();
        differentiate_tangent(
            &p,
            &AdjointOptions::new(indep, dep, ParallelTreatment::Uniform(IncMode::Plain)),
        )
        .unwrap()
    }

    const SAXPY: &str = r#"
subroutine saxpy(n, a, x, y)
  integer, intent(in) :: n
  real, intent(in) :: a
  real, intent(in) :: x(n)
  real, intent(inout) :: y(n)
  integer :: i
  !$omp parallel do shared(x, y)
  do i = 1, n
    y(i) = y(i) + a * x(i)
  end do
end subroutine
"#;

    #[test]
    fn saxpy_tangent_shape() {
        let t = tangent(SAXPY, &["x"], &["y"]);
        assert_eq!(t.name, "saxpy_d");
        let text = program_to_string(&t);
        // yd(i) = yd(i) + ... with the tangent statement before the primal.
        assert!(
            text.contains("yd(i) = yd(i) + (0.0 * x(i) + a * xd(i))")
                || text.contains("yd(i) = yd(i) + 0.0"),
            "{text}"
        );
        assert!(text.contains("y(i) = y(i) + a * x(i)"), "{text}");
        // Tangent arrays shared in the pragma.
        assert!(text.contains("xd"), "{text}");
        let tangent_pos = text.find("yd(i) =").unwrap();
        let primal_pos = text.find("y(i) = y(i)").unwrap();
        assert!(tangent_pos < primal_pos, "tangent must precede primal");
    }

    #[test]
    fn tangent_of_product_rule() {
        let t = tangent(
            r#"
subroutine pr(n, x, y)
  integer, intent(in) :: n
  real, intent(in) :: x(n)
  real, intent(inout) :: y(n)
  integer :: i
  do i = 1, n
    y(i) = x(i) * x(i)
  end do
end subroutine
"#,
            &["x"],
            &["y"],
        );
        let text = program_to_string(&t);
        assert!(
            text.contains("yd(i) = xd(i) * x(i) + x(i) * xd(i)"),
            "{text}"
        );
    }

    #[test]
    fn nonsmooth_gets_guard() {
        let t = tangent(
            r#"
subroutine ns(n, x, y)
  integer, intent(in) :: n
  real, intent(in) :: x(n)
  real, intent(inout) :: y(n)
  integer :: i
  do i = 1, n
    y(i) = min(x(i), 2.0 * x(i))
  end do
end subroutine
"#,
            &["x"],
            &["y"],
        );
        let text = program_to_string(&t);
        assert!(text.contains("if (x(i) .le. 2.0 * x(i)) then"), "{text}");
        assert!(text.contains("else"), "{text}");
    }

    #[test]
    fn inactive_paths_contribute_zero() {
        let t = tangent(SAXPY, &["x"], &["y"]);
        let text = program_to_string(&t);
        // `a` is not an independent: its tangent contribution is the
        // literal 0.0 (folded or not, it must not reference `ad`).
        assert!(!text.contains("ad"), "{text}");
    }

    #[test]
    fn tangent_rejects_tape_statements() {
        let src = r#"
subroutine t(n, y)
  integer, intent(in) :: n
  real, intent(inout) :: y(n)
  integer :: i
  do i = 1, n
    call push(y(i))
    y(i) = 0.0
  end do
end subroutine
"#;
        let p = parse_program(src).unwrap();
        assert!(differentiate_tangent(
            &p,
            &AdjointOptions::new(&["y"], &["y"], ParallelTreatment::Serial)
        )
        .is_err());
    }
}
