//! # formad-ad
//!
//! Reverse-mode (adjoint) source transformation over the `formad-ir` loop
//! language — the AD engine that FormAD's analysis plugs into (paper §4).
//!
//! The transformation is *store-all split mode*: the generated adjoint
//! subroutine runs a forward sweep (primal computation plus tape pushes of
//! to-be-overwritten recorded values and branch decisions) followed by a
//! backward sweep (pops restoring primal state, adjoint increments from
//! the chain rule, reversed loops). Parallel loops remain parallel in both
//! sweeps with the same static schedule, so tapes stay thread-local.
//!
//! Safeguards for shared adjoint increments are selected per
//! [`ParallelTreatment`]: the four program versions of the paper's
//! evaluation (`Serial`, uniform `Atomic`, uniform `Reduction`, and the
//! per-array plan that the `formad` core crate derives from its
//! theorem-prover analysis).
//!
//! ```
//! use formad_ad::{differentiate, AdjointOptions, IncMode, ParallelTreatment};
//! use formad_ir::parse_program;
//!
//! let primal = parse_program(r#"
//! subroutine scale(n, x, y)
//!   integer, intent(in) :: n
//!   real, intent(in) :: x(n)
//!   real, intent(inout) :: y(n)
//!   integer :: i
//!   !$omp parallel do shared(x, y)
//!   do i = 1, n
//!     y(i) = y(i) + 3.0 * x(i)
//!   end do
//! end subroutine
//! "#).unwrap();
//! let adj = differentiate(
//!     &primal,
//!     &AdjointOptions::new(&["x"], &["y"], ParallelTreatment::Uniform(IncMode::Plain)),
//! ).unwrap();
//! assert_eq!(adj.name, "scale_b");
//! ```

pub mod adjoint_expr;
pub mod options;
pub mod tangent;
pub mod transform;

pub use adjoint_expr::{adjoint_of_assign, AdjCtx, ExprAdjoint};
pub use options::{AdError, AdjointOptions, IncMode, ParallelTreatment};
pub use tangent::differentiate_tangent;
pub use transform::differentiate;
