//! End-to-end contract tests for the differentiation service.
//!
//! Three pillars:
//!
//! - **Fidelity**: a report served over the wire is byte-identical
//!   (wall-clock stripped) to the one-shot pipeline's, cache cold and
//!   warm, for the paper's Table-1 kernels.
//! - **Chaos**: concurrent clients against a daemon whose provers panic
//!   at 20% — and at 100% — all receive FD-correct (possibly degraded)
//!   responses, and the daemon stays up.
//! - **Soak** (the acceptance criterion): with the admission queue
//!   saturated and an all-panic `ChaosSolver` injected, every request
//!   completes HTTP 200 with correct adjoints, and a subsequent clean
//!   request is served from the warm shared cache with zero lia calls.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

use formad::{full_report, Formad, FormadOptions};
use formad_ir::{parse_any, program_to_string, Program};
use formad_kernels::{lbm, GfmcCase, GreenGaussCase, StencilCase};
use formad_machine::{dot_product_test, fill_real, Bindings, Machine};
use formad_serve::{serve, Json, ServerHandle, ServiceConfig};

// ---- tiny blocking HTTP client ----

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, Json) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.write_all(
        format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
    .expect("write");
    let mut text = String::new();
    s.read_to_string(&mut text).expect("read");
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|t| t.parse().ok())
        .unwrap_or_else(|| panic!("bad response: {text}"));
    let body = text.split("\r\n\r\n").nth(1).unwrap_or("");
    let json = Json::parse(body).unwrap_or_else(|e| panic!("bad JSON ({e}): {body}"));
    (status, json)
}

fn prove_body(source: &str, wrt: &[&str], of: &[&str], extra: &str) -> String {
    let names = |list: &[&str]| {
        let items: Vec<String> = list
            .iter()
            .map(|n| Json::Str(n.to_string()).render())
            .collect();
        format!("[{}]", items.join(","))
    };
    format!(
        r#"{{"program":{},"wrt":{},"of":{}{extra}}}"#,
        Json::Str(source.to_string()).render(),
        names(wrt),
        names(of),
    )
}

/// Drop the only wall-clock-dependent token (the region time that ends
/// `… N queries, 0.123s` header lines) so reports compare bytewise.
fn strip_times(report: &str) -> String {
    report
        .lines()
        .map(|l| match l.split_once(" queries, ") {
            Some((head, _)) => format!("{head} queries"),
            None => l.to_string(),
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// The paper's Table-1 kernel suite, as (name, program, wrt, of).
fn table1() -> Vec<(&'static str, Program, Vec<&'static str>, Vec<&'static str>)> {
    vec![
        (
            "stencil",
            StencilCase::small(32, 1).ir(),
            StencilCase::independents().to_vec(),
            StencilCase::dependents().to_vec(),
        ),
        (
            "gfmc",
            GfmcCase::new(8, 1).ir(),
            GfmcCase::independents().to_vec(),
            GfmcCase::dependents().to_vec(),
        ),
        (
            "green_gauss",
            GreenGaussCase::linear(24, 1).ir(),
            GreenGaussCase::independents().to_vec(),
            GreenGaussCase::dependents().to_vec(),
        ),
        (
            "lbm",
            lbm::lbm_ir(),
            lbm::independents().to_vec(),
            lbm::dependents().to_vec(),
        ),
    ]
}

fn start(cfg: ServiceConfig) -> ServerHandle {
    serve("127.0.0.1:0", cfg).expect("bind ephemeral")
}

// ---- fidelity ----

#[test]
fn reports_are_byte_identical_to_the_one_shot_pipeline_cold_and_warm() {
    let handle = start(ServiceConfig::default());
    let addr = handle.addr();
    for (name, ir, wrt, of) in table1() {
        let source = program_to_string(&ir);
        // The one-shot reference goes through the same source text the
        // service receives (exactly what the CLI does).
        let primal = parse_any(&source).expect(name);
        let oneshot = Formad::new(FormadOptions::new(&wrt, &of))
            .analyze(&primal)
            .unwrap_or_else(|e| panic!("{name}: one-shot failed: {e}"));
        let want = strip_times(&full_report(&primal.name, &oneshot));
        // Cold (first visit of this kernel), then warm (shared cache).
        for pass in ["cold", "warm"] {
            let (status, json) = post(addr, "/v1/prove", &prove_body(&source, &wrt, &of, ""));
            assert_eq!(status, 200, "{name} {pass}: {json}");
            let got = json.get("report").and_then(Json::as_str).unwrap_or("");
            assert_eq!(
                strip_times(got),
                want,
                "{name} {pass}: service report differs from one-shot"
            );
            assert_eq!(
                json.get("degraded").and_then(Json::as_bool),
                Some(oneshot.degraded()),
                "{name} {pass}"
            );
        }
    }
}

// ---- chaos ----

/// FD-check an adjoint served over the wire for the small stencil.
fn assert_stencil_adjoint_correct(adjoint_src: &str, ctx: &str) {
    let case = StencilCase::small(32, 1);
    let primal = case.ir();
    let adjoint = parse_any(adjoint_src).unwrap_or_else(|e| panic!("{ctx}: bad adjoint: {e}"));
    let base: Bindings = case.bindings(11);
    for threads in [1usize, 4] {
        let t = dot_product_test(
            &primal,
            &adjoint,
            &base,
            &[("uold", fill_real("seed_u", 21, 32))],
            &[("unew", fill_real("seed_v", 22, 32))],
            &Machine::with_threads(threads),
            1e-6,
            "b",
        )
        .unwrap_or_else(|e| panic!("{ctx} T={threads}: {e}"));
        assert!(
            t.passes(1e-6),
            "{ctx} T={threads}: fd={} adj={} rel={}",
            t.fd_value,
            t.adjoint_value,
            t.rel_error
        );
    }
}

#[test]
fn concurrent_chaos_clients_all_get_correct_responses_and_daemon_survives() {
    let handle = start(ServiceConfig::default());
    let addr = handle.addr();
    let source = program_to_string(&StencilCase::small(32, 1).ir());
    let wrt = StencilCase::independents();
    let of = StencilCase::dependents();
    // Half the clients run 20%-panic provers, half all-panic; every
    // response must be 200 with an FD-correct adjoint either way.
    let clients: Vec<_> = (0..8u64)
        .map(|i| {
            let body = prove_body(
                &source,
                wrt,
                of,
                &format!(
                    r#","chaos":{{"seed":{},"panic_per_mille":{}}}"#,
                    i + 1,
                    if i % 2 == 0 { 200 } else { 1000 }
                ),
            );
            std::thread::spawn(move || post(addr, "/v1/prove", &body))
        })
        .collect();
    for (i, c) in clients.into_iter().enumerate() {
        let (status, json) = c.join().expect("client thread");
        assert_eq!(status, 200, "client {i}: {json}");
        assert_eq!(
            json.get("ok").and_then(Json::as_bool),
            Some(true),
            "client {i}"
        );
        let adjoint = json
            .get("adjoint")
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("client {i}: no adjoint: {json}"));
        assert_stencil_adjoint_correct(adjoint, &format!("chaos client {i}"));
    }
    // The daemon is still healthy: a clean request succeeds undegraded.
    let (status, json) = post(addr, "/v1/prove", &prove_body(&source, wrt, of, ""));
    assert_eq!(status, 200, "{json}");
    assert_eq!(
        json.get("degraded").and_then(Json::as_bool),
        Some(false),
        "{json}"
    );
}

// ---- soak (acceptance criterion) ----

#[test]
fn soak_saturated_all_panic_storm_then_clean_request_from_warm_cache() {
    // A deliberately tiny gate so the storm saturates it immediately.
    let handle = start(ServiceConfig {
        workers: 2,
        queue: 2,
        ..ServiceConfig::default()
    });
    let addr = handle.addr();

    // Phase 1 — warm the shared cache with every Table-1 kernel, and
    // record how much linear-arithmetic work the cold passes cost.
    let mut cold_lia = 0u64;
    for (name, ir, wrt, of) in table1() {
        let source = program_to_string(&ir);
        let (status, json) = post(addr, "/v1/prove", &prove_body(&source, &wrt, &of, ""));
        assert_eq!(status, 200, "{name} cold: {json}");
        cold_lia += json
            .get("stats")
            .and_then(|s| s.get("lia_calls"))
            .and_then(Json::as_u64)
            .unwrap_or(0);
    }
    assert!(
        cold_lia > 0,
        "cold passes did no prover work — soak is vacuous"
    );

    // Phase 2 — the storm: more all-panic clients than workers+queue,
    // so the admission ladder exercises every rung (full, reduced,
    // shed-to-fallback). Every single response must be HTTP 200 with an
    // FD-correct adjoint; degraded answers must say so.
    let source = program_to_string(&StencilCase::small(32, 1).ir());
    let wrt = StencilCase::independents();
    let of = StencilCase::dependents();
    let storm: Vec<_> = (0..12u64)
        .map(|i| {
            let body = prove_body(
                &source,
                wrt,
                of,
                &format!(r#","chaos":{{"seed":{},"panic_per_mille":1000}}"#, i + 1),
            );
            std::thread::spawn(move || post(addr, "/v1/prove", &body))
        })
        .collect();
    let mut degraded_seen = 0u32;
    for (i, c) in storm.into_iter().enumerate() {
        let (status, json) = c.join().expect("storm client");
        assert_eq!(status, 200, "storm client {i}: {json}");
        let degraded = json
            .get("degraded")
            .and_then(Json::as_bool)
            .unwrap_or(false);
        let all_safe = json.get("all_safe").and_then(Json::as_bool);
        // An all-panic prover can never prove disjointness, so any
        // non-fallback answer must flag degradation and cannot claim
        // everything proved safe; fallbacks are degraded by construction.
        assert!(degraded, "storm client {i} not flagged degraded: {json}");
        if json.get("fallback").and_then(Json::as_bool) == Some(false) {
            assert_eq!(all_safe, Some(false), "storm client {i}: {json}");
        }
        degraded_seen += 1;
        let adjoint = json
            .get("adjoint")
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("storm client {i}: no adjoint: {json}"));
        assert_stencil_adjoint_correct(adjoint, &format!("storm client {i}"));
    }
    assert_eq!(degraded_seen, 12);

    // Phase 3 — the daemon is unharmed: a clean request is served from
    // the warm shared cache with zero lia calls, undegraded.
    for (name, ir, wrt, of) in table1() {
        let source = program_to_string(&ir);
        let (status, json) = post(addr, "/v1/prove", &prove_body(&source, &wrt, &of, ""));
        assert_eq!(status, 200, "{name} warm: {json}");
        assert_eq!(
            json.get("fallback").and_then(Json::as_bool),
            Some(false),
            "{name} warm: {json}"
        );
        let lia = json
            .get("stats")
            .and_then(|s| s.get("lia_calls"))
            .and_then(Json::as_u64);
        assert_eq!(lia, Some(0), "{name} warm pass did fresh lia work: {json}");
    }

    // The storm's rolled-back overlays must not have polluted the cache:
    // its hit/insert counters only ever moved through absorbed overlays.
    let svc = handle.service();
    let cache = svc.engine().cache().expect("service cache");
    assert!(!cache.is_empty(), "shared cache is empty after warmup");
}

// ---- exec backends over the wire ----

/// `exec` requests served on all three backends return identical
/// outputs; with a warm (in-tree) toolchain the AOT backend serves
/// without falling back, and with a broken one it degrades to bytecode —
/// still HTTP 200, still identical — with the reason in the response.
/// One test fn: the broken-toolchain phase mutates process-global env.
#[test]
fn exec_aot_over_the_wire_matches_sim_and_degrades_on_compile_failure() {
    let source = "subroutine axpy(n, a, x, y)\n  integer, intent(in) :: n\n  \
                  real, intent(in) :: a\n  real, intent(in) :: x(n)\n  \
                  real, intent(inout) :: y(n)\n  integer :: i\n  \
                  !$omp parallel do shared(x, y)\n  do i = 1, n\n    \
                  y(i) = y(i) + a * x(i)\n  end do\nend subroutine\n";
    let handle = start(ServiceConfig::default());
    let addr = handle.addr();
    let body = |backend: &str, n: u32| {
        format!(
            r#"{{"program":{},"backend":"{backend}","threads":2,"sets":{{"n":{n},"a":0.5}}}}"#,
            Json::Str(source.to_string()).render()
        )
    };

    let exec = |backend: &str, n: u32| {
        let (status, json) = post(addr, "/v1/exec", &body(backend, n));
        assert_eq!(status, 200, "{backend}: {json}");
        assert_eq!(
            json.get("backend").and_then(Json::as_str),
            Some(backend),
            "{json}"
        );
        json
    };
    let sim = exec("sim", 48);
    let native = exec("native", 48);
    let aot = exec("aot", 48);
    let outputs = |j: &Json| j.get("outputs").unwrap().render();
    assert_eq!(outputs(&sim), outputs(&native));
    assert_eq!(outputs(&sim), outputs(&aot));
    assert_eq!(aot.get("aot_fallback").and_then(Json::as_bool), Some(false));

    // Status exports the kernel-registry counters next to the proof
    // cache's: the request above either built fresh or hit a cache.
    let (status, json) = post_get(addr, "/v1/status");
    assert_eq!(status, 200);
    let aot_stats = json.get("aot").expect("aot stats block");
    let total = ["compiles", "disk_hits", "cache_hits"]
        .iter()
        .filter_map(|k| aot_stats.get(k).and_then(Json::as_u64))
        .sum::<u64>();
    assert!(total >= 1, "no aot activity recorded: {json}");

    // Broken toolchain + unseen extent (cold registry and disk cache):
    // the build must actually run, fail, and degrade to bytecode.
    std::env::set_var("FORMAD_AOT_RUSTC", "/nonexistent/formad-test-rustc");
    let dir = std::env::temp_dir().join(format!("formad-serve-aotfail-{}", std::process::id()));
    std::env::set_var("FORMAD_AOT_DIR", &dir);
    let degraded = exec("aot", 49);
    let plain = exec("sim", 49);
    std::env::remove_var("FORMAD_AOT_RUSTC");
    std::env::remove_var("FORMAD_AOT_DIR");
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(
        degraded.get("aot_fallback").and_then(Json::as_bool),
        Some(true),
        "{degraded}"
    );
    let reason = degraded
        .get("aot_fallback_reason")
        .and_then(Json::as_str)
        .expect("fallback reason");
    assert!(reason.contains("failed to spawn"), "{reason}");
    assert_eq!(outputs(&degraded), outputs(&plain));
}

/// GET for the status endpoint (the shared `post` helper always POSTs).
fn post_get(addr: SocketAddr, path: &str) -> (u16, Json) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.write_all(format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
        .expect("write");
    let mut text = String::new();
    s.read_to_string(&mut text).expect("read");
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|t| t.parse().ok())
        .unwrap_or_else(|| panic!("bad response: {text}"));
    let body = text.split("\r\n\r\n").nth(1).unwrap_or("");
    let json = Json::parse(body).unwrap_or_else(|e| panic!("bad JSON ({e}): {body}"));
    (status, json)
}

// ---- status counter consistency ----

/// Pull one named counter out of a `/v1/status` snapshot.
fn counter(j: &Json, block: &str, key: &str) -> u64 {
    j.get(block)
        .and_then(|b| b.get(key))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("missing {block}.{key} in {j}"))
}

/// `[analyze, exec, status, ok_200, client_4xx, rejected_429]`.
fn counter_snapshot(j: &Json) -> [u64; 6] {
    [
        counter(j, "requests", "analyze"),
        counter(j, "requests", "exec"),
        counter(j, "requests", "status"),
        counter(j, "responses", "ok_200"),
        counter(j, "responses", "client_4xx"),
        counter(j, "responses", "rejected_429"),
    ]
}

/// Under concurrent mixed traffic (valid and malformed analyze/exec
/// requests racing a status poller), every `/v1/status` counter is
/// monotone non-decreasing, requests are never outnumbered by finished
/// responses, and at quiescence the books balance exactly: each request
/// class matches what the clients sent, and completed responses equal
/// handled requests minus the snapshot's own in-flight status GET.
#[test]
fn status_counters_are_monotone_and_sum_consistently() {
    use std::sync::atomic::{AtomicBool, Ordering};

    let source = "subroutine axpy(n, a, x, y)\n  integer, intent(in) :: n\n  \
                  real, intent(in) :: a\n  real, intent(in) :: x(n)\n  \
                  real, intent(inout) :: y(n)\n  integer :: i\n  \
                  !$omp parallel do shared(x, y)\n  do i = 1, n\n    \
                  y(i) = y(i) + a * x(i)\n  end do\nend subroutine\n";
    let handle = start(ServiceConfig::default());
    let addr = handle.addr();

    const CLIENTS: usize = 3;
    const ROUNDS: usize = 4;
    let analyze_body = prove_body(source, &["x"], &["y"], "");
    let exec_body = format!(
        r#"{{"program":{},"backend":"sim","sets":{{"n":8,"a":0.5}}}}"#,
        Json::Str(source.to_string()).render()
    );

    let done = AtomicBool::new(false);
    let mut snapshots: Vec<[u64; 6]> = Vec::new();
    let mut polls = 0u64;
    std::thread::scope(|scope| {
        for _ in 0..CLIENTS {
            scope.spawn(|| {
                for _ in 0..ROUNDS {
                    // Two well-formed requests and two that must 4xx.
                    let (s, _) = post(addr, "/v1/analyze", &analyze_body);
                    assert_eq!(s, 200);
                    let (s, _) = post(addr, "/v1/exec", &exec_body);
                    assert!(s == 200 || s == 429, "exec got {s}");
                    let (s, _) = post(addr, "/v1/analyze", "{");
                    assert_eq!(s, 400);
                    let (s, _) = post(addr, "/v1/exec", r#"{"program":7}"#);
                    assert_eq!(s, 400);
                }
            });
        }
        // Poll /v1/status concurrently until every client finished.
        while !done.load(Ordering::Acquire) {
            let (s, json) = post_get(addr, "/v1/status");
            assert_eq!(s, 200);
            snapshots.push(counter_snapshot(&json));
            polls += 1;
            // `scope` joins the clients when the closure returns, so flip
            // `done` once each client has observably sent everything.
            let analyze_seen = snapshots.last().unwrap()[0];
            if analyze_seen >= (CLIENTS * ROUNDS * 2) as u64 {
                done.store(true, Ordering::Release);
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    });

    // One more snapshot with the service quiescent.
    let (s, json) = post_get(addr, "/v1/status");
    assert_eq!(s, 200);
    snapshots.push(counter_snapshot(&json));
    polls += 1;

    // Monotone: no counter ever decreases between successive snapshots.
    for pair in snapshots.windows(2) {
        for k in 0..6 {
            assert!(
                pair[0][k] <= pair[1][k],
                "counter {k} went backwards: {:?} -> {:?}",
                pair[0],
                pair[1]
            );
        }
    }
    // In-flight bound: a request bumps its request counter before its
    // response counter, so finished responses never outnumber requests.
    for snap in &snapshots {
        let requests = snap[0] + snap[1] + snap[2];
        let responses = snap[3] + snap[4] + snap[5];
        assert!(
            responses <= requests,
            "responses {responses} > requests {requests} in {snap:?}"
        );
    }
    // Quiescent books: every client request is accounted for, and the
    // only request without a finished response is the final status GET
    // itself (its ok_200 lands after the snapshot renders).
    let last = snapshots.last().unwrap();
    assert_eq!(last[0], (CLIENTS * ROUNDS * 2) as u64, "analyze count");
    assert_eq!(last[1], (CLIENTS * ROUNDS * 2) as u64, "exec count");
    assert_eq!(last[2], polls, "status count");
    assert_eq!(last[4], (CLIENTS * ROUNDS * 2) as u64, "4xx count");
    let requests = last[0] + last[1] + last[2];
    let responses = last[3] + last[4] + last[5];
    assert_eq!(
        responses + 1,
        requests,
        "at quiescence only the in-flight status GET is unaccounted: {last:?}"
    );
}
