//! Bounded admission with a load-shedding ladder.
//!
//! The service runs at most `workers` requests concurrently and lets at
//! most `queue` more wait. The decision for an arriving request depends
//! on the congestion it observes and on whether the request is
//! *degradable* (analysis verbs are — the always-safe atomic discipline
//! is a correct answer at any load; `exec` is not — there is no cheaper
//! correct execution):
//!
//! | congestion            | degradable            | non-degradable     |
//! |-----------------------|-----------------------|--------------------|
//! | free slot soon        | run, full budget      | run, full budget   |
//! | queue < half          | run, reduced budget   | run, full budget   |
//! | queue ≥ half          | instant atomic answer | wait (full budget) |
//! | queue full            | instant atomic answer | 429 + retry-after  |
//!
//! Degradable work therefore *never* waits behind a deep queue and never
//! sees a 429: under overload the answer gets cheaper, not later — HTTP
//! 200 with `degraded: true` is the worst case. Only `exec` can be asked
//! to come back later, and only when the queue is genuinely full.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

/// How much of the prover the admitted request may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedLevel {
    /// No congestion: full budgets and retries.
    Full,
    /// Moderate congestion: shrunken prover budgets, no escalation
    /// retries, capped per-query timeout.
    Reduced,
}

impl ShedLevel {
    pub fn label(&self) -> &'static str {
        match self {
            ShedLevel::Full => "full",
            ShedLevel::Reduced => "reduced",
        }
    }
}

/// Outcome of [`Admission::admit`].
#[derive(Debug)]
pub enum Admit<'a> {
    /// Run now; drop the permit when done.
    Run(Permit<'a>),
    /// Degradable request under saturation: answer immediately with the
    /// always-safe fallback instead of queueing.
    Shed,
    /// Non-degradable request and the queue is full.
    Reject {
        /// Client hint: when a slot is plausibly free (milliseconds).
        retry_after_ms: u64,
    },
}

/// An occupied run slot; releases (and wakes one waiter) on drop.
#[derive(Debug)]
pub struct Permit<'a> {
    adm: &'a Admission,
    /// The budget tier the ladder assigned at arrival.
    pub level: ShedLevel,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut st = self.adm.state.lock().unwrap_or_else(|e| e.into_inner());
        st.running -= 1;
        drop(st);
        self.adm.cv.notify_one();
    }
}

#[derive(Debug, Default)]
struct State {
    running: usize,
    queued: usize,
}

/// The admission gate plus its observability counters.
#[derive(Debug)]
pub struct Admission {
    workers: usize,
    queue: usize,
    state: Mutex<State>,
    cv: Condvar,
    admitted_full: AtomicU64,
    admitted_reduced: AtomicU64,
    shed_fallback: AtomicU64,
    rejected: AtomicU64,
}

impl Admission {
    /// Gate with `workers` concurrent slots and a queue of `queue`.
    pub fn new(workers: usize, queue: usize) -> Admission {
        Admission {
            workers: workers.max(1),
            queue,
            state: Mutex::new(State::default()),
            cv: Condvar::new(),
            admitted_full: AtomicU64::new(0),
            admitted_reduced: AtomicU64::new(0),
            shed_fallback: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    /// Admit, shed, or reject one request per the ladder above. Blocks
    /// only while a queue slot waits for a worker.
    pub fn admit(&self, degradable: bool) -> Admit<'_> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let depth = st.running + st.queued;
        let level = if depth < self.workers {
            ShedLevel::Full
        } else if degradable {
            // Ladder rungs for degradable work: reduce, then fall back.
            if depth < self.workers + self.queue.div_ceil(2) {
                ShedLevel::Reduced
            } else {
                drop(st);
                self.shed_fallback.fetch_add(1, Ordering::Relaxed);
                return Admit::Shed;
            }
        } else if depth < self.workers + self.queue {
            ShedLevel::Full
        } else {
            drop(st);
            self.rejected.fetch_add(1, Ordering::Relaxed);
            // Rough service-time guess; clients treat it as a hint, not
            // a promise.
            return Admit::Reject {
                retry_after_ms: (25 * (depth as u64 + 1)).min(2_000),
            };
        };
        st.queued += 1;
        while st.running >= self.workers {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st.queued -= 1;
        st.running += 1;
        drop(st);
        match level {
            ShedLevel::Full => self.admitted_full.fetch_add(1, Ordering::Relaxed),
            ShedLevel::Reduced => self.admitted_reduced.fetch_add(1, Ordering::Relaxed),
        };
        Admit::Run(Permit { adm: self, level })
    }

    pub fn workers(&self) -> usize {
        self.workers
    }

    pub fn capacity(&self) -> usize {
        self.queue
    }

    /// Current `(running, queued)` occupancy.
    pub fn occupancy(&self) -> (usize, usize) {
        let st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        (st.running, st.queued)
    }

    pub fn admitted_full(&self) -> u64 {
        self.admitted_full.load(Ordering::Relaxed)
    }

    pub fn admitted_reduced(&self) -> u64 {
        self.admitted_reduced.load(Ordering::Relaxed)
    }

    pub fn shed_fallback(&self) -> u64 {
        self.shed_fallback.load(Ordering::Relaxed)
    }

    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn uncontended_requests_run_at_full_budget() {
        let adm = Admission::new(2, 4);
        let a = adm.admit(true);
        let b = adm.admit(false);
        match (&a, &b) {
            (Admit::Run(pa), Admit::Run(pb)) => {
                assert_eq!(pa.level, ShedLevel::Full);
                assert_eq!(pb.level, ShedLevel::Full);
            }
            _ => panic!("expected two running permits"),
        }
        assert_eq!(adm.occupancy(), (2, 0));
        drop(a);
        assert_eq!(adm.occupancy(), (1, 0));
    }

    #[test]
    fn degradable_work_sheds_instead_of_queueing_deep() {
        let adm = Admission::new(1, 2);
        let _held = adm.admit(true); // occupies the only worker
                                     // depth 1 → within workers+ceil(queue/2)=2 → queued Reduced…
                                     // but that would block; test the shed rung directly by filling
                                     // the queue with non-degradable waiters.
        let adm = Arc::new(Admission::new(1, 0));
        let held = match adm.admit(true) {
            Admit::Run(p) => p,
            _ => panic!("first must run"),
        };
        // queue=0: any further degradable request sheds immediately…
        assert!(matches!(adm.admit(true), Admit::Shed));
        assert_eq!(adm.shed_fallback(), 1);
        // …and a non-degradable one is rejected with a hint.
        match adm.admit(false) {
            Admit::Reject { retry_after_ms } => assert!(retry_after_ms > 0),
            other => panic!("expected reject, got {other:?}"),
        }
        assert_eq!(adm.rejected(), 1);
        drop(held);
        assert!(matches!(adm.admit(false), Admit::Run(_)));
    }

    #[test]
    fn queued_requests_run_when_a_slot_frees() {
        let adm = Arc::new(Admission::new(1, 4));
        let held = match adm.admit(false) {
            Admit::Run(p) => p,
            _ => panic!("first must run"),
        };
        let adm2 = Arc::clone(&adm);
        let waiter = std::thread::spawn(move || match adm2.admit(false) {
            Admit::Run(p) => {
                let level = p.level;
                drop(p);
                level
            }
            other => panic!("expected queued run, got {other:?}"),
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert_eq!(adm.occupancy(), (1, 1));
        drop(held);
        assert_eq!(waiter.join().unwrap(), ShedLevel::Full);
        assert_eq!(adm.occupancy(), (0, 0));
    }
}
