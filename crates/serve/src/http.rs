//! A deliberately small HTTP/1.1 server-side codec: parse one request
//! (request line, headers, `Content-Length` body), write one response,
//! close. The service speaks JSON over a local socket to cooperating
//! clients; connection reuse, chunked bodies, and the rest of HTTP are
//! out of scope, and every connection is `Connection: close`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Largest accepted request body. Programs are a few KB; this bound only
/// exists so a misbehaving client cannot balloon the daemon's memory.
pub const MAX_BODY: usize = 4 << 20;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub body: String,
}

/// Read one request off the stream. `Ok(None)` means the peer closed
/// without sending anything; `Err` is a malformed or oversized request
/// (the connection handler answers 400 and closes).
pub fn read_request(stream: &mut TcpStream) -> Result<Option<Request>, String> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) => return Err(format!("read request line: {e}")),
    }
    let mut parts = line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m.to_string(), p.to_string()),
        _ => return Err(format!("malformed request line `{}`", line.trim_end())),
    };
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        match reader.read_line(&mut header) {
            Ok(0) => return Err("connection closed mid-headers".into()),
            Ok(_) => {}
            Err(e) => return Err(format!("read header: {e}")),
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse::<usize>()
                    .map_err(|_| format!("bad content-length `{}`", value.trim()))?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(format!("body of {content_length} bytes exceeds limit"));
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("read body: {e}"))?;
    let body = String::from_utf8(body).map_err(|_| "body is not utf-8".to_string())?;
    Ok(Some(Request { method, path, body }))
}

/// A response about to be written. `extra` carries endpoint-specific
/// headers (e.g. `Retry-After`).
#[derive(Debug)]
pub struct Response {
    pub status: u16,
    pub body: String,
    pub extra: Vec<(String, String)>,
}

impl Response {
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            body,
            extra: Vec::new(),
        }
    }

    pub fn with_header(mut self, name: &str, value: String) -> Response {
        self.extra.push((name.to_string(), value));
        self
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        429 => "Too Many Requests",
        // The service never produces 5xx by design; this arm exists only
        // so the codec itself is total.
        _ => "Unknown",
    }
}

/// Write `resp` and flush. Errors are returned for logging; the
/// connection is closed either way.
pub fn write_response(stream: &mut TcpStream, resp: &Response) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n",
        resp.status,
        reason(resp.status),
        resp.body.len(),
    );
    for (name, value) in &resp.extra {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(resp.body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn parses_a_request_and_writes_a_response() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(
                b"POST /v1/analyze HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\n{\"a\":1}",
            )
            .unwrap();
            let mut text = String::new();
            s.read_to_string(&mut text).unwrap();
            text
        });
        let (mut conn, _) = listener.accept().unwrap();
        let req = read_request(&mut conn).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/analyze");
        assert_eq!(req.body, "{\"a\":1}");
        write_response(&mut conn, &Response::json(200, "{\"ok\":true}".into())).unwrap();
        drop(conn);
        let text = client.join().unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.ends_with("{\"ok\":true}"), "{text}");
    }

    #[test]
    fn oversized_bodies_are_rejected_up_front() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(
                format!(
                    "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                    MAX_BODY + 1
                )
                .as_bytes(),
            )
            .unwrap();
            s
        });
        let (mut conn, _) = listener.accept().unwrap();
        let err = read_request(&mut conn).unwrap_err();
        assert!(err.contains("exceeds limit"), "{err}");
        drop(client.join().unwrap());
    }
}
