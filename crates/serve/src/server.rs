//! The accept loop around [`Service`]: one thread per connection, a
//! nonblocking listener polled every ~10ms so shutdown signals (SIGINT,
//! `/v1/shutdown`, or an in-process [`ServerHandle::stop`]) are noticed
//! promptly, and a graceful drain on exit — in-flight connections finish,
//! then the shared runtime worker pool is parked.

use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::http::{read_request, write_response, Response};
use crate::json::obj;
use crate::service::{Service, ServiceConfig};

/// Set by the SIGINT handler; checked by every accept loop.
static INTERRUPTED: AtomicBool = AtomicBool::new(false);

/// Install a SIGINT handler that requests a graceful drain instead of
/// killing the process mid-region. Idempotent; no-op off Unix.
pub fn install_sigint_handler() {
    #[cfg(unix)]
    {
        // The libc `signal` symbol is already linked into every Rust
        // binary; declaring it avoids a dependency. The handler only
        // stores to an atomic, which is async-signal-safe.
        unsafe extern "C" fn on_sigint(_sig: i32) {
            INTERRUPTED.store(true, Ordering::Release);
        }
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        unsafe {
            signal(SIGINT, on_sigint as *const () as usize);
        }
    }
}

/// True once SIGINT was received (test hooks may also set this).
pub fn interrupted() -> bool {
    INTERRUPTED.load(Ordering::Acquire)
}

/// A running server: the bound address, the shared service, and the
/// accept thread.
pub struct ServerHandle {
    addr: SocketAddr,
    service: Arc<Service>,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address actually bound (resolves `:0` requests).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Ask the accept loop to drain and exit.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
    }

    /// Wait for the accept loop (and all in-flight connections) to
    /// finish. The runtime worker pool is parked before this returns.
    pub fn join(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }

    /// `stop` + `join`.
    pub fn shutdown(&mut self) {
        self.stop();
        self.join();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Bind `addr` and start serving on a background thread.
pub fn serve(addr: &str, cfg: ServiceConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let bound = listener.local_addr()?;
    let service = Arc::new(Service::new(cfg));
    let stop = Arc::new(AtomicBool::new(false));
    let accept = {
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name("serve-accept".into())
            .spawn(move || accept_loop(listener, service, stop))?
    };
    Ok(ServerHandle {
        addr: bound,
        service,
        stop,
        accept: Some(accept),
    })
}

fn accept_loop(listener: TcpListener, service: Arc<Service>, stop: Arc<AtomicBool>) {
    let active = Arc::new(AtomicUsize::new(0));
    loop {
        if stop.load(Ordering::Acquire) || service.shutdown_requested() || interrupted() {
            break;
        }
        match listener.accept() {
            Ok((conn, _)) => {
                let service = Arc::clone(&service);
                let conn_active = Arc::clone(&active);
                active.fetch_add(1, Ordering::AcqRel);
                let spawned =
                    std::thread::Builder::new()
                        .name("serve-conn".into())
                        .spawn(move || {
                            handle_connection(conn, &service);
                            conn_active.fetch_sub(1, Ordering::AcqRel);
                        });
                if spawned.is_err() {
                    // Could not spawn (resource exhaustion): undo the
                    // count; the connection drops, which the client sees
                    // as a retryable network error, not a 5xx.
                    active.fetch_sub(1, Ordering::AcqRel);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    // Graceful drain: let in-flight requests answer, then park the
    // shared runtime pool so no worker is left mid-region.
    while active.load(Ordering::Acquire) > 0 {
        std::thread::sleep(Duration::from_millis(5));
    }
    formad_runtime::drain_global_pool();
}

fn handle_connection(mut conn: TcpStream, service: &Service) {
    // The listener is nonblocking and accepted sockets may inherit that;
    // connection threads want blocking reads with a bounded patience.
    let _ = conn.set_nonblocking(false);
    let _ = conn.set_read_timeout(Some(Duration::from_secs(10)));
    let resp = match read_request(&mut conn) {
        Ok(Some(req)) => {
            // Last-net isolation: `Service::handle` already confines
            // request panics, but a bug in routing itself must not kill
            // the connection thread pool invariantly.
            catch_unwind(AssertUnwindSafe(|| service.handle(&req))).unwrap_or_else(|_| {
                Response::json(
                    400,
                    obj(vec![
                        ("ok", false.into()),
                        ("kind", "panic".into()),
                        ("error", "request handling panicked (isolated)".into()),
                    ])
                    .render(),
                )
            })
        }
        Ok(None) => return,
        Err(e) => Response::json(
            400,
            obj(vec![
                ("ok", false.into()),
                ("kind", "http".into()),
                ("error", e.into()),
            ])
            .render(),
        ),
    };
    let _ = write_response(&mut conn, &resp);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(
            format!(
                "POST {path} HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .unwrap();
        let mut text = String::new();
        s.read_to_string(&mut text).unwrap();
        let status: u16 = text.split_whitespace().nth(1).unwrap().parse().unwrap();
        let body = text.split("\r\n\r\n").nth(1).unwrap_or("").to_string();
        (status, body)
    }

    #[test]
    fn serves_and_shuts_down_gracefully() {
        let mut h = serve("127.0.0.1:0", ServiceConfig::default()).unwrap();
        let (status, body) = post(h.addr(), "/v1/nope", "{}");
        assert_eq!(status, 404);
        assert!(body.contains("unknown endpoint"), "{body}");
        // Malformed HTTP is answered 400 and the daemon stays up.
        let mut s = TcpStream::connect(h.addr()).unwrap();
        s.write_all(b"garbage\r\n\r\n").unwrap();
        let mut text = String::new();
        s.read_to_string(&mut text).unwrap();
        assert!(text.starts_with("HTTP/1.1 400"), "{text}");
        // `/v1/shutdown` drains the loop; join returns.
        let (status, body) = post(h.addr(), "/v1/shutdown", "{}");
        assert_eq!(status, 200);
        assert!(body.contains("draining"), "{body}");
        h.join();
    }
}
