//! CI smoke client for the differentiation service.
//!
//! Starts an in-process daemon on an ephemeral port, fires a burst of
//! concurrent mixed requests — analyses, proofs, executions, and one
//! deliberately poisoned request that panics inside the pipeline — then
//! asserts the robustness contract: **zero 5xx responses**, the poisoned
//! request degraded (HTTP 200, `degraded: true`) instead of erroring,
//! and the daemon still answers a clean request afterwards. Exits
//! nonzero on any violation; `--out FILE` writes the final `/status`
//! snapshot for artifact upload.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

use formad_serve::{serve, Json, ServiceConfig};

const AXPY_F: &str = r#"
subroutine axpy(n, a, x, y)
  integer, intent(in) :: n
  real, intent(in) :: a
  real, intent(in) :: x(n)
  real, intent(inout) :: y(n)
  integer :: i
  !$omp parallel do shared(x, y)
  do i = 1, n
    y(i) = y(i) + a * x(i)
  end do
end subroutine
"#;

const FIG2_F: &str = r#"
subroutine fig2(n, x, y, c)
  integer, intent(in) :: n
  real, intent(in) :: x(n + 7)
  real, intent(inout) :: y(n)
  integer, intent(in) :: c(n)
  integer :: i
  !$omp parallel do shared(x, y, c)
  do i = 1, n
    y(c(i)) = x(c(i) + 7)
  end do
end subroutine
"#;

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> Result<(u16, Json), String> {
    let mut s = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    s.write_all(
        format!(
            "{method} {path} HTTP/1.1\r\nHost: smoke\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
    .map_err(|e| format!("write: {e}"))?;
    let mut text = String::new();
    s.read_to_string(&mut text)
        .map_err(|e| format!("read: {e}"))?;
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line in `{text}`"))?;
    let body = text.split("\r\n\r\n").nth(1).unwrap_or("");
    let json = Json::parse(body).map_err(|e| format!("bad response JSON: {e} in `{body}`"))?;
    Ok((status, json))
}

fn analysis_body(source: &str, extra: &str) -> String {
    let program = Json::Str(source.to_string()).render();
    format!(r#"{{"program":{program},"wrt":"x","of":"y"{extra}}}"#)
}

fn main() {
    let mut out_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next(),
            other => {
                eprintln!("serve-smoke: unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }

    let mut handle = match serve("127.0.0.1:0", ServiceConfig::default()) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("serve-smoke: bind failed: {e}");
            std::process::exit(2);
        }
    };
    let addr = handle.addr();
    println!("serve-smoke: daemon on {addr}");

    // The burst: proofs and analyses of both Figure-2 shapes, native and
    // simulated executions, a malformed request, and one poisoned
    // request that panics inside the pipeline.
    let mut jobs: Vec<(String, String, &'static str)> = Vec::new();
    for i in 0..4 {
        jobs.push((
            "/v1/prove".to_string(),
            analysis_body(FIG2_F, ""),
            if i == 0 {
                "prove-fig2"
            } else {
                "prove-fig2-warm"
            },
        ));
        jobs.push((
            "/v1/analyze".to_string(),
            analysis_body(AXPY_F, ""),
            "analyze-axpy",
        ));
    }
    let program = Json::Str(AXPY_F.to_string()).render();
    jobs.push((
        "/v1/exec".to_string(),
        format!(
            r#"{{"program":{program},"sets":{{"n":64,"a":2.0}},"threads":4,"backend":"native"}}"#
        ),
        "exec-native",
    ));
    jobs.push((
        "/v1/exec".to_string(),
        format!(r#"{{"program":{program},"sets":{{"n":64,"a":2.0}},"threads":2}}"#),
        "exec-sim",
    ));
    jobs.push((
        "/v1/prove".to_string(),
        analysis_body(FIG2_F, r#","poison":true"#),
        "poisoned",
    ));
    jobs.push((
        "/v1/analyze".to_string(),
        "{not json".to_string(),
        "malformed",
    ));

    let threads: Vec<_> = jobs
        .into_iter()
        .map(|(path, body, tag)| {
            std::thread::spawn(move || (tag, request(addr, "POST", &path, &body)))
        })
        .collect();

    let mut failures = 0u32;
    let mut poisoned_degraded = false;
    for t in threads {
        let (tag, result) = t.join().expect("client thread");
        match result {
            Err(e) => {
                eprintln!("FAIL {tag}: transport error: {e}");
                failures += 1;
            }
            Ok((status, json)) => {
                if status >= 500 {
                    eprintln!("FAIL {tag}: got 5xx ({status}): {json}");
                    failures += 1;
                }
                match tag {
                    "malformed" => {
                        if status != 400 {
                            eprintln!("FAIL {tag}: expected 400, got {status}");
                            failures += 1;
                        }
                    }
                    "poisoned" => {
                        let degraded = json
                            .get("degraded")
                            .and_then(Json::as_bool)
                            .unwrap_or(false);
                        if status == 200 && degraded {
                            poisoned_degraded = true;
                        } else {
                            eprintln!("FAIL {tag}: expected 200 degraded, got {status}: {json}");
                            failures += 1;
                        }
                    }
                    _ => {
                        // 200 (possibly degraded under load) or a 429
                        // with a retry hint are both within contract.
                        let ok = status == 200
                            || (status == 429
                                && json.get("retry_after_ms").and_then(Json::as_u64).is_some());
                        if !ok {
                            eprintln!("FAIL {tag}: unexpected {status}: {json}");
                            failures += 1;
                        }
                    }
                }
                println!("ok   {tag}: {status}");
            }
        }
    }
    if !poisoned_degraded {
        eprintln!("FAIL: poisoned request did not produce a degraded 200");
        failures += 1;
    }

    // The daemon must still serve a clean request after the storm.
    match request(addr, "POST", "/v1/prove", &analysis_body(FIG2_F, "")) {
        Ok((200, json)) => {
            let report = json.get("report").and_then(Json::as_str).unwrap_or("");
            if !report.contains("fig2") {
                eprintln!("FAIL post-storm: report missing program name: {json}");
                failures += 1;
            }
        }
        other => {
            eprintln!("FAIL post-storm: {other:?}");
            failures += 1;
        }
    }

    let status = match request(addr, "GET", "/v1/status", "") {
        Ok((200, json)) => json,
        other => {
            eprintln!("FAIL status: {other:?}");
            failures += 1;
            Json::Null
        }
    };
    println!("status: {status}");
    if let Some(path) = out_path {
        if let Err(e) = std::fs::write(&path, format!("{status}\n")) {
            eprintln!("FAIL: write {path}: {e}");
            failures += 1;
        }
    }

    // Graceful shutdown over the wire, then join the accept loop.
    match request(addr, "POST", "/v1/shutdown", "{}") {
        Ok((200, _)) => {}
        other => {
            eprintln!("FAIL shutdown: {other:?}");
            failures += 1;
        }
    }
    handle.join();

    if failures > 0 {
        eprintln!("serve-smoke: {failures} violation(s)");
        std::process::exit(1);
    }
    println!("serve-smoke: contract held (zero 5xx, poisoned request degraded, clean shutdown)");
}
