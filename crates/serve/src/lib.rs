//! `formad-serve` — the resident differentiation service.
//!
//! One long-lived daemon multiplexes `analyze` / `prove` / `exec`
//! requests (JSON over HTTP on a local socket) onto a single shared
//! engine: one proof cache, one runtime worker pool, one set of
//! aggregate statistics. The robustness contract is
//! *degradation-not-errors*, lifted from the pipeline to the wire:
//!
//! - Requests that the prover cannot serve in time — saturation, an
//!   expired deadline, an isolated panic — are answered HTTP 200 with
//!   the always-safe atomic adjoint and `degraded: true`. The service
//!   never returns a 5xx.
//! - Admission is bounded: a small run/queue gate with a shedding
//!   ladder ([`admission`]) keeps latency flat under load. Only `exec`
//!   (which has no cheaper correct answer) can be told to retry later
//!   (HTTP 429 + `retry_after_ms`).
//! - Each request runs against a private overlay of the shared proof
//!   cache; success absorbs it, failure rolls it back, so a poisoned
//!   request can never corrupt the warm cache.
//!
//! Start one with [`serve`] or via the CLI: `formad serve --addr
//! 127.0.0.1:7878`.

pub mod admission;
pub mod http;
pub mod json;
pub mod server;
pub mod service;

pub use admission::{Admission, Admit, Permit, ShedLevel};
pub use json::Json;
pub use server::{install_sigint_handler, interrupted, serve, ServerHandle};
pub use service::{Service, ServiceConfig};
