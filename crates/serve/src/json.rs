//! Minimal JSON: exactly the subset the service protocol needs, with no
//! external dependency (the build environment is offline). Objects keep
//! insertion order so responses render deterministically.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field by key (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Integral numbers only (rejects fractions and out-of-range).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= 9.007_199_254_740_992e15 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Object fields, empty for non-objects.
    pub fn fields(&self) -> &[(String, Json)] {
        match self {
            Json::Obj(f) => f,
            _ => &[],
        }
    }

    /// Parse a complete JSON document (trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(v)
    }

    /// Render compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        write_value(self, &mut out);
        out
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

/// Convenience constructor for an object literal.
pub fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    Json::Str(s) => s,
                    _ => return Err(format!("object key must be a string at byte {pos}")),
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected `:` at byte {pos}"));
                }
                *pos += 1;
                let val = parse_value(b, pos)?;
                fields.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "bad utf-8".to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number `{text}` at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = Vec::new();
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return String::from_utf8(out).map_err(|_| "bad utf-8 in string".to_string());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push(b'"'),
                    Some(b'\\') => out.push(b'\\'),
                    Some(b'/') => out.push(b'/'),
                    Some(b'b') => out.push(0x08),
                    Some(b'f') => out.push(0x0c),
                    Some(b'n') => out.push(b'\n'),
                    Some(b'r') => out.push(b'\r'),
                    Some(b't') => out.push(b'\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        // BMP only — the protocol is ASCII in practice.
                        let ch = char::from_u32(hex)
                            .ok_or_else(|| format!("bad \\u codepoint at byte {pos}"))?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            _ => {
                out.push(c);
                *pos += 1;
            }
        }
    }
    Err("unterminated string".into())
}

fn write_value(v: &Json, out: &mut String) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
                out.push_str(&format!("{}", *n as i64));
            } else {
                out.push_str(&format!("{n}"));
            }
        }
        Json::Str(s) => write_string(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Json::Obj(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_protocol_subset() {
        let doc = r#"{"program":"do i = 1, n\n","wrt":["x","y"],"jobs":4,"deadline_ms":250,"degraded":false,"pi":3.25,"none":null}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("wrt").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("jobs").unwrap().as_u64(), Some(4));
        assert_eq!(v.get("degraded").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("pi").unwrap().as_f64(), Some(3.25));
        assert_eq!(v.get("none"), Some(&Json::Null));
        assert_eq!(v.get("program").unwrap().as_str(), Some("do i = 1, n\n"));
        // render → parse is the identity on the value.
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "{\"a\":1}x",
            "\"unterminated",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn escapes_survive_round_trip() {
        let v = Json::Str("line\n\"quoted\"\ttab \\ slash".into());
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
        let u = Json::parse(r#""Aé""#).unwrap();
        assert_eq!(u.as_str(), Some("Aé"));
    }
}
