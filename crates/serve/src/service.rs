//! The resident differentiation service: one shared engine, many
//! requests, degradation-not-errors.
//!
//! Request lifecycle for the analysis verbs (`analyze` / `prove`):
//!
//! 1. Parse JSON and the program — failures are the client's (HTTP 400).
//! 2. Pass the admission gate. Saturation *sheds*: the request is
//!    answered immediately with the always-safe atomic discipline (HTTP
//!    200, `degraded: true`) instead of queueing or erroring.
//! 3. Run the pipeline against a private overlay of the shared proof
//!    cache ([`SharedEngine::differentiate_isolated`]), inside
//!    `catch_unwind`. Success absorbs the overlay; an error or a panic
//!    rolls it back, and a panic (or a pipeline-level deadline expiry)
//!    still answers 200 with the atomic fallback.
//!
//! `exec` has no cheaper correct answer, so it is the only verb that can
//! be told to come back later (HTTP 429 + `retry_after_ms`) and its
//! deadline expiry is an error (HTTP 408), mirroring `formad exec`'s
//! exit 7. The service never returns a 5xx: every response is either the
//! client's fault (4xx) or a correct — possibly degraded — answer.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use formad::{
    full_report, Deadline, FormadAnalysis, FormadErrorKind, FormadOptions, IncMode,
    ParallelTreatment, SharedEngine,
};
use formad_ir::{parse_any, program_to_clike, program_to_string, Program};
use formad_machine::{bind_params, compile, lower, output_lines, Machine, NativeEngine};
use formad_smt::{ChaosConfig, SolverBudget, SolverStats};

use crate::admission::{Admission, Admit, ShedLevel};
use crate::http::{Request, Response};
use crate::json::{obj, Json};

/// Tunables for one service instance.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Concurrent request slots.
    pub workers: usize,
    /// Admission queue capacity beyond the running slots.
    pub queue: usize,
    /// Deadline applied to requests that don't carry their own.
    pub default_deadline_ms: Option<u64>,
    /// Prover worker threads per request (requests multiplex, so the
    /// default is in-line proving; a request may override with `jobs`).
    pub analysis_jobs: usize,
    /// Upper bound on `exec` logical threads per request.
    pub exec_threads_max: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            queue: 8,
            default_deadline_ms: None,
            analysis_jobs: 1,
            exec_threads_max: 16,
        }
    }
}

#[derive(Debug, Default)]
struct Counters {
    analyze: AtomicU64,
    exec: AtomicU64,
    status: AtomicU64,
    ok_200: AtomicU64,
    client_4xx: AtomicU64,
    rejected_429: AtomicU64,
    degraded: AtomicU64,
    fallbacks: AtomicU64,
    panics_caught: AtomicU64,
}

/// The `Arc`-shared service: engine, admission gate, exec engines, and
/// the counters `/status` exports.
pub struct Service {
    cfg: ServiceConfig,
    engine: SharedEngine,
    admission: Admission,
    started: Instant,
    counters: Counters,
    /// Aggregate prover statistics across every completed analysis.
    stats: Mutex<SolverStats>,
    /// Persistent native exec engines, one per logical thread count, so
    /// repeated `exec` requests reuse parked worker pools instead of
    /// spawning threads per request.
    native: Mutex<HashMap<usize, NativeEngine>>,
    shutdown: AtomicBool,
}

impl Service {
    pub fn new(cfg: ServiceConfig) -> Service {
        Service {
            admission: Admission::new(cfg.workers, cfg.queue),
            cfg,
            engine: SharedEngine::new(),
            started: Instant::now(),
            counters: Counters::default(),
            stats: Mutex::new(SolverStats::default()),
            native: Mutex::new(HashMap::new()),
            shutdown: AtomicBool::new(false),
        }
    }

    /// The shared engine (tests reach the cache through this).
    pub fn engine(&self) -> &SharedEngine {
        &self.engine
    }

    /// True once a client POSTed `/v1/shutdown`.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Route one request. Total: never panics out (the caller still
    /// wraps in `catch_unwind` as a last net) and never produces a 5xx.
    pub fn handle(&self, req: &Request) -> Response {
        let resp = match (req.method.as_str(), req.path.as_str()) {
            ("POST", "/v1/analyze") | ("POST", "/v1/prove") => {
                self.counters.analyze.fetch_add(1, Ordering::Relaxed);
                // `prove` keeps the CLI alias: same verb, adjoint included.
                self.analysis_request(&req.body, req.path.ends_with("prove"))
            }
            ("POST", "/v1/exec") => {
                self.counters.exec.fetch_add(1, Ordering::Relaxed);
                self.exec_request(&req.body)
            }
            ("GET", "/v1/status") => {
                self.counters.status.fetch_add(1, Ordering::Relaxed);
                Response::json(200, self.status_json().render())
            }
            ("POST", "/v1/shutdown") => {
                self.shutdown.store(true, Ordering::Release);
                Response::json(
                    200,
                    obj(vec![("ok", true.into()), ("draining", true.into())]).render(),
                )
            }
            (_, "/v1/analyze" | "/v1/prove" | "/v1/exec" | "/v1/shutdown") => {
                client_error(405, "method", "use POST")
            }
            (_, "/v1/status") => client_error(405, "method", "use GET"),
            _ => client_error(404, "not-found", "unknown endpoint"),
        };
        match resp.status {
            200 => self.counters.ok_200.fetch_add(1, Ordering::Relaxed),
            429 => self.counters.rejected_429.fetch_add(1, Ordering::Relaxed),
            _ => self.counters.client_4xx.fetch_add(1, Ordering::Relaxed),
        };
        resp
    }

    // ---- analyze / prove ----

    fn analysis_request(&self, body: &str, want_adjoint: bool) -> Response {
        let req = match Json::parse(body) {
            Ok(v) => v,
            Err(e) => return client_error(400, "parse", &format!("bad JSON: {e}")),
        };
        let Some(source) = req.get("program").and_then(Json::as_str) else {
            return client_error(400, "parse", "`program` (string) is required");
        };
        let primal = match parse_any(source) {
            Ok(p) => p,
            Err(e) => return client_error(400, "parse", &e.to_string()),
        };
        let wrt = string_list(&req, "wrt");
        let of = string_list(&req, "of");
        if wrt.is_empty() || of.is_empty() {
            return client_error(400, "validate", "`wrt` and `of` are required");
        }
        let emit = req.get("emit").and_then(Json::as_str).unwrap_or("fortran");
        if !matches!(emit, "fortran" | "c") {
            return client_error(400, "validate", &format!("unknown emit dialect `{emit}`"));
        }
        let want_adjoint = req
            .get("adjoint")
            .and_then(Json::as_bool)
            .unwrap_or(want_adjoint);

        let mut opts = base_options(&wrt, &of);
        opts.region.jobs = req
            .get("jobs")
            .and_then(Json::as_u64)
            .map(|j| j as usize)
            .unwrap_or(self.cfg.analysis_jobs);
        let deadline_ms = req
            .get("deadline_ms")
            .and_then(Json::as_u64)
            .or(self.cfg.default_deadline_ms);
        opts.region.deadline = deadline_ms.map(Deadline::in_ms);
        if let Some(ms) = req.get("prover_timeout_ms").and_then(Json::as_u64) {
            opts.region.prover_timeout = Some(Duration::from_millis(ms));
        }
        if let Some(chaos) = req.get("chaos") {
            match chaos_config(chaos) {
                Ok(cfg) => opts.region.chaos = Some(cfg),
                Err(e) => return client_error(400, "validate", &e),
            }
        }
        let poisoned = req.get("poison").and_then(Json::as_bool).unwrap_or(false);

        let permit = match self.admission.admit(true) {
            Admit::Run(p) => p,
            Admit::Shed => {
                return self.fallback_response(
                    &primal,
                    &opts,
                    want_adjoint,
                    emit,
                    "load shed: admission queue saturated",
                    "fallback",
                );
            }
            // Unreachable for degradable work; keep the arm total.
            Admit::Reject { retry_after_ms } => return rejected(retry_after_ms),
        };
        let level = permit.level;
        if level == ShedLevel::Reduced {
            shrink_budgets(&mut opts);
        }

        // Per-request panic isolation: the pipeline runs against a
        // private cache overlay (absorbed only on success), and a panic
        // — injected chaos or a genuine bug — degrades the answer
        // instead of killing the daemon.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if poisoned {
                panic!("poisoned request (test hook)");
            }
            if want_adjoint {
                self.engine
                    .differentiate_isolated(&primal, &opts)
                    .map(|r| (r.analysis, Some(render(&r.adjoint, emit))))
            } else {
                self.engine
                    .analyze_isolated(&primal, &opts)
                    .map(|a| (a, None))
            }
        }));
        drop(permit);

        match outcome {
            Ok(Ok((analysis, adjoint))) => {
                if analysis.degraded() {
                    self.counters.degraded.fetch_add(1, Ordering::Relaxed);
                }
                if let Ok(mut agg) = self.stats.lock() {
                    agg.merge(&analysis.stats);
                }
                self.analysis_response(&primal, &analysis, adjoint, level)
            }
            Ok(Err(e)) => match e.kind {
                // The client's program or variable sets are at fault.
                FormadErrorKind::Parse | FormadErrorKind::Validate | FormadErrorKind::Ad => {
                    client_error(400, e.kind.label(), &e.message)
                }
                // Deadline expiry and escaped prover faults degrade:
                // same contract as the pipeline's internal ladder.
                FormadErrorKind::Deadline | FormadErrorKind::ProverPanic => self.fallback_response(
                    &primal,
                    &opts,
                    want_adjoint,
                    emit,
                    &e.message,
                    level.label(),
                ),
            },
            Err(_) => {
                self.counters.panics_caught.fetch_add(1, Ordering::Relaxed);
                self.fallback_response(
                    &primal,
                    &opts,
                    want_adjoint,
                    emit,
                    "panic isolated: request pipeline unwound (cache overlay rolled back)",
                    level.label(),
                )
            }
        }
    }

    fn analysis_response(
        &self,
        primal: &Program,
        analysis: &FormadAnalysis,
        adjoint: Option<String>,
        level: ShedLevel,
    ) -> Response {
        let mut fields = vec![
            ("ok", true.into()),
            ("degraded", analysis.degraded().into()),
            ("fallback", false.into()),
            ("shed_level", level.label().into()),
            ("all_safe", analysis.all_safe().into()),
            ("recovered_panics", analysis.recovered_panics().into()),
            ("report", full_report(&primal.name, analysis).into()),
        ];
        if let Some(adj) = adjoint {
            fields.push(("adjoint", adj.into()));
        }
        fields.push(("stats", stats_json(&analysis.stats)));
        Response::json(200, obj(fields).render())
    }

    /// The always-safe answer: every adjoint increment guarded with
    /// atomics, no prover involved. Used when the ladder sheds, when a
    /// request deadline expires, and when a panic is isolated — HTTP 200
    /// with `degraded: true`, never an error.
    fn fallback_response(
        &self,
        primal: &Program,
        opts: &FormadOptions,
        want_adjoint: bool,
        emit: &str,
        reason: &str,
        shed_level: &str,
    ) -> Response {
        self.counters.fallbacks.fetch_add(1, Ordering::Relaxed);
        let adjoint = if want_adjoint {
            let built = catch_unwind(AssertUnwindSafe(|| {
                self.engine
                    .adjoint_with(primal, opts, ParallelTreatment::Uniform(IncMode::Atomic))
            }));
            match built {
                Ok(Ok(p)) => Some(render(&p, emit)),
                Ok(Err(e)) => return client_error(400, e.kind.label(), &e.message),
                Err(_) => {
                    self.counters.panics_caught.fetch_add(1, Ordering::Relaxed);
                    return client_error(400, "panic", "fallback adjoint generation panicked");
                }
            }
        } else {
            None
        };
        self.counters.degraded.fetch_add(1, Ordering::Relaxed);
        let report = format!(
            "subroutine {}: degraded response ({reason})\n  \
             every active adjoint array guarded with atomics (always safe)\n",
            primal.name
        );
        let mut fields = vec![
            ("ok", true.into()),
            ("degraded", true.into()),
            ("fallback", true.into()),
            ("shed_level", shed_level.into()),
            ("degrade_reason", reason.into()),
            ("report", report.into()),
        ];
        if let Some(adj) = adjoint {
            fields.push(("adjoint", adj.into()));
        }
        fields.push(("stats", stats_json(&SolverStats::default())));
        Response::json(200, obj(fields).render())
    }

    // ---- exec ----

    fn exec_request(&self, body: &str) -> Response {
        let req = match Json::parse(body) {
            Ok(v) => v,
            Err(e) => return client_error(400, "parse", &format!("bad JSON: {e}")),
        };
        let Some(source) = req.get("program").and_then(Json::as_str) else {
            return client_error(400, "parse", "`program` (string) is required");
        };
        let primal = match parse_any(source) {
            Ok(p) => p,
            Err(e) => return client_error(400, "parse", &e.to_string()),
        };
        let errs = formad_ir::validate(&primal);
        if !errs.is_empty() {
            let joined: Vec<String> = errs.iter().map(|e| e.to_string()).collect();
            return client_error(400, "validate", &joined.join("; "));
        }
        let seed = req.get("seed").and_then(Json::as_u64).unwrap_or(42);
        let threads = req
            .get("threads")
            .and_then(Json::as_u64)
            .map(|t| (t as usize).clamp(1, self.cfg.exec_threads_max))
            .unwrap_or(1);
        let backend = req.get("backend").and_then(Json::as_str).unwrap_or("sim");
        if !matches!(backend, "sim" | "native" | "aot") {
            return client_error(400, "validate", &format!("unknown backend `{backend}`"));
        }
        let deadline = req
            .get("deadline_ms")
            .and_then(Json::as_u64)
            .or(self.cfg.default_deadline_ms)
            .map(Deadline::in_ms);
        let mut sets: Vec<(String, String)> = Vec::new();
        if let Some(v) = req.get("sets") {
            for (k, val) in v.fields() {
                let raw = match val {
                    Json::Str(s) => s.clone(),
                    Json::Num(_) => val.render(),
                    _ => {
                        return client_error(
                            400,
                            "validate",
                            &format!("`sets.{k}` must be a scalar"),
                        )
                    }
                };
                sets.push((k.clone(), raw));
            }
        }
        let mut bind = match bind_params(&primal, &sets, seed) {
            Ok(b) => b,
            Err(e) => return client_error(400, "validate", &e.to_string()),
        };

        // `exec` cannot be degraded, so it is the one verb that may be
        // asked to retry later.
        let permit = match self.admission.admit(false) {
            Admit::Run(p) => p,
            Admit::Reject { retry_after_ms } => return rejected(retry_after_ms),
            Admit::Shed => unreachable!("non-degradable requests are never shed"),
        };
        if let Some(d) = &deadline {
            if d.expired() {
                drop(permit);
                return deadline_response("global deadline expired before execution started");
            }
        }
        // `aot_fallback` carries the degradation note when an AOT kernel
        // build fails and the request lands on the bytecode backend.
        let outcome = catch_unwind(AssertUnwindSafe(|| match backend {
            "native" => self
                .run_native_shared(&primal, &mut bind, threads)
                .map(|_| None),
            "aot" => self.run_aot_shared(&primal, &mut bind, threads),
            _ => formad_machine::run(&primal, &mut bind, &Machine::with_threads(threads))
                .map(|_| None)
                .map_err(|e| e.to_string()),
        }));
        drop(permit);
        let aot_fallback: Option<String> = match outcome {
            Ok(Ok(reason)) => reason,
            Ok(Err(e)) => return client_error(400, "exec", &e),
            Err(_) => {
                self.counters.panics_caught.fetch_add(1, Ordering::Relaxed);
                return client_error(400, "panic", "execution panicked (isolated)");
            }
        };
        if let Some(d) = &deadline {
            if d.expired() {
                return deadline_response("global deadline expired before execution finished");
            }
        }
        let outputs: Vec<Json> = output_lines(&primal, &bind)
            .into_iter()
            .map(Json::from)
            .collect();
        let mut fields = vec![
            ("ok", true.into()),
            ("program", primal.name.as_str().into()),
            ("backend", backend.into()),
            ("threads", threads.into()),
        ];
        if let Some(reason) = &aot_fallback {
            // Degradation, not errors: still 200, results identical to
            // the requested backend, reason spelled out for the client.
            self.counters.fallbacks.fetch_add(1, Ordering::Relaxed);
            fields.push(("aot_fallback", true.into()));
            fields.push(("aot_fallback_reason", reason.as_str().into()));
        } else if backend == "aot" {
            fields.push(("aot_fallback", false.into()));
        }
        fields.push(("outputs", Json::Arr(outputs)));
        Response::json(200, obj(fields).render())
    }

    /// Run on a persistent [`NativeEngine`] (one per logical thread
    /// count), so repeated requests reuse parked worker pools.
    fn run_native_shared(
        &self,
        primal: &Program,
        bind: &mut formad_machine::Bindings,
        threads: usize,
    ) -> Result<(), String> {
        let lp = lower(primal, bind).map_err(|e| e.to_string())?;
        let bc = compile(&lp, primal).map_err(|e| e.to_string())?;
        let mut engines = self.native.lock().unwrap_or_else(|e| e.into_inner());
        let engine = engines
            .entry(threads)
            .or_insert_with(|| NativeEngine::new(threads));
        engine.run(&bc, bind).map_err(|e| e.to_string())
    }

    /// The AOT rung: compile (or fetch from the process registry / disk
    /// cache) a native kernel for the program's parallel regions and run
    /// it on the same persistent engines as the bytecode backend. A
    /// failed build degrades to bytecode — `Ok(Some(reason))` — instead
    /// of erroring, mirroring `formad exec --backend aot`.
    fn run_aot_shared(
        &self,
        primal: &Program,
        bind: &mut formad_machine::Bindings,
        threads: usize,
    ) -> Result<Option<String>, String> {
        let lp = lower(primal, bind).map_err(|e| e.to_string())?;
        let bc = compile(&lp, primal).map_err(|e| e.to_string())?;
        // No parallel regions means nothing to compile ahead of time:
        // run the complete bytecode plan without touching rustc and
        // without a degradation note.
        if bc.regions.is_empty() {
            let mut engines = self.native.lock().unwrap_or_else(|e| e.into_inner());
            let engine = engines
                .entry(threads)
                .or_insert_with(|| NativeEngine::new(threads));
            return engine
                .run(&bc, bind)
                .map(|_| None)
                .map_err(|e| e.to_string());
        }
        let kernel = formad_machine::load_or_compile(&lp, &bc);
        let mut engines = self.native.lock().unwrap_or_else(|e| e.into_inner());
        let engine = engines
            .entry(threads)
            .or_insert_with(|| NativeEngine::new(threads));
        match kernel {
            Ok(k) => engine
                .run_with(&bc, Some(&k), bind)
                .map(|_| None)
                .map_err(|e| e.to_string()),
            Err(e) => engine
                .run(&bc, bind)
                .map(|_| Some(e.to_string()))
                .map_err(|e| e.to_string()),
        }
    }

    // ---- status ----

    fn status_json(&self) -> Json {
        let (running, queued) = self.admission.occupancy();
        let stats = self.stats.lock().map(|s| *s).unwrap_or_default();
        let cache = self.engine.cache();
        let aot = formad_machine::aot::stats();
        obj(vec![
            ("service", "formad-serve".into()),
            (
                "uptime_ms",
                (self.started.elapsed().as_millis() as u64).into(),
            ),
            (
                "queue",
                obj(vec![
                    ("workers", self.admission.workers().into()),
                    ("capacity", self.admission.capacity().into()),
                    ("running", running.into()),
                    ("queued", queued.into()),
                ]),
            ),
            (
                "requests",
                obj(vec![
                    (
                        "analyze",
                        self.counters.analyze.load(Ordering::Relaxed).into(),
                    ),
                    ("exec", self.counters.exec.load(Ordering::Relaxed).into()),
                    (
                        "status",
                        self.counters.status.load(Ordering::Relaxed).into(),
                    ),
                ]),
            ),
            (
                "responses",
                obj(vec![
                    (
                        "ok_200",
                        self.counters.ok_200.load(Ordering::Relaxed).into(),
                    ),
                    (
                        "client_4xx",
                        self.counters.client_4xx.load(Ordering::Relaxed).into(),
                    ),
                    (
                        "rejected_429",
                        self.counters.rejected_429.load(Ordering::Relaxed).into(),
                    ),
                ]),
            ),
            (
                "shed",
                obj(vec![
                    ("admitted_full", self.admission.admitted_full().into()),
                    ("admitted_reduced", self.admission.admitted_reduced().into()),
                    (
                        "fallbacks",
                        self.counters.fallbacks.load(Ordering::Relaxed).into(),
                    ),
                    ("shed_at_admission", self.admission.shed_fallback().into()),
                    ("rejected", self.admission.rejected().into()),
                ]),
            ),
            (
                "degraded_total",
                self.counters.degraded.load(Ordering::Relaxed).into(),
            ),
            (
                "panics_caught",
                self.counters.panics_caught.load(Ordering::Relaxed).into(),
            ),
            (
                "cache",
                obj(vec![
                    ("entries", cache.map(|c| c.len()).unwrap_or(0).into()),
                    ("hits", cache.map(|c| c.hits()).unwrap_or(0).into()),
                    ("misses", cache.map(|c| c.misses()).unwrap_or(0).into()),
                    ("inserts", cache.map(|c| c.inserts()).unwrap_or(0).into()),
                ]),
            ),
            // Exec-side analogue of the proof cache: the process-wide AOT
            // kernel registry backing `exec` requests with `backend: aot`.
            (
                "aot",
                obj(vec![
                    ("compiles", aot.compiles.into()),
                    ("disk_hits", aot.disk_hits.into()),
                    ("cache_hits", aot.cache_hits.into()),
                    ("failures", aot.failures.into()),
                ]),
            ),
            ("solver", stats_json(&stats)),
        ])
    }
}

// ---- helpers ----

fn base_options(wrt: &[String], of: &[String]) -> FormadOptions {
    let wrt: Vec<&str> = wrt.iter().map(|s| s.as_str()).collect();
    let of: Vec<&str> = of.iter().map(|s| s.as_str()).collect();
    FormadOptions::new(&wrt, &of)
}

/// `"x,y"` or `["x","y"]` → list of names.
fn string_list(req: &Json, key: &str) -> Vec<String> {
    match req.get(key) {
        Some(Json::Str(s)) => s
            .split(',')
            .map(|p| p.trim().to_string())
            .filter(|p| !p.is_empty())
            .collect(),
        Some(Json::Arr(items)) => items
            .iter()
            .filter_map(|v| v.as_str().map(str::to_string))
            .collect(),
        _ => Vec::new(),
    }
}

fn chaos_config(v: &Json) -> Result<ChaosConfig, String> {
    let per_mille = |key: &str| -> Result<u16, String> {
        match v.get(key) {
            None => Ok(0),
            Some(n) => n
                .as_u64()
                .filter(|n| *n <= 1000)
                .map(|n| n as u16)
                .ok_or_else(|| format!("`chaos.{key}` must be 0..=1000")),
        }
    };
    Ok(ChaosConfig {
        seed: v.get("seed").and_then(Json::as_u64).unwrap_or(1),
        panic_per_mille: per_mille("panic_per_mille")?,
        unknown_per_mille: per_mille("unknown_per_mille")?,
        delay_per_mille: per_mille("delay_per_mille")?,
        delay: Duration::from_millis(v.get("delay_ms").and_then(Json::as_u64).unwrap_or(1)),
    })
}

/// The reduced-budget rung of the shed ladder: an eighth of the default
/// work counters, no escalation retries, per-query wall clock capped.
fn shrink_budgets(opts: &mut FormadOptions) {
    let mut budget = SolverBudget::default();
    budget.max_lia_calls /= 8;
    budget.max_branches /= 8;
    opts.region.budget = budget;
    opts.region.max_retries = 0;
    let cap = Duration::from_millis(250);
    opts.region.prover_timeout = Some(opts.region.prover_timeout.map_or(cap, |t| t.min(cap)));
}

fn render(p: &Program, emit: &str) -> String {
    match emit {
        "c" => program_to_clike(p),
        _ => program_to_string(p),
    }
}

fn stats_json(s: &SolverStats) -> Json {
    obj(vec![
        ("checks", s.checks.into()),
        ("assertions_added", s.assertions_added.into()),
        ("lia_calls", s.lia_calls.into()),
        ("branches", s.branches.into()),
        ("unknowns", s.unknowns.into()),
        ("interrupts", s.interrupts.into()),
        ("cache_hits", s.cache_hits.into()),
        ("cache_misses", s.cache_misses.into()),
        ("cache_inserts", s.cache_inserts.into()),
        ("propagations", s.propagations.into()),
        ("conflicts", s.conflicts.into()),
        ("learned_clauses", s.learned_clauses.into()),
        ("learned_literals", s.learned_literals.into()),
        ("restarts", s.restarts.into()),
        ("presolve_discharges", s.presolve_discharges.into()),
    ])
}

fn client_error(status: u16, kind: &str, message: &str) -> Response {
    Response::json(
        status,
        obj(vec![
            ("ok", false.into()),
            ("kind", kind.into()),
            ("error", message.into()),
        ])
        .render(),
    )
}

fn rejected(retry_after_ms: u64) -> Response {
    Response::json(
        429,
        obj(vec![
            ("ok", false.into()),
            ("kind", "overloaded".into()),
            ("error", "admission queue full; retry later".into()),
            ("retry_after_ms", retry_after_ms.into()),
        ])
        .render(),
    )
    .with_header("retry-after-ms", retry_after_ms.to_string())
}

fn deadline_response(message: &str) -> Response {
    client_error(408, "deadline", message)
}
