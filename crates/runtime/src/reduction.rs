//! Privatized reduction buffers (the `reduction(+: array)` discipline).

use parking_lot::Mutex;
use std::cell::UnsafeCell;

/// Per-thread privatized copies of an array, merged with `+` after the
/// region — the memory-hungry safeguard whose cost the paper's *Adjoint
/// Reduction* program version pays.
pub struct ReductionBuffers {
    bufs: Vec<UnsafeCell<Vec<f64>>>,
    len: usize,
}

// Safety: each thread only touches its own buffer (indexed by thread id),
// enforced by the `slice_mut` contract below.
unsafe impl Sync for ReductionBuffers {}

impl ReductionBuffers {
    /// One zero-filled private copy of length `len` per thread.
    pub fn new(threads: usize, len: usize) -> ReductionBuffers {
        ReductionBuffers {
            bufs: (0..threads.max(1))
                .map(|_| UnsafeCell::new(vec![0.0; len]))
                .collect(),
            len,
        }
    }

    /// Element count of each private copy.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the copies are empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Extra memory footprint in bytes (the paper notes this is the
    /// reduction discipline's hidden cost).
    pub fn footprint_bytes(&self) -> usize {
        self.bufs.len() * self.len * std::mem::size_of::<f64>()
    }

    /// Mutable view of thread `t`'s private copy.
    ///
    /// # Safety contract
    /// Must be called with a distinct `t` per concurrent thread (the
    /// `parallel_for` thread id); two threads must never pass the same
    /// index.
    #[allow(clippy::mut_from_ref)]
    pub fn slice_mut(&self, t: usize) -> &mut [f64] {
        unsafe { &mut *self.bufs[t].get() }
    }

    /// Merge all private copies into `target` with `+`, serially (as an
    /// OpenMP runtime does under a critical section).
    pub fn merge_into(self, target: &mut [f64]) {
        assert_eq!(target.len(), self.len);
        for buf in self.bufs {
            let b = buf.into_inner();
            for (t, v) in target.iter_mut().zip(b) {
                *t += v;
            }
        }
    }
}

/// A tiny helper for scalar `reduction(+: s)`: thread partials behind a
/// mutex-protected accumulator (contention-free per-thread, one lock at
/// the end).
#[derive(Debug, Default)]
pub struct ScalarReduction {
    total: Mutex<f64>,
}

impl ScalarReduction {
    /// Zero accumulator.
    pub fn new() -> ScalarReduction {
        ScalarReduction::default()
    }

    /// Fold one thread's partial in.
    pub fn add(&self, partial: f64) {
        *self.total.lock() += partial;
    }

    /// Final value.
    pub fn finish(self) -> f64 {
        self.total.into_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::parallel_for;

    #[test]
    fn merge_sums_private_copies() {
        let threads = 4;
        let n = 64;
        let red = ReductionBuffers::new(threads, n);
        parallel_for(threads, 1000, |t, i| {
            let buf = red.slice_mut(t);
            buf[i % n] += 1.0;
        });
        let mut target = vec![1.0; n];
        red.merge_into(&mut target);
        let total: f64 = target.iter().sum();
        // 1000 increments + n initial ones.
        assert_eq!(total, 1000.0 + n as f64);
    }

    #[test]
    fn footprint_scales_with_threads() {
        let r2 = ReductionBuffers::new(2, 100);
        let r8 = ReductionBuffers::new(8, 100);
        assert_eq!(r8.footprint_bytes(), 4 * r2.footprint_bytes());
    }

    #[test]
    fn scalar_reduction_accumulates() {
        let s = ScalarReduction::new();
        parallel_for(3, 30, |_, _| s.add(0.5));
        assert_eq!(s.finish(), 15.0);
    }
}
