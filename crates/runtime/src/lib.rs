//! # formad-runtime
//!
//! A real shared-memory parallel-for runtime — the OpenMP stand-in used by
//! the native benchmark kernels. Provides the three increment disciplines
//! whose costs the paper compares:
//!
//! - plain shared writes (safe only when FormAD proved disjointness),
//! - [`AtomicF64`] compare-and-swap increments (`!$omp atomic`),
//! - [`ReductionBuffers`] privatized copies with a post-region merge
//!   (`reduction(+: ...)`).
//!
//! Scheduling is static by contiguous chunks, matching both the simulated
//! machine in `formad-machine` and the per-thread tape discipline of the
//! generated adjoints.

pub mod atomic;
pub mod pool;
pub mod reduction;

pub use atomic::{AtomicF64, AtomicF64Slice};
pub use pool::{chunk_of, drain_global_pool, parallel_for, run_threads, ChunkIter, ThreadPool};
pub use reduction::{ReductionBuffers, ScalarReduction};
