//! Atomic double-precision accumulation (the `!$omp atomic` discipline).

use std::sync::atomic::{AtomicU64, Ordering};

/// An `f64` updated with compare-and-swap loops, bit-cast over
/// [`AtomicU64`] — the standard OpenMP-runtime implementation of
/// `!$omp atomic` on a `double`.
#[derive(Debug, Default)]
pub struct AtomicF64 {
    bits: AtomicU64,
}

impl AtomicF64 {
    /// New atomic with the given value.
    pub fn new(v: f64) -> AtomicF64 {
        AtomicF64 {
            bits: AtomicU64::new(v.to_bits()),
        }
    }

    /// Relaxed load.
    pub fn load(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Plain store (only safe outside concurrent phases).
    pub fn store(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Atomic `+= rhs` via a CAS loop; returns the previous value.
    pub fn fetch_add(&self, rhs: f64) -> f64 {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(cur) + rhs).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, new, Ordering::AcqRel, Ordering::Relaxed)
            {
                Ok(_) => return f64::from_bits(cur),
                Err(actual) => cur = actual,
            }
        }
    }
}

/// A shared slice of atomically-updatable doubles.
///
/// Construction copies the data into atomics; [`AtomicF64Slice::into_vec`]
/// copies back. The intermediate representation is what an OpenMP compiler
/// effectively gives a `shared` array whose increments are all
/// `!$omp atomic`.
#[derive(Debug)]
pub struct AtomicF64Slice {
    data: Vec<AtomicF64>,
}

impl AtomicF64Slice {
    /// Wrap a vector.
    pub fn from_vec(v: Vec<f64>) -> AtomicF64Slice {
        AtomicF64Slice {
            data: v.into_iter().map(AtomicF64::new).collect(),
        }
    }

    /// Zeros of length `n`.
    pub fn zeros(n: usize) -> AtomicF64Slice {
        AtomicF64Slice {
            data: (0..n).map(|_| AtomicF64::new(0.0)).collect(),
        }
    }

    /// Length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Atomic increment of element `i`.
    #[inline]
    pub fn add(&self, i: usize, v: f64) {
        self.data[i].fetch_add(v);
    }

    /// Read element `i`.
    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        self.data[i].load()
    }

    /// Copy back into a plain vector.
    pub fn into_vec(self) -> Vec<f64> {
        self.data.into_iter().map(|a| a.load()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fetch_add_accumulates() {
        let a = AtomicF64::new(1.0);
        assert_eq!(a.fetch_add(2.5), 1.0);
        assert_eq!(a.load(), 3.5);
    }

    #[test]
    fn slice_roundtrip() {
        let s = AtomicF64Slice::from_vec(vec![1.0, 2.0]);
        s.add(0, 0.5);
        assert_eq!(s.get(0), 1.5);
        assert_eq!(s.into_vec(), vec![1.5, 2.0]);
    }

    #[test]
    fn concurrent_increments_do_not_lose_updates() {
        let s = AtomicF64Slice::zeros(1);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..10_000 {
                        s.add(0, 1.0);
                    }
                });
            }
        });
        assert_eq!(s.get(0), 40_000.0);
    }
}
