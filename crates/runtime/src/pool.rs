//! Statically-scheduled parallel-for over scoped threads.

/// Iterator over one thread's chunk of `0..count` (static schedule,
/// contiguous blocks — the same mapping `formad-machine` simulates).
#[derive(Debug, Clone)]
pub struct ChunkIter {
    next: usize,
    end: usize,
}

impl Iterator for ChunkIter {
    type Item = usize;
    fn next(&mut self) -> Option<usize> {
        if self.next < self.end {
            let v = self.next;
            self.next += 1;
            Some(v)
        } else {
            None
        }
    }
}

/// The chunk of thread `t` out of `threads` for `count` iterations.
pub fn chunk_of(count: usize, threads: usize, t: usize) -> ChunkIter {
    let chunk = count.div_ceil(threads.max(1));
    ChunkIter {
        next: (t * chunk).min(count),
        end: ((t + 1) * chunk).min(count),
    }
}

/// Run `body(thread_id, iter)` for every `iter` in `0..count`, split into
/// static chunks over `threads` OS threads (crossbeam scoped). With one
/// thread the body runs inline — no spawn overhead, matching the serial
/// program versions of the paper.
pub fn parallel_for<F>(threads: usize, count: usize, body: F)
where
    F: Fn(usize, usize) + Sync,
{
    let threads = threads.max(1);
    if threads == 1 {
        for i in 0..count {
            body(0, i);
        }
        return;
    }
    crossbeam::thread::scope(|scope| {
        for t in 0..threads {
            let body = &body;
            scope.spawn(move |_| {
                for i in chunk_of(count, threads, t) {
                    body(t, i);
                }
            });
        }
    })
    .expect("worker thread panicked");
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn chunks_partition_exactly() {
        for count in [0usize, 1, 7, 16, 100] {
            for threads in [1usize, 2, 3, 8, 17] {
                let mut seen = vec![0u32; count];
                for t in 0..threads {
                    for i in chunk_of(count, threads, t) {
                        seen[i] += 1;
                    }
                }
                assert!(
                    seen.iter().all(|c| *c == 1),
                    "count={count} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn parallel_for_covers_all_iterations() {
        let hits = AtomicUsize::new(0);
        parallel_for(4, 1000, |_, _| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn single_thread_runs_inline_in_order() {
        let mut order = Vec::new();
        let cell = std::sync::Mutex::new(&mut order);
        parallel_for(1, 5, |t, i| {
            assert_eq!(t, 0);
            cell.lock().unwrap().push(i);
        });
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }
}
