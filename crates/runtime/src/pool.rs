//! Statically-scheduled parallel-for over a persistent worker pool.
//!
//! Workers are OS threads spawned once and parked on a condvar between
//! parallel regions, so a program that executes thousands of `!$omp
//! parallel do` regions (every sweep of every generated adjoint) pays
//! thread-creation cost once instead of per region. Scheduling is the
//! same static contiguous-chunk mapping the simulated machine in
//! `formad-machine` uses, so thread `t` owns identical iterations in
//! both backends.
//!
//! A panic inside a worker is caught, carried back to the submitting
//! thread, and re-raised there with [`std::panic::resume_unwind`] — the
//! original payload (e.g. a kernel assertion message) survives intact
//! and the pool remains usable afterwards.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread::JoinHandle;

/// Iterator over one thread's chunk of `0..count` (static schedule,
/// contiguous blocks — the same mapping `formad-machine` simulates).
#[derive(Debug, Clone)]
pub struct ChunkIter {
    next: usize,
    end: usize,
}

impl Iterator for ChunkIter {
    type Item = usize;
    fn next(&mut self) -> Option<usize> {
        if self.next < self.end {
            let v = self.next;
            self.next += 1;
            Some(v)
        } else {
            None
        }
    }
}

/// The chunk of thread `t` out of `threads` for `count` iterations.
pub fn chunk_of(count: usize, threads: usize, t: usize) -> ChunkIter {
    let chunk = count.div_ceil(threads.max(1));
    ChunkIter {
        next: (t * chunk).min(count),
        end: ((t + 1) * chunk).min(count),
    }
}

/// Type-erased pointer to the job closure. The pool guarantees the
/// pointee outlives the job (the submitter blocks in [`ThreadPool::run`]
/// until every participant finished), which is what makes the `Send`
/// impl sound.
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn(usize) + Sync));

unsafe impl Send for JobPtr {}

struct PoolState {
    /// Bumped once per dispatched job; workers compare against the last
    /// epoch they observed to detect fresh work.
    epoch: u64,
    job: Option<JobPtr>,
    /// Worker indices `< participants` run the current job.
    participants: usize,
    /// Participants that have not yet finished the current job.
    remaining: usize,
    /// First panic payload caught during the current job.
    panic: Option<Box<dyn Any + Send>>,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Workers park here between jobs.
    work_cv: Condvar,
    /// The submitter parks here until `remaining` drops to zero.
    done_cv: Condvar,
}

impl PoolShared {
    fn lock(&self) -> MutexGuard<'_, PoolState> {
        // The pool never leaves the state inconsistent across a panic
        // (payloads are caught in the worker), so poisoning is benign.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A persistent pool of worker threads executing statically-scheduled
/// parallel regions. One job at a time; [`ThreadPool::run`] blocks until
/// the region completes, re-raising any worker panic with its original
/// payload.
pub struct ThreadPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Create a pool with `threads` parked workers.
    pub fn new(threads: usize) -> ThreadPool {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                epoch: 0,
                job: None,
                participants: 0,
                remaining: 0,
                panic: None,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let mut pool = ThreadPool {
            shared,
            workers: Vec::new(),
        };
        pool.ensure_workers(threads);
        pool
    }

    /// Number of live workers.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Grow the pool to at least `threads` workers (never shrinks while
    /// running; a [`shutdown`](ThreadPool::shutdown) pool regrows from
    /// zero on the next call).
    pub fn ensure_workers(&mut self, threads: usize) {
        if self.workers.len() < threads {
            // Revive a drained pool: clear the flag before spawning so a
            // fresh worker doesn't immediately exit.
            self.shared.lock().shutdown = false;
        }
        while self.workers.len() < threads {
            let t = self.workers.len();
            let shared = Arc::clone(&self.shared);
            // Snapshot the epoch under the lock so the new worker never
            // mistakes an already-finished job for fresh work.
            let start_epoch = self.shared.lock().epoch;
            let handle = std::thread::Builder::new()
                .name(format!("formad-worker-{t}"))
                .spawn(move || worker_loop(shared, t, start_epoch))
                .expect("spawn pool worker");
            self.workers.push(handle);
        }
    }

    /// Run `task(t)` on workers `0..participants` and block until all
    /// finish. If any participant panics, the first payload (by finish
    /// order) is re-raised on the calling thread.
    pub fn run(&self, participants: usize, task: &(dyn Fn(usize) + Sync)) {
        if participants == 0 {
            return;
        }
        assert!(
            participants <= self.workers.len(),
            "pool has {} workers, job wants {participants}",
            self.workers.len()
        );
        // Erase the borrow lifetime: sound because this function does not
        // return until every participant is done touching the closure.
        let ptr: JobPtr = unsafe {
            JobPtr(std::mem::transmute::<
                *const (dyn Fn(usize) + Sync + '_),
                *const (dyn Fn(usize) + Sync + 'static),
            >(task as *const _))
        };
        let mut st = self.shared.lock();
        debug_assert!(st.remaining == 0 && st.job.is_none());
        st.job = Some(ptr);
        st.participants = participants;
        st.remaining = participants;
        st.panic = None;
        st.epoch += 1;
        self.shared.work_cv.notify_all();
        while st.remaining > 0 {
            st = self
                .shared
                .done_cv
                .wait(st)
                .unwrap_or_else(|e| e.into_inner());
        }
        st.job = None;
        let payload = st.panic.take();
        drop(st);
        if let Some(p) = payload {
            resume_unwind(p);
        }
    }

    /// Gracefully shut the pool down: wait for any in-flight region to
    /// drain (never tear a worker down mid-region), then wake every
    /// parked worker and join them all. Idempotent — calling it on an
    /// already-drained pool is a no-op — and reversible:
    /// [`ensure_workers`](ThreadPool::ensure_workers) revives a drained
    /// pool, so a daemon can drain at quiesce points without giving up
    /// the pool for good. `Drop` delegates here.
    pub fn shutdown(&mut self) {
        {
            let mut st = self.shared.lock();
            // `&mut self` means no submitter is blocked in `run`, but a
            // poisoned/odd state could still show in-flight work; wait it
            // out rather than yanking workers mid-region.
            while st.remaining > 0 {
                st = self
                    .shared
                    .done_cv
                    .wait(st)
                    .unwrap_or_else(|e| e.into_inner());
            }
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: Arc<PoolShared>, t: usize, mut last_epoch: u64) {
    loop {
        let (job, participate) = {
            let mut st = shared.lock();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != last_epoch {
                    break;
                }
                st = shared.work_cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            last_epoch = st.epoch;
            (st.job, t < st.participants)
        };
        if !participate {
            continue;
        }
        let job = job.expect("dispatched epoch carries a job");
        let task = unsafe { &*job.0 };
        let result = catch_unwind(AssertUnwindSafe(|| task(t)));
        let mut st = shared.lock();
        if let Err(payload) = result {
            if st.panic.is_none() {
                st.panic = Some(payload);
            }
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            shared.done_cv.notify_all();
        }
    }
}

/// The process-wide pool behind [`parallel_for`]. Guarded by a mutex so
/// concurrent or reentrant `parallel_for` calls cannot interleave jobs;
/// contenders fall back to scoped threads instead of blocking.
fn global_pool() -> &'static Mutex<ThreadPool> {
    static POOL: OnceLock<Mutex<ThreadPool>> = OnceLock::new();
    POOL.get_or_init(|| Mutex::new(ThreadPool::new(0)))
}

/// Gracefully drain the process-wide pool behind [`parallel_for`]: wait
/// for any in-flight region, then join every parked worker. The pool
/// respawns workers on its next use, so this is safe to call at any
/// quiesce point — a resident daemon drains on shutdown so process exit
/// never kills a worker mid-region.
pub fn drain_global_pool() {
    let mut pool = global_pool().lock().unwrap_or_else(|e| e.into_inner());
    pool.shutdown();
}

/// Run `task(t)` for `t in 0..threads`, preferring the persistent global
/// pool and falling back to scoped threads when the pool is busy (a
/// concurrent or nested call). Worker panics re-raise with their
/// original payload either way.
pub fn run_threads(threads: usize, task: &(dyn Fn(usize) + Sync)) {
    match global_pool().try_lock() {
        Ok(mut pool) => {
            pool.ensure_workers(threads);
            pool.run(threads, task);
        }
        Err(std::sync::TryLockError::Poisoned(poisoned)) => {
            let mut pool = poisoned.into_inner();
            pool.ensure_workers(threads);
            pool.run(threads, task);
        }
        Err(std::sync::TryLockError::WouldBlock) => {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads).map(|t| scope.spawn(move || task(t))).collect();
                for h in handles {
                    if let Err(p) = h.join() {
                        resume_unwind(p);
                    }
                }
            });
        }
    }
}

/// Run `body(thread_id, iter)` for every `iter` in `0..count`, split into
/// static chunks over `threads` pooled OS threads. With one thread the
/// body runs inline — no dispatch overhead, matching the serial program
/// versions of the paper. A worker panic re-raises on the caller with
/// the worker's original payload.
pub fn parallel_for<F>(threads: usize, count: usize, body: F)
where
    F: Fn(usize, usize) + Sync,
{
    let threads = threads.max(1);
    if threads == 1 {
        for i in 0..count {
            body(0, i);
        }
        return;
    }
    run_threads(threads, &|t| {
        for i in chunk_of(count, threads, t) {
            body(t, i);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn chunks_partition_exactly() {
        for count in [0usize, 1, 7, 16, 100] {
            for threads in [1usize, 2, 3, 8, 17] {
                let mut seen = vec![0u32; count];
                for t in 0..threads {
                    for i in chunk_of(count, threads, t) {
                        seen[i] += 1;
                    }
                }
                assert!(
                    seen.iter().all(|c| *c == 1),
                    "count={count} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn parallel_for_covers_all_iterations() {
        let hits = AtomicUsize::new(0);
        parallel_for(4, 1000, |_, _| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn single_thread_runs_inline_in_order() {
        let mut order = Vec::new();
        let cell = std::sync::Mutex::new(&mut order);
        parallel_for(1, 5, |t, i| {
            assert_eq!(t, 0);
            cell.lock().unwrap().push(i);
        });
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn pool_reuses_workers_across_jobs() {
        let pool = ThreadPool::new(4);
        let hits = AtomicUsize::new(0);
        for _ in 0..100 {
            pool.run(4, &|_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(hits.load(Ordering::Relaxed), 400);
        assert_eq!(pool.workers(), 4);
    }

    #[test]
    fn pool_runs_subset_of_workers() {
        let pool = ThreadPool::new(8);
        let seen = Mutex::new(Vec::new());
        pool.run(3, &|t| seen.lock().unwrap().push(t));
        let mut ids = seen.into_inner().unwrap();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn panic_payload_reaches_caller() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            parallel_for(4, 100, |_, i| {
                if i == 37 {
                    panic!("iteration 37 exploded");
                }
            });
        }))
        .expect_err("panic must propagate");
        let msg = caught
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_owned)
            .or_else(|| caught.downcast_ref::<String>().cloned())
            .expect("payload is a string");
        assert_eq!(msg, "iteration 37 exploded");
    }

    #[test]
    fn pool_survives_a_panicking_job() {
        let pool = ThreadPool::new(2);
        let err = catch_unwind(AssertUnwindSafe(|| {
            pool.run(2, &|t| {
                if t == 1 {
                    panic!("boom {t}");
                }
            });
        }))
        .expect_err("panic must propagate");
        assert_eq!(
            err.downcast_ref::<String>().map(String::as_str),
            Some("boom 1")
        );
        // The same pool keeps dispatching fine afterwards.
        let hits = AtomicUsize::new(0);
        pool.run(2, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn shutdown_is_graceful_idempotent_and_reversible() {
        let mut pool = ThreadPool::new(4);
        let hits = AtomicUsize::new(0);
        pool.run(4, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        pool.shutdown();
        assert_eq!(pool.workers(), 0);
        // Idempotent.
        pool.shutdown();
        assert_eq!(pool.workers(), 0);
        // Reversible: ensure_workers revives a drained pool.
        pool.ensure_workers(2);
        assert_eq!(pool.workers(), 2);
        pool.run(2, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn shutdown_after_a_panicking_job_does_not_panic() {
        // Regression: draining must not re-raise or deadlock when the
        // last region panicked — the payload was already delivered to
        // the submitter, and the workers are parked cleanly.
        let mut pool = ThreadPool::new(2);
        let err = catch_unwind(AssertUnwindSafe(|| {
            pool.run(2, &|t| {
                if t == 0 {
                    panic!("mid-region failure");
                }
            });
        }));
        assert!(err.is_err());
        pool.shutdown();
        assert_eq!(pool.workers(), 0);
    }

    #[test]
    fn global_pool_drains_and_respawns() {
        let hits = AtomicUsize::new(0);
        parallel_for(3, 30, |_, _| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        drain_global_pool();
        // The drained pool revives transparently on next use.
        parallel_for(3, 30, |_, _| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 60);
        drain_global_pool();
        drain_global_pool();
    }

    #[test]
    fn nested_parallel_for_falls_back_without_deadlock() {
        let hits = AtomicUsize::new(0);
        parallel_for(2, 4, |_, _| {
            parallel_for(2, 10, |_, _| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 40);
    }
}
