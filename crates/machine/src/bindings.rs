//! Input/output data bound to a subroutine invocation.

use std::collections::HashMap;
use std::fmt;

/// Runtime data for one subroutine call: scalar and array values keyed by
/// parameter name. Locals are created (zero-initialized) by the machine.
#[derive(Debug, Clone, Default)]
pub struct Bindings {
    pub real_scalars: HashMap<String, f64>,
    pub int_scalars: HashMap<String, i64>,
    pub real_arrays: HashMap<String, Vec<f64>>,
    pub int_arrays: HashMap<String, Vec<i64>>,
}

impl Bindings {
    /// Empty bindings.
    pub fn new() -> Bindings {
        Bindings::default()
    }

    /// Bind an integer scalar.
    pub fn int(mut self, name: &str, v: i64) -> Self {
        self.int_scalars.insert(name.to_string(), v);
        self
    }

    /// Bind a real scalar.
    pub fn real(mut self, name: &str, v: f64) -> Self {
        self.real_scalars.insert(name.to_string(), v);
        self
    }

    /// Bind a real array (Fortran order: first index fastest).
    pub fn real_array(mut self, name: &str, v: Vec<f64>) -> Self {
        self.real_arrays.insert(name.to_string(), v);
        self
    }

    /// Bind an integer array.
    pub fn int_array(mut self, name: &str, v: Vec<i64>) -> Self {
        self.int_arrays.insert(name.to_string(), v);
        self
    }

    /// Read back a real array after execution.
    pub fn get_real_array(&self, name: &str) -> Option<&[f64]> {
        self.real_arrays.get(name).map(|v| v.as_slice())
    }

    /// Read back a real scalar after execution.
    pub fn get_real(&self, name: &str) -> Option<f64> {
        self.real_scalars.get(name).copied()
    }
}

/// Execution-time errors.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecError {
    pub message: String,
}

impl ExecError {
    pub(crate) fn new(m: impl Into<String>) -> ExecError {
        ExecError { message: m.into() }
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "execution error: {}", self.message)
    }
}

impl std::error::Error for ExecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_pattern() {
        let b = Bindings::new()
            .int("n", 4)
            .real("a", 2.5)
            .real_array("x", vec![1.0; 4]);
        assert_eq!(b.int_scalars["n"], 4);
        assert_eq!(b.get_real("a"), Some(2.5));
        assert_eq!(b.get_real_array("x").unwrap().len(), 4);
        assert_eq!(b.get_real_array("zzz"), None);
    }
}
