//! Execution of lowered programs on the simulated machine.
//!
//! Sequential code accumulates wall cycles directly. A parallel loop is
//! executed as `T` simulated threads with **static scheduling by
//! value-ascending rank**: thread `t` always owns the same block of the
//! iteration space regardless of the loop's direction, so a reversed
//! adjoint loop assigns every iteration to the thread that ran it forward,
//! and each thread pops its tape in exactly the reverse of its push order —
//! the discipline the reverse-mode transformation relies on.
//!
//! Atomic updates execute like plain updates (the simulation is
//! deterministic) but are charged the contended-atomic cost; `reduction`
//! clauses really privatize (identity-initialized copies, merged after the
//! region) and are charged initialization and serialized-merge costs, so
//! the *performance shape* of the paper's program versions is reproduced
//! while their *semantics* stay exact.

use formad_ir::{BinOp, CmpOp, Intrinsic, Program, RedOp, Ty};

use crate::bindings::{Bindings, ExecError};
use crate::cost::{CostModel, ExecResult, ExecStats};
use crate::lower::{lower, ArrMeta, LBool, LExpr, LFor, LProgram, LStmt};

/// The simulated machine: thread count and cost model.
#[derive(Debug, Clone, Copy)]
pub struct Machine {
    /// Number of simulated threads for parallel regions.
    pub threads: usize,
    /// Cycle costs.
    pub cost: CostModel,
}

impl Machine {
    /// A machine with `threads` threads and default costs.
    pub fn with_threads(threads: usize) -> Machine {
        Machine {
            threads,
            cost: CostModel::default(),
        }
    }

    /// Single-threaded machine.
    pub fn serial() -> Machine {
        Machine::with_threads(1)
    }
}

/// Run `prog` against `bind` on `machine`. Parameter arrays and scalars
/// are read from the bindings and written back afterwards; locals are
/// zero-initialized.
pub fn run(
    prog: &Program,
    bind: &mut Bindings,
    machine: &Machine,
) -> Result<ExecResult, ExecError> {
    let lp = lower(prog, bind)?;
    let mut it = Interp::new(&lp, machine, bind, prog)?;
    it.exec_body(&lp.body)?;
    it.write_back(bind, prog);
    Ok(ExecResult {
        wall_cycles: it.cycles,
        cpu_cycles: it.cpu_cycles,
        stats: it.stats,
    })
}

struct Interp<'a> {
    lp: &'a LProgram,
    m: &'a Machine,
    reals: Vec<f64>,
    ints: Vec<i64>,
    arr_r: Vec<Vec<f64>>,
    arr_i: Vec<Vec<i64>>,
    tapes_r: Vec<Vec<f64>>,
    tapes_i: Vec<Vec<i64>>,
    cur_tape: usize,
    /// Threads active in the enclosing parallel region (1 outside).
    active_threads: usize,
    cycles: u128,
    cpu_cycles: u128,
    stats: ExecStats,
    /// Memory ops in the current parallel region (bandwidth floor).
    region_mem_ops: u64,
    region_indirect_ops: u64,
}

impl<'a> Interp<'a> {
    fn new(
        lp: &'a LProgram,
        m: &'a Machine,
        bind: &Bindings,
        prog: &Program,
    ) -> Result<Interp<'a>, ExecError> {
        let mut reals = vec![0.0; lp.n_real_scalars];
        let mut ints = vec![0i64; lp.n_int_scalars];
        let mut arr_r: Vec<Vec<f64>> = Vec::with_capacity(lp.arrays.len());
        let mut arr_i: Vec<Vec<i64>> = Vec::with_capacity(lp.arrays.len());
        let param_names: Vec<&str> = prog.params.iter().map(|d| d.name.as_str()).collect();

        for (name, (slot, ty)) in &lp.scalar_slots {
            match ty {
                Ty::Real => {
                    if let Some(v) = bind.real_scalars.get(name) {
                        reals[*slot as usize] = *v;
                    } else if param_names.contains(&name.as_str()) {
                        return Err(ExecError::new(format!("parameter `{name}` is unbound")));
                    }
                }
                Ty::Int => {
                    if let Some(v) = bind.int_scalars.get(name) {
                        ints[*slot as usize] = *v;
                    } else if param_names.contains(&name.as_str()) {
                        return Err(ExecError::new(format!("parameter `{name}` is unbound")));
                    }
                }
            }
        }
        for meta in &lp.arrays {
            let is_param = param_names.contains(&meta.name.as_str());
            match meta.ty {
                Ty::Real => {
                    let data = match bind.real_arrays.get(&meta.name) {
                        Some(v) => {
                            if v.len() != meta.len {
                                return Err(ExecError::new(format!(
                                    "array `{}` bound with {} elements, declared {}",
                                    meta.name,
                                    v.len(),
                                    meta.len
                                )));
                            }
                            v.clone()
                        }
                        None if is_param => {
                            return Err(ExecError::new(format!(
                                "parameter array `{}` is unbound",
                                meta.name
                            )))
                        }
                        None => vec![0.0; meta.len],
                    };
                    arr_r.push(data);
                    arr_i.push(Vec::new());
                }
                Ty::Int => {
                    let data = match bind.int_arrays.get(&meta.name) {
                        Some(v) => {
                            if v.len() != meta.len {
                                return Err(ExecError::new(format!(
                                    "array `{}` bound with {} elements, declared {}",
                                    meta.name,
                                    v.len(),
                                    meta.len
                                )));
                            }
                            v.clone()
                        }
                        None if is_param => {
                            return Err(ExecError::new(format!(
                                "parameter array `{}` is unbound",
                                meta.name
                            )))
                        }
                        None => vec![0i64; meta.len],
                    };
                    arr_i.push(data);
                    arr_r.push(Vec::new());
                }
            }
        }
        let t = m.threads.max(1);
        Ok(Interp {
            lp,
            m,
            reals,
            ints,
            arr_r,
            arr_i,
            tapes_r: vec![Vec::new(); t],
            tapes_i: vec![Vec::new(); t],
            cur_tape: 0,
            active_threads: 1,
            cycles: 0,
            cpu_cycles: 0,
            stats: ExecStats::default(),
            region_mem_ops: 0,
            region_indirect_ops: 0,
        })
    }

    fn write_back(&mut self, bind: &mut Bindings, prog: &Program) {
        for d in &prog.params {
            if d.is_array() {
                let id = self.lp.array_ids[&d.name] as usize;
                match d.ty {
                    Ty::Real => {
                        bind.real_arrays
                            .insert(d.name.clone(), std::mem::take(&mut self.arr_r[id]));
                    }
                    Ty::Int => {
                        bind.int_arrays
                            .insert(d.name.clone(), std::mem::take(&mut self.arr_i[id]));
                    }
                }
            } else {
                let (slot, ty) = self.lp.scalar_slots[&d.name];
                match ty {
                    Ty::Real => {
                        bind.real_scalars
                            .insert(d.name.clone(), self.reals[slot as usize]);
                    }
                    Ty::Int => {
                        bind.int_scalars
                            .insert(d.name.clone(), self.ints[slot as usize]);
                    }
                }
            }
        }
    }

    #[inline]
    fn charge(&mut self, c: u64) {
        self.cycles += c as u128;
    }

    /// Charge one memory access, tracking the bandwidth-floor counters.
    #[inline]
    fn charge_mem(&mut self, indirect: bool, write: bool) {
        let c = if indirect {
            self.stats.indirect_ops += 1;
            self.region_indirect_ops += 1;
            self.m.cost.mem_indirect
        } else if write {
            self.m.cost.mem_write
        } else {
            self.m.cost.mem_read
        };
        self.region_mem_ops += 1;
        if write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        self.charge(c);
    }

    // ---- expression evaluation ----

    fn offset(&mut self, meta: &ArrMeta, idx: &[LExpr]) -> Result<usize, ExecError> {
        let mut off: i64 = 0;
        let mut stride: i64 = 1;
        for (k, ix) in idx.iter().enumerate() {
            let v = self.eval_i(ix)?;
            let d = meta.dims[k];
            if v < 1 || v > d {
                return Err(ExecError::new(format!(
                    "index {v} out of bounds 1..={d} in dimension {} of `{}`",
                    k + 1,
                    meta.name
                )));
            }
            off += (v - 1) * stride;
            stride *= d;
            self.charge(self.m.cost.flop);
        }
        Ok(off as usize)
    }

    fn eval_r(&mut self, e: &LExpr) -> Result<f64, ExecError> {
        Ok(match e {
            LExpr::ConstR(v) => *v,
            LExpr::ConstI(v) => *v as f64,
            LExpr::ScalarR(s) => self.reals[*s as usize],
            LExpr::ScalarI(s) => self.ints[*s as usize] as f64,
            LExpr::Coerce(inner) => {
                self.charge(self.m.cost.flop);
                self.eval_i(inner)? as f64
            }
            LExpr::Elem(id, idx, indirect) => {
                let meta = &self.lp.arrays[*id as usize];
                let off = self.offset(meta, idx)?;
                self.charge_mem(*indirect, false);
                self.arr_r[*id as usize][off]
            }
            LExpr::Neg(a) => {
                self.charge(self.m.cost.flop);
                -self.eval_r(a)?
            }
            LExpr::Bin(op, a, b) => {
                let x = self.eval_r(a)?;
                let y = self.eval_r(b)?;
                self.charge(self.m.cost.flop);
                self.stats.flops += 1;
                match op {
                    BinOp::Add => x + y,
                    BinOp::Sub => x - y,
                    BinOp::Mul => x * y,
                    BinOp::Div => x / y,
                    BinOp::Pow => x.powf(y),
                    BinOp::Mod => {
                        return Err(ExecError::new("mod in real context"));
                    }
                }
            }
            LExpr::Call(f, args) => {
                self.charge(self.m.cost.intrinsic);
                match f {
                    Intrinsic::Sin => self.eval_r(&args[0])?.sin(),
                    Intrinsic::Cos => self.eval_r(&args[0])?.cos(),
                    Intrinsic::Exp => self.eval_r(&args[0])?.exp(),
                    Intrinsic::Log => self.eval_r(&args[0])?.ln(),
                    Intrinsic::Sqrt => self.eval_r(&args[0])?.sqrt(),
                    Intrinsic::Tanh => self.eval_r(&args[0])?.tanh(),
                    Intrinsic::Abs => self.eval_r(&args[0])?.abs(),
                    Intrinsic::Min => self.eval_r(&args[0])?.min(self.eval_r(&args[1])?),
                    Intrinsic::Max => self.eval_r(&args[0])?.max(self.eval_r(&args[1])?),
                }
            }
        })
    }

    fn eval_i(&mut self, e: &LExpr) -> Result<i64, ExecError> {
        Ok(match e {
            LExpr::ConstI(v) => *v,
            LExpr::ConstR(_) => {
                return Err(ExecError::new("real literal in integer context"));
            }
            LExpr::ScalarI(s) => self.ints[*s as usize],
            LExpr::ScalarR(_) | LExpr::Coerce(_) => {
                return Err(ExecError::new("real value in integer context"));
            }
            LExpr::Elem(id, idx, indirect) => {
                let meta = &self.lp.arrays[*id as usize];
                let off = self.offset(meta, idx)?;
                self.charge_mem(*indirect, false);
                self.arr_i[*id as usize][off]
            }
            LExpr::Neg(a) => {
                self.charge(self.m.cost.flop);
                -self.eval_i(a)?
            }
            LExpr::Bin(op, a, b) => {
                let x = self.eval_i(a)?;
                let y = self.eval_i(b)?;
                self.charge(self.m.cost.flop);
                match op {
                    BinOp::Add => x + y,
                    BinOp::Sub => x - y,
                    BinOp::Mul => x * y,
                    BinOp::Div => {
                        if y == 0 {
                            return Err(ExecError::new("integer division by zero"));
                        }
                        x / y
                    }
                    BinOp::Mod => {
                        if y == 0 {
                            return Err(ExecError::new("mod by zero"));
                        }
                        x % y
                    }
                    BinOp::Pow => {
                        if y < 0 {
                            return Err(ExecError::new("negative integer exponent"));
                        }
                        x.checked_pow(y as u32)
                            .ok_or_else(|| ExecError::new("integer overflow in **"))?
                    }
                }
            }
            LExpr::Call(f, args) => {
                self.charge(self.m.cost.flop);
                match f {
                    Intrinsic::Abs => self.eval_i(&args[0])?.abs(),
                    Intrinsic::Min => self.eval_i(&args[0])?.min(self.eval_i(&args[1])?),
                    Intrinsic::Max => self.eval_i(&args[0])?.max(self.eval_i(&args[1])?),
                    other => {
                        return Err(ExecError::new(format!(
                            "intrinsic {} in integer context",
                            other.name()
                        )))
                    }
                }
            }
        })
    }

    fn eval_bool(&mut self, b: &LBool) -> Result<bool, ExecError> {
        Ok(match b {
            LBool::Cmp(op, ty, a, x) => {
                self.charge(self.m.cost.flop);
                match ty {
                    Ty::Int => {
                        let l = self.eval_i(a)?;
                        let r = self.eval_i(x)?;
                        compare(*op, l as f64, r as f64)
                    }
                    Ty::Real => {
                        let l = self.eval_r(a)?;
                        let r = self.eval_r(x)?;
                        compare(*op, l, r)
                    }
                }
            }
            LBool::And(a, b) => self.eval_bool(a)? && self.eval_bool(b)?,
            LBool::Or(a, b) => self.eval_bool(a)? || self.eval_bool(b)?,
            LBool::Not(a) => !self.eval_bool(a)?,
        })
    }

    // ---- statement execution ----

    fn exec_body(&mut self, body: &[LStmt]) -> Result<(), ExecError> {
        for s in body {
            self.exec_stmt(s)?;
        }
        Ok(())
    }

    fn exec_stmt(&mut self, s: &LStmt) -> Result<(), ExecError> {
        match s {
            LStmt::AssignR(slot, rhs) => {
                let v = self.eval_r(rhs)?;
                self.reals[*slot as usize] = v;
                Ok(())
            }
            LStmt::AssignI(slot, rhs) => {
                let v = self.eval_i(rhs)?;
                self.ints[*slot as usize] = v;
                Ok(())
            }
            LStmt::AssignElem(id, idx, rhs, indirect) => {
                let meta = &self.lp.arrays[*id as usize];
                let ty = meta.ty;
                let off = self.offset(meta, idx)?;
                self.charge_mem(*indirect, true);
                match ty {
                    Ty::Real => {
                        let v = self.eval_r(rhs)?;
                        self.arr_r[*id as usize][off] = v;
                    }
                    Ty::Int => {
                        let v = self.eval_i(rhs)?;
                        self.arr_i[*id as usize][off] = v;
                    }
                }
                Ok(())
            }
            LStmt::AtomicAddElem(id, idx, rhs) => {
                let meta = &self.lp.arrays[*id as usize];
                let off = self.offset(meta, idx)?;
                let v = self.eval_r(rhs)?;
                let t = self.active_threads as u64;
                let c = self.m.cost.atomic_base * t * (100 + self.m.cost.atomic_quad_pct * (t - 1))
                    / 100;
                self.charge(c);
                self.stats.atomic_ops += 1;
                self.arr_r[*id as usize][off] += v;
                Ok(())
            }
            LStmt::If(cond, then_b, else_b) => {
                if self.eval_bool(cond)? {
                    self.exec_body(then_b)
                } else {
                    self.exec_body(else_b)
                }
            }
            LStmt::Push(e, ty) => {
                self.charge(self.m.cost.tape_op);
                self.stats.tape_pushes += 1;
                match ty {
                    Ty::Real => {
                        let v = self.eval_r(e)?;
                        self.tapes_r[self.cur_tape].push(v);
                    }
                    Ty::Int => {
                        let v = self.eval_i(e)?;
                        self.tapes_i[self.cur_tape].push(v);
                    }
                }
                Ok(())
            }
            LStmt::PopR(slot) => {
                self.charge(self.m.cost.tape_op);
                self.stats.tape_pops += 1;
                let v = self.tapes_r[self.cur_tape]
                    .pop()
                    .ok_or_else(|| ExecError::new("pop from empty real tape"))?;
                self.reals[*slot as usize] = v;
                Ok(())
            }
            LStmt::PopI(slot) => {
                self.charge(self.m.cost.tape_op);
                self.stats.tape_pops += 1;
                let v = self.tapes_i[self.cur_tape]
                    .pop()
                    .ok_or_else(|| ExecError::new("pop from empty int tape"))?;
                self.ints[*slot as usize] = v;
                Ok(())
            }
            LStmt::PopElem(id, idx, indirect) => {
                self.charge(self.m.cost.tape_op);
                self.charge_mem(*indirect, true);
                self.stats.tape_pops += 1;
                let meta = &self.lp.arrays[*id as usize];
                let off = self.offset(meta, idx)?;
                match meta.ty {
                    Ty::Real => {
                        let v = self.tapes_r[self.cur_tape]
                            .pop()
                            .ok_or_else(|| ExecError::new("pop from empty real tape"))?;
                        self.arr_r[*id as usize][off] = v;
                    }
                    Ty::Int => {
                        let v = self.tapes_i[self.cur_tape]
                            .pop()
                            .ok_or_else(|| ExecError::new("pop from empty int tape"))?;
                        self.arr_i[*id as usize][off] = v;
                    }
                }
                Ok(())
            }
            LStmt::For(f) => {
                // Parallel loops always take the region path so that
                // fork/join, privatization, and merge costs are charged
                // even at one thread (the paper's 1-thread overheads).
                if f.parallel.is_some() {
                    self.exec_parallel(f)
                } else {
                    self.exec_sequential(f)
                }
            }
        }
    }

    fn exec_sequential(&mut self, f: &LFor) -> Result<(), ExecError> {
        let lo = self.eval_i(&f.lo)?;
        let hi = self.eval_i(&f.hi)?;
        let step = self.eval_i(&f.step)?;
        if step == 0 {
            return Err(ExecError::new("zero loop step"));
        }
        let mut v = lo;
        while (step > 0 && v <= hi) || (step < 0 && v >= hi) {
            self.ints[f.var as usize] = v;
            self.charge(self.m.cost.loop_overhead);
            self.exec_body(&f.body)?;
            v += step;
        }
        Ok(())
    }

    fn exec_parallel(&mut self, f: &LFor) -> Result<(), ExecError> {
        let lo = self.eval_i(&f.lo)?;
        let hi = self.eval_i(&f.hi)?;
        let step = self.eval_i(&f.step)?;
        if step == 0 {
            return Err(ExecError::new("zero loop step"));
        }
        let count: i64 = if step > 0 {
            if hi < lo {
                0
            } else {
                (hi - lo) / step + 1
            }
        } else if hi > lo {
            0
        } else {
            (lo - hi) / (-step) + 1
        };
        let lp = f.parallel.as_ref().expect("parallel loop");
        let t_n = self.m.threads;
        self.stats.parallel_regions += 1;
        self.charge(self.m.cost.fork_join);

        if count == 0 {
            return Ok(());
        }

        // Chunking by value-ascending rank (see module docs).
        let chunk = (count as usize).div_ceil(t_n);

        // Save private scalars (restored after the region) and the counter.
        let saved_r: Vec<f64> = lp
            .private_r
            .iter()
            .map(|s| self.reals[*s as usize])
            .collect();
        let saved_i: Vec<i64> = lp
            .private_i
            .iter()
            .map(|s| self.ints[*s as usize])
            .collect();
        let saved_counter = self.ints[f.var as usize];

        // Reduction bookkeeping.
        let red_scalar_saved: Vec<f64> = lp
            .red_scalars
            .iter()
            .map(|(_, s, is_real)| {
                if *is_real {
                    self.reals[*s as usize]
                } else {
                    self.ints[*s as usize] as f64
                }
            })
            .collect();
        let mut red_scalar_acc: Vec<f64> = lp
            .red_scalars
            .iter()
            .map(|(op, _, _)| identity(*op))
            .collect();
        let red_arr_saved: Vec<Vec<f64>> = lp
            .red_arrays
            .iter()
            .map(|(_, id)| self.arr_r[*id as usize].clone())
            .collect();
        let mut red_arr_acc: Vec<Vec<f64>> = lp
            .red_arrays
            .iter()
            .map(|(op, id)| vec![identity(*op); self.arr_r[*id as usize].len()])
            .collect();
        let red_footprint: u64 = lp
            .red_arrays
            .iter()
            .map(|(_, id)| self.arr_r[*id as usize].len() as u64)
            .sum();
        if !lp.red_arrays.is_empty() {
            self.stats.peak_reduction_bytes = self
                .stats
                .peak_reduction_bytes
                .max(red_footprint * 8 * t_n as u64);
        }

        let outer_cycles = self.cycles;
        let prev_active = self.active_threads;
        let prev_tape = self.cur_tape;
        self.active_threads = t_n;
        let prev_region_mem = self.region_mem_ops;
        let prev_region_ind = self.region_indirect_ops;
        self.region_mem_ops = 0;
        self.region_indirect_ops = 0;

        let mut max_thread: u128 = 0;
        let mut merge_serialized: u128 = 0;

        for t in 0..t_n {
            let a_begin = (t * chunk) as i64;
            let a_end = (((t + 1) * chunk).min(count as usize)) as i64;
            if a_begin >= a_end {
                continue;
            }
            // Reset private copies to region-entry values (OpenMP privates
            // are formally uninitialized; entry values are a deterministic
            // stand-in, and generated adjoints initialize explicitly).
            for (k, s) in lp.private_r.iter().enumerate() {
                self.reals[*s as usize] = saved_r[k];
            }
            for (k, s) in lp.private_i.iter().enumerate() {
                self.ints[*s as usize] = saved_i[k];
            }
            // Identity-init reductions for this thread.
            for (k, (op, s, is_real)) in lp.red_scalars.iter().enumerate() {
                let _ = k;
                if *is_real {
                    self.reals[*s as usize] = identity(*op);
                } else {
                    self.ints[*s as usize] = identity(*op) as i64;
                }
            }
            for (k, (op, id)) in lp.red_arrays.iter().enumerate() {
                let _ = k;
                let arr = &mut self.arr_r[*id as usize];
                for v in arr.iter_mut() {
                    *v = identity(*op);
                }
            }

            self.cur_tape = t;
            self.cycles = 0;
            // Each thread zero-initializes its privatized copies.
            self.charge(self.m.cost.red_init_per_elem * red_footprint);

            // Iterate this thread's ascending ranks in loop order.
            let ranks: Box<dyn Iterator<Item = i64>> = if step > 0 {
                Box::new(a_begin..a_end)
            } else {
                Box::new((a_begin..a_end).rev())
            };
            for a in ranks {
                // Value of ascending rank `a`: the iterate set is
                // {lo, lo+step, …, lo+(count−1)·step}; for descending
                // loops the smallest iterate is the *last* one, which may
                // lie strictly above `hi`.
                let v = if step > 0 {
                    lo + a * step
                } else {
                    lo + (count - 1 - a) * step
                };
                self.ints[f.var as usize] = v;
                self.charge(self.m.cost.loop_overhead);
                self.exec_body(&f.body)?;
            }
            max_thread = max_thread.max(self.cycles);

            // Collect this thread's reduction partials.
            for (k, (op, s, is_real)) in lp.red_scalars.iter().enumerate() {
                let part = if *is_real {
                    self.reals[*s as usize]
                } else {
                    self.ints[*s as usize] as f64
                };
                red_scalar_acc[k] = combine(*op, red_scalar_acc[k], part);
            }
            for (k, (op, id)) in lp.red_arrays.iter().enumerate() {
                let arr = &self.arr_r[*id as usize];
                for (acc, v) in red_arr_acc[k].iter_mut().zip(arr) {
                    *acc = combine(*op, *acc, *v);
                }
                self.stats.reduction_elems += arr.len() as u64;
            }
            merge_serialized += (self.m.cost.red_merge_per_elem * red_footprint) as u128;
            self.cpu_cycles += self.cycles;
        }

        // Wall time: slowest thread plus the serialized merges, but never
        // below the shared-memory bandwidth floor of the region's total
        // traffic (direct streams are cheap, random gathers expensive).
        let direct = self.region_mem_ops - self.region_indirect_ops;
        let floor: u128 = ((direct * self.m.cost.seq_bw_tenths
            + self.region_indirect_ops * self.m.cost.rand_bw_tenths)
            / 10) as u128;
        self.cycles = outer_cycles + max_thread.max(floor) + merge_serialized;
        self.active_threads = prev_active;
        self.cur_tape = prev_tape;
        self.region_mem_ops = prev_region_mem;
        self.region_indirect_ops = prev_region_ind;

        // Apply reductions onto the saved originals.
        for (k, (op, s, is_real)) in lp.red_scalars.iter().enumerate() {
            let final_v = combine(*op, red_scalar_saved[k], red_scalar_acc[k]);
            if *is_real {
                self.reals[*s as usize] = final_v;
            } else {
                self.ints[*s as usize] = final_v as i64;
            }
        }
        for (k, (op, id)) in lp.red_arrays.iter().enumerate() {
            let arr = &mut self.arr_r[*id as usize];
            for (j, v) in arr.iter_mut().enumerate() {
                *v = combine(*op, red_arr_saved[k][j], red_arr_acc[k][j]);
            }
        }
        // Restore private scalars and the counter (pre-region values).
        for (k, s) in lp.private_r.iter().enumerate() {
            self.reals[*s as usize] = saved_r[k];
        }
        for (k, s) in lp.private_i.iter().enumerate() {
            self.ints[*s as usize] = saved_i[k];
        }
        self.ints[f.var as usize] = saved_counter;
        Ok(())
    }
}

fn identity(op: RedOp) -> f64 {
    match op {
        RedOp::Add => 0.0,
        RedOp::Mul => 1.0,
        RedOp::Min => f64::INFINITY,
        RedOp::Max => f64::NEG_INFINITY,
    }
}

fn combine(op: RedOp, a: f64, b: f64) -> f64 {
    match op {
        RedOp::Add => a + b,
        RedOp::Mul => a * b,
        RedOp::Min => a.min(b),
        RedOp::Max => a.max(b),
    }
}

fn compare(op: CmpOp, a: f64, b: f64) -> bool {
    match op {
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use formad_ir::parse_program;

    fn exec(src: &str, bind: Bindings, threads: usize) -> (Bindings, ExecResult) {
        let p = parse_program(src).unwrap();
        let mut b = bind;
        let r = run(&p, &mut b, &Machine::with_threads(threads)).unwrap();
        (b, r)
    }

    const SAXPY: &str = r#"
subroutine saxpy(n, a, x, y)
  integer, intent(in) :: n
  real, intent(in) :: a
  real, intent(in) :: x(n)
  real, intent(inout) :: y(n)
  integer :: i
  !$omp parallel do shared(x, y)
  do i = 1, n
    y(i) = y(i) + a * x(i)
  end do
end subroutine
"#;

    #[test]
    fn saxpy_computes() {
        let b = Bindings::new()
            .int("n", 5)
            .real("a", 2.0)
            .real_array("x", vec![1.0, 2.0, 3.0, 4.0, 5.0])
            .real_array("y", vec![10.0; 5]);
        let (out, res) = exec(SAXPY, b, 1);
        assert_eq!(
            out.get_real_array("y").unwrap(),
            &[12.0, 14.0, 16.0, 18.0, 20.0]
        );
        assert!(res.wall_cycles > 0);
    }

    #[test]
    fn parallel_execution_matches_serial() {
        for threads in [2, 4, 7] {
            let mk = || {
                Bindings::new()
                    .int("n", 23)
                    .real("a", 1.5)
                    .real_array("x", (0..23).map(|k| k as f64).collect())
                    .real_array("y", vec![1.0; 23])
            };
            let (serial, _) = exec(SAXPY, mk(), 1);
            let (par, _) = exec(SAXPY, mk(), threads);
            assert_eq!(serial.get_real_array("y"), par.get_real_array("y"));
        }
    }

    #[test]
    fn parallel_wall_cycles_scale_down() {
        let mk = || {
            Bindings::new()
                .int("n", 1000)
                .real("a", 1.5)
                .real_array("x", vec![1.0; 1000])
                .real_array("y", vec![1.0; 1000])
        };
        let mut b1 = mk();
        let p = parse_program(SAXPY).unwrap();
        let r1 = run(&p, &mut b1, &Machine::with_threads(1)).unwrap();
        let mut b8 = mk();
        let r8 = run(&p, &mut b8, &Machine::with_threads(8)).unwrap();
        assert!(
            r8.wall_cycles * 4 < r1.wall_cycles,
            "8 threads should be ≥4× faster: {} vs {}",
            r8.wall_cycles,
            r1.wall_cycles
        );
    }

    #[test]
    fn atomic_add_is_expensive_but_correct() {
        let src = r#"
subroutine at(n, y)
  integer, intent(in) :: n
  real, intent(inout) :: y(n)
  integer :: i
  !$omp parallel do shared(y)
  do i = 1, n
    !$omp atomic
    y(i) = y(i) + 1.0
  end do
end subroutine
"#;
        let plain_src = src.replace("!$omp atomic\n", "");
        let mk = || {
            Bindings::new()
                .int("n", 100)
                .real_array("y", vec![0.0; 100])
        };
        let (oa, ra) = exec(src, mk(), 4);
        let (op_, rp) = exec(&plain_src, mk(), 4);
        assert_eq!(oa.get_real_array("y"), op_.get_real_array("y"));
        assert!(ra.wall_cycles > 2 * rp.wall_cycles);
        assert_eq!(ra.stats.atomic_ops, 100);
    }

    #[test]
    fn reduction_array_merges() {
        // Every thread increments y(1): without a reduction clause this
        // would race on real hardware; with one it must sum correctly.
        let src = r#"
subroutine red(n, y)
  integer, intent(in) :: n
  real, intent(inout) :: y(n)
  integer :: i
  !$omp parallel do reduction(+: y)
  do i = 1, n
    y(1) = y(1) + 1.0
  end do
end subroutine
"#;
        let b = Bindings::new().int("n", 50).real_array("y", vec![5.0, 0.0]);
        // n=50 but y has 2 elements: bind mismatch — fix n-sized.
        let _ = b;
        let b = Bindings::new().int("n", 50).real_array("y", vec![5.0; 50]);
        let (out, res) = exec(src, b, 4);
        assert_eq!(out.get_real_array("y").unwrap()[0], 55.0);
        assert!(res.stats.reduction_elems > 0);
        assert!(res.stats.peak_reduction_bytes >= 50 * 8 * 4);
    }

    #[test]
    fn scalar_reduction() {
        let src = r#"
subroutine dotsum(n, x, s)
  integer, intent(in) :: n
  real, intent(in) :: x(n)
  real, intent(inout) :: s
  integer :: i
  !$omp parallel do shared(x) reduction(+: s)
  do i = 1, n
    s = s + x(i)
  end do
end subroutine
"#;
        let b = Bindings::new()
            .int("n", 10)
            .real("s", 100.0)
            .real_array("x", (1..=10).map(|k| k as f64).collect());
        let (out, _) = exec(src, b, 3);
        assert_eq!(out.get_real("s"), Some(155.0));
    }

    #[test]
    fn private_scalar_isolated() {
        let src = r#"
subroutine pr(n, x, y)
  integer, intent(in) :: n
  real, intent(in) :: x(n)
  real, intent(inout) :: y(n)
  real :: t
  integer :: i
  !$omp parallel do shared(x, y) private(t)
  do i = 1, n
    t = 2.0 * x(i)
    y(i) = t * t
  end do
end subroutine
"#;
        let b = Bindings::new()
            .int("n", 6)
            .real_array("x", vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
            .real_array("y", vec![0.0; 6]);
        let (out, _) = exec(src, b, 3);
        let y = out.get_real_array("y").unwrap();
        for (k, v) in y.iter().enumerate() {
            let x = (k + 1) as f64;
            assert_eq!(*v, 4.0 * x * x);
        }
    }

    #[test]
    fn tape_push_pop_roundtrip() {
        let src = r#"
subroutine tp(n, y)
  integer, intent(in) :: n
  real, intent(inout) :: y(n)
  integer :: i
  do i = 1, n
    call push(y(i))
    y(i) = 0.0
  end do
  do i = n, 1, -1
    call pop(y(i))
  end do
end subroutine
"#;
        let b = Bindings::new()
            .int("n", 4)
            .real_array("y", vec![1.0, 2.0, 3.0, 4.0]);
        let (out, res) = exec(src, b, 1);
        assert_eq!(out.get_real_array("y").unwrap(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(res.stats.tape_pushes, 4);
        assert_eq!(res.stats.tape_pops, 4);
    }

    #[test]
    fn parallel_tapes_are_thread_local() {
        // Forward parallel loop pushes, reversed parallel loop pops: the
        // value restored at index i must be the one pushed for index i,
        // which only works if chunks map consistently.
        let src = r#"
subroutine tp(n, y)
  integer, intent(in) :: n
  real, intent(inout) :: y(n)
  integer :: i
  !$omp parallel do shared(y)
  do i = 1, n
    call push(y(i))
    y(i) = -1.0
  end do
  !$omp parallel do shared(y)
  do i = n, 1, -1
    call pop(y(i))
  end do
end subroutine
"#;
        for threads in [1, 2, 3, 8] {
            let vals: Vec<f64> = (0..17).map(|k| k as f64 * 1.25).collect();
            let b = Bindings::new().int("n", 17).real_array("y", vals.clone());
            let (out, _) = exec(src, b, threads);
            assert_eq!(
                out.get_real_array("y").unwrap(),
                vals.as_slice(),
                "T={threads}"
            );
        }
    }

    #[test]
    fn out_of_bounds_detected() {
        let src = r#"
subroutine ob(n, y)
  integer, intent(in) :: n
  real, intent(inout) :: y(n)
  integer :: i
  do i = 1, n + 1
    y(i) = 1.0
  end do
end subroutine
"#;
        let p = parse_program(src).unwrap();
        let mut b = Bindings::new().int("n", 3).real_array("y", vec![0.0; 3]);
        let err = run(&p, &mut b, &Machine::serial()).unwrap_err();
        assert!(err.message.contains("out of bounds"), "{err}");
    }

    #[test]
    fn if_else_and_inner_loops() {
        let src = r#"
subroutine cf(n, c, y)
  integer, intent(in) :: n
  integer, intent(in) :: c(n)
  real, intent(inout) :: y(n)
  integer :: i, j
  do i = 1, n
    if (c(i) .gt. 0) then
      do j = 1, c(i)
        y(i) = y(i) + 1.0
      end do
    else
      y(i) = -5.0
    end if
  end do
end subroutine
"#;
        let b = Bindings::new()
            .int("n", 4)
            .int_array("c", vec![2, 0, 3, -1])
            .real_array("y", vec![0.0; 4]);
        let (out, _) = exec(src, b, 1);
        assert_eq!(out.get_real_array("y").unwrap(), &[2.0, -5.0, 3.0, -5.0]);
    }

    #[test]
    fn unbound_parameter_rejected() {
        let p = parse_program(SAXPY).unwrap();
        let mut b = Bindings::new().int("n", 3).real_array("x", vec![0.0; 3]);
        // y and a missing.
        assert!(run(&p, &mut b, &Machine::serial()).is_err());
    }

    #[test]
    fn mod_and_intrinsics() {
        let src = r#"
subroutine mi(n, y)
  integer, intent(in) :: n
  real, intent(inout) :: y(n)
  integer :: i
  do i = 1, n
    if (mod(i, 2) .eq. 0) then
      y(i) = sqrt(4.0) + min(1.0, 2.0)
    else
      y(i) = abs(-3.0) + max(1.0, 2.0)
    end if
  end do
end subroutine
"#;
        let b = Bindings::new().int("n", 2).real_array("y", vec![0.0; 2]);
        let (out, _) = exec(src, b, 1);
        assert_eq!(out.get_real_array("y").unwrap(), &[5.0, 3.0]);
    }

    #[test]
    fn multidim_fortran_order() {
        let src = r#"
subroutine md(n, m, u)
  integer, intent(in) :: n, m
  real, intent(inout) :: u(n, m)
  integer :: i, j
  do j = 1, m
    do i = 1, n
      u(i, j) = i * 10.0 + j
    end do
  end do
end subroutine
"#;
        let b = Bindings::new()
            .int("n", 2)
            .int("m", 3)
            .real_array("u", vec![0.0; 6]);
        let (out, _) = exec(src, b, 1);
        // Column-major: u(1,1), u(2,1), u(1,2), u(2,2), u(1,3), u(2,3).
        assert_eq!(
            out.get_real_array("u").unwrap(),
            &[11.0, 21.0, 12.0, 22.0, 13.0, 23.0]
        );
    }
}
