//! Real-hardware execution of compiled bytecode.
//!
//! [`NativeEngine`] runs a [`BcProgram`] on real OS threads: sequential
//! code interprets the flat instruction array directly; every
//! `!$omp parallel do` region is dispatched to a persistent
//! [`formad_runtime::ThreadPool`] with the **same static chunk
//! scheduling** the simulated machine uses (value-ascending ranks,
//! `div_ceil` chunks), so thread `t` executes — and tapes — exactly the
//! iterations simulated thread `t` does, and results are bitwise equal
//! to the interpreter's. Logical threads are multiplexed onto at most
//! the host's physically available cores (see [`NativeEngine::new`]).
//!
//! Memory model: array elements are accessed through relaxed
//! `AtomicU64`/`AtomicI64` views (plain `mov`s on x86-64, so the
//! FormAD-proved *plain* discipline pays nothing), and `!$omp atomic`
//! increments use an acquire-release CAS loop — the same discipline as
//! [`formad_runtime::AtomicF64`]. `reduction(+: arr)` clauses privatize
//! into reusable per-thread buffers merged in ascending thread order,
//! replicating the interpreter's combine order bit for bit.
//!
//! Per-thread state (register-file copies, tapes, reduction buffers) is
//! allocated once per engine and reused across regions and runs, so the
//! hot loop performs no allocation.

use std::cell::UnsafeCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

use formad_ir::{BinOp, CmpOp, Intrinsic, Program, RedOp, Ty};
use formad_runtime::ThreadPool;

use crate::bindings::{Bindings, ExecError};
use crate::bytecode::{compile, BcParam, BcProgram, BcRegion, Instr};
use crate::lower::lower;

/// Compile `prog` against `bind` and run it with `threads` logical
/// threads, writing parameter results back into `bind` — the native
/// counterpart of [`crate::interp::run`]. For repeated execution, keep a
/// [`NativeEngine`] and a compiled [`BcProgram`] instead.
pub fn run_native(prog: &Program, bind: &mut Bindings, threads: usize) -> Result<(), ExecError> {
    let lp = lower(prog, bind)?;
    let bc = compile(&lp, prog)?;
    let mut eng = NativeEngine::new(threads);
    eng.run(&bc, bind)
}

// ---- shared-memory array views ----

/// Raw view of one array's storage; elements are accessed with relaxed
/// atomics so concurrent disjoint writes from pool workers are defined
/// behaviour (f64 bits travel through `AtomicU64`).
#[derive(Clone, Copy)]
struct RawView {
    ptr: *mut u64,
    len: usize,
}

unsafe impl Send for RawView {}
unsafe impl Sync for RawView {}

impl RawView {
    #[inline]
    fn load_r(&self, off: usize) -> f64 {
        debug_assert!(off < self.len);
        f64::from_bits(unsafe {
            (*(self.ptr.add(off) as *const AtomicU64)).load(Ordering::Relaxed)
        })
    }

    #[inline]
    fn store_r(&self, off: usize, v: f64) {
        debug_assert!(off < self.len);
        unsafe { (*(self.ptr.add(off) as *const AtomicU64)).store(v.to_bits(), Ordering::Relaxed) }
    }

    /// `!$omp atomic` increment: acquire-release CAS loop, the same
    /// protocol as `formad_runtime::AtomicF64::fetch_add`.
    #[inline]
    fn fetch_add_r(&self, off: usize, v: f64) {
        debug_assert!(off < self.len);
        let cell = unsafe { &*(self.ptr.add(off) as *const AtomicU64) };
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match cell.compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => return,
                Err(now) => cur = now,
            }
        }
    }

    #[inline]
    fn load_i(&self, off: usize) -> i64 {
        debug_assert!(off < self.len);
        unsafe { (*(self.ptr.add(off) as *const AtomicI64)).load(Ordering::Relaxed) }
    }

    #[inline]
    fn store_i(&self, off: usize, v: i64) {
        debug_assert!(off < self.len);
        unsafe { (*(self.ptr.add(off) as *const AtomicI64)).store(v, Ordering::Relaxed) }
    }
}

/// Per-array views for one run (indexed by `ArrId`).
struct Mem {
    views: Vec<RawView>,
}

// ---- per-thread state ----

/// Per-thread mutable slots with interior mutability. Soundness
/// contract: slot `t` is touched only by pool worker `t` while a region
/// runs, and only by the main thread otherwise — accesses are disjoint
/// in time and index, never concurrent on the same slot.
struct PerThread<T> {
    slots: Vec<UnsafeCell<T>>,
}

unsafe impl<T: Send> Sync for PerThread<T> {}

impl<T: Default> PerThread<T> {
    fn new(n: usize) -> PerThread<T> {
        PerThread {
            slots: (0..n).map(|_| UnsafeCell::new(T::default())).collect(),
        }
    }

    fn grow_to(&mut self, n: usize) {
        while self.slots.len() < n {
            self.slots.push(UnsafeCell::new(T::default()));
        }
    }

    /// See the type-level contract.
    #[allow(clippy::mut_from_ref)]
    unsafe fn get(&self, t: usize) -> &mut T {
        &mut *self.slots[t].get()
    }
}

/// Value tapes of one (simulated or real) thread. Tape `t` is pushed by
/// whichever code runs as thread `t` — the main thread between regions
/// (as thread 0) and pool worker `t` inside them — and persists across
/// regions, which is what lets a reversed parallel loop pop values its
/// forward twin pushed.
#[derive(Default)]
struct Tapes {
    r: Vec<f64>,
    i: Vec<i64>,
}

/// Reusable worker scratch: register-file copy and reduction buffers.
#[derive(Default)]
struct Scratch {
    reals: Vec<f64>,
    ints: Vec<i64>,
    /// `ArrId → index into red_bufs`, `u16::MAX` when not a reduction
    /// array in the current region.
    red_map: Vec<u16>,
    red_bufs: Vec<Vec<f64>>,
    err: Option<ExecError>,
    participated: bool,
}

/// Redirects real-array accesses of reduction arrays to the worker's
/// privatized buffer (everything else goes to shared memory).
struct Redirect<'a> {
    map: &'a [u16],
    bufs: &'a mut [Vec<f64>],
}

enum Exit {
    Done,
    Par { region: u16, resume: usize },
}

/// Shared array base pointers handed to AOT region workers. Sync under
/// the same contract as [`RawView`]: the generated code performs element
/// accesses through relaxed atomics, never plain concurrent writes.
struct Bases(Vec<*mut u64>);

unsafe impl Send for Bases {}
unsafe impl Sync for Bases {}

// ---- the engine ----

/// A reusable native executor: persistent thread pool plus per-thread
/// tapes and scratch buffers.
///
/// `threads` is the number of *logical* threads — it fixes the static
/// chunk schedule, the per-thread tapes, and the reduction merge order,
/// exactly like the simulated machine's thread count. Logical threads
/// are multiplexed onto at most `os_threads` real OS workers: asking a
/// host for more threads than it has cores adds context-switch noise
/// without adding parallelism, so [`NativeEngine::new`] clamps the
/// worker count to the host's available parallelism. Results are
/// bitwise-independent of the multiplexing because every logical thread
/// owns its register file, tape, and reduction buffers.
pub struct NativeEngine {
    threads: usize,
    os_threads: usize,
    pool: ThreadPool,
    tapes: PerThread<Tapes>,
    scratch: PerThread<Scratch>,
}

impl NativeEngine {
    /// An engine with `threads` logical threads on at most
    /// `min(threads, host parallelism)` OS workers.
    pub fn new(threads: usize) -> NativeEngine {
        let host = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        NativeEngine::with_os_threads(threads, threads.min(host))
    }

    /// An engine with an explicit OS-worker count (clamped to
    /// `1..=threads`). Tests use this to force genuinely concurrent
    /// workers even on small hosts.
    pub fn with_os_threads(threads: usize, os_threads: usize) -> NativeEngine {
        let threads = threads.max(1);
        let os = os_threads.clamp(1, threads);
        NativeEngine {
            threads,
            os_threads: os,
            // One worker runs regions inline on the caller's thread.
            pool: ThreadPool::new(if os > 1 { os } else { 0 }),
            tapes: PerThread::new(threads),
            scratch: PerThread::new(threads),
        }
    }

    /// The configured logical thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The OS workers parallel regions actually run on.
    pub fn os_threads(&self) -> usize {
        self.os_threads
    }

    /// Execute `bc` against `bind`: parameters are read from the
    /// bindings and written back afterwards, locals zero-initialized —
    /// the same contract (and the same error messages) as the simulated
    /// interpreter.
    pub fn run(&mut self, bc: &BcProgram, bind: &mut Bindings) -> Result<(), ExecError> {
        self.run_with(bc, None, bind)
    }

    /// Like [`NativeEngine::run`], but parallel regions dispatch to the
    /// AOT `kernel`'s compiled entry points when one is provided (and it
    /// has the region — otherwise that region interprets bytecode).
    /// Sequential code always interprets: regions are the hot path, and
    /// keeping one interpreter for the scaffolding keeps the backends
    /// trivially in lockstep everywhere except the generated functions.
    pub fn run_with(
        &mut self,
        bc: &BcProgram,
        kernel: Option<&crate::aot::AotKernel>,
        bind: &mut Bindings,
    ) -> Result<(), ExecError> {
        let mut reals = vec![0.0f64; bc.n_real_regs];
        let mut ints = vec![0i64; bc.n_int_regs];
        let param_names: Vec<&str> = bc
            .params
            .iter()
            .map(|p| match p {
                BcParam::RealScalar(n, _) | BcParam::IntScalar(n, _) | BcParam::Array(n, _) => {
                    n.as_str()
                }
            })
            .collect();
        for (name, (slot, ty)) in &bc.scalar_slots {
            match ty {
                Ty::Real => {
                    if let Some(v) = bind.real_scalars.get(name) {
                        reals[*slot as usize] = *v;
                    } else if param_names.contains(&name.as_str()) {
                        return Err(ExecError::new(format!("parameter `{name}` is unbound")));
                    }
                }
                Ty::Int => {
                    if let Some(v) = bind.int_scalars.get(name) {
                        ints[*slot as usize] = *v;
                    } else if param_names.contains(&name.as_str()) {
                        return Err(ExecError::new(format!("parameter `{name}` is unbound")));
                    }
                }
            }
        }
        let mut arr_r: Vec<Vec<f64>> = Vec::with_capacity(bc.arrays.len());
        let mut arr_i: Vec<Vec<i64>> = Vec::with_capacity(bc.arrays.len());
        for meta in &bc.arrays {
            let is_param = param_names.contains(&meta.name.as_str());
            match meta.ty {
                Ty::Real => {
                    let data = fetch_array(&bind.real_arrays, meta, is_param, 0.0)?;
                    arr_r.push(data);
                    arr_i.push(Vec::new());
                }
                Ty::Int => {
                    let data = fetch_array(&bind.int_arrays, meta, is_param, 0i64)?;
                    arr_i.push(data);
                    arr_r.push(Vec::new());
                }
            }
        }
        let mem = Mem {
            views: bc
                .arrays
                .iter()
                .enumerate()
                .map(|(k, meta)| match meta.ty {
                    Ty::Real => RawView {
                        ptr: arr_r[k].as_mut_ptr() as *mut u64,
                        len: arr_r[k].len(),
                    },
                    Ty::Int => RawView {
                        ptr: arr_i[k].as_mut_ptr() as *mut u64,
                        len: arr_i[k].len(),
                    },
                })
                .collect(),
        };

        self.tapes.grow_to(self.threads);
        self.scratch.grow_to(self.threads);
        for t in 0..self.threads {
            // Exclusive: no region is running.
            let tp = unsafe { self.tapes.get(t) };
            tp.r.clear();
            tp.i.clear();
        }

        let mut pc = 0usize;
        loop {
            let exit = exec_code(
                bc,
                &bc.code,
                pc,
                &mut reals,
                &mut ints,
                &mem,
                &self.tapes,
                0,
                None,
            )?;
            match exit {
                Exit::Done => break,
                Exit::Par { region, resume } => {
                    let reg = &bc.regions[region as usize];
                    match kernel.and_then(|k| k.region(region as usize)) {
                        Some(f) => self.run_region_aot(bc, reg, f, &mut reals, &mut ints, &mem)?,
                        None => self.run_region(bc, reg, &mut reals, &mut ints, &mem)?,
                    }
                    pc = resume;
                }
            }
        }

        // Views are dead from here on; arrays are exclusively ours again.
        drop(mem);
        for p in &bc.params {
            match p {
                BcParam::RealScalar(name, slot) => {
                    bind.real_scalars
                        .insert(name.clone(), reals[*slot as usize]);
                }
                BcParam::IntScalar(name, slot) => {
                    bind.int_scalars.insert(name.clone(), ints[*slot as usize]);
                }
                BcParam::Array(name, id) => match bc.arrays[*id as usize].ty {
                    Ty::Real => {
                        bind.real_arrays
                            .insert(name.clone(), std::mem::take(&mut arr_r[*id as usize]));
                    }
                    Ty::Int => {
                        bind.int_arrays
                            .insert(name.clone(), std::mem::take(&mut arr_i[*id as usize]));
                    }
                },
            }
        }
        Ok(())
    }

    fn run_region(
        &self,
        bc: &BcProgram,
        reg: &BcRegion,
        reals: &mut [f64],
        ints: &mut [i64],
        mem: &Mem,
    ) -> Result<(), ExecError> {
        let lo = ints[reg.lo as usize];
        let hi = ints[reg.hi as usize];
        let step = ints[reg.step as usize];
        if step == 0 {
            return Err(ExecError::new("zero loop step"));
        }
        let count: i64 = if step > 0 {
            if hi < lo {
                0
            } else {
                (hi - lo) / step + 1
            }
        } else if hi > lo {
            0
        } else {
            (lo - hi) / (-step) + 1
        };
        if count == 0 {
            return Ok(());
        }
        let t_n = self.threads;
        let chunk = (count as usize).div_ceil(t_n);
        let n_arrays = bc.arrays.len();

        let worker = |t: usize| {
            // Sound: worker `t` is the only toucher of slots `t` now.
            let scratch = unsafe { self.scratch.get(t) };
            scratch.err = None;
            scratch.participated = false;
            let a_begin = (t * chunk) as i64;
            let a_end = (((t + 1) * chunk).min(count as usize)) as i64;
            if a_begin >= a_end {
                return;
            }
            scratch.participated = true;
            // Private copy of the whole register file: privates start at
            // region-entry values, exactly like the interpreter.
            scratch.reals.clear();
            scratch.reals.extend_from_slice(reals);
            scratch.ints.clear();
            scratch.ints.extend_from_slice(ints);
            // Identity-initialize reductions for this thread.
            for (op, s, is_real) in &reg.red_scalars {
                if *is_real {
                    scratch.reals[*s as usize] = identity(*op);
                } else {
                    scratch.ints[*s as usize] = identity(*op) as i64;
                }
            }
            scratch.red_map.clear();
            scratch.red_map.resize(n_arrays, u16::MAX);
            for (k, (op, id)) in reg.red_arrays.iter().enumerate() {
                scratch.red_map[*id as usize] = k as u16;
                if scratch.red_bufs.len() <= k {
                    scratch.red_bufs.push(Vec::new());
                }
                let buf = &mut scratch.red_bufs[k];
                buf.clear();
                buf.resize(bc.arrays[*id as usize].len, identity(*op));
            }
            let Scratch {
                reals: w_reals,
                ints: w_ints,
                red_map,
                red_bufs,
                err,
                ..
            } = scratch;
            let mut redirect = Redirect {
                map: red_map,
                bufs: red_bufs,
            };
            // Ascending ranks in loop order (descending loops walk their
            // chunk backwards) — identical to the simulated machine.
            let ranks: Box<dyn Iterator<Item = i64>> = if step > 0 {
                Box::new(a_begin..a_end)
            } else {
                Box::new((a_begin..a_end).rev())
            };
            for a in ranks {
                let v = if step > 0 {
                    lo + a * step
                } else {
                    lo + (count - 1 - a) * step
                };
                w_ints[reg.var as usize] = v;
                let r = exec_code(
                    bc,
                    &reg.code,
                    0,
                    w_reals,
                    w_ints,
                    mem,
                    &self.tapes,
                    t,
                    Some(&mut redirect),
                );
                match r {
                    Ok(Exit::Done) => {}
                    Ok(Exit::Par { .. }) => unreachable!("nested regions rejected at compile"),
                    Err(e) => {
                        *err = Some(e);
                        return;
                    }
                }
            }
        };

        // Multiplex the logical threads onto the OS workers (round-robin
        // by rank). Each logical thread is claimed by exactly one worker,
        // so its scratch slot and tape stay single-toucher.
        let os = self.os_threads.min(t_n);
        if os <= 1 {
            for t in 0..t_n {
                worker(t);
            }
        } else {
            self.pool.run(os, &|w| {
                let mut t = w;
                while t < t_n {
                    worker(t);
                    t += os;
                }
            });
        }

        // First error in thread order — the order the simulated machine
        // would have encountered it.
        for t in 0..t_n {
            let scratch = unsafe { self.scratch.get(t) };
            if let Some(e) = scratch.err.take() {
                return Err(e);
            }
        }

        // Merge reductions in ascending thread order over participating
        // threads, then combine onto the pre-region value — the exact
        // association the interpreter uses.
        if !reg.red_scalars.is_empty() {
            for (op, s, is_real) in &reg.red_scalars {
                let mut acc = identity(*op);
                for t in 0..t_n {
                    let scratch = unsafe { self.scratch.get(t) };
                    if !scratch.participated {
                        continue;
                    }
                    let part = if *is_real {
                        scratch.reals[*s as usize]
                    } else {
                        scratch.ints[*s as usize] as f64
                    };
                    acc = combine(*op, acc, part);
                }
                if *is_real {
                    let saved = reals[*s as usize];
                    reals[*s as usize] = combine(*op, saved, acc);
                } else {
                    let saved = ints[*s as usize] as f64;
                    ints[*s as usize] = combine(*op, saved, acc) as i64;
                }
            }
        }
        for (k, (op, id)) in reg.red_arrays.iter().enumerate() {
            let view = mem.views[*id as usize];
            let len = bc.arrays[*id as usize].len;
            let mut acc = vec![identity(*op); len];
            for t in 0..t_n {
                let scratch = unsafe { self.scratch.get(t) };
                if !scratch.participated {
                    continue;
                }
                for (a, v) in acc.iter_mut().zip(&scratch.red_bufs[k]) {
                    *a = combine(*op, *a, *v);
                }
            }
            for (j, a) in acc.iter().enumerate() {
                view.store_r(j, combine(*op, view.load_r(j), *a));
            }
        }
        Ok(())
    }

    /// [`Self::run_region`] with the per-iteration body replaced by one
    /// call into the region's compiled entry point. Everything around
    /// that call — geometry, chunking, scratch preparation, identity
    /// initialization, error precedence, and the ascending-thread
    /// reduction merge — is kept line-for-line identical to the bytecode
    /// path, because that is what makes the backends bitwise equal.
    fn run_region_aot(
        &self,
        bc: &BcProgram,
        reg: &BcRegion,
        f: crate::aot::RegionFn,
        reals: &mut [f64],
        ints: &mut [i64],
        mem: &Mem,
    ) -> Result<(), ExecError> {
        use crate::aot::abi::{AotEnv, AotTape, FORMAD_AOT_ABI};

        let lo = ints[reg.lo as usize];
        let hi = ints[reg.hi as usize];
        let step = ints[reg.step as usize];
        if step == 0 {
            return Err(ExecError::new("zero loop step"));
        }
        let count: i64 = if step > 0 {
            if hi < lo {
                0
            } else {
                (hi - lo) / step + 1
            }
        } else if hi > lo {
            0
        } else {
            (lo - hi) / (-step) + 1
        };
        if count == 0 {
            return Ok(());
        }
        let t_n = self.threads;
        let chunk = (count as usize).div_ceil(t_n);
        let bases = Bases(mem.views.iter().map(|v| v.ptr).collect());
        // Capture the `Sync` wrapper, not its field (2021 disjoint
        // capture would otherwise seize the non-Sync `Vec` itself).
        let bases = &bases;

        let worker = |t: usize| {
            // Sound: worker `t` is the only toucher of slots `t` now.
            let scratch = unsafe { self.scratch.get(t) };
            scratch.err = None;
            scratch.participated = false;
            let a_begin = (t * chunk) as i64;
            let a_end = (((t + 1) * chunk).min(count as usize)) as i64;
            if a_begin >= a_end {
                return;
            }
            scratch.participated = true;
            scratch.reals.clear();
            scratch.reals.extend_from_slice(reals);
            scratch.ints.clear();
            scratch.ints.extend_from_slice(ints);
            for (op, s, is_real) in &reg.red_scalars {
                if *is_real {
                    scratch.reals[*s as usize] = identity(*op);
                } else {
                    scratch.ints[*s as usize] = identity(*op) as i64;
                }
            }
            for (k, (op, id)) in reg.red_arrays.iter().enumerate() {
                if scratch.red_bufs.len() <= k {
                    scratch.red_bufs.push(Vec::new());
                }
                let buf = &mut scratch.red_bufs[k];
                buf.clear();
                buf.resize(bc.arrays[*id as usize].len, identity(*op));
            }
            let red_ptrs: Vec<*mut f64> = (0..reg.red_arrays.len())
                .map(|k| scratch.red_bufs[k].as_mut_ptr())
                .collect();
            let tapes = unsafe { self.tapes.get(t) };
            let mut env = AotEnv {
                abi: FORMAD_AOT_ABI,
                lo,
                step,
                count,
                a_begin,
                a_end,
                reals: scratch.reals.as_mut_ptr(),
                ints: scratch.ints.as_mut_ptr(),
                arrays: bases.0.as_ptr(),
                red_bufs: red_ptrs.as_ptr(),
                tape_r: AotTape {
                    ptr: tapes.r.as_mut_ptr() as *mut u8,
                    len: tapes.r.len(),
                    cap: tapes.r.capacity(),
                    host: (&mut tapes.r) as *mut Vec<f64> as *mut core::ffi::c_void,
                },
                tape_i: AotTape {
                    ptr: tapes.i.as_mut_ptr() as *mut u8,
                    len: tapes.i.len(),
                    cap: tapes.i.capacity(),
                    host: (&mut tapes.i) as *mut Vec<i64> as *mut core::ffi::c_void,
                },
                grow_r: crate::aot::grow_tape_r,
                grow_i: crate::aot::grow_tape_i,
                err_value: 0,
                err_arr: 0,
                err_dim: 0,
            };
            let rc = unsafe { f(&mut env) };
            // Adopt whatever the region pushed/popped; the generated
            // epilogue synced `len` on success *and* error exits.
            unsafe {
                tapes.r.set_len(env.tape_r.len);
                tapes.i.set_len(env.tape_i.len);
            }
            if rc != 0 {
                scratch.err = Some(decode_aot_error(bc, &env, rc));
            }
        };

        let os = self.os_threads.min(t_n);
        if os <= 1 {
            for t in 0..t_n {
                worker(t);
            }
        } else {
            self.pool.run(os, &|w| {
                let mut t = w;
                while t < t_n {
                    worker(t);
                    t += os;
                }
            });
        }

        // First error in thread order — the order the simulated machine
        // would have encountered it.
        for t in 0..t_n {
            let scratch = unsafe { self.scratch.get(t) };
            if let Some(e) = scratch.err.take() {
                return Err(e);
            }
        }

        if !reg.red_scalars.is_empty() {
            for (op, s, is_real) in &reg.red_scalars {
                let mut acc = identity(*op);
                for t in 0..t_n {
                    let scratch = unsafe { self.scratch.get(t) };
                    if !scratch.participated {
                        continue;
                    }
                    let part = if *is_real {
                        scratch.reals[*s as usize]
                    } else {
                        scratch.ints[*s as usize] as f64
                    };
                    acc = combine(*op, acc, part);
                }
                if *is_real {
                    let saved = reals[*s as usize];
                    reals[*s as usize] = combine(*op, saved, acc);
                } else {
                    let saved = ints[*s as usize] as f64;
                    ints[*s as usize] = combine(*op, saved, acc) as i64;
                }
            }
        }
        for (k, (op, id)) in reg.red_arrays.iter().enumerate() {
            let view = mem.views[*id as usize];
            let len = bc.arrays[*id as usize].len;
            let mut acc = vec![identity(*op); len];
            for t in 0..t_n {
                let scratch = unsafe { self.scratch.get(t) };
                if !scratch.participated {
                    continue;
                }
                for (a, v) in acc.iter_mut().zip(&scratch.red_bufs[k]) {
                    *a = combine(*op, *a, *v);
                }
            }
            for (j, a) in acc.iter().enumerate() {
                view.store_r(j, combine(*op, view.load_r(j), *a));
            }
        }
        Ok(())
    }
}

/// Re-render an AOT region error code as the exact interpreter message.
fn decode_aot_error(bc: &BcProgram, env: &crate::aot::abi::AotEnv, rc: i32) -> ExecError {
    use crate::aot::abi as a;
    match rc {
        a::AOT_ERR_OOB => {
            let meta = &bc.arrays[env.err_arr as usize];
            let dim = env.err_dim as usize;
            oob(env.err_value, meta.dims[dim], dim + 1, &meta.name)
        }
        a::AOT_ERR_DIV_ZERO => ExecError::new("integer division by zero"),
        a::AOT_ERR_MOD_ZERO => ExecError::new("mod by zero"),
        a::AOT_ERR_NEG_EXP => ExecError::new("negative integer exponent"),
        a::AOT_ERR_POW_OVERFLOW => ExecError::new("integer overflow in **"),
        a::AOT_ERR_ZERO_STEP => ExecError::new("zero loop step"),
        a::AOT_ERR_POP_EMPTY_R => ExecError::new("pop from empty real tape"),
        a::AOT_ERR_POP_EMPTY_I => ExecError::new("pop from empty int tape"),
        other => ExecError::new(format!("AOT region returned unknown error code {other}")),
    }
}

fn fetch_array<T: Clone>(
    bound: &HashMap<String, Vec<T>>,
    meta: &crate::bytecode::BcArray,
    is_param: bool,
    zero: T,
) -> Result<Vec<T>, ExecError> {
    match bound.get(&meta.name) {
        Some(v) => {
            if v.len() != meta.len {
                return Err(ExecError::new(format!(
                    "array `{}` bound with {} elements, declared {}",
                    meta.name,
                    v.len(),
                    meta.len
                )));
            }
            Ok(v.clone())
        }
        None if is_param => Err(ExecError::new(format!(
            "parameter array `{}` is unbound",
            meta.name
        ))),
        None => Ok(vec![zero; meta.len]),
    }
}

// ---- the instruction loop ----

/// Execute `code` from `pc` until `Halt` or `EnterPar`. Used for both
/// the main program (thread 0's tape, no redirect) and region bodies
/// (worker tape, reduction redirect).
#[allow(clippy::too_many_arguments)]
fn exec_code(
    bc: &BcProgram,
    code: &[Instr],
    mut pc: usize,
    reals: &mut [f64],
    ints: &mut [i64],
    mem: &Mem,
    tapes: &PerThread<Tapes>,
    tape_id: usize,
    mut redirect: Option<&mut Redirect<'_>>,
) -> Result<Exit, ExecError> {
    macro_rules! rr {
        ($r:expr) => {
            reals[$r as usize]
        };
    }
    macro_rules! ii {
        ($r:expr) => {
            ints[$r as usize]
        };
    }
    loop {
        let instr = code[pc];
        pc += 1;
        match instr {
            Instr::ConstR { dst, v } => rr!(dst) = v,
            Instr::ConstI { dst, v } => ii!(dst) = v,
            Instr::MovR { dst, src } => rr!(dst) = rr!(src),
            Instr::MovI { dst, src } => ii!(dst) = ii!(src),
            Instr::ItoR { dst, src } => rr!(dst) = ii!(src) as f64,
            Instr::BinR { op, dst, a, b } => {
                let x = rr!(a);
                let y = rr!(b);
                rr!(dst) = match op {
                    BinOp::Add => x + y,
                    BinOp::Sub => x - y,
                    BinOp::Mul => x * y,
                    BinOp::Div => x / y,
                    BinOp::Pow => x.powf(y),
                    BinOp::Mod => return Err(ExecError::new("mod in real context")),
                };
            }
            Instr::BinI { op, dst, a, b } => {
                let x = ii!(a);
                let y = ii!(b);
                ii!(dst) = match op {
                    BinOp::Add => x + y,
                    BinOp::Sub => x - y,
                    BinOp::Mul => x * y,
                    BinOp::Div => {
                        if y == 0 {
                            return Err(ExecError::new("integer division by zero"));
                        }
                        x / y
                    }
                    BinOp::Mod => {
                        if y == 0 {
                            return Err(ExecError::new("mod by zero"));
                        }
                        x % y
                    }
                    BinOp::Pow => {
                        if y < 0 {
                            return Err(ExecError::new("negative integer exponent"));
                        }
                        x.checked_pow(y as u32)
                            .ok_or_else(|| ExecError::new("integer overflow in **"))?
                    }
                };
            }
            Instr::NegR { dst, a } => rr!(dst) = -rr!(a),
            Instr::NegI { dst, a } => ii!(dst) = -ii!(a),
            Instr::Call1R { f, dst, a } => {
                let x = rr!(a);
                rr!(dst) = match f {
                    Intrinsic::Sin => x.sin(),
                    Intrinsic::Cos => x.cos(),
                    Intrinsic::Exp => x.exp(),
                    Intrinsic::Log => x.ln(),
                    Intrinsic::Sqrt => x.sqrt(),
                    Intrinsic::Tanh => x.tanh(),
                    Intrinsic::Abs => x.abs(),
                    Intrinsic::Min | Intrinsic::Max => {
                        unreachable!("binary intrinsic compiled as Call1R")
                    }
                };
            }
            Instr::Call2R { f, dst, a, b } => {
                let x = rr!(a);
                let y = rr!(b);
                rr!(dst) = match f {
                    Intrinsic::Min => x.min(y),
                    Intrinsic::Max => x.max(y),
                    _ => unreachable!("unary intrinsic compiled as Call2R"),
                };
            }
            Instr::Call1I { f, dst, a } => {
                debug_assert!(matches!(f, Intrinsic::Abs));
                let _ = f;
                ii!(dst) = ii!(a).abs();
            }
            Instr::Call2I { f, dst, a, b } => {
                let x = ii!(a);
                let y = ii!(b);
                ii!(dst) = match f {
                    Intrinsic::Min => x.min(y),
                    Intrinsic::Max => x.max(y),
                    _ => unreachable!("unary intrinsic compiled as Call2I"),
                };
            }
            // Integer comparisons go through f64 exactly like the
            // interpreter's `compare`.
            Instr::CmpR { op, dst, a, b } => ii!(dst) = compare(op, rr!(a), rr!(b)) as i64,
            Instr::CmpI { op, dst, a, b } => {
                ii!(dst) = compare(op, ii!(a) as f64, ii!(b) as f64) as i64
            }
            Instr::IdxFirst { dst, idx, arr } => {
                let meta = &bc.arrays[arr as usize];
                let v = ii!(idx);
                let d = meta.dims[0];
                if v < 1 || v > d {
                    return Err(oob(v, d, 1, &meta.name));
                }
                ii!(dst) = v - 1;
            }
            Instr::IdxAcc { acc, idx, arr, dim } => {
                let meta = &bc.arrays[arr as usize];
                let v = ii!(idx);
                let d = meta.dims[dim as usize];
                if v < 1 || v > d {
                    return Err(oob(v, d, dim as usize + 1, &meta.name));
                }
                ii!(acc) += (v - 1) * meta.strides[dim as usize];
            }
            Instr::LoadR { dst, arr, off } => {
                let off = ii!(off) as usize;
                rr!(dst) = match red_buf(&mut redirect, arr) {
                    Some(buf) => buf[off],
                    None => mem.views[arr as usize].load_r(off),
                };
            }
            Instr::LoadI { dst, arr, off } => {
                ii!(dst) = mem.views[arr as usize].load_i(ii!(off) as usize)
            }
            Instr::StoreR { arr, off, src } => {
                let off = ii!(off) as usize;
                let v = rr!(src);
                match red_buf(&mut redirect, arr) {
                    Some(buf) => buf[off] = v,
                    None => mem.views[arr as usize].store_r(off, v),
                }
            }
            Instr::StoreI { arr, off, src } => {
                mem.views[arr as usize].store_i(ii!(off) as usize, ii!(src))
            }
            Instr::AtomicAddR { arr, off, src } => {
                let off = ii!(off) as usize;
                let v = rr!(src);
                match red_buf(&mut redirect, arr) {
                    Some(buf) => buf[off] += v,
                    None => mem.views[arr as usize].fetch_add_r(off, v),
                }
            }
            Instr::IncR { arr, off, src } => {
                let off = ii!(off) as usize;
                let v = rr!(src);
                match red_buf(&mut redirect, arr) {
                    Some(buf) => buf[off] += v,
                    None => {
                        let view = &mem.views[arr as usize];
                        view.store_r(off, view.load_r(off) + v);
                    }
                }
            }
            Instr::PushR { src } => {
                let v = rr!(src);
                // Sound: tape `tape_id` is exclusively this thread's.
                unsafe { tapes.get(tape_id) }.r.push(v);
            }
            Instr::PushI { src } => {
                let v = ii!(src);
                unsafe { tapes.get(tape_id) }.i.push(v);
            }
            Instr::PopR { dst } => {
                rr!(dst) = unsafe { tapes.get(tape_id) }
                    .r
                    .pop()
                    .ok_or_else(|| ExecError::new("pop from empty real tape"))?;
            }
            Instr::PopI { dst } => {
                ii!(dst) = unsafe { tapes.get(tape_id) }
                    .i
                    .pop()
                    .ok_or_else(|| ExecError::new("pop from empty int tape"))?;
            }
            Instr::PopElemR { arr, off } => {
                let off = ii!(off) as usize;
                let v = unsafe { tapes.get(tape_id) }
                    .r
                    .pop()
                    .ok_or_else(|| ExecError::new("pop from empty real tape"))?;
                match red_buf(&mut redirect, arr) {
                    Some(buf) => buf[off] = v,
                    None => mem.views[arr as usize].store_r(off, v),
                }
            }
            Instr::PopElemI { arr, off } => {
                let off = ii!(off) as usize;
                let v = unsafe { tapes.get(tape_id) }
                    .i
                    .pop()
                    .ok_or_else(|| ExecError::new("pop from empty int tape"))?;
                mem.views[arr as usize].store_i(off, v);
            }
            Instr::Jmp { target } => pc = target as usize,
            Instr::JmpIfZero { cond, target } => {
                if ii!(cond) == 0 {
                    pc = target as usize;
                }
            }
            Instr::StepNz { step } => {
                if ii!(step) == 0 {
                    return Err(ExecError::new("zero loop step"));
                }
            }
            Instr::LoopCond { dst, v, hi, step } => {
                let cont = if ii!(step) > 0 {
                    ii!(v) <= ii!(hi)
                } else {
                    ii!(v) >= ii!(hi)
                };
                ii!(dst) = cont as i64;
            }
            Instr::EnterPar { region } => {
                if redirect.is_some() {
                    return Err(ExecError::new("nested parallel region at runtime"));
                }
                return Ok(Exit::Par { region, resume: pc });
            }
            Instr::Halt => return Ok(Exit::Done),
        }
    }
}

/// The privatized buffer for `arr` in the current region, if any.
#[inline]
fn red_buf<'a>(redirect: &'a mut Option<&mut Redirect<'_>>, arr: u16) -> Option<&'a mut Vec<f64>> {
    match redirect {
        Some(r) => {
            let k = r.map[arr as usize];
            if k == u16::MAX {
                None
            } else {
                Some(&mut r.bufs[k as usize])
            }
        }
        None => None,
    }
}

fn oob(v: i64, d: i64, dim: usize, name: &str) -> ExecError {
    ExecError::new(format!(
        "index {v} out of bounds 1..={d} in dimension {dim} of `{name}`"
    ))
}

fn identity(op: RedOp) -> f64 {
    match op {
        RedOp::Add => 0.0,
        RedOp::Mul => 1.0,
        RedOp::Min => f64::INFINITY,
        RedOp::Max => f64::NEG_INFINITY,
    }
}

fn combine(op: RedOp, a: f64, b: f64) -> f64 {
    match op {
        RedOp::Add => a + b,
        RedOp::Mul => a * b,
        RedOp::Min => a.min(b),
        RedOp::Max => a.max(b),
    }
}

fn compare(op: CmpOp, a: f64, b: f64) -> bool {
    match op {
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
    }
}
