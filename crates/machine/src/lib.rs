//! # formad-machine
//!
//! Execution substrate for the FormAD reproduction:
//!
//! - [`mod@lower`]: compiles `formad-ir` programs to a slot-resolved form;
//! - [`interp`]: a deterministic interpreter with a **simulated
//!   shared-memory multiprocessor** — static-scheduled simulated threads,
//!   thread-local tapes, privatizing `reduction` clauses, and a calibrated
//!   [`cost::CostModel`] charging plain/atomic/reduction accesses so the
//!   paper's scalability experiments (run on an 18-core Xeon) can be
//!   regenerated on a single-core host;
//! - [`fd`]: dot-product (finite-difference) validation of adjoints and
//!   tangents.
//!
//! Semantics are exact and thread-count independent; only the *cycle
//! accounting* models parallel hardware. See `DESIGN.md` for the
//! substitution rationale.

pub mod bindings;
pub mod cost;
pub mod fd;
pub mod interp;
pub mod lower;

pub use bindings::{Bindings, ExecError};
pub use cost::{CostModel, ExecResult, ExecStats};
pub use fd::{dot_product_test, tangent_dot_test, DotTest};
pub use interp::{run, Machine};
pub use lower::{lower, LProgram};
