//! # formad-machine
//!
//! Execution substrate for the FormAD reproduction:
//!
//! - [`mod@lower`]: compiles `formad-ir` programs to a slot-resolved form;
//! - [`interp`]: a deterministic interpreter with a **simulated
//!   shared-memory multiprocessor** — static-scheduled simulated threads,
//!   thread-local tapes, privatizing `reduction` clauses, and a calibrated
//!   [`cost::CostModel`] charging plain/atomic/reduction accesses so the
//!   paper's scalability experiments (run on an 18-core Xeon) can be
//!   regenerated on a single-core host;
//! - [`bytecode`] + [`exec`]: the **native backend** — lowered programs
//!   compile to a flat register bytecode executed on real OS threads via
//!   a persistent `formad-runtime` pool, with the same static chunk
//!   schedule as the simulator and bitwise-identical results;
//! - [`aot`]: the **AOT backend** — parallel regions emitted as
//!   specialized Rust source (strides and extents baked in, increment
//!   disciplines compiled rather than branched on), built once via
//!   `rustc` into a hash-keyed cdylib cache and run on the same pool
//!   and schedule as the bytecode engine; failures degrade to bytecode,
//!   results stay bitwise-identical across all three backends;
//! - [`fd`]: dot-product (finite-difference) validation of adjoints and
//!   tangents, parameterized over the execution backend.
//!
//! Semantics are exact, backend- and thread-count independent; only the
//! *cycle accounting* models parallel hardware. See `DESIGN.md`
//! ("Execution backends") for the substitution rationale.

pub mod aot;
pub mod bindings;
pub mod bytecode;
pub mod cost;
pub mod driver;
pub mod exec;
pub mod fd;
pub mod interp;
pub mod lower;

pub use aot::{load_or_compile, run_aot, AotError, AotKernel};
pub use bindings::{Bindings, ExecError};
pub use bytecode::{compile, BcProgram};
pub use cost::{CostModel, ExecResult, ExecStats};
pub use driver::{bind_params, fill_real, output_lines, BindError};
pub use exec::{run_native, NativeEngine};
pub use fd::{dot_product_test, dot_product_test_with, tangent_dot_test, DotTest};
pub use interp::{run, Machine};
pub use lower::{lower, LProgram};
