//! Finite-difference validation of generated derivatives.
//!
//! The standard dot-product test: for the primal map `y = F(x)`, reverse
//! mode computes `x̄ = Jᵀ ȳ`. Central finite differences approximate the
//! directional derivative `J·v`. Correctness requires
//! `⟨ȳ, J·v⟩ = ⟨x̄, v⟩` for random `ȳ`, `v` — checked here to a relative
//! tolerance. The tangent-mode variant checks `⟨w, ẏ⟩` for `ẏ = J·ẋ`
//! against the same finite-difference value directly.

use formad_ir::Program;

use crate::bindings::{Bindings, ExecError};
use crate::interp::{run, Machine};

/// Outcome of one dot-product test.
#[derive(Debug, Clone)]
pub struct DotTest {
    /// ⟨ȳ, J·v⟩ from central finite differences on the primal.
    pub fd_value: f64,
    /// ⟨x̄, v⟩ from the adjoint program (or ⟨w, ẏ⟩ from the tangent
    /// program in [`tangent_dot_test`]).
    pub adjoint_value: f64,
    /// |fd − adj| / max(|fd|, |adj|, 1e-12).
    pub rel_error: f64,
}

impl DotTest {
    /// Does the test pass at tolerance `tol`?
    pub fn passes(&self, tol: f64) -> bool {
        self.rel_error <= tol
    }
}

/// Run the dot-product test.
///
/// * `primal` — the original subroutine; `adjoint` — its reverse-mode
///   transformation (parameters: primal's plus `xb`-style adjoints).
/// * `base` — bindings for all primal parameters.
/// * `independents` / `dependents` — real *array* parameter names being
///   differentiated (scalar in/outputs can be modeled as 1-element
///   arrays).
/// * `v` — direction per independent (same length as the array);
///   `ybar` — weights per dependent.
/// * `machine` — thread count/cost model (results must not depend on it).
#[allow(clippy::too_many_arguments)]
pub fn dot_product_test(
    primal: &Program,
    adjoint: &Program,
    base: &Bindings,
    independents: &[(&str, Vec<f64>)],
    dependents: &[(&str, Vec<f64>)],
    machine: &Machine,
    h: f64,
    suffix: &str,
) -> Result<DotTest, ExecError> {
    dot_product_test_with(
        primal,
        adjoint,
        base,
        independents,
        dependents,
        h,
        suffix,
        |p, b| run(p, b, machine).map(|_| ()),
    )
}

/// [`dot_product_test`] with a caller-supplied runner, so adjoints can be
/// validated under *any* execution backend (e.g. the native bytecode
/// executor via [`crate::exec::run_native`]) — the runner executes a
/// program against bindings, writing parameter results back.
#[allow(clippy::too_many_arguments)]
pub fn dot_product_test_with<R>(
    primal: &Program,
    adjoint: &Program,
    base: &Bindings,
    independents: &[(&str, Vec<f64>)],
    dependents: &[(&str, Vec<f64>)],
    h: f64,
    suffix: &str,
    mut runner: R,
) -> Result<DotTest, ExecError>
where
    R: FnMut(&Program, &mut Bindings) -> Result<(), ExecError>,
{
    // --- finite differences: g(s) = ⟨ȳ, F(x + s·v)⟩ -----------------------
    let mut eval_g = |s: f64| -> Result<f64, ExecError> {
        let mut b = base.clone();
        for (name, v) in independents {
            let arr = b
                .real_arrays
                .get_mut(*name)
                .ok_or_else(|| ExecError::new(format!("independent `{name}` unbound")))?;
            for (a, d) in arr.iter_mut().zip(v) {
                *a += s * d;
            }
        }
        runner(primal, &mut b)?;
        let mut g = 0.0;
        for (name, w) in dependents {
            let arr = b
                .get_real_array(name)
                .ok_or_else(|| ExecError::new(format!("dependent `{name}` unbound")))?;
            for (y, wy) in arr.iter().zip(w) {
                g += y * wy;
            }
        }
        Ok(g)
    };
    let fd_value = (eval_g(h)? - eval_g(-h)?) / (2.0 * h);

    // --- adjoint: x̄ = Jᵀ ȳ, then ⟨x̄, v⟩ ---------------------------------
    let mut b = base.clone();
    for (name, w) in dependents {
        let arr_len = base
            .get_real_array(name)
            .ok_or_else(|| ExecError::new(format!("dependent `{name}` unbound")))?
            .len();
        assert_eq!(arr_len, w.len(), "seed length mismatch for {name}");
        b.real_arrays.insert(format!("{name}{suffix}"), w.clone());
    }
    for (name, v) in independents {
        // Zero-initialized adjoint accumulators (unless the variable is
        // also a dependent and already seeded).
        let key = format!("{name}{suffix}");
        b.real_arrays
            .entry(key)
            .or_insert_with(|| vec![0.0; v.len()]);
    }
    // Any other active adjoint parameters default to zero.
    for d in &adjoint.params {
        if d.is_array() && !b.real_arrays.contains_key(&d.name) && d.ty == formad_ir::Ty::Real {
            if let Some(stem) = d.name.strip_suffix(suffix) {
                if let Some(primal_arr) = base.get_real_array(stem) {
                    b.real_arrays
                        .insert(d.name.clone(), vec![0.0; primal_arr.len()]);
                }
            }
        }
    }
    runner(adjoint, &mut b)?;
    let mut adjoint_value = 0.0;
    for (name, v) in independents {
        let xb = b
            .get_real_array(&format!("{name}{suffix}"))
            .ok_or_else(|| ExecError::new(format!("adjoint of `{name}` missing")))?;
        for (g, d) in xb.iter().zip(v) {
            adjoint_value += g * d;
        }
    }

    let denom = fd_value.abs().max(adjoint_value.abs()).max(1e-12);
    Ok(DotTest {
        fd_value,
        adjoint_value,
        rel_error: (fd_value - adjoint_value).abs() / denom,
    })
}

/// Run the tangent-mode dot-product test.
///
/// For `ẏ = J·ẋ` the directional derivative `⟨w, J·ẋ⟩` is approximated
/// with central finite differences on the primal and compared against
/// `⟨w, ẏ⟩` from one tangent run seeded with `ẋ`.
///
/// * `tangent` — the forward-mode transformation of `primal` (parameters:
///   primal's plus `xd`-style tangents).
/// * `independents` — per array, the seed direction `ẋ`;
///   `dependents` — per array, the weight vector `w`.
/// * `suffix` — the tangent-variable suffix (`"d"` for `differentiate_tangent`).
#[allow(clippy::too_many_arguments)]
pub fn tangent_dot_test(
    primal: &Program,
    tangent: &Program,
    base: &Bindings,
    independents: &[(&str, Vec<f64>)],
    dependents: &[(&str, Vec<f64>)],
    machine: &Machine,
    h: f64,
    suffix: &str,
) -> Result<DotTest, ExecError> {
    // --- finite differences: g(s) = ⟨w, F(x + s·ẋ)⟩ -----------------------
    let eval_g = |s: f64| -> Result<f64, ExecError> {
        let mut b = base.clone();
        for (name, v) in independents {
            let arr = b
                .real_arrays
                .get_mut(*name)
                .ok_or_else(|| ExecError::new(format!("independent `{name}` unbound")))?;
            for (a, d) in arr.iter_mut().zip(v) {
                *a += s * d;
            }
        }
        run(primal, &mut b, machine)?;
        let mut g = 0.0;
        for (name, w) in dependents {
            let arr = b
                .get_real_array(name)
                .ok_or_else(|| ExecError::new(format!("dependent `{name}` unbound")))?;
            for (y, wy) in arr.iter().zip(w) {
                g += y * wy;
            }
        }
        Ok(g)
    };
    let fd_value = (eval_g(h)? - eval_g(-h)?) / (2.0 * h);

    // --- tangent: ẏ = J·ẋ, then ⟨w, ẏ⟩ -----------------------------------
    let mut b = base.clone();
    for (name, v) in independents {
        let arr_len = base
            .get_real_array(name)
            .ok_or_else(|| ExecError::new(format!("independent `{name}` unbound")))?
            .len();
        assert_eq!(arr_len, v.len(), "seed length mismatch for {name}");
        b.real_arrays.insert(format!("{name}{suffix}"), v.clone());
    }
    for (name, w) in dependents {
        // Zero-initialized tangent outputs (unless the variable is also
        // an independent and already seeded).
        let key = format!("{name}{suffix}");
        b.real_arrays
            .entry(key)
            .or_insert_with(|| vec![0.0; w.len()]);
    }
    // Any other active tangent parameters default to zero.
    for d in &tangent.params {
        if d.is_array() && !b.real_arrays.contains_key(&d.name) && d.ty == formad_ir::Ty::Real {
            if let Some(stem) = d.name.strip_suffix(suffix) {
                if let Some(primal_arr) = base.get_real_array(stem) {
                    b.real_arrays
                        .insert(d.name.clone(), vec![0.0; primal_arr.len()]);
                }
            }
        }
    }
    run(tangent, &mut b, machine)?;
    let mut tangent_value = 0.0;
    for (name, w) in dependents {
        let yd = b
            .get_real_array(&format!("{name}{suffix}"))
            .ok_or_else(|| ExecError::new(format!("tangent of `{name}` missing")))?;
        for (g, wy) in yd.iter().zip(w) {
            tangent_value += g * wy;
        }
    }

    let denom = fd_value.abs().max(tangent_value.abs()).max(1e-12);
    Ok(DotTest {
        fd_value,
        adjoint_value: tangent_value,
        rel_error: (fd_value - tangent_value).abs() / denom,
    })
}
