//! AOT native backend: compile lowered parallel regions to a real
//! cdylib and run them through [`crate::exec::NativeEngine`].
//!
//! Pipeline: [`codegen::generate_source`] emits one specialized Rust
//! function per parallel region; the source is hashed (FNV-1a × 2,
//! 128 bits — the hash covers the embedded ABI text, so an ABI bump
//! changes every key); `rustc` compiles it once into
//! `formad_aot_<hash>.so` in the kernel cache directory; `dlopen` loads
//! it and the region functions are dispatched by
//! [`NativeEngine::run_with`] with the exact chunk schedule, scratch
//! preparation, and reduction merge the bytecode path uses — which is
//! why results stay bitwise identical.
//!
//! Cache directory resolution: `FORMAD_AOT_DIR` env var, else
//! `$CARGO_TARGET_DIR/formad-aot`, else a `formad-aot` directory inside
//! the nearest `target` ancestor of the running executable, else the
//! system temp dir. The generated `.rs` is kept beside the `.so` for
//! inspection and CI artifact upload. Artifacts are written via
//! temp-file + rename so concurrent processes never observe a torn
//! `.so`. Loaded libraries are never `dlclose`d (region functions must
//! stay callable for the process lifetime); a process-wide registry
//! dedups loads by hash.
//!
//! Failure contract: every error here is an [`AotError`] the caller is
//! expected to *degrade* on — [`run_aot`] and the CLI/service wire-ups
//! fall back to the bytecode backend, report the reason, and still
//! return bitwise-correct results. Test hook: `FORMAD_AOT_RUSTC`
//! overrides the compiler binary, so pointing it at a nonexistent path
//! forces the compile-failure path deterministically.

pub mod abi;
mod codegen;

use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use formad_ir::Program;

use crate::bindings::{Bindings, ExecError};
use crate::bytecode::{compile, BcProgram};
use crate::exec::NativeEngine;
use crate::lower::{lower, LProgram};

pub use codegen::generate_source;

/// Signature of a generated region entry point.
pub type RegionFn = unsafe extern "C" fn(*mut abi::AotEnv) -> i32;

/// A loaded AOT kernel: one entry point per parallel region of one
/// lowered program, plus the cache paths it came from.
pub struct AotKernel {
    regions: Vec<RegionFn>,
    hash: String,
    lib_path: PathBuf,
    source_path: PathBuf,
    /// Leaked-on-purpose dlopen handle (never closed — see module docs).
    _lib: dl::Lib,
}

impl AotKernel {
    /// Entry point of region `k`, if the kernel has one.
    pub fn region(&self, k: usize) -> Option<RegionFn> {
        self.regions.get(k).copied()
    }

    /// Number of region entry points.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// 128-bit source hash (the cache key).
    pub fn hash(&self) -> &str {
        &self.hash
    }

    /// Path of the loaded shared object.
    pub fn lib_path(&self) -> &Path {
        &self.lib_path
    }

    /// Path of the generated Rust source kept beside the artifact.
    pub fn source_path(&self) -> &Path {
        &self.source_path
    }
}

/// Why an AOT kernel could not be produced or loaded. Callers degrade to
/// the bytecode backend on every variant.
#[derive(Debug, Clone)]
pub enum AotError {
    /// The lowered program has a shape codegen does not handle.
    Codegen(String),
    /// Filesystem trouble in the cache directory.
    Io(String),
    /// `rustc` failed (or could not be spawned).
    Compile(String),
    /// `dlopen`/`dlsym` failed or the artifact's ABI disagrees.
    Load(String),
}

impl fmt::Display for AotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AotError::Codegen(m) => write!(f, "aot codegen: {m}"),
            AotError::Io(m) => write!(f, "aot cache: {m}"),
            AotError::Compile(m) => write!(f, "aot compile: {m}"),
            AotError::Load(m) => write!(f, "aot load: {m}"),
        }
    }
}

impl std::error::Error for AotError {}

// ---- stats ----

struct Stats {
    compiles: AtomicU64,
    disk_hits: AtomicU64,
    cache_hits: AtomicU64,
    failures: AtomicU64,
}

static STATS: Stats = Stats {
    compiles: AtomicU64::new(0),
    disk_hits: AtomicU64::new(0),
    cache_hits: AtomicU64::new(0),
    failures: AtomicU64::new(0),
};

/// Process-wide AOT activity counters (reported by `/v1/status`).
#[derive(Debug, Clone, Copy, Default)]
pub struct AotStats {
    /// Artifacts built by invoking `rustc`.
    pub compiles: u64,
    /// Artifacts found prebuilt in the cache directory.
    pub disk_hits: u64,
    /// Lookups served by the in-process registry.
    pub cache_hits: u64,
    /// Codegen/compile/load failures (each one degraded to bytecode).
    pub failures: u64,
}

/// Snapshot the process-wide counters.
pub fn stats() -> AotStats {
    AotStats {
        compiles: STATS.compiles.load(Ordering::Relaxed),
        disk_hits: STATS.disk_hits.load(Ordering::Relaxed),
        cache_hits: STATS.cache_hits.load(Ordering::Relaxed),
        failures: STATS.failures.load(Ordering::Relaxed),
    }
}

// ---- cache ----

/// The kernel cache directory (see module docs for the resolution
/// order). Not created until an artifact is written.
pub fn cache_dir() -> PathBuf {
    if let Some(d) = std::env::var_os("FORMAD_AOT_DIR") {
        if !d.is_empty() {
            return PathBuf::from(d);
        }
    }
    if let Some(d) = std::env::var_os("CARGO_TARGET_DIR") {
        if !d.is_empty() {
            return PathBuf::from(d).join("formad-aot");
        }
    }
    if let Ok(exe) = std::env::current_exe() {
        for anc in exe.ancestors() {
            if anc.file_name().is_some_and(|n| n == "target") {
                return anc.join("formad-aot");
            }
        }
    }
    std::env::temp_dir().join("formad-aot")
}

/// 128-bit content hash as 32 hex chars: two independent FNV-1a-style
/// streams. Not cryptographic — it keys a local build cache, where the
/// failure mode of a collision is a stale-but-ABI-checked artifact.
fn fnv128_hex(s: &str) -> String {
    let mut h1: u64 = 0xcbf2_9ce4_8422_2325;
    let mut h2: u64 = 0x6c62_272e_07bb_0142;
    for b in s.bytes() {
        h1 = (h1 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        h2 = (h2 ^ u64::from(b)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }
    format!("{h1:016x}{h2:016x}")
}

fn registry() -> &'static Mutex<HashMap<String, Arc<AotKernel>>> {
    static REG: OnceLock<Mutex<HashMap<String, Arc<AotKernel>>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Atomic file write: temp name in the same directory, then rename.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), AotError> {
    let dir = path.parent().unwrap_or(Path::new("."));
    let tmp = dir.join(format!(
        ".{}.{}.tmp",
        path.file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default(),
        std::process::id()
    ));
    std::fs::write(&tmp, bytes)
        .map_err(|e| AotError::Io(format!("write {}: {e}", tmp.display())))?;
    std::fs::rename(&tmp, path).map_err(|e| AotError::Io(format!("rename {}: {e}", path.display())))
}

fn rustc_bin() -> std::ffi::OsString {
    std::env::var_os("FORMAD_AOT_RUSTC").unwrap_or_else(|| "rustc".into())
}

/// Compile `src` into a cdylib at `out` (temp + rename). Generated code
/// is always optimized and wraps on integer overflow, matching the
/// release-built interpreter.
fn compile_cdylib(src: &Path, out: &Path) -> Result<(), AotError> {
    let tmp = out.with_extension(format!("so.{}.tmp", std::process::id()));
    let res = std::process::Command::new(rustc_bin())
        .arg("--edition=2021")
        .arg("--crate-type=cdylib")
        .arg("--crate-name=formad_aot_kernel")
        .arg("-Copt-level=3")
        .arg("-Cpanic=abort")
        .arg("-Ccodegen-units=1")
        .arg("-Cdebug-assertions=no")
        .arg("-o")
        .arg(&tmp)
        .arg(src)
        .output();
    let out_res = match res {
        Ok(o) => o,
        Err(e) => {
            return Err(AotError::Compile(format!(
                "failed to spawn `{}`: {e}",
                rustc_bin().to_string_lossy()
            )))
        }
    };
    if !out_res.status.success() {
        let mut msg = String::from_utf8_lossy(&out_res.stderr).into_owned();
        if msg.len() > 2000 {
            msg.truncate(2000);
            msg.push_str(" …");
        }
        let _ = std::fs::remove_file(&tmp);
        return Err(AotError::Compile(format!("rustc failed: {msg}")));
    }
    std::fs::rename(&tmp, out).map_err(|e| AotError::Io(format!("rename {}: {e}", out.display())))
}

// ---- loading ----

#[cfg(unix)]
mod dl {
    use std::ffi::{c_char, c_int, c_void, CStr, CString};

    // glibc ≥ 2.34 (and musl) fold libdl into libc, so plain extern
    // declarations resolve without an explicit `-ldl`.
    extern "C" {
        fn dlopen(file: *const c_char, mode: c_int) -> *mut c_void;
        fn dlsym(handle: *mut c_void, sym: *const c_char) -> *mut c_void;
        fn dlerror() -> *mut c_char;
    }

    const RTLD_NOW: c_int = 2;

    /// An open shared object. Never closed; see the module docs.
    pub struct Lib(*mut c_void);

    unsafe impl Send for Lib {}
    unsafe impl Sync for Lib {}

    fn last_error() -> String {
        unsafe {
            let p = dlerror();
            if p.is_null() {
                "unknown dl error".to_string()
            } else {
                CStr::from_ptr(p).to_string_lossy().into_owned()
            }
        }
    }

    pub fn open(path: &std::path::Path) -> Result<Lib, String> {
        let Some(s) = path.to_str() else {
            return Err(format!("non-UTF-8 artifact path {}", path.display()));
        };
        let c = CString::new(s).map_err(|_| "NUL in artifact path".to_string())?;
        unsafe {
            dlerror();
            let h = dlopen(c.as_ptr(), RTLD_NOW);
            if h.is_null() {
                Err(last_error())
            } else {
                Ok(Lib(h))
            }
        }
    }

    pub fn sym(lib: &Lib, name: &str) -> Result<*mut c_void, String> {
        let c = CString::new(name).expect("symbol names have no NUL");
        unsafe {
            dlerror();
            let p = dlsym(lib.0, c.as_ptr());
            if p.is_null() {
                Err(format!("symbol `{name}`: {}", last_error()))
            } else {
                Ok(p)
            }
        }
    }
}

#[cfg(not(unix))]
mod dl {
    use std::ffi::c_void;

    pub struct Lib(());

    pub fn open(_path: &std::path::Path) -> Result<Lib, String> {
        Err("AOT kernel loading is only supported on unix hosts".to_string())
    }

    pub fn sym(_lib: &Lib, _name: &str) -> Result<*mut c_void, String> {
        Err("AOT kernel loading is only supported on unix hosts".to_string())
    }
}

/// Generate, build (or reuse), and load the AOT kernel for a lowered
/// program. Compile `bc` from the same `lp` first — the bytecode is the
/// fallback *and* performs the region-legality checks codegen assumes.
pub fn load_or_compile(lp: &LProgram, bc: &BcProgram) -> Result<Arc<AotKernel>, AotError> {
    let res = load_or_compile_inner(lp, bc);
    if res.is_err() {
        STATS.failures.fetch_add(1, Ordering::Relaxed);
    }
    res
}

fn load_or_compile_inner(lp: &LProgram, bc: &BcProgram) -> Result<Arc<AotKernel>, AotError> {
    let src = codegen::generate_source(lp, bc).map_err(AotError::Codegen)?;
    let hash = fnv128_hex(&src);
    // Hold the registry lock across the build so concurrent callers of
    // the same program compile once. Kernel builds are rare and bounded;
    // contention here is not a hot path.
    let mut reg = registry().lock().unwrap_or_else(|p| p.into_inner());
    if let Some(k) = reg.get(&hash) {
        STATS.cache_hits.fetch_add(1, Ordering::Relaxed);
        return Ok(Arc::clone(k));
    }
    let dir = cache_dir();
    std::fs::create_dir_all(&dir)
        .map_err(|e| AotError::Io(format!("create {}: {e}", dir.display())))?;
    let so = dir.join(format!("formad_aot_{hash}.so"));
    let rs = dir.join(format!("formad_aot_{hash}.rs"));
    if so.exists() {
        // Keep the source beside the artifact even when another process
        // built it, so CI can always upload the pair.
        if !rs.exists() {
            write_atomic(&rs, src.as_bytes())?;
        }
        STATS.disk_hits.fetch_add(1, Ordering::Relaxed);
    } else {
        write_atomic(&rs, src.as_bytes())?;
        compile_cdylib(&rs, &so)?;
        STATS.compiles.fetch_add(1, Ordering::Relaxed);
    }
    let lib = dl::open(&so).map_err(AotError::Load)?;
    let abi_sym = dl::sym(&lib, "formad_aot_abi").map_err(AotError::Load)?;
    let abi_fn: extern "C" fn() -> u32 = unsafe { std::mem::transmute(abi_sym) };
    let got = abi_fn();
    if got != abi::FORMAD_AOT_ABI {
        return Err(AotError::Load(format!(
            "artifact ABI {got} != expected {}",
            abi::FORMAD_AOT_ABI
        )));
    }
    let cnt_sym = dl::sym(&lib, "formad_aot_region_count").map_err(AotError::Load)?;
    let cnt_fn: extern "C" fn() -> u32 = unsafe { std::mem::transmute(cnt_sym) };
    let n = cnt_fn() as usize;
    if n != bc.regions.len() {
        return Err(AotError::Load(format!(
            "artifact has {n} regions, program has {}",
            bc.regions.len()
        )));
    }
    let mut regions = Vec::with_capacity(n);
    for k in 0..n {
        let p = dl::sym(&lib, &format!("formad_region_{k}")).map_err(AotError::Load)?;
        let f: RegionFn = unsafe { std::mem::transmute(p) };
        regions.push(f);
    }
    let kernel = Arc::new(AotKernel {
        regions,
        hash: hash.clone(),
        lib_path: so,
        source_path: rs,
        _lib: lib,
    });
    reg.insert(hash, Arc::clone(&kernel));
    Ok(kernel)
}

/// Compile `prog` and run it on the AOT backend with `threads` logical
/// threads — the AOT counterpart of [`crate::exec::run_native`]. On any
/// AOT failure the run transparently degrades to the bytecode backend
/// (results are bitwise identical either way) and the fallback reason is
/// returned for reporting.
pub fn run_aot(
    prog: &Program,
    bind: &mut Bindings,
    threads: usize,
) -> Result<Option<String>, ExecError> {
    let lp = lower(prog, bind)?;
    let bc = compile(&lp, prog)?;
    let mut eng = NativeEngine::new(threads);
    // Only parallel regions are compiled ahead of time; with none there
    // is nothing to build, so skip the rustc invocation entirely (and
    // report no fallback — bytecode IS the complete plan here).
    if bc.regions.is_empty() {
        eng.run(&bc, bind)?;
        return Ok(None);
    }
    match load_or_compile(&lp, &bc) {
        Ok(kernel) => {
            eng.run_with(&bc, Some(&kernel), bind)?;
            Ok(None)
        }
        Err(e) => {
            eng.run(&bc, bind)?;
            Ok(Some(e.to_string()))
        }
    }
}

// ---- host-side tape growth ----

/// Grow callback for the real tape: adopt the dylib-side length, at
/// least double the capacity, and hand the refreshed pointer back.
///
/// # Safety
/// `env.tape_r.host` must point at the live `Vec<f64>` backing the tape
/// and `env.tape_r.len` must count initialized elements — both upheld by
/// `run_region_aot`'s env construction and the generated push sequence.
pub(crate) unsafe extern "C" fn grow_tape_r(env: *mut abi::AotEnv) {
    let e = &mut *env;
    let v = &mut *(e.tape_r.host as *mut Vec<f64>);
    v.set_len(e.tape_r.len);
    v.reserve(v.capacity().max(64));
    e.tape_r.ptr = v.as_mut_ptr() as *mut u8;
    e.tape_r.cap = v.capacity();
}

/// Grow callback for the int tape; see [`grow_tape_r`].
///
/// # Safety
/// Same contract as [`grow_tape_r`], for `env.tape_i`.
pub(crate) unsafe extern "C" fn grow_tape_i(env: *mut abi::AotEnv) {
    let e = &mut *env;
    let v = &mut *(e.tape_i.host as *mut Vec<i64>);
    v.set_len(e.tape_i.len);
    v.reserve(v.capacity().max(64));
    e.tape_i.ptr = v.as_mut_ptr() as *mut u8;
    e.tape_i.cap = v.capacity();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{run as run_sim, Machine};
    use formad_ir::parse_program;

    const SAXPY: &str = r#"
subroutine saxpy_aot_unit(n, a, x, y, s)
  integer, intent(in) :: n
  real, intent(in) :: a
  real, intent(in) :: x(n)
  real, intent(inout) :: y(n)
  real, intent(out) :: s
  integer :: i
  s = 0.0
  !$omp parallel do shared(x, y) reduction(+: s)
  do i = 1, n
    y(i) = y(i) + a * x(i)
    s = s + y(i)
  end do
end subroutine
"#;

    #[test]
    fn hash_is_stable_and_content_keyed() {
        let a = fnv128_hex("hello");
        assert_eq!(a, fnv128_hex("hello"));
        assert_ne!(a, fnv128_hex("hello!"));
        assert_eq!(a.len(), 32);
    }

    #[test]
    fn aot_matches_sim_end_to_end() {
        let prog = parse_program(SAXPY).unwrap();
        let sets = vec![
            ("n".to_string(), "257".to_string()),
            ("a".to_string(), "1.5".to_string()),
        ];
        for threads in [1usize, 4] {
            let mut sim = crate::driver::bind_params(&prog, &sets, 11).unwrap();
            let mut aot = sim.clone();
            run_sim(&prog, &mut sim, &Machine::with_threads(threads)).unwrap();
            let fallback = run_aot(&prog, &mut aot, threads).unwrap();
            assert_eq!(fallback, None, "AOT must actually run in-tree");
            assert_eq!(
                sim.real_scalars["s"].to_bits(),
                aot.real_scalars["s"].to_bits()
            );
            let (ys, ya) = (&sim.real_arrays["y"], &aot.real_arrays["y"]);
            assert_eq!(ys.len(), ya.len());
            for (p, q) in ys.iter().zip(ya) {
                assert_eq!(p.to_bits(), q.to_bits());
            }
        }
    }

    #[test]
    fn second_load_hits_the_registry() {
        let prog = parse_program(SAXPY).unwrap();
        let sets = vec![
            ("n".to_string(), "64".to_string()),
            ("a".into(), "2".into()),
        ];
        let bind = crate::driver::bind_params(&prog, &sets, 1).unwrap();
        let lp = lower(&prog, &bind).unwrap();
        let bc = compile(&lp, &prog).unwrap();
        let k1 = load_or_compile(&lp, &bc).expect("first load");
        let before = stats().cache_hits;
        let k2 = load_or_compile(&lp, &bc).expect("second load");
        assert_eq!(k1.hash(), k2.hash());
        assert!(stats().cache_hits > before);
        assert_eq!(k1.region_count(), 1);
        assert!(k1.lib_path().exists());
        assert!(k1.source_path().exists());
    }
}
