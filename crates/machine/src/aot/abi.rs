// AOT kernel ABI — the contract between the host executor and a
// generated cdylib. This file is embedded *verbatim* into every
// generated kernel source (see `codegen.rs`), so the host-side and
// dylib-side struct layouts are the same text by construction and can
// never drift. Keep it self-contained: no `use`, no crate paths, only
// `core::`.
//
// Versioning: bump `FORMAD_AOT_ABI` whenever the layout or the error
// protocol changes. The loader refuses any artifact whose exported
// `formad_aot_abi()` disagrees, so stale cache entries degrade to the
// bytecode backend instead of misreading memory.

/// ABI version stamped into every artifact.
pub const FORMAD_AOT_ABI: u32 = 1;

/// Error codes a region function may return. `0` is success; everything
/// else maps 1:1 onto an interpreter `ExecError` message (the host owns
/// the formatting — the dylib only reports the code and, for bounds
/// errors, the offending value/array/dimension).
pub const AOT_OK: i32 = 0;
pub const AOT_ERR_OOB: i32 = 1;
pub const AOT_ERR_DIV_ZERO: i32 = 2;
pub const AOT_ERR_MOD_ZERO: i32 = 3;
pub const AOT_ERR_NEG_EXP: i32 = 4;
pub const AOT_ERR_POW_OVERFLOW: i32 = 5;
pub const AOT_ERR_ZERO_STEP: i32 = 6;
pub const AOT_ERR_POP_EMPTY_R: i32 = 7;
pub const AOT_ERR_POP_EMPTY_I: i32 = 8;

/// One value tape (f64 or i64 elements), shared between the host `Vec`
/// and the generated code. The dylib pushes/pops inline through
/// `ptr`/`len`/`cap`; when a push would exceed `cap` it calls the host
/// grow callback, which reserves more capacity on the backing `Vec`
/// (identified by `host`) and refreshes `ptr`/`cap`. The host syncs the
/// `Vec` length from `len` after every region call.
#[repr(C)]
pub struct AotTape {
    pub ptr: *mut u8,
    pub len: usize,
    pub cap: usize,
    /// Opaque handle of the backing host `Vec` (used by the grow
    /// callback only).
    pub host: *mut core::ffi::c_void,
}

/// Everything one region invocation needs, passed by pointer. One env
/// per logical thread per region call; the host fills it, the generated
/// function reads the geometry and register files, runs its chunk
/// `[a_begin, a_end)` of the iteration space, and reports errors back
/// through `err_*`.
#[repr(C)]
pub struct AotEnv {
    /// Must equal [`FORMAD_AOT_ABI`] (belt-and-braces; the loader also
    /// checks the exported symbol).
    pub abi: u32,
    /// Loop lower bound, step and total iteration count (already
    /// validated nonzero-step by the host).
    pub lo: i64,
    pub step: i64,
    pub count: i64,
    /// This thread's chunk of iteration ranks, `a_begin < a_end`.
    pub a_begin: i64,
    pub a_end: i64,
    /// The thread-private scalar register files (the host's per-worker
    /// scratch copies). Reduction scalars are written back here.
    pub reals: *mut f64,
    pub ints: *mut i64,
    /// Shared array base pointers, indexed by `ArrId`. Real arrays hold
    /// f64 bits, integer arrays hold i64 bits; both travel as `u64`
    /// cells accessed with relaxed atomics.
    pub arrays: *const *mut u64,
    /// Privatized reduction buffers for this thread, indexed by the
    /// region's reduction-array ordinal.
    pub red_bufs: *const *mut f64,
    pub tape_r: AotTape,
    pub tape_i: AotTape,
    /// Host callbacks growing the respective tape's backing `Vec`.
    pub grow_r: unsafe extern "C" fn(*mut AotEnv),
    pub grow_i: unsafe extern "C" fn(*mut AotEnv),
    /// Bounds-error detail: offending index value, array id, 0-based
    /// dimension. Valid only when the region returned [`AOT_ERR_OOB`].
    pub err_value: i64,
    pub err_arr: u32,
    pub err_dim: u32,
}
