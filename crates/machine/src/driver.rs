//! Shared execution-driver plumbing: parameter binding and output
//! rendering used identically by `formad exec` and the resident service.
//!
//! Both front ends take the same inputs — scalar `k=v` assignments plus a
//! fill seed — and must produce bitwise-identical runs, so the binding
//! rules live here once: every integer parameter must be set explicitly
//! (array extents depend on them), real scalars default to zero, real
//! array parameters are filled from a deterministic per-name splitmix64
//! stream, and integer arrays are filled `1, 2, 3, …` so index arrays
//! stay within the 1-based bounds of same-extent arrays.

use std::fmt;

use formad_ir::{Intent, Program, Ty};

use crate::bindings::Bindings;
use crate::lower::lower;

/// Why a parameter binding could not be built. Front ends map these to
/// usage errors (CLI exit 2, HTTP 400) — the program itself is fine, the
/// caller's inputs are not.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BindError {
    /// `name` is not a parameter of the program.
    NotAParameter { name: String, program: String },
    /// Arrays are filled deterministically and cannot be set.
    ArrayParameter { name: String },
    /// An integer parameter got a non-integer value.
    BadInt { name: String, raw: String },
    /// A real parameter got a non-numeric value.
    BadReal { name: String, raw: String },
    /// An integer parameter was never assigned.
    MissingInt { name: String },
    /// Lowering the declared extents failed (e.g. a negative extent).
    Lower(String),
}

impl fmt::Display for BindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BindError::NotAParameter { name, program } => {
                write!(f, "`{name}` is not a parameter of `{program}`")
            }
            BindError::ArrayParameter { name } => {
                write!(f, "`{name}` is an array (only scalars can be set)")
            }
            BindError::BadInt { name, raw } => {
                write!(f, "integer `{name}` got non-integer `{raw}`")
            }
            BindError::BadReal { name, raw } => {
                write!(f, "real `{name}` got non-numeric `{raw}`")
            }
            BindError::MissingInt { name } => {
                write!(
                    f,
                    "integer parameter `{name}` needs a value: --set {name}=N"
                )
            }
            BindError::Lower(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for BindError {}

/// Deterministic fill for a real array parameter: a splitmix64 stream
/// keyed by the seed and the array name, mapped into (-1, 1). Keyed per
/// name so reordering assignments or declarations never changes data.
pub fn fill_real(name: &str, seed: u64, len: usize) -> Vec<f64> {
    let mut h = 0xcbf2_9ce4_8422_2325_u64; // FNV-1a over the name
    for b in name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut s = seed ^ h;
    (0..len)
        .map(|_| {
            s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            (z >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        })
        .collect()
}

/// Build complete [`Bindings`] for `prog` from scalar assignments and a
/// fill seed: scalars are parsed and defaulted, the declared extents are
/// evaluated (via [`lower`]) to size the array parameters, and the
/// arrays are filled deterministically.
pub fn bind_params(
    prog: &Program,
    sets: &[(String, String)],
    seed: u64,
) -> Result<Bindings, BindError> {
    let mut bind = Bindings::new();
    for (name, raw) in sets {
        let Some(d) = prog.params.iter().find(|d| d.name == *name) else {
            return Err(BindError::NotAParameter {
                name: name.clone(),
                program: prog.name.clone(),
            });
        };
        if d.is_array() {
            return Err(BindError::ArrayParameter { name: name.clone() });
        }
        match d.ty {
            Ty::Int => match raw.parse::<i64>() {
                Ok(v) => {
                    bind.int_scalars.insert(name.clone(), v);
                }
                Err(_) => {
                    return Err(BindError::BadInt {
                        name: name.clone(),
                        raw: raw.clone(),
                    })
                }
            },
            Ty::Real => match raw.parse::<f64>() {
                Ok(v) => {
                    bind.real_scalars.insert(name.clone(), v);
                }
                Err(_) => {
                    return Err(BindError::BadReal {
                        name: name.clone(),
                        raw: raw.clone(),
                    })
                }
            },
        }
    }
    for d in &prog.params {
        if d.is_array() {
            continue;
        }
        match d.ty {
            // Array extents are expressions over the integer parameters,
            // so a missing one cannot be defaulted meaningfully.
            Ty::Int if !bind.int_scalars.contains_key(&d.name) => {
                return Err(BindError::MissingInt {
                    name: d.name.clone(),
                });
            }
            Ty::Real => {
                bind.real_scalars.entry(d.name.clone()).or_insert(0.0);
            }
            _ => {}
        }
    }
    // Lowering evaluates the declared extents against the scalar
    // bindings — reuse it to size the array parameters.
    let lp = lower(prog, &bind).map_err(|e| BindError::Lower(e.to_string()))?;
    for d in &prog.params {
        if !d.is_array() {
            continue;
        }
        let len = lp.arrays[lp.array_ids[&d.name] as usize].len;
        match d.ty {
            Ty::Real => {
                bind.real_arrays
                    .insert(d.name.clone(), fill_real(&d.name, seed, len));
            }
            // 1, 2, 3, … so integer arrays used as subscripts stay within
            // the 1-based bounds of same-extent arrays.
            Ty::Int => {
                bind.int_arrays
                    .insert(d.name.clone(), (1..=len as i64).collect());
            }
        }
    }
    Ok(bind)
}

/// Render the `intent(out)` / `intent(inout)` results of a finished run,
/// one line per parameter in declaration order — the exact lines
/// `formad exec` prints, so service responses diff cleanly against CLI
/// output.
pub fn output_lines(prog: &Program, bind: &Bindings) -> Vec<String> {
    let mut out = Vec::new();
    for d in &prog.params {
        if !matches!(d.intent, Intent::Out | Intent::InOut) {
            continue;
        }
        match (d.is_array(), d.ty) {
            (false, Ty::Real) => {
                out.push(format!("{} = {:.17e}", d.name, bind.real_scalars[&d.name]));
            }
            (false, Ty::Int) => out.push(format!("{} = {}", d.name, bind.int_scalars[&d.name])),
            (true, Ty::Real) => {
                let a = &bind.real_arrays[&d.name];
                let sum: f64 = a.iter().sum();
                out.push(format!("{}: len={} sum={:.17e}", d.name, a.len(), sum));
            }
            (true, Ty::Int) => {
                let a = &bind.int_arrays[&d.name];
                let sum: i64 = a.iter().sum();
                out.push(format!("{}: len={} sum={}", d.name, a.len(), sum));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use formad_ir::parse_program;

    const AXPY: &str = r#"
subroutine axpy(n, a, x, y)
  integer, intent(in) :: n
  real, intent(in) :: a
  real, intent(in) :: x(n)
  real, intent(inout) :: y(n)
  integer :: i
  !$omp parallel do shared(x, y)
  do i = 1, n
    y(i) = y(i) + a * x(i)
  end do
end subroutine
"#;

    #[test]
    fn binds_fill_and_render_deterministically() {
        let prog = parse_program(AXPY).unwrap();
        let sets = vec![("n".to_string(), "8".to_string()), ("a".into(), "2".into())];
        let bind = bind_params(&prog, &sets, 42).unwrap();
        assert_eq!(bind.real_arrays["x"].len(), 8);
        assert_eq!(bind.int_scalars["n"], 8);
        // Same seed, same data; different seed, different data.
        let again = bind_params(&prog, &sets, 42).unwrap();
        assert_eq!(bind.real_arrays["x"], again.real_arrays["x"]);
        let other = bind_params(&prog, &sets, 43).unwrap();
        assert_ne!(bind.real_arrays["x"], other.real_arrays["x"]);
        let lines = output_lines(&prog, &bind);
        assert_eq!(lines.len(), 1);
        assert!(lines[0].starts_with("y: len=8 sum="), "{}", lines[0]);
    }

    #[test]
    fn binding_errors_name_the_offender() {
        let prog = parse_program(AXPY).unwrap();
        let err = bind_params(&prog, &[("zz".into(), "1".into())], 42).unwrap_err();
        assert_eq!(err.to_string(), "`zz` is not a parameter of `axpy`");
        let err = bind_params(&prog, &[("x".into(), "1".into())], 42).unwrap_err();
        assert!(matches!(err, BindError::ArrayParameter { .. }));
        let err = bind_params(&prog, &[], 42).unwrap_err();
        assert_eq!(
            err.to_string(),
            "integer parameter `n` needs a value: --set n=N"
        );
        let err = bind_params(&prog, &[("n".into(), "x".into())], 42).unwrap_err();
        assert!(matches!(err, BindError::BadInt { .. }));
    }
}
