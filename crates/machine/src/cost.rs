//! Cost model of the simulated shared-memory multiprocessor.
//!
//! The host for this reproduction has a single CPU core, so the paper's
//! 18-core scalability experiments are regenerated on a *simulated*
//! machine: the interpreter counts cycles per simulated thread using the
//! constants below, and a parallel region's wall time is the maximum over
//! its threads plus privatization/merge/fork-join terms.
//!
//! The constants are calibrated against two anchors from the paper's
//! single-thread measurements (§7.1, small stencil): an atomic
//! floating-point update costs roughly an order of magnitude more than a
//! plain one even uncontended (serial atomic adjoint 40.7 s vs serial
//! adjoint 1.58 s ≈ 26× on a loop of 3 increments — most of it atomics),
//! and reduction privatization roughly doubles single-thread time when the
//! privatized footprint is comparable to the work per sweep (3.65 s vs
//! 1.58 s ≈ 2.3×).

/// Cycle costs of primitive operations on the simulated machine.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// One floating-point or integer ALU operation.
    pub flop: u64,
    /// One memory read (array element or scalar).
    pub mem_read: u64,
    /// One memory write.
    pub mem_write: u64,
    /// One transcendental intrinsic (sin, exp, ...).
    pub intrinsic: u64,
    /// One tape push or pop.
    pub tape_op: u64,
    /// Cost of one *indirect* memory access (index loaded from another
    /// array — a gather/scatter that defeats prefetching; charged instead
    /// of `mem_read`/`mem_write`).
    pub mem_indirect: u64,
    /// Uncontended atomic read-modify-write (CAS loop on a double).
    pub atomic_base: u64,
    /// Per-thread linear scaling of atomic cost: each atomic costs
    /// `atomic_base · T · (100 + atomic_quad_pct·(T−1)) / 100` with `T`
    /// active threads — coherence traffic grows with the thread count and
    /// CAS retries add a superlinear term, which is what makes the
    /// paper's atomic adjoints *slow down* as threads are added.
    pub atomic_quad_pct: u64,
    /// Fork/join overhead of one parallel region (charged to wall time).
    pub fork_join: u64,
    /// Per-element zero-initialization of a privatized reduction copy
    /// (each thread initializes its own copy, concurrently).
    pub red_init_per_elem: u64,
    /// Per-element merge of one privatized copy into the shared array
    /// (serialized across threads, charged to wall time).
    pub red_merge_per_elem: u64,
    /// Per-iteration loop bookkeeping.
    pub loop_overhead: u64,
    /// Region bandwidth floor, per direct memory op, in tenths of a
    /// cycle: a parallel region's wall time cannot drop below
    /// `(direct_ops·seq_bw_tenths + indirect_ops·rand_bw_tenths) / 10`
    /// regardless of thread count (shared memory controller).
    pub seq_bw_tenths: u64,
    /// Bandwidth floor per indirect memory op, tenths of a cycle.
    pub rand_bw_tenths: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            flop: 1,
            mem_read: 2,
            mem_write: 2,
            mem_indirect: 9,
            intrinsic: 12,
            tape_op: 3,
            atomic_base: 900,
            atomic_quad_pct: 12,
            fork_join: 1500,
            red_init_per_elem: 17,
            red_merge_per_elem: 50,
            loop_overhead: 1,
            seq_bw_tenths: 3,
            rand_bw_tenths: 45,
        }
    }
}

/// Cumulative event counters of one execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Plain floating/integer operations executed.
    pub flops: u64,
    /// Memory reads.
    pub reads: u64,
    /// Memory writes.
    pub writes: u64,
    /// Atomic updates executed.
    pub atomic_ops: u64,
    /// Tape pushes.
    pub tape_pushes: u64,
    /// Tape pops.
    pub tape_pops: u64,
    /// Parallel regions entered.
    pub parallel_regions: u64,
    /// Elements privatized+merged by reduction clauses.
    pub reduction_elems: u64,
    /// Indirect (gather/scatter) memory accesses.
    pub indirect_ops: u64,
    /// Peak extra bytes held by reduction privatization.
    pub peak_reduction_bytes: u64,
}

/// Result of one simulated execution.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecResult {
    /// Simulated wall-clock cycles (sequential parts sum; parallel parts
    /// contribute their slowest thread plus overheads).
    pub wall_cycles: u128,
    /// Total cycles across all threads (simulated CPU time).
    pub cpu_cycles: u128,
    /// Event counters.
    pub stats: ExecStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ordering_of_costs() {
        let c = CostModel::default();
        // An uncontended atomic must dwarf a plain write; contention grows it.
        assert!(c.atomic_base > 10 * c.mem_write);
        assert!(c.atomic_quad_pct > 0);
        assert!(c.intrinsic > c.flop);
        assert!(c.mem_indirect > c.mem_read);
        assert!(c.rand_bw_tenths > c.seq_bw_tenths);
    }
}
