//! Lowering: resolve names to dense slots and array extents to strides so
//! the interpreter runs without any hashing in the hot path.

use std::collections::HashMap;

use formad_ir::{
    BinOp, BoolExpr, CmpOp, Decl, Expr, Intrinsic, LValue, Program, RedOp, Stmt, Ty, UnOp,
};

use crate::bindings::{Bindings, ExecError};

/// Slot of a scalar variable (index into the real or int scalar file).
pub type Slot = u32;
/// Index of an array in the array file.
pub type ArrId = u32;

/// Lowered expression. Type is resolved statically; `Coerce` converts an
/// integer subexpression to real where Fortran's mixed arithmetic demands.
#[derive(Debug, Clone)]
pub enum LExpr {
    ConstR(f64),
    ConstI(i64),
    ScalarR(Slot),
    ScalarI(Slot),
    /// Array element; the bool marks *indirect* accesses (an index that
    /// itself reads an array — gather/scatter).
    Elem(ArrId, Vec<LExpr>, bool),
    Bin(BinOp, Box<LExpr>, Box<LExpr>),
    Neg(Box<LExpr>),
    Call(Intrinsic, Vec<LExpr>),
    /// Int → real conversion.
    Coerce(Box<LExpr>),
}

/// Lowered boolean expression.
#[derive(Debug, Clone)]
pub enum LBool {
    Cmp(CmpOp, Ty, LExpr, LExpr),
    And(Box<LBool>, Box<LBool>),
    Or(Box<LBool>, Box<LBool>),
    Not(Box<LBool>),
}

/// Lowered statement.
#[derive(Debug, Clone)]
pub enum LStmt {
    AssignR(Slot, LExpr),
    AssignI(Slot, LExpr),
    AssignElem(ArrId, Vec<LExpr>, LExpr, bool),
    AtomicAddElem(ArrId, Vec<LExpr>, LExpr),
    If(LBool, Vec<LStmt>, Vec<LStmt>),
    For(Box<LFor>),
    Push(LExpr, Ty),
    PopR(Slot),
    PopI(Slot),
    PopElem(ArrId, Vec<LExpr>, bool),
}

/// Lowered loop.
#[derive(Debug, Clone)]
pub struct LFor {
    pub var: Slot,
    pub lo: LExpr,
    pub hi: LExpr,
    pub step: LExpr,
    pub body: Vec<LStmt>,
    pub parallel: Option<LParallel>,
}

/// Lowered parallel clauses.
#[derive(Debug, Clone, Default)]
pub struct LParallel {
    /// Private real scalar slots.
    pub private_r: Vec<Slot>,
    /// Private integer scalar slots.
    pub private_i: Vec<Slot>,
    /// Scalar reductions `(op, slot, is_real)`.
    pub red_scalars: Vec<(RedOp, Slot, bool)>,
    /// Array reductions (always on real arrays in generated adjoints).
    pub red_arrays: Vec<(RedOp, ArrId)>,
}

/// An array's runtime storage descriptor.
#[derive(Debug, Clone)]
pub struct ArrMeta {
    pub name: String,
    pub ty: Ty,
    /// Extent of each dimension.
    pub dims: Vec<i64>,
    /// Number of elements.
    pub len: usize,
}

/// A fully lowered program ready for execution.
#[derive(Debug)]
pub struct LProgram {
    pub name: String,
    pub body: Vec<LStmt>,
    pub n_real_scalars: usize,
    pub n_int_scalars: usize,
    pub arrays: Vec<ArrMeta>,
    /// Scalar name → (slot, ty) for binding transfer.
    pub scalar_slots: HashMap<String, (Slot, Ty)>,
    /// Array name → id.
    pub array_ids: HashMap<String, ArrId>,
}

struct Lowerer<'a> {
    prog: &'a Program,
    scalar_slots: HashMap<String, (Slot, Ty)>,
    array_ids: HashMap<String, ArrId>,
    arrays: Vec<ArrMeta>,
    n_real: usize,
    n_int: usize,
    /// Scalars assigned from array reads in the *current innermost* loop
    /// body: indices referencing them are per-iteration gathers (cache
    /// misses). Scalars gathered in an outer loop are innermost-invariant
    /// (strided, prefetchable) and not counted.
    gather_ctx: std::collections::HashSet<String>,
}

/// Lower `prog`, evaluating array extents from the scalar bindings.
pub fn lower(prog: &Program, bind: &Bindings) -> Result<LProgram, ExecError> {
    let mut lw = Lowerer {
        prog,
        scalar_slots: HashMap::new(),
        array_ids: HashMap::new(),
        arrays: Vec::new(),
        n_real: 0,
        n_int: 0,
        gather_ctx: std::collections::HashSet::new(),
    };
    // Two passes: scalars first so extents (which reference scalar
    // parameters like `n`) can be evaluated, then arrays.
    for d in prog.decls() {
        if !d.is_array() {
            let slot = match d.ty {
                Ty::Real => {
                    lw.n_real += 1;
                    (lw.n_real - 1) as Slot
                }
                Ty::Int => {
                    lw.n_int += 1;
                    (lw.n_int - 1) as Slot
                }
            };
            lw.scalar_slots.insert(d.name.clone(), (slot, d.ty));
        }
    }
    for d in prog.decls() {
        if d.is_array() {
            lw.lower_array_decl(d, bind)?;
        }
    }
    let body = lw.lower_body(&prog.body)?;
    Ok(LProgram {
        name: prog.name.clone(),
        body,
        n_real_scalars: lw.n_real,
        n_int_scalars: lw.n_int,
        arrays: lw.arrays,
        scalar_slots: lw.scalar_slots,
        array_ids: lw.array_ids,
    })
}

impl<'a> Lowerer<'a> {
    /// Is an index-expression list an indirect (gather/scatter) access?
    /// True when an index reads an array directly, or references a scalar
    /// holding a value gathered in the current innermost loop.
    fn is_indirect(&self, indices: &[Expr]) -> bool {
        indices.iter().any(|ix| {
            if ix.has_array_ref() {
                return true;
            }
            let mut vars = Vec::new();
            ix.scalar_vars(&mut vars);
            vars.iter().any(|v| self.gather_ctx.contains(v))
        })
    }

    /// Scalars assigned from array-reading expressions directly in `body`
    /// (descending into `if` branches but not into nested loops).
    fn gather_scalars(body: &[Stmt], out: &mut std::collections::HashSet<String>) {
        for s in body {
            match s {
                Stmt::Assign {
                    lhs: LValue::Var(v),
                    rhs,
                } if rhs.has_array_ref() => {
                    out.insert(v.clone());
                }
                Stmt::If {
                    then_body,
                    else_body,
                    ..
                } => {
                    Self::gather_scalars(then_body, out);
                    Self::gather_scalars(else_body, out);
                }
                _ => {}
            }
        }
    }

    fn lower_array_decl(&mut self, d: &Decl, bind: &Bindings) -> Result<(), ExecError> {
        let mut dims = Vec::with_capacity(d.dims.len());
        for e in &d.dims {
            dims.push(eval_const_int(e, bind).ok_or_else(|| {
                ExecError::new(format!(
                    "extent of array `{}` is not computable from scalar bindings",
                    d.name
                ))
            })?);
        }
        let len: i64 = dims.iter().product();
        if len < 0 {
            return Err(ExecError::new(format!(
                "array `{}` has negative size",
                d.name
            )));
        }
        let id = self.arrays.len() as ArrId;
        self.arrays.push(ArrMeta {
            name: d.name.clone(),
            ty: d.ty,
            dims,
            len: len as usize,
        });
        self.array_ids.insert(d.name.clone(), id);
        Ok(())
    }

    fn ty_of_expr(&self, e: &Expr) -> Ty {
        match e {
            Expr::IntLit(_) => Ty::Int,
            Expr::RealLit(_) => Ty::Real,
            Expr::Var(n) => self.prog.ty_of(n).unwrap_or(Ty::Real),
            Expr::Index { array, .. } => self.prog.ty_of(array).unwrap_or(Ty::Real),
            Expr::Unary { arg, .. } => self.ty_of_expr(arg),
            Expr::Binary { op, lhs, rhs } => match op {
                BinOp::Mod => Ty::Int,
                _ => {
                    if self.ty_of_expr(lhs) == Ty::Real || self.ty_of_expr(rhs) == Ty::Real {
                        Ty::Real
                    } else {
                        Ty::Int
                    }
                }
            },
            Expr::Call { func, args } => match func {
                Intrinsic::Abs | Intrinsic::Min | Intrinsic::Max => {
                    if args.iter().any(|a| self.ty_of_expr(a) == Ty::Real) {
                        Ty::Real
                    } else {
                        Ty::Int
                    }
                }
                _ => Ty::Real,
            },
        }
    }

    /// Lower an expression, coercing to the requested type if needed.
    fn lower_expr(&self, e: &Expr, want: Ty) -> Result<LExpr, ExecError> {
        let have = self.ty_of_expr(e);
        let raw = self.lower_expr_raw(e)?;
        match (have, want) {
            (Ty::Int, Ty::Real) => Ok(LExpr::Coerce(Box::new(raw))),
            (Ty::Real, Ty::Int) => Err(ExecError::new(format!(
                "cannot use real expression where an integer is required: {e}"
            ))),
            _ => Ok(raw),
        }
    }

    fn lower_expr_raw(&self, e: &Expr) -> Result<LExpr, ExecError> {
        Ok(match e {
            Expr::IntLit(v) => LExpr::ConstI(*v),
            Expr::RealLit(v) => LExpr::ConstR(*v),
            Expr::Var(n) => {
                let (slot, ty) = *self
                    .scalar_slots
                    .get(n)
                    .ok_or_else(|| ExecError::new(format!("unbound scalar `{n}`")))?;
                match ty {
                    Ty::Real => LExpr::ScalarR(slot),
                    Ty::Int => LExpr::ScalarI(slot),
                }
            }
            Expr::Index { array, indices } => {
                let id = *self
                    .array_ids
                    .get(array)
                    .ok_or_else(|| ExecError::new(format!("unbound array `{array}`")))?;
                let indirect = self.is_indirect(indices);
                let idx: Result<Vec<LExpr>, _> = indices
                    .iter()
                    .map(|ix| self.lower_expr(ix, Ty::Int))
                    .collect();
                LExpr::Elem(id, idx?, indirect)
            }
            Expr::Unary { op: UnOp::Neg, arg } => LExpr::Neg(Box::new(self.lower_expr_raw(arg)?)),
            Expr::Binary { op, lhs, rhs } => {
                let ty = self.ty_of_expr(e);
                let (a, b) = if *op == BinOp::Mod {
                    (
                        self.lower_expr(lhs, Ty::Int)?,
                        self.lower_expr(rhs, Ty::Int)?,
                    )
                } else {
                    (self.lower_expr(lhs, ty)?, self.lower_expr(rhs, ty)?)
                };
                LExpr::Bin(*op, Box::new(a), Box::new(b))
            }
            Expr::Call { func, args } => {
                let want = match func {
                    Intrinsic::Abs | Intrinsic::Min | Intrinsic::Max => self.ty_of_expr(e),
                    _ => Ty::Real,
                };
                let largs: Result<Vec<LExpr>, _> =
                    args.iter().map(|a| self.lower_expr(a, want)).collect();
                LExpr::Call(*func, largs?)
            }
        })
    }

    fn lower_bool(&self, b: &BoolExpr) -> Result<LBool, ExecError> {
        Ok(match b {
            BoolExpr::Cmp { op, lhs, rhs } => {
                let ty = if self.ty_of_expr(lhs) == Ty::Real || self.ty_of_expr(rhs) == Ty::Real {
                    Ty::Real
                } else {
                    Ty::Int
                };
                LBool::Cmp(
                    *op,
                    ty,
                    self.lower_expr(lhs, ty)?,
                    self.lower_expr(rhs, ty)?,
                )
            }
            BoolExpr::And(a, b) => {
                LBool::And(Box::new(self.lower_bool(a)?), Box::new(self.lower_bool(b)?))
            }
            BoolExpr::Or(a, b) => {
                LBool::Or(Box::new(self.lower_bool(a)?), Box::new(self.lower_bool(b)?))
            }
            BoolExpr::Not(a) => LBool::Not(Box::new(self.lower_bool(a)?)),
        })
    }

    fn lower_body(&mut self, body: &[Stmt]) -> Result<Vec<LStmt>, ExecError> {
        body.iter().map(|s| self.lower_stmt(s)).collect()
    }

    fn lower_stmt(&mut self, s: &Stmt) -> Result<LStmt, ExecError> {
        Ok(match s {
            Stmt::Assign { lhs, rhs } => match lhs {
                LValue::Var(n) => {
                    let (slot, ty) = *self
                        .scalar_slots
                        .get(n)
                        .ok_or_else(|| ExecError::new(format!("unbound scalar `{n}`")))?;
                    let r = self.lower_expr(rhs, ty)?;
                    match ty {
                        Ty::Real => LStmt::AssignR(slot, r),
                        Ty::Int => LStmt::AssignI(slot, r),
                    }
                }
                LValue::Index { array, indices } => {
                    let id = *self
                        .array_ids
                        .get(array)
                        .ok_or_else(|| ExecError::new(format!("unbound array `{array}`")))?;
                    let ty = self.arrays[id as usize].ty;
                    let indirect = self.is_indirect(indices);
                    let idx: Result<Vec<LExpr>, _> = indices
                        .iter()
                        .map(|ix| self.lower_expr(ix, Ty::Int))
                        .collect();
                    LStmt::AssignElem(id, idx?, self.lower_expr(rhs, ty)?, indirect)
                }
            },
            Stmt::AtomicAdd { lhs, rhs } => match lhs {
                LValue::Index { array, indices } => {
                    let id = *self
                        .array_ids
                        .get(array)
                        .ok_or_else(|| ExecError::new(format!("unbound array `{array}`")))?;
                    let idx: Result<Vec<LExpr>, _> = indices
                        .iter()
                        .map(|ix| self.lower_expr(ix, Ty::Int))
                        .collect();
                    LStmt::AtomicAddElem(id, idx?, self.lower_expr(rhs, Ty::Real)?)
                }
                LValue::Var(_) => {
                    return Err(ExecError::new("atomic update of a scalar is not supported"))
                }
            },
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => LStmt::If(
                self.lower_bool(cond)?,
                self.lower_body(then_body)?,
                self.lower_body(else_body)?,
            ),
            Stmt::For(l) => {
                let (var, vty) = *self
                    .scalar_slots
                    .get(&l.var)
                    .ok_or_else(|| ExecError::new(format!("unbound loop counter `{}`", l.var)))?;
                if vty != Ty::Int {
                    return Err(ExecError::new("loop counter must be integer"));
                }
                let parallel = match &l.parallel {
                    None => None,
                    Some(info) => {
                        let mut lp = LParallel::default();
                        for p in &info.private {
                            let (slot, ty) = *self
                                .scalar_slots
                                .get(p)
                                .ok_or_else(|| ExecError::new(format!("unbound private `{p}`")))?;
                            match ty {
                                Ty::Real => lp.private_r.push(slot),
                                Ty::Int => lp.private_i.push(slot),
                            }
                        }
                        for (op, v) in &info.reductions {
                            if let Some((slot, ty)) = self.scalar_slots.get(v) {
                                lp.red_scalars.push((*op, *slot, *ty == Ty::Real));
                            } else if let Some(id) = self.array_ids.get(v) {
                                if self.arrays[*id as usize].ty != Ty::Real {
                                    return Err(ExecError::new(
                                        "array reductions only supported on real arrays",
                                    ));
                                }
                                lp.red_arrays.push((*op, *id));
                            } else {
                                return Err(ExecError::new(format!(
                                    "unbound reduction variable `{v}`"
                                )));
                            }
                        }
                        Some(lp)
                    }
                };
                let lo = self.lower_expr(&l.lo, Ty::Int)?;
                let hi = self.lower_expr(&l.hi, Ty::Int)?;
                let step = self.lower_expr(&l.step, Ty::Int)?;
                // Entering a loop: its body is the new innermost level, so
                // only scalars gathered *in this body* make accesses
                // per-iteration-random.
                let saved = std::mem::take(&mut self.gather_ctx);
                Self::gather_scalars(&l.body, &mut self.gather_ctx);
                let body = self.lower_body(&l.body)?;
                self.gather_ctx = saved;
                LStmt::For(Box::new(LFor {
                    var,
                    lo,
                    hi,
                    step,
                    body,
                    parallel,
                }))
            }
            Stmt::Push(e) => {
                let ty = self.ty_of_expr(e);
                LStmt::Push(self.lower_expr(e, ty)?, ty)
            }
            Stmt::Pop(lv) => match lv {
                LValue::Var(n) => {
                    let (slot, ty) = *self
                        .scalar_slots
                        .get(n)
                        .ok_or_else(|| ExecError::new(format!("unbound scalar `{n}`")))?;
                    match ty {
                        Ty::Real => LStmt::PopR(slot),
                        Ty::Int => LStmt::PopI(slot),
                    }
                }
                LValue::Index { array, indices } => {
                    let id = *self
                        .array_ids
                        .get(array)
                        .ok_or_else(|| ExecError::new(format!("unbound array `{array}`")))?;
                    let indirect = self.is_indirect(indices);
                    let idx: Result<Vec<LExpr>, _> = indices
                        .iter()
                        .map(|ix| self.lower_expr(ix, Ty::Int))
                        .collect();
                    LStmt::PopElem(id, idx?, indirect)
                }
            },
        })
    }
}

/// Evaluate a constant-foldable integer expression against scalar bindings
/// (used for array extents).
fn eval_const_int(e: &Expr, bind: &Bindings) -> Option<i64> {
    match e {
        Expr::IntLit(v) => Some(*v),
        Expr::Var(n) => bind.int_scalars.get(n).copied(),
        Expr::Unary { op: UnOp::Neg, arg } => Some(-eval_const_int(arg, bind)?),
        Expr::Binary { op, lhs, rhs } => {
            let a = eval_const_int(lhs, bind)?;
            let b = eval_const_int(rhs, bind)?;
            Some(match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => {
                    if b == 0 {
                        return None;
                    }
                    a / b
                }
                BinOp::Mod => {
                    if b == 0 {
                        return None;
                    }
                    a % b
                }
                BinOp::Pow => {
                    if b < 0 {
                        return None;
                    }
                    a.checked_pow(b as u32)?
                }
            })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use formad_ir::parse_program;

    #[test]
    fn lowers_saxpy() {
        let p = parse_program(
            r#"
subroutine saxpy(n, a, x, y)
  integer, intent(in) :: n
  real, intent(in) :: a
  real, intent(in) :: x(n)
  real, intent(inout) :: y(n)
  integer :: i
  !$omp parallel do shared(x, y)
  do i = 1, n
    y(i) = y(i) + a * x(i)
  end do
end subroutine
"#,
        )
        .unwrap();
        let b = Bindings::new().int("n", 8);
        let lp = lower(&p, &b).unwrap();
        assert_eq!(lp.arrays.len(), 2);
        assert_eq!(lp.arrays[0].len, 8);
        assert_eq!(lp.n_int_scalars, 2); // n, i
        assert_eq!(lp.n_real_scalars, 1); // a
        assert!(matches!(lp.body[0], LStmt::For(_)));
    }

    #[test]
    fn extent_expressions_evaluated() {
        let p = parse_program(
            r#"
subroutine t(n, u)
  integer, intent(in) :: n
  real, intent(inout) :: u(2 * n + 1)
end subroutine
"#,
        )
        .unwrap();
        let lp = lower(&p, &Bindings::new().int("n", 5)).unwrap();
        assert_eq!(lp.arrays[0].len, 11);
    }

    #[test]
    fn missing_extent_binding_is_error() {
        let p = parse_program(
            r#"
subroutine t(n, u)
  integer, intent(in) :: n
  real, intent(inout) :: u(n)
end subroutine
"#,
        )
        .unwrap();
        assert!(lower(&p, &Bindings::new()).is_err());
    }

    #[test]
    fn int_real_coercion_inserted() {
        let p = parse_program(
            r#"
subroutine t(n, y)
  integer, intent(in) :: n
  real, intent(inout) :: y(n)
  integer :: i
  do i = 1, n
    y(i) = i * 2.0
  end do
end subroutine
"#,
        )
        .unwrap();
        let lp = lower(&p, &Bindings::new().int("n", 3)).unwrap();
        // The rhs multiplies coerced i by 2.0: find a Coerce somewhere.
        fn has_coerce(s: &LStmt) -> bool {
            fn in_expr(e: &LExpr) -> bool {
                match e {
                    LExpr::Coerce(_) => true,
                    LExpr::Bin(_, a, b) => in_expr(a) || in_expr(b),
                    LExpr::Neg(a) => in_expr(a),
                    LExpr::Call(_, args) => args.iter().any(in_expr),
                    LExpr::Elem(_, idx, _) => idx.iter().any(in_expr),
                    _ => false,
                }
            }
            match s {
                LStmt::AssignElem(_, _, r, _) => in_expr(r),
                LStmt::For(f) => f.body.iter().any(has_coerce),
                _ => false,
            }
        }
        assert!(lp.body.iter().any(has_coerce));
    }

    #[test]
    fn multidim_extents() {
        let p = parse_program(
            r#"
subroutine t(n, m, u)
  integer, intent(in) :: n, m
  real, intent(inout) :: u(n, m)
end subroutine
"#,
        )
        .unwrap();
        let lp = lower(&p, &Bindings::new().int("n", 3).int("m", 4)).unwrap();
        assert_eq!(lp.arrays[0].dims, vec![3, 4]);
        assert_eq!(lp.arrays[0].len, 12);
    }
}
