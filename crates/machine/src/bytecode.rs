//! Flat register bytecode for lowered programs.
//!
//! The tree-walking interpreter in [`crate::interp`] chases `Box`ed
//! [`LExpr`] nodes on every evaluation. For *real* wall-clock execution
//! (see [`crate::exec`]) we compile an [`LProgram`] once into a dense
//! instruction array over two register files (f64 / i64):
//!
//! - scalar slot `s` lives in register `s` of its file; expression
//!   temporaries are allocated above the scalar watermark with stack
//!   discipline, so register files stay small and reusable;
//! - multi-dimensional indexing is linearized with **precomputed
//!   strides** ([`BcArray::strides`], Fortran column-major) and
//!   per-dimension bounds checks identical to the interpreter's;
//! - booleans compile to short-circuit conditional jumps, preserving the
//!   interpreter's evaluation (and therefore error) order;
//! - each `!$omp parallel do` body compiles into its own code block
//!   ([`BcRegion`]); the main code evaluates the bounds into dedicated
//!   registers and yields to the executor with [`Instr::EnterPar`].
//!
//! Compilation is semantics-preserving by construction: operands are
//! evaluated in exactly the order the interpreter walks them, so a
//! program that errors (out-of-bounds index, division by zero, empty
//! tape) errors identically under both backends, and one that succeeds
//! produces bitwise-identical floating-point results.
//!
//! One restriction the interpreter does not enforce: a scalar written
//! inside a parallel body must be `private`, a `reduction`, or the loop
//! counter. The simulated machine runs its threads sequentially, so a
//! shared-scalar write there is deterministic-but-meaningless; on real
//! threads it would be a data race, so it is rejected at compile time.
//! Generated adjoints always privatize correctly.

use std::collections::HashMap;

use formad_ir::{BinOp, CmpOp, Intrinsic, Program, RedOp, Ty};

use crate::bindings::ExecError;
use crate::lower::{ArrId, LBool, LExpr, LFor, LProgram, LStmt, Slot};

/// Register index within the real or int file.
pub type Reg = u16;

/// One bytecode instruction. Register operands are `u16` (programs here
/// have tens of scalars and a handful of temporaries); jump targets are
/// absolute instruction indices.
#[derive(Debug, Clone, Copy)]
pub enum Instr {
    ConstR {
        dst: Reg,
        v: f64,
    },
    ConstI {
        dst: Reg,
        v: i64,
    },
    MovR {
        dst: Reg,
        src: Reg,
    },
    MovI {
        dst: Reg,
        src: Reg,
    },
    /// Int register → real register conversion (`Coerce`).
    ItoR {
        dst: Reg,
        src: Reg,
    },
    BinR {
        op: BinOp,
        dst: Reg,
        a: Reg,
        b: Reg,
    },
    BinI {
        op: BinOp,
        dst: Reg,
        a: Reg,
        b: Reg,
    },
    NegR {
        dst: Reg,
        a: Reg,
    },
    NegI {
        dst: Reg,
        a: Reg,
    },
    /// Unary real intrinsic.
    Call1R {
        f: Intrinsic,
        dst: Reg,
        a: Reg,
    },
    /// Binary real intrinsic (`min`/`max`).
    Call2R {
        f: Intrinsic,
        dst: Reg,
        a: Reg,
        b: Reg,
    },
    /// Unary int intrinsic (`abs`).
    Call1I {
        f: Intrinsic,
        dst: Reg,
        a: Reg,
    },
    /// Binary int intrinsic (`min`/`max`).
    Call2I {
        f: Intrinsic,
        dst: Reg,
        a: Reg,
        b: Reg,
    },
    /// Real comparison; writes 0/1 into int register `dst`.
    CmpR {
        op: CmpOp,
        dst: Reg,
        a: Reg,
        b: Reg,
    },
    /// Int comparison (via f64, exactly like the interpreter).
    CmpI {
        op: CmpOp,
        dst: Reg,
        a: Reg,
        b: Reg,
    },
    /// First index of an access: bounds-check dimension 0 and set
    /// `dst = ints[idx] - 1` (stride of dimension 0 is 1).
    IdxFirst {
        dst: Reg,
        idx: Reg,
        arr: u16,
    },
    /// Subsequent index: bounds-check dimension `dim` and accumulate
    /// `ints[acc] += (ints[idx] - 1) * strides[dim]`.
    IdxAcc {
        acc: Reg,
        idx: Reg,
        arr: u16,
        dim: u16,
    },
    LoadR {
        dst: Reg,
        arr: u16,
        off: Reg,
    },
    LoadI {
        dst: Reg,
        arr: u16,
        off: Reg,
    },
    StoreR {
        arr: u16,
        off: Reg,
        src: Reg,
    },
    StoreI {
        arr: u16,
        off: Reg,
        src: Reg,
    },
    /// `arr[off] += reals[src]` with a CAS loop when executed inside a
    /// parallel region (`!$omp atomic`).
    AtomicAddR {
        arr: u16,
        off: Reg,
        src: Reg,
    },
    /// Fused plain increment `arr[off] = arr[off] + reals[src]` — the
    /// read-modify-write a compiler emits for `a(i) = a(i) + e`, with no
    /// atomicity. One address computation and one dispatch, so the cost
    /// gap to [`Instr::AtomicAddR`] is exactly the CAS, as on real
    /// hardware. Arithmetic is identical to `LoadR`/`BinR(Add)`/`StoreR`.
    IncR {
        arr: u16,
        off: Reg,
        src: Reg,
    },
    PushR {
        src: Reg,
    },
    PushI {
        src: Reg,
    },
    PopR {
        dst: Reg,
    },
    PopI {
        dst: Reg,
    },
    /// Pop the real tape into an array element.
    PopElemR {
        arr: u16,
        off: Reg,
    },
    /// Pop the int tape into an array element.
    PopElemI {
        arr: u16,
        off: Reg,
    },
    Jmp {
        target: u32,
    },
    JmpIfZero {
        cond: Reg,
        target: u32,
    },
    /// Error out if `ints[step] == 0` (zero loop step).
    StepNz {
        step: Reg,
    },
    /// `ints[dst] = if step > 0 { v <= hi } else { v >= hi }` as 0/1.
    LoopCond {
        dst: Reg,
        v: Reg,
        hi: Reg,
        step: Reg,
    },
    /// Yield to the executor to run parallel region `region`; its
    /// `lo`/`hi`/`step` registers have just been evaluated.
    EnterPar {
        region: u16,
    },
    Halt,
}

/// A compiled `!$omp parallel do` region.
#[derive(Debug)]
pub struct BcRegion {
    /// Loop counter (int register); set by the executor per iteration.
    pub var: Reg,
    /// Int registers the main code fills with the evaluated bounds
    /// immediately before `EnterPar`.
    pub lo: Reg,
    pub hi: Reg,
    pub step: Reg,
    /// Body code, `Halt`-terminated; executed once per iteration.
    pub code: Vec<Instr>,
    /// Scalar reductions `(op, slot, is_real)`.
    pub red_scalars: Vec<(RedOp, Slot, bool)>,
    /// Array reductions (real arrays only).
    pub red_arrays: Vec<(RedOp, ArrId)>,
}

/// Array storage descriptor with precomputed column-major strides.
#[derive(Debug, Clone)]
pub struct BcArray {
    pub name: String,
    pub ty: Ty,
    pub dims: Vec<i64>,
    pub strides: Vec<i64>,
    pub len: usize,
}

/// What a program parameter binds to (for transfer and write-back).
#[derive(Debug, Clone)]
pub enum BcParam {
    RealScalar(String, Slot),
    IntScalar(String, Slot),
    Array(String, ArrId),
}

/// A compiled program, self-contained for execution: code, regions,
/// register file sizes, array descriptors, and binding-transfer tables.
#[derive(Debug)]
pub struct BcProgram {
    pub name: String,
    /// Main code, `Halt`-terminated.
    pub code: Vec<Instr>,
    pub regions: Vec<BcRegion>,
    pub n_real_regs: usize,
    pub n_int_regs: usize,
    pub arrays: Vec<BcArray>,
    /// Declared parameters in declaration order (write-back order).
    pub params: Vec<BcParam>,
    /// Every scalar name → (slot, ty), for binding transfer-in.
    pub scalar_slots: HashMap<String, (Slot, Ty)>,
}

/// Compile a lowered program. `prog` supplies the parameter list for the
/// binding-transfer tables (the same information [`crate::interp::run`]
/// uses).
pub fn compile(lp: &LProgram, prog: &Program) -> Result<BcProgram, ExecError> {
    let arrays: Vec<BcArray> = lp
        .arrays
        .iter()
        .map(|m| {
            let mut strides = Vec::with_capacity(m.dims.len());
            let mut s = 1i64;
            for d in &m.dims {
                strides.push(s);
                s *= d;
            }
            BcArray {
                name: m.name.clone(),
                ty: m.ty,
                dims: m.dims.clone(),
                strides,
                len: m.len,
            }
        })
        .collect();
    if arrays.len() > u16::MAX as usize {
        return Err(ExecError::new("too many arrays for bytecode"));
    }
    let mut params = Vec::with_capacity(prog.params.len());
    for d in &prog.params {
        if d.is_array() {
            params.push(BcParam::Array(d.name.clone(), lp.array_ids[&d.name]));
        } else {
            let (slot, ty) = lp.scalar_slots[&d.name];
            match ty {
                Ty::Real => params.push(BcParam::RealScalar(d.name.clone(), slot)),
                Ty::Int => params.push(BcParam::IntScalar(d.name.clone(), slot)),
            }
        }
    }
    let mut c = Compiler {
        lp,
        code: Vec::new(),
        regions: Vec::new(),
        next_r: lp.n_real_scalars as u32,
        next_i: lp.n_int_scalars as u32,
        max_r: lp.n_real_scalars as u32,
        max_i: lp.n_int_scalars as u32,
        region: None,
    };
    c.compile_body(&lp.body)?;
    c.emit(Instr::Halt);
    if c.max_r > Reg::MAX as u32 || c.max_i > Reg::MAX as u32 {
        return Err(ExecError::new("register file overflow in bytecode"));
    }
    Ok(BcProgram {
        name: lp.name.clone(),
        code: std::mem::take(&mut c.code),
        regions: c.regions,
        n_real_regs: c.max_r as usize,
        n_int_regs: c.max_i as usize,
        arrays,
        params,
        scalar_slots: lp.scalar_slots.clone(),
    })
}

/// Structural equality of pure lowered expressions, used to recognize
/// the increment pattern `a(i…) = a(i…) + e`. Constants compare by bits
/// so a match implies identical evaluation.
pub(crate) fn lexpr_eq(a: &LExpr, b: &LExpr) -> bool {
    match (a, b) {
        (LExpr::ConstR(x), LExpr::ConstR(y)) => x.to_bits() == y.to_bits(),
        (LExpr::ConstI(x), LExpr::ConstI(y)) => x == y,
        (LExpr::ScalarR(x), LExpr::ScalarR(y)) | (LExpr::ScalarI(x), LExpr::ScalarI(y)) => x == y,
        (LExpr::Elem(i1, x1, _), LExpr::Elem(i2, x2, _)) => {
            i1 == i2 && x1.len() == x2.len() && x1.iter().zip(x2).all(|(p, q)| lexpr_eq(p, q))
        }
        (LExpr::Bin(o1, l1, r1), LExpr::Bin(o2, l2, r2)) => {
            o1 == o2 && lexpr_eq(l1, l2) && lexpr_eq(r1, r2)
        }
        (LExpr::Neg(x), LExpr::Neg(y)) | (LExpr::Coerce(x), LExpr::Coerce(y)) => lexpr_eq(x, y),
        (LExpr::Call(f1, a1), LExpr::Call(f2, a2)) => {
            f1 == f2 && a1.len() == a2.len() && a1.iter().zip(a2).all(|(p, q)| lexpr_eq(p, q))
        }
        _ => false,
    }
}

/// Scalars a parallel body is allowed to write.
struct RegionWriteSet {
    real: Vec<Slot>,
    int: Vec<Slot>,
}

struct Compiler<'a> {
    lp: &'a LProgram,
    code: Vec<Instr>,
    regions: Vec<BcRegion>,
    /// Next free temp register (watermark; scalars live below).
    next_r: u32,
    next_i: u32,
    max_r: u32,
    max_i: u32,
    /// `Some` while compiling a parallel body: the writable scalar set.
    region: Option<RegionWriteSet>,
}

impl<'a> Compiler<'a> {
    fn emit(&mut self, i: Instr) -> usize {
        self.code.push(i);
        self.code.len() - 1
    }

    fn here(&self) -> u32 {
        self.code.len() as u32
    }

    fn patch(&mut self, at: usize, target: u32) {
        match &mut self.code[at] {
            Instr::Jmp { target: t } | Instr::JmpIfZero { target: t, .. } => *t = target,
            _ => unreachable!("patched instruction is not a jump"),
        }
    }

    fn alloc_r(&mut self) -> Reg {
        let r = self.next_r;
        self.next_r += 1;
        self.max_r = self.max_r.max(self.next_r);
        r as Reg
    }

    fn alloc_i(&mut self) -> Reg {
        let r = self.next_i;
        self.next_i += 1;
        self.max_i = self.max_i.max(self.next_i);
        r as Reg
    }

    fn marks(&self) -> (u32, u32) {
        (self.next_r, self.next_i)
    }

    fn release(&mut self, marks: (u32, u32)) {
        self.next_r = marks.0;
        self.next_i = marks.1;
    }

    /// Compile `e` in real context; returns the register holding the
    /// value. Mirrors `Interp::eval_r` including operand order.
    fn compile_r(&mut self, e: &LExpr) -> Result<Reg, ExecError> {
        Ok(match e {
            LExpr::ConstR(v) => {
                let d = self.alloc_r();
                self.emit(Instr::ConstR { dst: d, v: *v });
                d
            }
            // The interpreter's eval_r accepts int constants and scalars
            // directly (`v as f64`).
            LExpr::ConstI(v) => {
                let d = self.alloc_r();
                self.emit(Instr::ConstR {
                    dst: d,
                    v: *v as f64,
                });
                d
            }
            LExpr::ScalarR(s) => *s as Reg,
            LExpr::ScalarI(s) => {
                let d = self.alloc_r();
                self.emit(Instr::ItoR {
                    dst: d,
                    src: *s as Reg,
                });
                d
            }
            LExpr::Coerce(inner) => {
                let m = self.marks();
                let src = self.compile_i(inner)?;
                self.release(m);
                let d = self.alloc_r();
                self.emit(Instr::ItoR { dst: d, src });
                d
            }
            LExpr::Elem(id, idx, _) => {
                let m = self.marks();
                let off = self.compile_offset(*id, idx)?;
                self.release(m);
                let d = self.alloc_r();
                // `off` sits in a released temp, but nothing is emitted
                // between the index computation and the load.
                self.emit(Instr::LoadR {
                    dst: d,
                    arr: *id as u16,
                    off,
                });
                d
            }
            LExpr::Neg(a) => {
                let m = self.marks();
                let ra = self.compile_r(a)?;
                self.release(m);
                let d = self.alloc_r();
                self.emit(Instr::NegR { dst: d, a: ra });
                d
            }
            LExpr::Bin(op, a, b) => {
                if *op == BinOp::Mod {
                    return Err(ExecError::new("mod in real context"));
                }
                let m = self.marks();
                let ra = self.compile_r(a)?;
                let rb = self.compile_r(b)?;
                self.release(m);
                let d = self.alloc_r();
                self.emit(Instr::BinR {
                    op: *op,
                    dst: d,
                    a: ra,
                    b: rb,
                });
                d
            }
            LExpr::Call(f, args) => {
                let m = self.marks();
                match f {
                    Intrinsic::Min | Intrinsic::Max => {
                        let ra = self.compile_r(&args[0])?;
                        let rb = self.compile_r(&args[1])?;
                        self.release(m);
                        let d = self.alloc_r();
                        self.emit(Instr::Call2R {
                            f: *f,
                            dst: d,
                            a: ra,
                            b: rb,
                        });
                        d
                    }
                    _ => {
                        let ra = self.compile_r(&args[0])?;
                        self.release(m);
                        let d = self.alloc_r();
                        self.emit(Instr::Call1R {
                            f: *f,
                            dst: d,
                            a: ra,
                        });
                        d
                    }
                }
            }
        })
    }

    /// Compile `e` in integer context, mirroring `Interp::eval_i`.
    fn compile_i(&mut self, e: &LExpr) -> Result<Reg, ExecError> {
        Ok(match e {
            LExpr::ConstI(v) => {
                let d = self.alloc_i();
                self.emit(Instr::ConstI { dst: d, v: *v });
                d
            }
            LExpr::ConstR(_) => {
                return Err(ExecError::new("real literal in integer context"));
            }
            LExpr::ScalarI(s) => *s as Reg,
            LExpr::ScalarR(_) | LExpr::Coerce(_) => {
                return Err(ExecError::new("real value in integer context"));
            }
            LExpr::Elem(id, idx, _) => {
                let m = self.marks();
                let off = self.compile_offset(*id, idx)?;
                self.release(m);
                let d = self.alloc_i();
                self.emit(Instr::LoadI {
                    dst: d,
                    arr: *id as u16,
                    off,
                });
                d
            }
            LExpr::Neg(a) => {
                let m = self.marks();
                let ra = self.compile_i(a)?;
                self.release(m);
                let d = self.alloc_i();
                self.emit(Instr::NegI { dst: d, a: ra });
                d
            }
            LExpr::Bin(op, a, b) => {
                let m = self.marks();
                let ra = self.compile_i(a)?;
                let rb = self.compile_i(b)?;
                self.release(m);
                let d = self.alloc_i();
                self.emit(Instr::BinI {
                    op: *op,
                    dst: d,
                    a: ra,
                    b: rb,
                });
                d
            }
            LExpr::Call(f, args) => match f {
                Intrinsic::Abs => {
                    let m = self.marks();
                    let ra = self.compile_i(&args[0])?;
                    self.release(m);
                    let d = self.alloc_i();
                    self.emit(Instr::Call1I {
                        f: *f,
                        dst: d,
                        a: ra,
                    });
                    d
                }
                Intrinsic::Min | Intrinsic::Max => {
                    let m = self.marks();
                    let ra = self.compile_i(&args[0])?;
                    let rb = self.compile_i(&args[1])?;
                    self.release(m);
                    let d = self.alloc_i();
                    self.emit(Instr::Call2I {
                        f: *f,
                        dst: d,
                        a: ra,
                        b: rb,
                    });
                    d
                }
                other => {
                    return Err(ExecError::new(format!(
                        "intrinsic {} in integer context",
                        other.name()
                    )))
                }
            },
        })
    }

    /// Compile the linearized offset of an array access; returns the int
    /// register holding it. Per-dimension bounds checks happen in the
    /// emitted `IdxFirst`/`IdxAcc` instructions, in index order, exactly
    /// like `Interp::offset`.
    fn compile_offset(&mut self, id: ArrId, idx: &[LExpr]) -> Result<Reg, ExecError> {
        let acc = self.alloc_i();
        for (k, ix) in idx.iter().enumerate() {
            let m = self.marks();
            let r = self.compile_i(ix)?;
            self.release(m);
            if k == 0 {
                self.emit(Instr::IdxFirst {
                    dst: acc,
                    idx: r,
                    arr: id as u16,
                });
            } else {
                self.emit(Instr::IdxAcc {
                    acc,
                    idx: r,
                    arr: id as u16,
                    dim: k as u16,
                });
            }
        }
        if idx.is_empty() {
            self.emit(Instr::ConstI { dst: acc, v: 0 });
        }
        Ok(acc)
    }

    /// Compile `b` so control falls through when it holds and jumps to a
    /// (to-be-patched) target when it fails; returns the patch sites.
    /// Short-circuit structure mirrors `Interp::eval_bool`.
    fn compile_cond_false(&mut self, b: &LBool) -> Result<Vec<usize>, ExecError> {
        Ok(match b {
            LBool::Cmp(op, ty, a, x) => {
                let m = self.marks();
                let (ra, rb, is_real) = match ty {
                    Ty::Int => (self.compile_i(a)?, self.compile_i(x)?, false),
                    Ty::Real => (self.compile_r(a)?, self.compile_r(x)?, true),
                };
                self.release(m);
                let d = self.alloc_i();
                if is_real {
                    self.emit(Instr::CmpR {
                        op: *op,
                        dst: d,
                        a: ra,
                        b: rb,
                    });
                } else {
                    self.emit(Instr::CmpI {
                        op: *op,
                        dst: d,
                        a: ra,
                        b: rb,
                    });
                }
                self.release((self.next_r, d as u32));
                vec![self.emit(Instr::JmpIfZero {
                    cond: d,
                    target: u32::MAX,
                })]
            }
            LBool::And(a, b) => {
                let mut sites = self.compile_cond_false(a)?;
                sites.extend(self.compile_cond_false(b)?);
                sites
            }
            LBool::Or(a, b) => {
                // Fall through to the second test when the first fails;
                // succeed early when it holds.
                let true_sites = self.compile_cond_true(a)?;
                let sites = self.compile_cond_false(b)?;
                let here = self.here();
                for s in true_sites {
                    self.patch(s, here);
                }
                sites
            }
            LBool::Not(a) => self.compile_cond_true(a)?,
        })
    }

    /// Dual of [`Self::compile_cond_false`]: fall through when `b` fails,
    /// jump when it holds.
    fn compile_cond_true(&mut self, b: &LBool) -> Result<Vec<usize>, ExecError> {
        Ok(match b {
            LBool::Cmp(..) => {
                // cmp; if-zero skip; jmp TRUE
                let false_sites = self.compile_cond_false(b)?;
                let jmp = self.emit(Instr::Jmp { target: u32::MAX });
                let here = self.here();
                for s in false_sites {
                    self.patch(s, here);
                }
                vec![jmp]
            }
            LBool::And(a, b) => {
                let false_sites = self.compile_cond_false(a)?;
                let sites = self.compile_cond_true(b)?;
                let here = self.here();
                for s in false_sites {
                    self.patch(s, here);
                }
                sites
            }
            LBool::Or(a, b) => {
                let mut sites = self.compile_cond_true(a)?;
                sites.extend(self.compile_cond_true(b)?);
                sites
            }
            LBool::Not(a) => self.compile_cond_false(a)?,
        })
    }

    fn check_region_write_r(&self, slot: Slot) -> Result<(), ExecError> {
        if let Some(ws) = &self.region {
            if !ws.real.contains(&slot) {
                let name = self.scalar_name(slot, true);
                return Err(ExecError::new(format!(
                    "scalar `{name}` written inside a parallel region must be \
                     private, a reduction, or the loop counter"
                )));
            }
        }
        Ok(())
    }

    fn check_region_write_i(&self, slot: Slot) -> Result<(), ExecError> {
        if let Some(ws) = &self.region {
            if !ws.int.contains(&slot) {
                let name = self.scalar_name(slot, false);
                return Err(ExecError::new(format!(
                    "scalar `{name}` written inside a parallel region must be \
                     private, a reduction, or the loop counter"
                )));
            }
        }
        Ok(())
    }

    fn scalar_name(&self, slot: Slot, is_real: bool) -> String {
        let want = if is_real { Ty::Real } else { Ty::Int };
        self.lp
            .scalar_slots
            .iter()
            .find(|(_, (s, ty))| *s == slot && *ty == want)
            .map(|(n, _)| n.clone())
            .unwrap_or_else(|| format!("slot{slot}"))
    }

    fn compile_body(&mut self, body: &[LStmt]) -> Result<(), ExecError> {
        for s in body {
            let m = self.marks();
            self.compile_stmt(s)?;
            self.release(m);
        }
        Ok(())
    }

    fn compile_stmt(&mut self, s: &LStmt) -> Result<(), ExecError> {
        match s {
            LStmt::AssignR(slot, rhs) => {
                self.check_region_write_r(*slot)?;
                let r = self.compile_r(rhs)?;
                if r != *slot as Reg {
                    self.emit(Instr::MovR {
                        dst: *slot as Reg,
                        src: r,
                    });
                }
                Ok(())
            }
            LStmt::AssignI(slot, rhs) => {
                self.check_region_write_i(*slot)?;
                let r = self.compile_i(rhs)?;
                if r != *slot as Reg {
                    self.emit(Instr::MovI {
                        dst: *slot as Reg,
                        src: r,
                    });
                }
                Ok(())
            }
            LStmt::AssignElem(id, idx, rhs, _) => {
                // Interpreter order: offset (bounds errors) before rhs.
                let off = self.compile_offset(*id, idx)?;
                match self.lp.arrays[*id as usize].ty {
                    Ty::Real => {
                        // Fuse `a(i…) = a(i…) + e` into one
                        // read-modify-write. The interpreter evaluates the
                        // inner load's (identical, pure) index expressions
                        // a second time; reusing `off` gives the same
                        // offset, the same bounds outcome, and the same
                        // `cur + e` association, one address computation.
                        if let LExpr::Bin(BinOp::Add, l, e) = rhs {
                            if let LExpr::Elem(id2, idx2, _) = &**l {
                                if id2 == id
                                    && idx2.len() == idx.len()
                                    && idx2.iter().zip(idx).all(|(a, b)| lexpr_eq(a, b))
                                {
                                    let r = self.compile_r(e)?;
                                    self.emit(Instr::IncR {
                                        arr: *id as u16,
                                        off,
                                        src: r,
                                    });
                                    return Ok(());
                                }
                            }
                        }
                        let r = self.compile_r(rhs)?;
                        self.emit(Instr::StoreR {
                            arr: *id as u16,
                            off,
                            src: r,
                        });
                    }
                    Ty::Int => {
                        let r = self.compile_i(rhs)?;
                        self.emit(Instr::StoreI {
                            arr: *id as u16,
                            off,
                            src: r,
                        });
                    }
                }
                Ok(())
            }
            LStmt::AtomicAddElem(id, idx, rhs) => {
                let off = self.compile_offset(*id, idx)?;
                let r = self.compile_r(rhs)?;
                self.emit(Instr::AtomicAddR {
                    arr: *id as u16,
                    off,
                    src: r,
                });
                Ok(())
            }
            LStmt::If(cond, then_b, else_b) => {
                let false_sites = self.compile_cond_false(cond)?;
                self.compile_body(then_b)?;
                if else_b.is_empty() {
                    let here = self.here();
                    for s in false_sites {
                        self.patch(s, here);
                    }
                } else {
                    let skip_else = self.emit(Instr::Jmp { target: u32::MAX });
                    let here = self.here();
                    for s in false_sites {
                        self.patch(s, here);
                    }
                    self.compile_body(else_b)?;
                    let end = self.here();
                    self.patch(skip_else, end);
                }
                Ok(())
            }
            LStmt::Push(e, ty) => {
                match ty {
                    Ty::Real => {
                        let r = self.compile_r(e)?;
                        self.emit(Instr::PushR { src: r });
                    }
                    Ty::Int => {
                        let r = self.compile_i(e)?;
                        self.emit(Instr::PushI { src: r });
                    }
                }
                Ok(())
            }
            LStmt::PopR(slot) => {
                self.check_region_write_r(*slot)?;
                self.emit(Instr::PopR { dst: *slot as Reg });
                Ok(())
            }
            LStmt::PopI(slot) => {
                self.check_region_write_i(*slot)?;
                self.emit(Instr::PopI { dst: *slot as Reg });
                Ok(())
            }
            LStmt::PopElem(id, idx, _) => {
                let off = self.compile_offset(*id, idx)?;
                match self.lp.arrays[*id as usize].ty {
                    Ty::Real => self.emit(Instr::PopElemR {
                        arr: *id as u16,
                        off,
                    }),
                    Ty::Int => self.emit(Instr::PopElemI {
                        arr: *id as u16,
                        off,
                    }),
                };
                Ok(())
            }
            LStmt::For(f) => {
                if f.parallel.is_some() {
                    self.compile_parallel(f)
                } else {
                    self.compile_sequential(f)
                }
            }
        }
    }

    fn compile_sequential(&mut self, f: &LFor) -> Result<(), ExecError> {
        // Evaluate bounds once into persistent temps (the body may write
        // the scalars they came from), then drive the loop with the same
        // `while (step>0 && v<=hi) || (step<0 && v>=hi)` condition the
        // interpreter uses, keeping `v` distinct from the counter slot.
        let lo_r = self.compile_i(&f.lo)?;
        let v = self.alloc_i();
        self.emit(Instr::MovI { dst: v, src: lo_r });
        let hi_r = self.compile_i(&f.hi)?;
        let hi = self.alloc_i();
        self.emit(Instr::MovI { dst: hi, src: hi_r });
        let st_r = self.compile_i(&f.step)?;
        let step = self.alloc_i();
        self.emit(Instr::MovI {
            dst: step,
            src: st_r,
        });
        self.emit(Instr::StepNz { step });
        let cond = self.alloc_i();
        let head = self.here();
        self.emit(Instr::LoopCond {
            dst: cond,
            v,
            hi,
            step,
        });
        let exit = self.emit(Instr::JmpIfZero {
            cond,
            target: u32::MAX,
        });
        self.check_region_write_i(f.var)?;
        self.emit(Instr::MovI {
            dst: f.var as Reg,
            src: v,
        });
        self.compile_body(&f.body)?;
        self.emit(Instr::BinI {
            op: BinOp::Add,
            dst: v,
            a: v,
            b: step,
        });
        self.emit(Instr::Jmp { target: head });
        let end = self.here();
        self.patch(exit, end);
        Ok(())
    }

    fn compile_parallel(&mut self, f: &LFor) -> Result<(), ExecError> {
        if self.region.is_some() {
            return Err(ExecError::new(
                "nested parallel regions are not supported by the native backend",
            ));
        }
        let lp = f.parallel.as_ref().expect("parallel loop");
        // Bound registers live until EnterPar executes; the executor
        // reads them at region entry, so releasing them afterwards (via
        // the caller's statement-level mark) is safe.
        let lo_r = self.compile_i(&f.lo)?;
        let lo = self.alloc_i();
        self.emit(Instr::MovI { dst: lo, src: lo_r });
        let hi_r = self.compile_i(&f.hi)?;
        let hi = self.alloc_i();
        self.emit(Instr::MovI { dst: hi, src: hi_r });
        let st_r = self.compile_i(&f.step)?;
        let step = self.alloc_i();
        self.emit(Instr::MovI {
            dst: step,
            src: st_r,
        });

        let mut ws = RegionWriteSet {
            real: lp.private_r.clone(),
            int: lp.private_i.clone(),
        };
        ws.int.push(f.var);
        for (_, s, is_real) in &lp.red_scalars {
            if *is_real {
                ws.real.push(*s);
            } else {
                ws.int.push(*s);
            }
        }

        // Compile the body into its own code block. Temporaries restart
        // at the scalar watermark: workers execute on private copies of
        // the whole register file, so nothing from the enclosing
        // compilation context survives into the body.
        let outer_code = std::mem::take(&mut self.code);
        let outer_marks = self.marks();
        self.release((self.lp.n_real_scalars as u32, self.lp.n_int_scalars as u32));
        self.region = Some(ws);
        let body_result = self.compile_body(&f.body);
        self.region = None;
        self.emit(Instr::Halt);
        let body_code = std::mem::replace(&mut self.code, outer_code);
        self.release(outer_marks);
        body_result?;

        let region_idx = self.regions.len();
        if region_idx > u16::MAX as usize {
            return Err(ExecError::new("too many parallel regions for bytecode"));
        }
        self.regions.push(BcRegion {
            var: f.var as Reg,
            lo,
            hi,
            step,
            code: body_code,
            red_scalars: lp.red_scalars.clone(),
            red_arrays: lp.red_arrays.clone(),
        });
        self.emit(Instr::EnterPar {
            region: region_idx as u16,
        });
        Ok(())
    }
}
