//! End-to-end validation: reverse-mode transformation × interpreter ×
//! finite differences (dot-product test), across safeguard strategies and
//! thread counts.

use formad_ad::{differentiate, AdjointOptions, IncMode, ParallelTreatment};
use formad_ir::parse_program;
use formad_machine::{dot_product_test, Bindings, Machine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn rng() -> StdRng {
    StdRng::seed_from_u64(0x5EED_F0AD)
}

fn rand_vec(rng: &mut StdRng, n: usize) -> Vec<f64> {
    (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

/// Run the dot-product test for every parallel treatment and a few thread
/// counts; all must agree with finite differences and with each other.
fn check_all(
    src: &str,
    base: &Bindings,
    independents: &[(&str, Vec<f64>)],
    dependents: &[(&str, Vec<f64>)],
    tol: f64,
) {
    let primal = parse_program(src).unwrap();
    let treatments = [
        ("serial", ParallelTreatment::Serial),
        ("plain", ParallelTreatment::Uniform(IncMode::Plain)),
        ("atomic", ParallelTreatment::Uniform(IncMode::Atomic)),
        ("reduction", ParallelTreatment::Uniform(IncMode::Reduction)),
    ];
    for (tname, tr) in treatments {
        let indep_names: Vec<&str> = independents.iter().map(|(n, _)| *n).collect();
        let dep_names: Vec<&str> = dependents.iter().map(|(n, _)| *n).collect();
        let adj = differentiate(&primal, &AdjointOptions::new(&indep_names, &dep_names, tr))
            .unwrap_or_else(|e| panic!("differentiate failed ({tname}): {e}"));
        for threads in [1usize, 3, 8] {
            let m = Machine::with_threads(threads);
            let t = dot_product_test(&primal, &adj, base, independents, dependents, &m, 1e-6, "b")
                .unwrap_or_else(|e| panic!("execution failed ({tname}, T={threads}): {e}"));
            assert!(
                t.passes(tol),
                "dot test failed ({tname}, T={threads}): fd={} adj={} rel={}",
                t.fd_value,
                t.adjoint_value,
                t.rel_error
            );
        }
    }
}

#[test]
fn linear_gather_scatter_fig2() {
    let src = r#"
subroutine fig2(n, x, y, c)
  integer, intent(in) :: n
  real, intent(in) :: x(n + 7)
  real, intent(inout) :: y(n)
  integer, intent(in) :: c(n)
  integer :: i
  !$omp parallel do shared(x, y, c)
  do i = 1, n
    y(c(i)) = x(c(i) + 7)
  end do
end subroutine
"#;
    let n = 12;
    let mut r = rng();
    // A permutation for c (correct parallelization requires disjoint writes).
    let mut c: Vec<i64> = (1..=n as i64).collect();
    for k in (1..c.len()).rev() {
        let j = r.gen_range(0..=k);
        c.swap(k, j);
    }
    let base = Bindings::new()
        .int("n", n as i64)
        .int_array("c", c)
        .real_array("x", rand_vec(&mut r, n + 7))
        .real_array("y", rand_vec(&mut r, n));
    let v = rand_vec(&mut r, n + 7);
    let w = rand_vec(&mut r, n);
    check_all(src, &base, &[("x", v)], &[("y", w)], 1e-6);
}

#[test]
fn nonlinear_overwrite_with_tape() {
    let src = r#"
subroutine nl(n, x, y)
  integer, intent(in) :: n
  real, intent(in) :: x(n)
  real, intent(inout) :: y(n)
  integer :: i
  !$omp parallel do shared(x, y)
  do i = 1, n
    y(i) = y(i) * y(i) + sin(x(i)) * x(i)
  end do
end subroutine
"#;
    let n = 10;
    let mut r = rng();
    let base = Bindings::new()
        .int("n", n as i64)
        .real_array("x", rand_vec(&mut r, n))
        .real_array("y", rand_vec(&mut r, n));
    let v = rand_vec(&mut r, n);
    let w = rand_vec(&mut r, n);
    check_all(src, &base, &[("x", v)], &[("y", w)], 1e-5);
}

#[test]
fn stride2_compact_stencil() {
    // The paper's §7.1 compact scheme (one sweep).
    let src = r#"
subroutine stencil(n, wl, wc, wr, uold, unew)
  integer, intent(in) :: n
  real, intent(in) :: wl, wc, wr
  real, intent(in) :: uold(n)
  real, intent(inout) :: unew(n)
  integer :: i, offset, from
  do offset = 0, 1
    from = 2 * 1 + offset
    !$omp parallel do shared(unew, uold)
    do i = from, n - 2, 2
      unew(i) = unew(i) + wl * uold(i - 1)
      unew(i) = unew(i) + wc * uold(i)
      unew(i - 1) = unew(i - 1) + wr * uold(i)
    end do
  end do
end subroutine
"#;
    let n = 24;
    let mut r = rng();
    let base = Bindings::new()
        .int("n", n as i64)
        .real("wl", 0.3)
        .real("wc", 0.5)
        .real("wr", 0.2)
        .real_array("uold", rand_vec(&mut r, n))
        .real_array("unew", rand_vec(&mut r, n));
    let v = rand_vec(&mut r, n);
    let w = rand_vec(&mut r, n);
    check_all(src, &base, &[("uold", v)], &[("unew", w)], 1e-6);
}

#[test]
fn branchy_guarded_updates() {
    let src = r#"
subroutine gg(n, e2n1, e2n2, dv, sij, grad)
  integer, intent(in) :: n
  integer, intent(in) :: e2n1(n), e2n2(n)
  real, intent(in) :: dv(n)
  real, intent(in) :: sij(n)
  real, intent(inout) :: grad(n)
  integer :: ie, i, j
  real :: dvface
  !$omp parallel do shared(dv, sij, grad, e2n1, e2n2) private(i, j, dvface)
  do ie = 1, n
    i = e2n1(ie)
    j = e2n2(ie)
    if (i .ne. j) then
      dvface = 0.5 * (dv(i) + dv(j))
      grad(i) = grad(i) + dvface * sij(ie)
      grad(j) = grad(j) - dvface * sij(ie)
    end if
  end do
end subroutine
"#;
    // A 1-color linear mesh: edge ie connects nodes ie and ie+1 would
    // conflict; use a striped pattern where writes are disjoint within the
    // single parallel loop: edge ie touches nodes ie and ie (self-loop)
    // for odd ie (no-op via the guard) and (ie, ie-1)… simpler: perfect
    // matching — edge ie connects nodes 2ie-1 and 2ie.
    let n = 8usize; // edges; nodes = 2n but declared n-sized arrays: use n edges over n nodes.
    let mut r = rng();
    let e1: Vec<i64> = (1..=n as i64).collect();
    let e2: Vec<i64> = (1..=n as i64)
        .map(|k| if k % 2 == 0 { k - 1 } else { k })
        .collect();
    // Edges with even ie connect (ie, ie-1); odd ie are self-loops that the
    // guard skips. Writes stay disjoint across iterations? Edge 2 touches
    // nodes {2,1}, edge 4 {4,3}, ... — disjoint. Self-loops write nothing.
    let base = Bindings::new()
        .int("n", n as i64)
        .int_array("e2n1", e1)
        .int_array("e2n2", e2)
        .real_array("dv", rand_vec(&mut r, n))
        .real_array("sij", rand_vec(&mut r, n))
        .real_array("grad", rand_vec(&mut r, n));
    let v = rand_vec(&mut r, n);
    let w = rand_vec(&mut r, n);
    check_all(src, &base, &[("dv", v)], &[("grad", w)], 1e-6);
}

#[test]
fn inner_sequential_loop_and_scalar_accumulator() {
    let src = r#"
subroutine inner(n, m, x, y)
  integer, intent(in) :: n, m
  real, intent(in) :: x(n, m)
  real, intent(inout) :: y(n)
  integer :: i, j
  real :: acc
  !$omp parallel do shared(x, y) private(j, acc)
  do i = 1, n
    acc = 0.0
    do j = 1, m
      acc = acc + x(i, j) * x(i, j)
    end do
    y(i) = y(i) + sqrt(acc + 1.0)
  end do
end subroutine
"#;
    let (n, m) = (6usize, 4usize);
    let mut r = rng();
    let base = Bindings::new()
        .int("n", n as i64)
        .int("m", m as i64)
        .real_array("x", rand_vec(&mut r, n * m))
        .real_array("y", rand_vec(&mut r, n));
    let v = rand_vec(&mut r, n * m);
    let w = rand_vec(&mut r, n);
    check_all(src, &base, &[("x", v)], &[("y", w)], 1e-5);
}

#[test]
fn multiple_sweeps_sequential_outer_loop() {
    let src = r#"
subroutine sweeps(n, k, x, y)
  integer, intent(in) :: n, k
  real, intent(in) :: x(n)
  real, intent(inout) :: y(n)
  integer :: s, i
  do s = 1, k
    !$omp parallel do shared(x, y)
    do i = 2, n - 1
      y(i) = y(i) + 0.25 * x(i) * y(i - 1)
    end do
  end do
end subroutine
"#;
    // Note: y(i-1) read while y(i) written — loop-carried in the parallel
    // loop! Make it correct: read x only.
    let src_fixed = src.replace(
        "y(i) = y(i) + 0.25 * x(i) * y(i - 1)",
        "y(i) = y(i) + 0.25 * x(i) * x(i - 1)",
    );
    let n = 12;
    let mut r = rng();
    let base = Bindings::new()
        .int("n", n as i64)
        .int("k", 3)
        .real_array("x", rand_vec(&mut r, n))
        .real_array("y", rand_vec(&mut r, n));
    let v = rand_vec(&mut r, n);
    let w = rand_vec(&mut r, n);
    check_all(&src_fixed, &base, &[("x", v)], &[("y", w)], 1e-6);
}

#[test]
fn adjoint_results_identical_across_thread_counts() {
    // Determinism: the adjoint values (not just dot products) must be
    // bitwise independent of the simulated thread count for plain mode.
    let src = r#"
subroutine det(n, x, y)
  integer, intent(in) :: n
  real, intent(in) :: x(n)
  real, intent(inout) :: y(n)
  integer :: i
  !$omp parallel do shared(x, y)
  do i = 1, n
    y(i) = y(i) + exp(x(i)) * 0.01
  end do
end subroutine
"#;
    let n = 9;
    let mut r = rng();
    let primal = parse_program(src).unwrap();
    let adj = differentiate(
        &primal,
        &AdjointOptions::new(&["x"], &["y"], ParallelTreatment::Uniform(IncMode::Plain)),
    )
    .unwrap();
    let x = rand_vec(&mut r, n);
    let y = rand_vec(&mut r, n);
    let yb = rand_vec(&mut r, n);
    let mut results = Vec::new();
    for threads in [1usize, 2, 5, 9, 16] {
        let mut b = Bindings::new()
            .int("n", n as i64)
            .real_array("x", x.clone())
            .real_array("y", y.clone())
            .real_array("xb", vec![0.0; n])
            .real_array("yb", yb.clone());
        formad_machine::run(&adj, &mut b, &Machine::with_threads(threads)).unwrap();
        results.push(b.get_real_array("xb").unwrap().to_vec());
    }
    for r2 in &results[1..] {
        assert_eq!(&results[0], r2);
    }
}
