//! The AOT differential wall: every generated adjoint version of every
//! executable Table-2 kernel, run through the AOT native backend, must
//! be bitwise identical to BOTH the simulated interpreter and the
//! bytecode executor, at 1 and 4 logical threads — the same gate the
//! bytecode backend passed in `bench/tests/native_kernels.rs`.
//!
//! A second test forces kernel compilation to fail (by pointing
//! `FORMAD_AOT_RUSTC` at a nonexistent binary and the cache at an empty
//! directory) and proves the degradation contract: the run still
//! succeeds, on the bytecode backend, with identical results.

use std::sync::Mutex;

use formad::{Formad, FormadOptions, IncMode, ParallelTreatment};
use formad_ir::Program;
use formad_kernels::{GfmcCase, GreenGaussCase, StencilCase};
use formad_machine::{
    compile, load_or_compile, lower, run, run_aot, Bindings, Machine, NativeEngine,
};

/// `FORMAD_AOT_RUSTC`/`FORMAD_AOT_DIR` are process-global; tests that
/// compile kernels serialize on this so the forced-failure test cannot
/// poison a concurrent real compile.
static AOT_ENV: Mutex<()> = Mutex::new(());

struct Case {
    name: &'static str,
    program: Program,
    base: Bindings,
    indep: &'static [&'static str],
    dep: &'static [&'static str],
}

fn cases() -> Vec<Case> {
    let st1 = StencilCase::small(48, 2);
    let st8 = StencilCase::large(48, 1);
    let gf = GfmcCase::new(8, 1);
    let gg = GreenGaussCase::linear(40, 2);
    vec![
        Case {
            name: "stencil r=1",
            program: st1.ir(),
            base: st1.bindings(7),
            indep: StencilCase::independents(),
            dep: StencilCase::dependents(),
        },
        Case {
            name: "stencil r=8",
            program: st8.ir(),
            base: st8.bindings(7),
            indep: StencilCase::independents(),
            dep: StencilCase::dependents(),
        },
        Case {
            name: "gfmc",
            program: gf.ir(),
            base: gf.bindings_split(7),
            indep: GfmcCase::independents(),
            dep: GfmcCase::dependents(),
        },
        Case {
            name: "green-gauss",
            program: gg.ir(),
            base: gg.bindings(7),
            indep: GreenGaussCase::independents(),
            dep: GreenGaussCase::dependents(),
        },
    ]
}

/// The three increment disciplines plus the primal (the same set
/// `formad-bench`'s `ProgramVersions` benches, minus the serial
/// variants, which have no parallel regions for AOT to compile).
fn versions(case: &Case) -> Vec<(&'static str, Program)> {
    let tool = Formad::new(FormadOptions::new(case.indep, case.dep));
    let diff = tool.differentiate(&case.program).expect("formad pipeline");
    vec![
        ("primal", case.program.clone()),
        ("adj-FormAD", diff.adjoint),
        (
            "adj-atomic",
            tool.adjoint_with(&case.program, ParallelTreatment::Uniform(IncMode::Atomic))
                .expect("atomic adjoint"),
        ),
        (
            "adj-reduction",
            tool.adjoint_with(
                &case.program,
                ParallelTreatment::Uniform(IncMode::Reduction),
            )
            .expect("reduction adjoint"),
        ),
    ]
}

/// Seed the adjoint inputs: dependents' bars at 1.0, independents' bars
/// accumulated from zero (mirrors `formad_bench::adjoint_bindings`).
fn adjoint_bindings(base: &Bindings, indep: &[&str], dep: &[&str]) -> Bindings {
    let mut b = base.clone();
    for name in dep {
        let len = base.get_real_array(name).expect("dependent bound").len();
        b.real_arrays.insert(format!("{name}b"), vec![1.0; len]);
    }
    for name in indep {
        let key = format!("{name}b");
        b.real_arrays.entry(key).or_insert_with(|| {
            let len = base.get_real_array(name).expect("independent bound").len();
            vec![0.0; len]
        });
    }
    b
}

fn assert_bitwise(ctx: &str, a_name: &str, a: &Bindings, b_name: &str, b: &Bindings) {
    for (name, v) in &a.real_scalars {
        let w = b.real_scalars[name];
        assert_eq!(
            v.to_bits(),
            w.to_bits(),
            "{ctx}: scalar `{name}`: {a_name} {v} vs {b_name} {w}"
        );
    }
    for (name, v) in &a.real_arrays {
        let w = &b.real_arrays[name];
        assert_eq!(v.len(), w.len(), "{ctx}: array `{name}` length");
        for (k, (p, q)) in v.iter().zip(w).enumerate() {
            assert_eq!(
                p.to_bits(),
                q.to_bits(),
                "{ctx}: array `{name}`[{k}]: {a_name} {p} vs {b_name} {q}"
            );
        }
    }
    for (name, v) in &a.int_scalars {
        assert_eq!(b.int_scalars.get(name), Some(v), "{ctx}: int `{name}`");
    }
    for (name, v) in &a.int_arrays {
        assert_eq!(b.int_arrays.get(name), Some(v), "{ctx}: int arr `{name}`");
    }
}

#[test]
fn all_kernels_all_disciplines_bitwise_aot() {
    let _guard = AOT_ENV.lock().unwrap_or_else(|p| p.into_inner());
    for case in cases() {
        let adj_base = adjoint_bindings(&case.base, case.indep, case.dep);
        for (label, prog) in versions(&case) {
            let bind = if label == "primal" {
                &case.base
            } else {
                &adj_base
            };
            let lp = lower(&prog, bind).expect("lower");
            let bc = compile(&lp, &prog).expect("bytecode");
            let kernel = load_or_compile(&lp, &bc)
                .unwrap_or_else(|e| panic!("{} / {label}: AOT must build in-tree: {e}", case.name));
            assert_eq!(kernel.region_count(), bc.regions.len());
            for threads in [1usize, 4] {
                let ctx = format!("{} / {label} at T={threads}", case.name);
                let mut sim = bind.clone();
                run(&prog, &mut sim, &Machine::with_threads(threads))
                    .unwrap_or_else(|e| panic!("{ctx}: sim run failed: {e}"));
                let mut byt = bind.clone();
                NativeEngine::new(threads)
                    .run(&bc, &mut byt)
                    .unwrap_or_else(|e| panic!("{ctx}: bytecode run failed: {e}"));
                let mut aot = bind.clone();
                NativeEngine::new(threads)
                    .run_with(&bc, Some(&kernel), &mut aot)
                    .unwrap_or_else(|e| panic!("{ctx}: aot run failed: {e}"));
                assert_bitwise(&ctx, "sim", &sim, "aot", &aot);
                assert_bitwise(&ctx, "bytecode", &byt, "aot", &aot);
            }
        }
    }
}

/// Degradation, not errors: with a broken `rustc` and a cold cache the
/// AOT entry point must fall back to the bytecode backend, succeed, and
/// produce bitwise-identical results.
#[test]
fn forced_compile_failure_falls_back_to_bytecode() {
    let _guard = AOT_ENV.lock().unwrap_or_else(|p| p.into_inner());
    // Cold cache + unusable compiler: the extents are baked into the
    // generated source, so a size no other test binds guarantees the
    // in-process registry misses, and the fresh cache dir guarantees the
    // disk lookup misses — the build must actually run, and fail.
    let st = StencilCase::small(37, 1);
    let prog = st.ir();
    let base = st.bindings(13);
    let dir = std::env::temp_dir().join(format!("formad-aot-failtest-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::env::set_var("FORMAD_AOT_DIR", &dir);
    std::env::set_var("FORMAD_AOT_RUSTC", "/nonexistent/formad-test-rustc");
    let result = (|| {
        let mut sim = base.clone();
        run(&prog, &mut sim, &Machine::with_threads(4))?;
        let mut aot = base.clone();
        let fallback = run_aot(&prog, &mut aot, 4)?;
        Ok::<_, formad_machine::ExecError>((sim, aot, fallback))
    })();
    std::env::remove_var("FORMAD_AOT_RUSTC");
    std::env::remove_var("FORMAD_AOT_DIR");
    let _ = std::fs::remove_dir_all(&dir);
    let (sim, aot, fallback) = result.expect("fallback run must succeed");
    let reason = fallback.expect("compile failure must be reported as a fallback reason");
    assert!(
        reason.contains("failed to spawn"),
        "unexpected fallback reason: {reason}"
    );
    assert_bitwise("forced-failure fallback", "sim", &sim, "aot", &aot);
}
