//! Language-semantics tests of the execution substrate: Fortran loop
//! rules, sharing clauses, tape discipline across regions, and cost-model
//! invariants.

use formad_ir::parse_program;
use formad_machine::{run, Bindings, Machine};

fn exec(src: &str, b: Bindings, threads: usize) -> (Bindings, formad_machine::ExecResult) {
    let p = parse_program(src).unwrap();
    let mut b = b;
    let r = run(&p, &mut b, &Machine::with_threads(threads)).unwrap();
    (b, r)
}

#[test]
fn loop_bounds_evaluated_once_on_entry() {
    // Fortran DO semantics: the trip count is fixed at loop entry; this
    // loop body cannot extend itself by rebinding a bound variable —
    // rejected at reversal time by AD, but execution must also follow the
    // entry-time bound for plain runs.
    let src = r#"
subroutine t(n, y)
  integer, intent(in) :: n
  real, intent(inout) :: y(n)
  integer :: i, m
  m = 3
  do i = 1, m
    y(i) = 1.0
    m = 5
  end do
end subroutine
"#;
    let b = Bindings::new().int("n", 6).real_array("y", vec![0.0; 6]);
    let (out, _) = exec(src, b, 1);
    let y = out.get_real_array("y").unwrap();
    assert_eq!(y.iter().filter(|v| **v == 1.0).count(), 3, "{y:?}");
}

#[test]
fn negative_step_sequential_and_parallel_agree() {
    let src = r#"
subroutine t(n, y)
  integer, intent(in) :: n
  real, intent(inout) :: y(n)
  integer :: i
  !$omp parallel do shared(y)
  do i = n, 1, -3
    y(i) = i * 1.0
  end do
end subroutine
"#;
    let mk = || Bindings::new().int("n", 11).real_array("y", vec![0.0; 11]);
    let (s1, _) = exec(src, mk(), 1);
    let (s5, _) = exec(src, mk(), 5);
    assert_eq!(s1.get_real_array("y"), s5.get_real_array("y"));
    // Iterates 11, 8, 5, 2.
    let y = s1.get_real_array("y").unwrap();
    assert_eq!(y[10], 11.0);
    assert_eq!(y[7], 8.0);
    assert_eq!(y[1], 2.0);
    assert_eq!(y[0], 0.0);
}

#[test]
fn empty_loops_execute_zero_iterations() {
    let src = r#"
subroutine t(n, y)
  integer, intent(in) :: n
  real, intent(inout) :: y(n)
  integer :: i
  do i = 5, 2
    y(1) = 99.0
  end do
  !$omp parallel do shared(y)
  do i = 2, 5, -1
    y(2) = 99.0
  end do
end subroutine
"#;
    let b = Bindings::new().int("n", 3).real_array("y", vec![0.0; 3]);
    let (out, _) = exec(src, b, 4);
    assert_eq!(out.get_real_array("y").unwrap(), &[0.0, 0.0, 0.0]);
}

#[test]
fn min_max_reductions() {
    let src = r#"
subroutine t(n, x, lo, hi)
  integer, intent(in) :: n
  real, intent(in) :: x(n)
  real, intent(inout) :: lo, hi
  integer :: i
  !$omp parallel do shared(x) reduction(min: lo) reduction(max: hi)
  do i = 1, n
    lo = min(lo, x(i))
    hi = max(hi, x(i))
  end do
end subroutine
"#;
    let x: Vec<f64> = vec![3.0, -7.5, 2.0, 9.25, 0.0, -1.0];
    let b = Bindings::new()
        .int("n", 6)
        .real("lo", 1e30)
        .real("hi", -1e30)
        .real_array("x", x);
    let (out, _) = exec(src, b, 3);
    assert_eq!(out.get_real("lo"), Some(-7.5));
    assert_eq!(out.get_real("hi"), Some(9.25));
}

#[test]
fn private_counter_restored_after_region() {
    let src = r#"
subroutine t(n, y, iout)
  integer, intent(in) :: n
  real, intent(inout) :: y(n)
  integer, intent(inout) :: iout
  integer :: i
  i = -42
  !$omp parallel do shared(y)
  do i = 1, n
    y(i) = 1.0
  end do
  iout = i
end subroutine
"#;
    // OpenMP: the shared `i` outside the region keeps its pre-region
    // value (the loop counter is private).
    let b = Bindings::new()
        .int("n", 4)
        .int("iout", 0)
        .real_array("y", vec![0.0; 4]);
    let (out, _) = exec(src, b, 2);
    assert_eq!(out.int_scalars["iout"], -42);
}

#[test]
fn tape_survives_between_regions_per_thread() {
    // Push in one parallel region, pop in a later one with the same
    // iteration space: thread-local tapes must line up chunk for chunk.
    let src = r#"
subroutine t(n, y, z)
  integer, intent(in) :: n
  real, intent(inout) :: y(n)
  real, intent(inout) :: z(n)
  integer :: i
  !$omp parallel do shared(y)
  do i = 1, n
    call push(y(i) * 2.0)
  end do
  !$omp parallel do shared(z)
  do i = n, 1, -1
    call pop(z(i))
  end do
end subroutine
"#;
    for threads in [1usize, 2, 3, 7] {
        let y: Vec<f64> = (0..20).map(|k| k as f64).collect();
        let b = Bindings::new()
            .int("n", 20)
            .real_array("y", y.clone())
            .real_array("z", vec![0.0; 20]);
        let (out, _) = exec(src, b, threads);
        let z = out.get_real_array("z").unwrap();
        for (k, v) in z.iter().enumerate() {
            assert_eq!(*v, y[k] * 2.0, "T={threads} k={k}");
        }
    }
}

#[test]
fn wall_cycles_monotone_in_safeguard_strength() {
    // Same semantics, increasing cost: plain < reduction < atomic for
    // this footprint-heavy loop at 4 threads.
    let plain = r#"
subroutine t(n, y)
  integer, intent(in) :: n
  real, intent(inout) :: y(n)
  integer :: i
  !$omp parallel do shared(y)
  do i = 1, n
    y(i) = y(i) + 1.0
  end do
end subroutine
"#;
    let atomic = plain.replace(
        "    y(i) = y(i) + 1.0",
        "    !$omp atomic\n    y(i) = y(i) + 1.0",
    );
    let reduction = plain.replace(
        "!$omp parallel do shared(y)",
        "!$omp parallel do reduction(+: y)",
    );
    let mk = || {
        Bindings::new()
            .int("n", 500)
            .real_array("y", vec![0.0; 500])
    };
    let (op, rp) = exec(plain, mk(), 4);
    let (oa, ra) = exec(&atomic, mk(), 4);
    let (or_, rr) = exec(&reduction, mk(), 4);
    assert_eq!(op.get_real_array("y"), oa.get_real_array("y"));
    assert_eq!(op.get_real_array("y"), or_.get_real_array("y"));
    assert!(rp.wall_cycles < rr.wall_cycles, "plain < reduction");
    assert!(rr.wall_cycles < ra.wall_cycles, "reduction < atomic");
}

#[test]
fn atomic_cost_grows_with_thread_count() {
    let src = r#"
subroutine t(n, y)
  integer, intent(in) :: n
  real, intent(inout) :: y(n)
  integer :: i
  !$omp parallel do shared(y)
  do i = 1, n
    !$omp atomic
    y(i) = y(i) + 1.0
  end do
end subroutine
"#;
    let mk = || {
        Bindings::new()
            .int("n", 2000)
            .real_array("y", vec![0.0; 2000])
    };
    let p = parse_program(src).unwrap();
    let mut prev = 0u128;
    for threads in [1usize, 4, 18] {
        let mut b = mk();
        let r = run(&p, &mut b, &Machine::with_threads(threads)).unwrap();
        assert!(
            r.wall_cycles > prev,
            "atomic wall time must grow with threads: {} at T={threads}",
            r.wall_cycles
        );
        prev = r.wall_cycles;
    }
}

#[test]
fn stats_counters_are_exact() {
    let src = r#"
subroutine t(n, x, y)
  integer, intent(in) :: n
  real, intent(in) :: x(n)
  real, intent(inout) :: y(n)
  integer :: i
  !$omp parallel do shared(x, y)
  do i = 1, n
    call push(y(i))
    y(i) = x(i)
    call pop(y(i))
  end do
end subroutine
"#;
    let n = 37;
    let b = Bindings::new()
        .int("n", n as i64)
        .real_array("x", vec![1.0; n])
        .real_array("y", vec![2.0; n]);
    let (out, r) = exec(src, b, 5);
    assert_eq!(r.stats.tape_pushes, n as u64);
    assert_eq!(r.stats.tape_pops, n as u64);
    assert_eq!(r.stats.parallel_regions, 1);
    // Pops restored the original y.
    assert_eq!(out.get_real_array("y").unwrap(), vec![2.0; n].as_slice());
}

#[test]
fn deep_nesting_and_guards() {
    let src = r#"
subroutine t(n, c, y)
  integer, intent(in) :: n
  integer, intent(in) :: c(n)
  real, intent(inout) :: y(n)
  integer :: i, j, k
  !$omp parallel do shared(c, y) private(j, k)
  do i = 1, n
    do j = 1, 2
      do k = 1, 2
        if (c(i) .gt. 0) then
          if (mod(j + k, 2) .eq. 0) then
            y(i) = y(i) + 1.0
          end if
        end if
      end do
    end do
  end do
end subroutine
"#;
    let b = Bindings::new()
        .int("n", 4)
        .int_array("c", vec![1, 0, 2, -1])
        .real_array("y", vec![0.0; 4]);
    let (out, _) = exec(src, b, 2);
    // For c(i) > 0: (j,k) in {(1,1),(1,2),(2,1),(2,2)}; even sums: (1,1),(2,2).
    assert_eq!(out.get_real_array("y").unwrap(), &[2.0, 0.0, 2.0, 0.0]);
}
