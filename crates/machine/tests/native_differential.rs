//! Differential tests: the native bytecode executor must be bitwise
//! identical to the simulated tree-walking interpreter on every program
//! it accepts — same results, same errors.

use formad_ir::parse_program;
use formad_machine::{compile, lower, run, run_native, Bindings, Machine, NativeEngine};

/// Run `src` under both backends at `threads` and assert every written
/// parameter is bitwise equal.
fn assert_backends_agree(src: &str, bind: &Bindings, threads: usize) {
    let p = parse_program(src).expect("parse");
    let mut sim = bind.clone();
    let sim_res = run(&p, &mut sim, &Machine::with_threads(threads));
    let mut nat = bind.clone();
    let nat_res = run_native(&p, &mut nat, threads);
    match (&sim_res, &nat_res) {
        (Ok(_), Ok(())) => {}
        (Err(a), Err(b)) => {
            assert_eq!(a.message, b.message, "error divergence at T={threads}");
            return;
        }
        _ => panic!("backend divergence at T={threads}: sim={sim_res:?} native={nat_res:?}"),
    }
    for (name, v) in &sim.real_scalars {
        let n = nat.real_scalars.get(name).expect("native scalar");
        assert_eq!(
            v.to_bits(),
            n.to_bits(),
            "scalar `{name}` diverges at T={threads}: {v} vs {n}"
        );
    }
    for (name, v) in &sim.int_scalars {
        assert_eq!(nat.int_scalars.get(name), Some(v), "int scalar `{name}`");
    }
    for (name, v) in &sim.real_arrays {
        let n = nat.real_arrays.get(name).expect("native array");
        assert_eq!(v.len(), n.len(), "array `{name}` length");
        for (k, (a, b)) in v.iter().zip(n).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "array `{name}`[{k}] diverges at T={threads}: {a} vs {b}"
            );
        }
    }
    for (name, v) in &sim.int_arrays {
        assert_eq!(nat.int_arrays.get(name), Some(v), "int array `{name}`");
    }
}

fn all_threads(src: &str, bind: Bindings) {
    for threads in [1, 2, 3, 4, 8] {
        assert_backends_agree(src, &bind, threads);
    }
}

const SAXPY: &str = r#"
subroutine saxpy(n, a, x, y)
  integer, intent(in) :: n
  real, intent(in) :: a
  real, intent(in) :: x(n)
  real, intent(inout) :: y(n)
  integer :: i
  !$omp parallel do shared(x, y)
  do i = 1, n
    y(i) = y(i) + a * x(i)
  end do
end subroutine
"#;

#[test]
fn saxpy_bitwise() {
    all_threads(
        SAXPY,
        Bindings::new()
            .int("n", 23)
            .real("a", 1.7)
            .real_array("x", (0..23).map(|k| (k as f64).sin()).collect())
            .real_array("y", (0..23).map(|k| 1.0 / (k + 1) as f64).collect()),
    );
}

#[test]
fn atomic_add_bitwise() {
    let src = r#"
subroutine at(n, y)
  integer, intent(in) :: n
  real, intent(inout) :: y(n)
  integer :: i
  !$omp parallel do shared(y)
  do i = 1, n
    !$omp atomic
    y(i) = y(i) + 1.5
  end do
end subroutine
"#;
    all_threads(
        src,
        Bindings::new()
            .int("n", 100)
            .real_array("y", (0..100).map(|k| (k as f64).cos()).collect()),
    );
}

// All iterations hit overlapping elements: thread-order merge must
// reproduce the interpreter's association exactly.
const OVERLAP_REDUCTION: &str = r#"
subroutine red(n, x, y)
  integer, intent(in) :: n
  real, intent(in) :: x(n)
  real, intent(inout) :: y(n)
  integer :: i, j
  !$omp parallel do shared(x) reduction(+: y) private(j)
  do i = 1, n
    j = mod(i, 7) + 1
    y(j) = y(j) + x(i)
  end do
end subroutine
"#;

#[test]
fn array_reduction_bitwise() {
    all_threads(
        OVERLAP_REDUCTION,
        Bindings::new()
            .int("n", 61)
            .real_array("x", (0..61).map(|k| (k as f64 * 0.3).sin()).collect())
            .real_array("y", (0..61).map(|k| k as f64 * 0.01).collect()),
    );
}

#[test]
fn scalar_reduction_bitwise() {
    let src = r#"
subroutine dotsum(n, x, s)
  integer, intent(in) :: n
  real, intent(in) :: x(n)
  real, intent(inout) :: s
  integer :: i
  !$omp parallel do shared(x) reduction(+: s)
  do i = 1, n
    s = s + x(i) * x(i)
  end do
end subroutine
"#;
    all_threads(
        src,
        Bindings::new()
            .int("n", 37)
            .real("s", 0.25)
            .real_array("x", (0..37).map(|k| (k as f64 * 1.1).cos()).collect()),
    );
}

// Forward parallel push, reversed parallel pop: per-thread tapes and
// the value-ascending chunk mapping must line up across backends.
const TAPE_ROUNDTRIP: &str = r#"
subroutine tp(n, y)
  integer, intent(in) :: n
  real, intent(inout) :: y(n)
  integer :: i
  !$omp parallel do shared(y)
  do i = 1, n
    call push(y(i))
    y(i) = -1.0
  end do
  !$omp parallel do shared(y)
  do i = n, 1, -1
    call pop(y(i))
  end do
end subroutine
"#;

#[test]
fn parallel_tapes_roundtrip_bitwise() {
    all_threads(
        TAPE_ROUNDTRIP,
        Bindings::new()
            .int("n", 17)
            .real_array("y", (0..17).map(|k| k as f64 * 1.25).collect()),
    );
}

#[test]
fn control_flow_and_intrinsics_bitwise() {
    let src = r#"
subroutine cf(n, c, y)
  integer, intent(in) :: n
  integer, intent(in) :: c(n)
  real, intent(inout) :: y(n)
  integer :: i, j
  do i = 1, n
    if ((c(i) .gt. 0) .and. (mod(i, 2) .eq. 0)) then
      do j = 1, c(i)
        y(i) = y(i) + sqrt(2.0) * exp(0.1)
      end do
    else
      if ((c(i) .lt. -1) .or. (i .eq. 1)) then
        y(i) = min(abs(y(i)), max(1.0, y(i) * y(i)))
      else
        y(i) = -5.0 ** 2 + tanh(y(i))
      end if
    end if
  end do
end subroutine
"#;
    all_threads(
        src,
        Bindings::new()
            .int("n", 9)
            .int_array("c", vec![2, 0, 3, -1, -7, 4, 1, -2, 5])
            .real_array("y", (0..9).map(|k| (k as f64 - 4.0) * 0.8).collect()),
    );
}

#[test]
fn multidim_gather_bitwise() {
    let src = r#"
subroutine md(n, m, e, u, g)
  integer, intent(in) :: n, m
  integer, intent(in) :: e(n)
  real, intent(in) :: u(n, m)
  real, intent(inout) :: g(n, m)
  integer :: i, j, k
  !$omp parallel do shared(e, u, g) private(j, k)
  do i = 1, n
    k = e(i)
    do j = 1, m
      g(i, j) = g(i, j) + u(k, j) * 0.5
    end do
  end do
end subroutine
"#;
    all_threads(
        src,
        Bindings::new()
            .int("n", 6)
            .int("m", 4)
            .int_array("e", vec![3, 1, 6, 2, 5, 4])
            .real_array("u", (0..24).map(|k| (k as f64).sin()).collect())
            .real_array("g", (0..24).map(|k| k as f64 * 0.1).collect()),
    );
}

#[test]
fn oob_error_matches() {
    let src = r#"
subroutine ob(n, y)
  integer, intent(in) :: n
  real, intent(inout) :: y(n)
  integer :: i
  do i = 1, n + 1
    y(i) = 1.0
  end do
end subroutine
"#;
    assert_backends_agree(
        src,
        &Bindings::new().int("n", 3).real_array("y", vec![0.0; 3]),
        1,
    );
}

#[test]
fn oob_error_in_region_matches() {
    let src = r#"
subroutine ob(n, y)
  integer, intent(in) :: n
  real, intent(inout) :: y(n)
  integer :: i
  !$omp parallel do shared(y)
  do i = 1, n
    y(i + 1) = 1.0
  end do
end subroutine
"#;
    for threads in [1, 4] {
        assert_backends_agree(
            src,
            &Bindings::new().int("n", 8).real_array("y", vec![0.0; 8]),
            threads,
        );
    }
}

#[test]
fn empty_iteration_space_matches() {
    let src = r#"
subroutine e(n, y)
  integer, intent(in) :: n
  real, intent(inout) :: y(n)
  integer :: i
  !$omp parallel do shared(y)
  do i = 2, 1
    y(i) = 7.0
  end do
end subroutine
"#;
    all_threads(
        src,
        Bindings::new().int("n", 3).real_array("y", vec![1.0; 3]),
    );
}

#[test]
fn forced_os_workers_bitwise() {
    // `NativeEngine::new` clamps OS workers to the host's cores; force a
    // genuinely concurrent pool so the multi-worker region path (worker
    // wakeup, per-thread tapes, reduction merge) runs on real threads
    // regardless of the machine the tests land on.
    for src in [SAXPY, TAPE_ROUNDTRIP, OVERLAP_REDUCTION] {
        let p = parse_program(src).expect("parse");
        let bind = match p.name.as_str() {
            "saxpy" => Bindings::new()
                .int("n", 23)
                .real("a", 1.7)
                .real_array("x", (0..23).map(|k| (k as f64).sin()).collect())
                .real_array("y", (0..23).map(|k| 1.0 / (k + 1) as f64).collect()),
            "tp" => Bindings::new()
                .int("n", 17)
                .real_array("y", (0..17).map(|k| k as f64 * 1.25).collect()),
            _ => Bindings::new()
                .int("n", 61)
                .real_array("x", (0..61).map(|k| (k as f64 * 0.3).sin()).collect())
                .real_array("y", (0..61).map(|k| k as f64 * 0.01).collect()),
        };
        for threads in [2, 4] {
            let mut sim = bind.clone();
            run(&p, &mut sim, &Machine::with_threads(threads)).expect("sim");
            let lp = lower(&p, &bind).expect("lower");
            let bc = compile(&lp, &p).expect("compile");
            let mut engine = NativeEngine::with_os_threads(threads, threads);
            assert_eq!(engine.os_threads(), threads);
            let mut nat = bind.clone();
            engine.run(&bc, &mut nat).expect("native");
            for (name, v) in &sim.real_arrays {
                let n = &nat.real_arrays[name];
                for (k, (a, b)) in v.iter().zip(n).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "`{}` array `{name}`[{k}] diverges on {threads} OS workers",
                        p.name
                    );
                }
            }
        }
    }
}

#[test]
fn shared_scalar_write_in_region_rejected_natively() {
    // The simulated machine tolerates this (its threads run
    // sequentially); the native backend must refuse to compile it
    // instead of racing.
    let src = r#"
subroutine bad(n, y, s)
  integer, intent(in) :: n
  real, intent(inout) :: y(n)
  real, intent(inout) :: s
  integer :: i
  !$omp parallel do shared(y)
  do i = 1, n
    s = y(i)
    y(i) = s * 2.0
  end do
end subroutine
"#;
    let p = parse_program(src).expect("parse");
    let mut b = Bindings::new()
        .int("n", 4)
        .real("s", 0.0)
        .real_array("y", vec![1.0; 4]);
    let err = formad_machine::run_native(&p, &mut b, 2).expect_err("must reject");
    assert!(
        err.message.contains("written inside a parallel region"),
        "{err}"
    );
}
