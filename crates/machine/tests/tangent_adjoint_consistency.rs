//! The classic AD consistency identity: for tangent `ẏ = J·ẋ` and adjoint
//! `x̄ = Jᵀ·ȳ`, the inner products `⟨ȳ, ẏ⟩` and `⟨x̄, ẋ⟩` must agree to
//! machine precision (no finite differences involved).

use formad_ad::{differentiate, differentiate_tangent, AdjointOptions, IncMode, ParallelTreatment};
use formad_ir::parse_program;
use formad_machine::{run, Bindings, Machine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn rv(rng: &mut StdRng, n: usize) -> Vec<f64> {
    (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

fn consistency(
    src: &str,
    base: &Bindings,
    indep: &[&str],
    dep: &[&str],
    xdot: &[(&str, Vec<f64>)],
    ybar: &[(&str, Vec<f64>)],
    threads: usize,
) {
    let primal = parse_program(src).unwrap();
    let opts = AdjointOptions::new(indep, dep, ParallelTreatment::Uniform(IncMode::Plain));
    let tangent = differentiate_tangent(&primal, &opts).unwrap();
    let adjoint = differentiate(&primal, &opts).unwrap();
    let m = Machine::with_threads(threads);

    // Tangent run: seed xd, read yd.
    let mut bt = base.clone();
    for (name, v) in xdot {
        bt.real_arrays.insert(format!("{name}d"), v.clone());
    }
    for (name, _) in ybar {
        bt.real_arrays.entry(format!("{name}d")).or_insert_with(|| {
            let len = base.get_real_array(name).unwrap().len();
            vec![0.0; len]
        });
    }
    run(&tangent, &mut bt, &m).unwrap();
    let mut lhs = 0.0;
    for (name, w) in ybar {
        let yd = bt.get_real_array(&format!("{name}d")).unwrap();
        lhs += yd.iter().zip(w).map(|(a, b)| a * b).sum::<f64>();
    }

    // Adjoint run: seed yb, read xb.
    let mut ba = base.clone();
    for (name, w) in ybar {
        ba.real_arrays.insert(format!("{name}b"), w.clone());
    }
    for (name, _) in xdot {
        ba.real_arrays.entry(format!("{name}b")).or_insert_with(|| {
            let len = base.get_real_array(name).unwrap().len();
            vec![0.0; len]
        });
    }
    run(&adjoint, &mut ba, &m).unwrap();
    let mut rhs = 0.0;
    for (name, v) in xdot {
        let xb = ba.get_real_array(&format!("{name}b")).unwrap();
        rhs += xb.iter().zip(v).map(|(a, b)| a * b).sum::<f64>();
    }

    let denom = lhs.abs().max(rhs.abs()).max(1e-12);
    assert!(
        (lhs - rhs).abs() / denom < 1e-12,
        "tangent {lhs} vs adjoint {rhs}"
    );
}

#[test]
fn linear_gather() {
    let src = r#"
subroutine g(n, x, y, c)
  integer, intent(in) :: n
  real, intent(in) :: x(n)
  real, intent(inout) :: y(n)
  integer, intent(in) :: c(n)
  integer :: i
  !$omp parallel do shared(x, y, c)
  do i = 1, n
    y(c(i)) = y(c(i)) + 3.0 * x(i)
  end do
end subroutine
"#;
    let n = 14;
    let mut r = StdRng::seed_from_u64(1);
    let mut c: Vec<i64> = (1..=n as i64).collect();
    for k in (1..c.len()).rev() {
        let j = r.gen_range(0..=k);
        c.swap(k, j);
    }
    let base = Bindings::new()
        .int("n", n as i64)
        .int_array("c", c)
        .real_array("x", rv(&mut r, n))
        .real_array("y", rv(&mut r, n));
    let xd = rv(&mut r, n);
    let yb = rv(&mut r, n);
    for threads in [1, 4] {
        consistency(
            src,
            &base,
            &["x"],
            &["y"],
            &[("x", xd.clone())],
            &[("y", yb.clone())],
            threads,
        );
    }
}

#[test]
fn nonlinear_with_overwrite_and_intrinsics() {
    let src = r#"
subroutine nl(n, x, y)
  integer, intent(in) :: n
  real, intent(in) :: x(n)
  real, intent(inout) :: y(n)
  integer :: i
  !$omp parallel do shared(x, y)
  do i = 1, n
    y(i) = tanh(y(i)) + exp(x(i)) * sin(x(i)) / (2.0 + x(i) * x(i))
  end do
end subroutine
"#;
    let n = 9;
    let mut r = StdRng::seed_from_u64(2);
    let base = Bindings::new()
        .int("n", n as i64)
        .real_array("x", rv(&mut r, n))
        .real_array("y", rv(&mut r, n));
    let xd = rv(&mut r, n);
    let yb = rv(&mut r, n);
    for threads in [1, 3] {
        consistency(
            src,
            &base,
            &["x"],
            &["y"],
            &[("x", xd.clone())],
            &[("y", yb.clone())],
            threads,
        );
    }
}

#[test]
fn nonsmooth_min_max_abs() {
    let src = r#"
subroutine ns(n, x, y)
  integer, intent(in) :: n
  real, intent(in) :: x(n)
  real, intent(inout) :: y(n)
  integer :: i
  do i = 1, n
    y(i) = min(x(i), 0.5) + max(abs(x(i)), 0.25 * x(i)) * 2.0
  end do
end subroutine
"#;
    let n = 17;
    let mut r = StdRng::seed_from_u64(3);
    let base = Bindings::new()
        .int("n", n as i64)
        .real_array("x", rv(&mut r, n))
        .real_array("y", rv(&mut r, n));
    let xd = rv(&mut r, n);
    let yb = rv(&mut r, n);
    consistency(src, &base, &["x"], &["y"], &[("x", xd)], &[("y", yb)], 1);
}

#[test]
fn two_array_coupled() {
    let src = r#"
subroutine cp(n, u, v)
  integer, intent(in) :: n
  real, intent(inout) :: u(n)
  real, intent(inout) :: v(n)
  integer :: i
  do i = 2, n - 1
    v(i) = v(i) + 0.5 * u(i - 1) * u(i + 1)
    u(i) = u(i) * 0.9
  end do
end subroutine
"#;
    let n = 12;
    let mut r = StdRng::seed_from_u64(4);
    let base = Bindings::new()
        .int("n", n as i64)
        .real_array("u", rv(&mut r, n))
        .real_array("v", rv(&mut r, n));
    let ud = rv(&mut r, n);
    let ub_seed = rv(&mut r, n);
    let vb = rv(&mut r, n);
    consistency(
        src,
        &base,
        &["u"],
        &["u", "v"],
        &[("u", ud)],
        &[("u", ub_seed), ("v", vb)],
        1,
    );
}
