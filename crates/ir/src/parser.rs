//! Recursive-descent parser for the Fortran-like surface syntax.

use std::fmt;

use crate::expr::{BinOp, BoolExpr, CmpOp, Expr, Intrinsic, UnOp};
use crate::lexer::{lex, LexError, TokKind, Token};
use crate::program::{Decl, Program};
use crate::stmt::{ForLoop, LValue, ParallelInfo, RedOp, Stmt};
use crate::types::{Intent, Ty};

/// Parse error with a source line and message.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub line: u32,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            line: e.line,
            message: e.message,
        }
    }
}

/// Parse a complete subroutine from source text.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    p.skip_newlines();
    let prog = p.program()?;
    p.skip_newlines();
    p.expect_eof()?;
    Ok(prog)
}

/// Parse a single expression (used by tests and tools).
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let e = p.expr()?;
    Ok(e)
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokKind {
        &self.toks[self.pos].kind
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].line
    }

    fn bump(&mut self) -> TokKind {
        let t = self.toks[self.pos].kind.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            line: self.line(),
            message: msg.into(),
        })
    }

    fn expect(&mut self, kind: TokKind) -> Result<(), ParseError> {
        if *self.peek() == kind {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {kind}, found {}", self.peek()))
        }
    }

    fn expect_eof(&mut self) -> Result<(), ParseError> {
        if *self.peek() == TokKind::Eof {
            Ok(())
        } else {
            self.err(format!("expected end of input, found {}", self.peek()))
        }
    }

    fn eat(&mut self, kind: &TokKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn skip_newlines(&mut self) {
        while *self.peek() == TokKind::Newline {
            self.bump();
        }
    }

    fn expect_newline(&mut self) -> Result<(), ParseError> {
        if matches!(self.peek(), TokKind::Newline | TokKind::Eof) {
            self.skip_newlines();
            Ok(())
        } else {
            self.err(format!("expected end of line, found {}", self.peek()))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            TokKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    /// True if the current token is the identifier `word` (case-insensitive).
    fn at_kw(&self, word: &str) -> bool {
        matches!(self.peek(), TokKind::Ident(s) if s.eq_ignore_ascii_case(word))
    }

    fn eat_kw(&mut self, word: &str) -> bool {
        if self.at_kw(word) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, word: &str) -> Result<(), ParseError> {
        if self.eat_kw(word) {
            Ok(())
        } else {
            self.err(format!("expected keyword `{word}`, found {}", self.peek()))
        }
    }

    // ---- program & declarations ----

    fn program(&mut self) -> Result<Program, ParseError> {
        self.expect_kw("subroutine")?;
        let name = self.ident()?;
        let mut param_names = Vec::new();
        self.expect(TokKind::LParen)?;
        if !self.eat(&TokKind::RParen) {
            loop {
                param_names.push(self.ident()?);
                if self.eat(&TokKind::RParen) {
                    break;
                }
                self.expect(TokKind::Comma)?;
            }
        }
        self.expect_newline()?;

        // Declarations.
        let mut params: Vec<Option<Decl>> = vec![None; param_names.len()];
        let mut locals = Vec::new();
        while self.at_kw("real") || self.at_kw("integer") {
            for d in self.decl_line()? {
                if let Some(k) = param_names.iter().position(|p| *p == d.name) {
                    if params[k].is_some() {
                        return self.err(format!("duplicate declaration of `{}`", d.name));
                    }
                    params[k] = Some(d);
                } else {
                    let mut d = d;
                    d.is_local = true;
                    locals.push(d);
                }
            }
            self.expect_newline()?;
        }
        for (k, d) in params.iter().enumerate() {
            if d.is_none() {
                return self.err(format!("parameter `{}` is never declared", param_names[k]));
            }
        }
        let params = params.into_iter().map(|d| d.unwrap()).collect();

        let body = self.stmts_until(&["end"])?;
        self.expect_kw("end")?;
        self.expect_kw("subroutine")?;
        // optional trailing name
        if let TokKind::Ident(_) = self.peek() {
            self.bump();
        }
        self.expect_newline()?;
        Ok(Program {
            name,
            params,
            locals,
            body,
        })
    }

    fn decl_line(&mut self) -> Result<Vec<Decl>, ParseError> {
        let ty = if self.eat_kw("real") {
            Ty::Real
        } else {
            self.expect_kw("integer")?;
            Ty::Int
        };
        let mut intent = None;
        let mut is_param = false;
        if self.eat(&TokKind::Comma) {
            self.expect_kw("intent")?;
            self.expect(TokKind::LParen)?;
            let word = self.ident()?;
            intent = Some(match word.to_ascii_lowercase().as_str() {
                "in" => Intent::In,
                "out" => Intent::Out,
                "inout" => Intent::InOut,
                other => return self.err(format!("unknown intent `{other}`")),
            });
            is_param = true;
            self.expect(TokKind::RParen)?;
        }
        self.expect(TokKind::DoubleColon)?;
        let mut decls = Vec::new();
        loop {
            let name = self.ident()?;
            let mut dims = Vec::new();
            if self.eat(&TokKind::LParen) {
                loop {
                    dims.push(self.expr()?);
                    if self.eat(&TokKind::RParen) {
                        break;
                    }
                    self.expect(TokKind::Comma)?;
                }
            }
            decls.push(Decl {
                name,
                ty,
                dims,
                intent: intent.unwrap_or(Intent::InOut),
                is_local: !is_param,
            });
            if !self.eat(&TokKind::Comma) {
                break;
            }
        }
        Ok(decls)
    }

    // ---- statements ----

    /// Parse statements until one of the stopper keywords (not consumed).
    fn stmts_until(&mut self, stoppers: &[&str]) -> Result<Vec<Stmt>, ParseError> {
        let mut out = Vec::new();
        loop {
            self.skip_newlines();
            if stoppers.iter().any(|s| self.at_kw(s)) || *self.peek() == TokKind::Eof {
                return Ok(out);
            }
            out.push(self.stmt()?);
        }
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        if let TokKind::Pragma(p) = self.peek().clone() {
            self.bump();
            return self.pragma_stmt(&p);
        }
        if self.at_kw("if") {
            return self.if_stmt();
        }
        if self.at_kw("do") {
            return self.do_stmt(None);
        }
        if self.at_kw("call") {
            return self.call_stmt();
        }
        // assignment
        let lv = self.lvalue()?;
        self.expect(TokKind::Assign)?;
        let rhs = self.expr()?;
        self.expect_newline()?;
        Ok(Stmt::Assign { lhs: lv, rhs })
    }

    fn pragma_stmt(&mut self, pragma: &str) -> Result<Stmt, ParseError> {
        let p = pragma.trim().to_ascii_lowercase();
        if p == "atomic" {
            // The next statement must be an increment; re-express it as
            // AtomicAdd.
            self.skip_newlines();
            let lv = self.lvalue()?;
            self.expect(TokKind::Assign)?;
            let rhs = self.expr()?;
            self.expect_newline()?;
            let stmt = Stmt::Assign { lhs: lv, rhs };
            match stmt.as_increment() {
                Some((lhs, added)) => Ok(Stmt::AtomicAdd {
                    lhs: lhs.clone(),
                    rhs: added,
                }),
                None => self.err("!$omp atomic must be followed by an increment statement"),
            }
        } else if p.starts_with("parallel do") {
            let info =
                parse_parallel_clauses(&pragma["parallel do".len()..]).map_err(|m| ParseError {
                    line: self.line(),
                    message: m,
                })?;
            self.skip_newlines();
            if !self.at_kw("do") {
                return self.err("`!$omp parallel do` must be followed by a do loop");
            }
            self.do_stmt(Some(info))
        } else {
            self.err(format!("unsupported pragma `!$omp {pragma}`"))
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.expect_kw("if")?;
        self.expect(TokKind::LParen)?;
        let cond = self.bool_expr()?;
        self.expect(TokKind::RParen)?;
        self.expect_kw("then")?;
        self.expect_newline()?;
        let then_body = self.stmts_until(&["else", "end"])?;
        let else_body = if self.eat_kw("else") {
            self.expect_newline()?;
            self.stmts_until(&["end"])?
        } else {
            Vec::new()
        };
        self.expect_kw("end")?;
        self.expect_kw("if")?;
        self.expect_newline()?;
        Ok(Stmt::If {
            cond,
            then_body,
            else_body,
        })
    }

    fn do_stmt(&mut self, parallel: Option<ParallelInfo>) -> Result<Stmt, ParseError> {
        self.expect_kw("do")?;
        let var = self.ident()?;
        self.expect(TokKind::Assign)?;
        let lo = self.expr()?;
        self.expect(TokKind::Comma)?;
        let hi = self.expr()?;
        let step = if self.eat(&TokKind::Comma) {
            self.expr()?
        } else {
            Expr::IntLit(1)
        };
        self.expect_newline()?;
        let body = self.stmts_until(&["end"])?;
        self.expect_kw("end")?;
        self.expect_kw("do")?;
        self.expect_newline()?;
        Ok(Stmt::For(Box::new(ForLoop {
            var,
            lo,
            hi,
            step,
            body,
            parallel,
        })))
    }

    fn call_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.expect_kw("call")?;
        let name = self.ident()?.to_ascii_lowercase();
        self.expect(TokKind::LParen)?;
        let stmt = match name.as_str() {
            "push" => {
                let e = self.expr()?;
                Stmt::Push(e)
            }
            "pop" => {
                let lv = self.lvalue()?;
                Stmt::Pop(lv)
            }
            other => return self.err(format!("unknown call target `{other}`")),
        };
        self.expect(TokKind::RParen)?;
        self.expect_newline()?;
        Ok(stmt)
    }

    fn lvalue(&mut self) -> Result<LValue, ParseError> {
        let name = self.ident()?;
        if self.eat(&TokKind::LParen) {
            let mut indices = Vec::new();
            loop {
                indices.push(self.expr()?);
                if self.eat(&TokKind::RParen) {
                    break;
                }
                self.expect(TokKind::Comma)?;
            }
            Ok(LValue::Index {
                array: name,
                indices,
            })
        } else {
            Ok(LValue::Var(name))
        }
    }

    // ---- expressions ----

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.add_expr()
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                TokKind::Plus => BinOp::Add,
                TokKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                TokKind::Star => BinOp::Mul,
                TokKind::Slash => BinOp::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&TokKind::Minus) {
            let arg = self.unary_expr()?;
            // Fold negated literals so `-1` is a literal, keeping parsed
            // and programmatically-built trees structurally identical.
            return Ok(match arg {
                Expr::IntLit(v) => Expr::IntLit(-v),
                Expr::RealLit(v) => Expr::RealLit(-v),
                other => Expr::Unary {
                    op: UnOp::Neg,
                    arg: Box::new(other),
                },
            });
        }
        if self.eat(&TokKind::Plus) {
            return self.unary_expr();
        }
        self.pow_expr()
    }

    fn pow_expr(&mut self) -> Result<Expr, ParseError> {
        let base = self.primary_expr()?;
        if self.eat(&TokKind::DoubleStar) {
            // `**` is right-associative.
            let exp = self.unary_expr()?;
            return Ok(Expr::binary(BinOp::Pow, base, exp));
        }
        Ok(base)
    }

    fn primary_expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            TokKind::Int(v) => {
                self.bump();
                Ok(Expr::IntLit(v))
            }
            TokKind::Real(v) => {
                self.bump();
                Ok(Expr::RealLit(v))
            }
            TokKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(TokKind::RParen)?;
                Ok(e)
            }
            TokKind::Ident(name) => {
                self.bump();
                if self.eat(&TokKind::LParen) {
                    let mut args = Vec::new();
                    loop {
                        args.push(self.expr()?);
                        if self.eat(&TokKind::RParen) {
                            break;
                        }
                        self.expect(TokKind::Comma)?;
                    }
                    let lname = name.to_ascii_lowercase();
                    if lname == "mod" {
                        if args.len() != 2 {
                            return self.err("mod takes exactly 2 arguments");
                        }
                        let mut it = args.into_iter();
                        let a = it.next().unwrap();
                        let b = it.next().unwrap();
                        return Ok(Expr::binary(BinOp::Mod, a, b));
                    }
                    if let Some(f) = Intrinsic::from_name(&lname) {
                        if args.len() != f.arity() {
                            return self.err(format!(
                                "intrinsic {} takes {} arguments, got {}",
                                f.name(),
                                f.arity(),
                                args.len()
                            ));
                        }
                        return Ok(Expr::Call { func: f, args });
                    }
                    Ok(Expr::Index {
                        array: name,
                        indices: args,
                    })
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => self.err(format!("expected expression, found {other}")),
        }
    }

    // ---- boolean expressions ----

    fn bool_expr(&mut self) -> Result<BoolExpr, ParseError> {
        let mut lhs = self.bool_and()?;
        while self.eat(&TokKind::Or) {
            let rhs = self.bool_and()?;
            lhs = BoolExpr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn bool_and(&mut self) -> Result<BoolExpr, ParseError> {
        let mut lhs = self.bool_not()?;
        while self.eat(&TokKind::And) {
            let rhs = self.bool_not()?;
            lhs = BoolExpr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn bool_not(&mut self) -> Result<BoolExpr, ParseError> {
        if self.eat(&TokKind::Not) {
            let inner = self.bool_not()?;
            return Ok(BoolExpr::Not(Box::new(inner)));
        }
        self.bool_primary()
    }

    fn bool_primary(&mut self) -> Result<BoolExpr, ParseError> {
        // Disambiguate `(boolexpr)` from `(arith) cmp arith` by
        // backtracking: first try a comparison.
        let save = self.pos;
        match self.try_cmp() {
            Ok(c) => Ok(c),
            Err(first_err) => {
                self.pos = save;
                if self.eat(&TokKind::LParen) {
                    let inner = self.bool_expr()?;
                    self.expect(TokKind::RParen)?;
                    Ok(inner)
                } else {
                    Err(first_err)
                }
            }
        }
    }

    fn try_cmp(&mut self) -> Result<BoolExpr, ParseError> {
        let lhs = self.expr()?;
        let op = match self.peek() {
            TokKind::Eq => CmpOp::Eq,
            TokKind::Ne => CmpOp::Ne,
            TokKind::Lt => CmpOp::Lt,
            TokKind::Le => CmpOp::Le,
            TokKind::Gt => CmpOp::Gt,
            TokKind::Ge => CmpOp::Ge,
            other => {
                return self.err(format!("expected comparison operator, found {other}"));
            }
        };
        self.bump();
        let rhs = self.expr()?;
        Ok(BoolExpr::Cmp { op, lhs, rhs })
    }
}

/// Parse the clause list of a `parallel do` pragma:
/// `shared(a, b) private(c) reduction(+: x)`.
fn parse_parallel_clauses(text: &str) -> Result<ParallelInfo, String> {
    let mut info = ParallelInfo::default();
    let mut rest = text.trim();
    while !rest.is_empty() {
        let open = rest
            .find('(')
            .ok_or_else(|| format!("malformed pragma clause near `{rest}`"))?;
        let name = rest[..open].trim().to_ascii_lowercase();
        let close = rest[open..]
            .find(')')
            .ok_or_else(|| format!("unterminated clause `{name}`"))?
            + open;
        let args = &rest[open + 1..close];
        match name.as_str() {
            "shared" => {
                info.shared
                    .extend(args.split(',').map(|s| s.trim().to_string()));
            }
            "private" => {
                info.private
                    .extend(args.split(',').map(|s| s.trim().to_string()));
            }
            "reduction" => {
                let (op, vars) = args
                    .split_once(':')
                    .ok_or_else(|| "reduction clause needs `op: vars`".to_string())?;
                let op = match op.trim() {
                    "+" => RedOp::Add,
                    "*" => RedOp::Mul,
                    "min" => RedOp::Min,
                    "max" => RedOp::Max,
                    other => return Err(format!("unknown reduction operator `{other}`")),
                };
                for v in vars.split(',') {
                    info.reductions.push((op, v.trim().to_string()));
                }
            }
            other => return Err(format!("unknown pragma clause `{other}`")),
        }
        rest = rest[close + 1..].trim();
    }
    Ok(info)
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG2: &str = r#"
subroutine fig2(n, x, y, c)
  integer, intent(in) :: n
  real, intent(in) :: x(n)
  real, intent(inout) :: y(n)
  integer, intent(in) :: c(n)
  integer :: i
  !$omp parallel do shared(x, y, c)
  do i = 1, n
    y(c(i)) = x(c(i) + 7)
  end do
end subroutine
"#;

    #[test]
    fn parses_fig2() {
        let p = parse_program(FIG2).unwrap();
        assert_eq!(p.name, "fig2");
        assert_eq!(p.params.len(), 4);
        assert_eq!(p.locals.len(), 1);
        assert_eq!(p.parallel_loop_count(), 1);
        let loops = p.parallel_loops();
        let info = loops[0].parallel.as_ref().unwrap();
        assert_eq!(info.shared, vec!["x", "y", "c"]);
    }

    #[test]
    fn expr_precedence() {
        assert_eq!(
            parse_expr("a + b * c").unwrap(),
            Expr::var("a") + Expr::var("b") * Expr::var("c")
        );
        assert_eq!(
            parse_expr("(a + b) * c").unwrap(),
            (Expr::var("a") + Expr::var("b")) * Expr::var("c")
        );
    }

    #[test]
    fn unary_minus_binds_tighter_than_mul() {
        let e = parse_expr("-a * b").unwrap();
        // parses as (-a) * b
        assert!(matches!(e, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn pow_right_assoc() {
        let e = parse_expr("a ** b ** c").unwrap();
        match e {
            Expr::Binary {
                op: BinOp::Pow,
                rhs,
                ..
            } => {
                assert!(matches!(*rhs, Expr::Binary { op: BinOp::Pow, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn intrinsics_vs_array_refs() {
        let e = parse_expr("sin(x) + u(i)").unwrap();
        match e {
            Expr::Binary { lhs, rhs, .. } => {
                assert!(matches!(*lhs, Expr::Call { .. }));
                assert!(matches!(*rhs, Expr::Index { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn mod_parses_to_binop() {
        let e = parse_expr("mod(i, 2)").unwrap();
        assert!(matches!(e, Expr::Binary { op: BinOp::Mod, .. }));
    }

    #[test]
    fn if_else_and_bool_ops() {
        let src = r#"
subroutine t(n, u)
  integer, intent(in) :: n
  real, intent(inout) :: u(n)
  integer :: i, j
  do i = 1, n
    if (i .ne. j .and. (i .lt. n .or. .not. j .ge. 2)) then
      u(i) = 1.0
    else
      u(i) = 2.0
    end if
  end do
end subroutine
"#;
        let p = parse_program(src).unwrap();
        let Stmt::For(l) = &p.body[0] else { panic!() };
        let Stmt::If {
            cond, else_body, ..
        } = &l.body[0]
        else {
            panic!()
        };
        assert!(matches!(cond, BoolExpr::And(_, _)));
        assert_eq!(else_body.len(), 1);
    }

    #[test]
    fn do_loop_with_step() {
        let src = r#"
subroutine t(n, u)
  integer, intent(in) :: n
  real, intent(inout) :: u(n)
  integer :: i
  do i = 2, n - 2, 2
    u(i) = 0.0
  end do
end subroutine
"#;
        let p = parse_program(src).unwrap();
        let Stmt::For(l) = &p.body[0] else { panic!() };
        assert_eq!(l.step, Expr::IntLit(2));
        assert_eq!(l.hi, Expr::var("n") - Expr::int(2));
    }

    #[test]
    fn reduction_clause() {
        let info = parse_parallel_clauses(" shared(u) reduction(+: s, t) private(w)").unwrap();
        assert_eq!(info.shared, vec!["u"]);
        assert_eq!(info.private, vec!["w"]);
        assert_eq!(info.reductions.len(), 2);
        assert_eq!(info.reductions[0], (RedOp::Add, "s".to_string()));
    }

    #[test]
    fn atomic_pragma_becomes_atomic_add() {
        let src = r#"
subroutine t(n, u)
  integer, intent(in) :: n
  real, intent(inout) :: u(n)
  integer :: i
  do i = 1, n
    !$omp atomic
    u(i) = u(i) + 1.0
  end do
end subroutine
"#;
        let p = parse_program(src).unwrap();
        let Stmt::For(l) = &p.body[0] else { panic!() };
        assert!(matches!(l.body[0], Stmt::AtomicAdd { .. }));
    }

    #[test]
    fn push_pop_calls() {
        let src = r#"
subroutine t(n, u)
  integer, intent(in) :: n
  real, intent(inout) :: u(n)
  integer :: i
  do i = 1, n
    call push(u(i))
    u(i) = 0.0
    call pop(u(i))
  end do
end subroutine
"#;
        let p = parse_program(src).unwrap();
        let Stmt::For(l) = &p.body[0] else { panic!() };
        assert!(matches!(l.body[0], Stmt::Push(_)));
        assert!(matches!(l.body[2], Stmt::Pop(_)));
    }

    #[test]
    fn undeclared_parameter_rejected() {
        let src = "subroutine t(n)\nend subroutine\n";
        assert!(parse_program(src).is_err());
    }

    #[test]
    fn multi_var_decl_line() {
        let src = r#"
subroutine t(n)
  integer, intent(in) :: n
  integer :: i, j, k
end subroutine
"#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.locals.len(), 3);
    }
}
