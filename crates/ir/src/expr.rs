//! Arithmetic and boolean expressions of the loop language.

use std::fmt;

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    /// Exponentiation (`**` in the surface syntax).
    Pow,
    /// Integer modulo (`mod(a, b)` intrinsic lowers to this).
    Mod,
}

impl BinOp {
    /// Surface-syntax spelling, when the operator is infix.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Pow => "**",
            BinOp::Mod => "mod",
        }
    }

    /// Parser precedence: higher binds tighter.
    pub fn precedence(self) -> u8 {
        match self {
            BinOp::Add | BinOp::Sub => 1,
            BinOp::Mul | BinOp::Div | BinOp::Mod => 2,
            BinOp::Pow => 3,
        }
    }
}

/// Unary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    Neg,
}

/// Differentiable and integer intrinsics understood by the language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Intrinsic {
    Sin,
    Cos,
    Exp,
    Log,
    Sqrt,
    Abs,
    Min,
    Max,
    /// `tanh` shows up in activation-like kernels.
    Tanh,
}

impl Intrinsic {
    /// Surface-syntax name.
    pub fn name(self) -> &'static str {
        match self {
            Intrinsic::Sin => "sin",
            Intrinsic::Cos => "cos",
            Intrinsic::Exp => "exp",
            Intrinsic::Log => "log",
            Intrinsic::Sqrt => "sqrt",
            Intrinsic::Abs => "abs",
            Intrinsic::Min => "min",
            Intrinsic::Max => "max",
            Intrinsic::Tanh => "tanh",
        }
    }

    /// Number of arguments the intrinsic takes.
    pub fn arity(self) -> usize {
        match self {
            Intrinsic::Min | Intrinsic::Max => 2,
            _ => 1,
        }
    }

    /// Look an intrinsic up by its surface name.
    pub fn from_name(name: &str) -> Option<Intrinsic> {
        Some(match name {
            "sin" => Intrinsic::Sin,
            "cos" => Intrinsic::Cos,
            "exp" => Intrinsic::Exp,
            "log" => Intrinsic::Log,
            "sqrt" => Intrinsic::Sqrt,
            "abs" => Intrinsic::Abs,
            "min" => Intrinsic::Min,
            "max" => Intrinsic::Max,
            "tanh" => Intrinsic::Tanh,
            _ => return None,
        })
    }
}

/// An arithmetic expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    IntLit(i64),
    /// Real literal.
    RealLit(f64),
    /// Scalar variable reference.
    Var(String),
    /// Array element reference `array(indices...)` (1-based, Fortran style).
    Index { array: String, indices: Vec<Expr> },
    /// Unary operation.
    Unary { op: UnOp, arg: Box<Expr> },
    /// Binary operation.
    Binary {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// Intrinsic function call.
    Call { func: Intrinsic, args: Vec<Expr> },
}

impl Expr {
    /// Shorthand for a scalar variable reference.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// Shorthand for an integer literal.
    pub fn int(v: i64) -> Expr {
        Expr::IntLit(v)
    }

    /// Shorthand for a real literal.
    pub fn real(v: f64) -> Expr {
        Expr::RealLit(v)
    }

    /// Shorthand for an array element reference.
    pub fn index(array: impl Into<String>, indices: Vec<Expr>) -> Expr {
        Expr::Index {
            array: array.into(),
            indices,
        }
    }

    /// Build a binary operation.
    pub fn binary(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Build an intrinsic call; panics if the arity is wrong (programming
    /// error in builders, caught by `validate` for parsed programs).
    pub fn call(func: Intrinsic, args: Vec<Expr>) -> Expr {
        assert_eq!(
            args.len(),
            func.arity(),
            "intrinsic {} expects {} arguments",
            func.name(),
            func.arity()
        );
        Expr::Call { func, args }
    }

    /// Negation helper.
    #[allow(clippy::should_implement_trait)]
    pub fn neg(self) -> Expr {
        Expr::Unary {
            op: UnOp::Neg,
            arg: Box::new(self),
        }
    }

    /// Visit every sub-expression (including `self`), pre-order.
    pub fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::IntLit(_) | Expr::RealLit(_) | Expr::Var(_) => {}
            Expr::Index { indices, .. } => {
                for ix in indices {
                    ix.walk(f);
                }
            }
            Expr::Unary { arg, .. } => arg.walk(f),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.walk(f);
                rhs.walk(f);
            }
            Expr::Call { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
        }
    }

    /// Rebuild the expression bottom-up through `f` (applied post-order).
    pub fn map(&self, f: &mut impl FnMut(Expr) -> Expr) -> Expr {
        let rebuilt = match self {
            Expr::IntLit(_) | Expr::RealLit(_) | Expr::Var(_) => self.clone(),
            Expr::Index { array, indices } => Expr::Index {
                array: array.clone(),
                indices: indices.iter().map(|ix| ix.map(f)).collect(),
            },
            Expr::Unary { op, arg } => Expr::Unary {
                op: *op,
                arg: Box::new(arg.map(f)),
            },
            Expr::Binary { op, lhs, rhs } => Expr::Binary {
                op: *op,
                lhs: Box::new(lhs.map(f)),
                rhs: Box::new(rhs.map(f)),
            },
            Expr::Call { func, args } => Expr::Call {
                func: *func,
                args: args.iter().map(|a| a.map(f)).collect(),
            },
        };
        f(rebuilt)
    }

    /// Collect the names of all scalar variables read by this expression
    /// (array names are *not* included; their index variables are).
    pub fn scalar_vars(&self, out: &mut Vec<String>) {
        self.walk(&mut |e| {
            if let Expr::Var(name) = e {
                if !out.contains(name) {
                    out.push(name.clone());
                }
            }
        });
    }

    /// Collect the names of all arrays referenced by this expression.
    pub fn array_names(&self, out: &mut Vec<String>) {
        self.walk(&mut |e| {
            if let Expr::Index { array, .. } = e {
                if !out.contains(array) {
                    out.push(array.clone());
                }
            }
        });
    }

    /// Substitute every occurrence of scalar variable `name` with `repl`.
    pub fn subst_var(&self, name: &str, repl: &Expr) -> Expr {
        self.map(&mut |e| match &e {
            Expr::Var(n) if n == name => repl.clone(),
            _ => e,
        })
    }

    /// True if the expression contains any array reference.
    pub fn has_array_ref(&self) -> bool {
        let mut found = false;
        self.walk(&mut |e| {
            if matches!(e, Expr::Index { .. }) {
                found = true;
            }
        });
        found
    }

    /// Structural equality helper used by increment detection: literal-level
    /// comparison, no normalization.
    pub fn structurally_eq(&self, other: &Expr) -> bool {
        self == other
    }
}

/// Comparison operators for boolean conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// Fortran-style spelling (`.eq.` etc.).
    pub fn fortran(self) -> &'static str {
        match self {
            CmpOp::Eq => ".eq.",
            CmpOp::Ne => ".ne.",
            CmpOp::Lt => ".lt.",
            CmpOp::Le => ".le.",
            CmpOp::Gt => ".gt.",
            CmpOp::Ge => ".ge.",
        }
    }

    /// The comparison with operands swapped (`a < b` ⇔ `b > a`).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// Logical negation of the comparison.
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }
}

/// A boolean condition (only used in `if` statements and loop guards).
#[derive(Debug, Clone, PartialEq)]
pub enum BoolExpr {
    Cmp { op: CmpOp, lhs: Expr, rhs: Expr },
    And(Box<BoolExpr>, Box<BoolExpr>),
    Or(Box<BoolExpr>, Box<BoolExpr>),
    Not(Box<BoolExpr>),
}

impl BoolExpr {
    /// Build a comparison.
    pub fn cmp(op: CmpOp, lhs: Expr, rhs: Expr) -> BoolExpr {
        BoolExpr::Cmp { op, lhs, rhs }
    }

    /// Visit every arithmetic sub-expression in the condition.
    pub fn walk_exprs(&self, f: &mut impl FnMut(&Expr)) {
        match self {
            BoolExpr::Cmp { lhs, rhs, .. } => {
                lhs.walk(f);
                rhs.walk(f);
            }
            BoolExpr::And(a, b) | BoolExpr::Or(a, b) => {
                a.walk_exprs(f);
                b.walk_exprs(f);
            }
            BoolExpr::Not(a) => a.walk_exprs(f),
        }
    }

    /// Rebuild with every arithmetic leaf expression mapped through `f`.
    pub fn map_exprs(&self, f: &mut impl FnMut(Expr) -> Expr) -> BoolExpr {
        match self {
            BoolExpr::Cmp { op, lhs, rhs } => BoolExpr::Cmp {
                op: *op,
                lhs: lhs.map(f),
                rhs: rhs.map(f),
            },
            BoolExpr::And(a, b) => {
                BoolExpr::And(Box::new(a.map_exprs(f)), Box::new(b.map_exprs(f)))
            }
            BoolExpr::Or(a, b) => BoolExpr::Or(Box::new(a.map_exprs(f)), Box::new(b.map_exprs(f))),
            BoolExpr::Not(a) => BoolExpr::Not(Box::new(a.map_exprs(f))),
        }
    }
}

// Operator-overload sugar so builder code reads like the source language.
impl std::ops::Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Add, self, rhs)
    }
}
impl std::ops::Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Sub, self, rhs)
    }
}
impl std::ops::Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Mul, self, rhs)
    }
}
impl std::ops::Div for Expr {
    type Output = Expr;
    fn div(self, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Div, self, rhs)
    }
}
impl std::ops::Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr::neg(self)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::printer::expr_to_string(self))
    }
}

impl fmt::Display for BoolExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::printer::bool_to_string(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: &str) -> Expr {
        Expr::var(n)
    }

    #[test]
    fn operator_sugar_builds_trees() {
        let e = v("a") + v("b") * Expr::int(2);
        match e {
            Expr::Binary {
                op: BinOp::Add,
                lhs,
                rhs,
            } => {
                assert_eq!(*lhs, v("a"));
                assert!(matches!(*rhs, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn scalar_vars_dedup_and_skip_array_names() {
        let e = Expr::index("u", vec![v("i") + Expr::int(1)]) + v("i") + v("w");
        let mut vars = Vec::new();
        e.scalar_vars(&mut vars);
        assert_eq!(vars, vec!["i".to_string(), "w".to_string()]);
    }

    #[test]
    fn array_names_collected() {
        let e = Expr::index("u", vec![v("i")]) * Expr::index("v", vec![v("i"), v("j")]);
        let mut arrs = Vec::new();
        e.array_names(&mut arrs);
        assert_eq!(arrs, vec!["u".to_string(), "v".to_string()]);
    }

    #[test]
    fn subst_replaces_all_occurrences() {
        let e = v("i") + Expr::index("c", vec![v("i")]);
        let s = e.subst_var("i", &(v("i") + Expr::int(1)));
        let mut vars = Vec::new();
        s.scalar_vars(&mut vars);
        assert_eq!(vars, vec!["i".to_string()]);
        // The index argument must be rewritten too.
        match &s {
            Expr::Binary { rhs, .. } => match rhs.as_ref() {
                Expr::Index { indices, .. } => {
                    assert!(matches!(indices[0], Expr::Binary { op: BinOp::Add, .. }));
                }
                other => panic!("unexpected: {other:?}"),
            },
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn cmp_negate_and_flip() {
        assert_eq!(CmpOp::Lt.negate(), CmpOp::Ge);
        assert_eq!(CmpOp::Lt.flip(), CmpOp::Gt);
        assert_eq!(CmpOp::Eq.negate(), CmpOp::Ne);
    }

    #[test]
    fn intrinsic_roundtrip() {
        for i in [
            Intrinsic::Sin,
            Intrinsic::Cos,
            Intrinsic::Exp,
            Intrinsic::Log,
            Intrinsic::Sqrt,
            Intrinsic::Abs,
            Intrinsic::Min,
            Intrinsic::Max,
            Intrinsic::Tanh,
        ] {
            assert_eq!(Intrinsic::from_name(i.name()), Some(i));
        }
        assert_eq!(Intrinsic::from_name("nope"), None);
    }

    #[test]
    #[should_panic(expected = "expects 2 arguments")]
    fn call_arity_checked() {
        let _ = Expr::call(Intrinsic::Min, vec![Expr::int(1)]);
    }

    #[test]
    fn has_array_ref_detects_nesting() {
        let e = v("a") + Expr::call(Intrinsic::Sin, vec![Expr::index("u", vec![v("i")])]);
        assert!(e.has_array_ref());
        assert!(!v("a").has_array_ref());
    }
}
