//! Scalar types and parameter intents of the loop language.

use std::fmt;

/// Scalar element type of a variable or array.
///
/// The language is deliberately small: `Real` maps to `f64` at execution
/// time, `Int` to `i64`. Only `Real` data is differentiable; `Int` data can
/// still contribute index *knowledge* to the FormAD analysis (paper §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ty {
    /// Double-precision floating point (`real` in the surface syntax).
    Real,
    /// 64-bit signed integer (`integer` in the surface syntax).
    Int,
}

impl Ty {
    /// Whether values of this type can carry derivatives.
    pub fn is_differentiable(self) -> bool {
        matches!(self, Ty::Real)
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Real => write!(f, "real"),
            Ty::Int => write!(f, "integer"),
        }
    }
}

/// Dataflow intent of a subroutine parameter, mirroring Fortran's
/// `intent(in|out|inout)` attributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Intent {
    /// Read-only input.
    In,
    /// Write-only output (initial value unspecified).
    Out,
    /// Read and written.
    InOut,
}

impl Intent {
    /// True if the parameter's value on entry is observable.
    pub fn is_input(self) -> bool {
        matches!(self, Intent::In | Intent::InOut)
    }

    /// True if the parameter's value on exit is observable.
    pub fn is_output(self) -> bool {
        matches!(self, Intent::Out | Intent::InOut)
    }
}

impl fmt::Display for Intent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Intent::In => write!(f, "intent(in)"),
            Intent::Out => write!(f, "intent(out)"),
            Intent::InOut => write!(f, "intent(inout)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_is_differentiable_int_is_not() {
        assert!(Ty::Real.is_differentiable());
        assert!(!Ty::Int.is_differentiable());
    }

    #[test]
    fn intent_directions() {
        assert!(Intent::In.is_input());
        assert!(!Intent::In.is_output());
        assert!(!Intent::Out.is_input());
        assert!(Intent::Out.is_output());
        assert!(Intent::InOut.is_input());
        assert!(Intent::InOut.is_output());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Ty::Real.to_string(), "real");
        assert_eq!(Ty::Int.to_string(), "integer");
        assert_eq!(Intent::InOut.to_string(), "intent(inout)");
    }
}
