//! Hand-written lexer for the Fortran-like surface syntax.

use std::fmt;

/// A lexical token with its source line (1-based) for diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokKind,
    pub line: u32,
}

/// Token kinds. Keywords are lexed as `Ident` and classified by the parser,
/// except the dotted operators (`.and.`, `.ne.`, ...) which are lexed
/// directly.
#[derive(Debug, Clone, PartialEq)]
pub enum TokKind {
    Ident(String),
    Int(i64),
    Real(f64),
    /// `!$omp ...` pragma line, contents after `!$omp`, trimmed.
    Pragma(String),
    Plus,
    Minus,
    Star,
    DoubleStar,
    Slash,
    LParen,
    RParen,
    Comma,
    Colon,
    DoubleColon,
    Assign,
    // comparisons
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
    Not,
    /// End of a logical line.
    Newline,
    /// End of input.
    Eof,
}

impl fmt::Display for TokKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokKind::Int(v) => write!(f, "integer `{v}`"),
            TokKind::Real(v) => write!(f, "real `{v}`"),
            TokKind::Pragma(p) => write!(f, "pragma `!$omp {p}`"),
            TokKind::Plus => write!(f, "`+`"),
            TokKind::Minus => write!(f, "`-`"),
            TokKind::Star => write!(f, "`*`"),
            TokKind::DoubleStar => write!(f, "`**`"),
            TokKind::Slash => write!(f, "`/`"),
            TokKind::LParen => write!(f, "`(`"),
            TokKind::RParen => write!(f, "`)`"),
            TokKind::Comma => write!(f, "`,`"),
            TokKind::Colon => write!(f, "`:`"),
            TokKind::DoubleColon => write!(f, "`::`"),
            TokKind::Assign => write!(f, "`=`"),
            TokKind::Eq => write!(f, "`.eq.`"),
            TokKind::Ne => write!(f, "`.ne.`"),
            TokKind::Lt => write!(f, "`.lt.`"),
            TokKind::Le => write!(f, "`.le.`"),
            TokKind::Gt => write!(f, "`.gt.`"),
            TokKind::Ge => write!(f, "`.ge.`"),
            TokKind::And => write!(f, "`.and.`"),
            TokKind::Or => write!(f, "`.or.`"),
            TokKind::Not => write!(f, "`.not.`"),
            TokKind::Newline => write!(f, "end of line"),
            TokKind::Eof => write!(f, "end of input"),
        }
    }
}

/// Lexer error with line number.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    pub line: u32,
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize a whole source string.
///
/// Comments start with `!` (except `!$omp` pragmas, which become
/// [`TokKind::Pragma`]) and run to end of line. Consecutive newlines are
/// collapsed into one `Newline` token.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut toks = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut line: u32 = 1;
    let n = bytes.len();

    let push = |kind: TokKind, line: u32, toks: &mut Vec<Token>| {
        if kind == TokKind::Newline
            && matches!(
                toks.last().map(|t| &t.kind),
                None | Some(TokKind::Newline) | Some(TokKind::Pragma(_))
            )
        {
            return;
        }
        toks.push(Token { kind, line });
    };

    while i < n {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' => i += 1,
            '\n' => {
                push(TokKind::Newline, line, &mut toks);
                line += 1;
                i += 1;
            }
            '!' => {
                // Pragma or comment: consume to end of line.
                let start = i;
                while i < n && bytes[i] != b'\n' {
                    i += 1;
                }
                let text = &src[start..i];
                let lower = text.to_ascii_lowercase();
                if let Some(rest) = lower.strip_prefix("!$omp") {
                    // Terminate any in-progress statement first.
                    push(TokKind::Newline, line, &mut toks);
                    toks.push(Token {
                        kind: TokKind::Pragma(rest.trim().to_string()),
                        line,
                    });
                }
                // Plain comments are skipped entirely.
            }
            '+' => {
                push(TokKind::Plus, line, &mut toks);
                i += 1;
            }
            '-' => {
                push(TokKind::Minus, line, &mut toks);
                i += 1;
            }
            '*' => {
                if i + 1 < n && bytes[i + 1] == b'*' {
                    push(TokKind::DoubleStar, line, &mut toks);
                    i += 2;
                } else {
                    push(TokKind::Star, line, &mut toks);
                    i += 1;
                }
            }
            '/' => {
                if i + 1 < n && bytes[i + 1] == b'=' {
                    push(TokKind::Ne, line, &mut toks);
                    i += 2;
                } else {
                    push(TokKind::Slash, line, &mut toks);
                    i += 1;
                }
            }
            '(' => {
                push(TokKind::LParen, line, &mut toks);
                i += 1;
            }
            ')' => {
                push(TokKind::RParen, line, &mut toks);
                i += 1;
            }
            ',' => {
                push(TokKind::Comma, line, &mut toks);
                i += 1;
            }
            ':' => {
                if i + 1 < n && bytes[i + 1] == b':' {
                    push(TokKind::DoubleColon, line, &mut toks);
                    i += 2;
                } else {
                    push(TokKind::Colon, line, &mut toks);
                    i += 1;
                }
            }
            '=' => {
                if i + 1 < n && bytes[i + 1] == b'=' {
                    push(TokKind::Eq, line, &mut toks);
                    i += 2;
                } else {
                    push(TokKind::Assign, line, &mut toks);
                    i += 1;
                }
            }
            '<' => {
                if i + 1 < n && bytes[i + 1] == b'=' {
                    push(TokKind::Le, line, &mut toks);
                    i += 2;
                } else {
                    push(TokKind::Lt, line, &mut toks);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < n && bytes[i + 1] == b'=' {
                    push(TokKind::Ge, line, &mut toks);
                    i += 2;
                } else {
                    push(TokKind::Gt, line, &mut toks);
                    i += 1;
                }
            }
            '.' => {
                // Either a dotted operator (.and., .ne., ...) or a real
                // literal like `.5` (we require a leading digit, so `.5` is
                // rejected; Fortran programmers write `0.5`).
                let rest = &src[i..];
                let dotted: &[(&str, TokKind)] = &[
                    (".and.", TokKind::And),
                    (".or.", TokKind::Or),
                    (".not.", TokKind::Not),
                    (".eq.", TokKind::Eq),
                    (".ne.", TokKind::Ne),
                    (".lt.", TokKind::Lt),
                    (".le.", TokKind::Le),
                    (".gt.", TokKind::Gt),
                    (".ge.", TokKind::Ge),
                ];
                let lower = rest.to_ascii_lowercase();
                let mut matched = false;
                for (pat, kind) in dotted {
                    if lower.starts_with(pat) {
                        push(kind.clone(), line, &mut toks);
                        i += pat.len();
                        matched = true;
                        break;
                    }
                }
                if !matched {
                    return Err(LexError {
                        line,
                        message: format!("unexpected character `.` (context: {:.10})", rest),
                    });
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < n && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let mut is_real = false;
                // Fractional part — but not if the dot starts a dotted
                // operator like `1.and.`.
                if i < n && bytes[i] == b'.' {
                    let after = i + 1;
                    let next_is_digit = after < n && (bytes[after] as char).is_ascii_digit();
                    let next_is_alpha = after < n && (bytes[after] as char).is_ascii_alphabetic();
                    if next_is_digit || !next_is_alpha {
                        is_real = true;
                        i += 1;
                        while i < n && (bytes[i] as char).is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                // Exponent part.
                if i < n
                    && (bytes[i] == b'e'
                        || bytes[i] == b'E'
                        || bytes[i] == b'd'
                        || bytes[i] == b'D')
                {
                    let mut j = i + 1;
                    if j < n && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < n && (bytes[j] as char).is_ascii_digit() {
                        is_real = true;
                        i = j;
                        while i < n && (bytes[i] as char).is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = src[start..i].replace(['d', 'D'], "e");
                if is_real {
                    let v: f64 = text.parse().map_err(|_| LexError {
                        line,
                        message: format!("bad real literal `{text}`"),
                    })?;
                    push(TokKind::Real(v), line, &mut toks);
                } else {
                    let v: i64 = text.parse().map_err(|_| LexError {
                        line,
                        message: format!("bad integer literal `{text}`"),
                    })?;
                    push(TokKind::Int(v), line, &mut toks);
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < n {
                    let c = bytes[i] as char;
                    if c.is_ascii_alphanumeric() || c == '_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                let word = src[start..i].to_string();
                push(TokKind::Ident(word), line, &mut toks);
            }
            other => {
                return Err(LexError {
                    line,
                    message: format!("unexpected character `{other}`"),
                });
            }
        }
    }
    push(TokKind::Newline, line, &mut toks);
    toks.push(Token {
        kind: TokKind::Eof,
        line,
    });
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        let k = kinds("u(i) = a*v + 1.5");
        assert_eq!(
            k,
            vec![
                TokKind::Ident("u".into()),
                TokKind::LParen,
                TokKind::Ident("i".into()),
                TokKind::RParen,
                TokKind::Assign,
                TokKind::Ident("a".into()),
                TokKind::Star,
                TokKind::Ident("v".into()),
                TokKind::Plus,
                TokKind::Real(1.5),
                TokKind::Newline,
                TokKind::Eof,
            ]
        );
    }

    #[test]
    fn dotted_ops_and_symbols() {
        let k = kinds("i .ne. j .and. i<=n .or. a/=b");
        assert!(k.contains(&TokKind::Ne));
        assert!(k.contains(&TokKind::And));
        assert!(k.contains(&TokKind::Le));
        assert!(k.contains(&TokKind::Or));
        assert_eq!(k.iter().filter(|t| **t == TokKind::Ne).count(), 2);
    }

    #[test]
    fn pragma_lexed_comment_skipped() {
        let k = kinds("x = 1 ! trailing comment\n!$omp parallel do shared(u)\ndo i = 1, n");
        assert!(k
            .iter()
            .any(|t| matches!(t, TokKind::Pragma(p) if p == "parallel do shared(u)")));
        // the comment text is gone
        assert!(!k
            .iter()
            .any(|t| matches!(t, TokKind::Ident(s) if s == "trailing")));
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("42")[0], TokKind::Int(42));
        assert_eq!(kinds("4.25")[0], TokKind::Real(4.25));
        assert_eq!(kinds("1e3")[0], TokKind::Real(1000.0));
        assert_eq!(kinds("0.5d0")[0], TokKind::Real(0.5));
        assert_eq!(kinds("2.")[0], TokKind::Real(2.0));
    }

    #[test]
    fn integer_followed_by_dotted_op() {
        let k = kinds("if (i .eq. 1.and.j .eq. 2) then");
        // `1.and.` must lex as Int(1), And — not Real.
        assert!(k.contains(&TokKind::Int(1)));
        assert_eq!(k.iter().filter(|t| **t == TokKind::And).count(), 1);
    }

    #[test]
    fn double_star_and_double_colon() {
        let k = kinds("real :: x\ny = x**2");
        assert!(k.contains(&TokKind::DoubleColon));
        assert!(k.contains(&TokKind::DoubleStar));
    }

    #[test]
    fn newline_collapse() {
        let k = kinds("a = 1\n\n\nb = 2");
        let nl = k.iter().filter(|t| **t == TokKind::Newline).count();
        assert_eq!(nl, 2);
    }

    #[test]
    fn error_on_garbage() {
        assert!(lex("a = #").is_err());
    }
}
