//! Pretty-printer emitting the Fortran-like surface syntax.
//!
//! The printer and parser round-trip: `parse(print(p)) == p` for every valid
//! program (verified by property tests).

use std::fmt::Write;

use crate::expr::{BinOp, BoolExpr, CmpOp, Expr, UnOp};
use crate::program::{Decl, Program};
use crate::stmt::{LValue, ParallelInfo, Stmt};

/// Render an expression to surface syntax.
pub fn expr_to_string(e: &Expr) -> String {
    let mut s = String::new();
    write_expr(&mut s, e, 0);
    s
}

/// Render a boolean condition to surface syntax.
pub fn bool_to_string(b: &BoolExpr) -> String {
    let mut s = String::new();
    write_bool(&mut s, b, 0);
    s
}

/// Render a whole program to surface syntax.
pub fn program_to_string(p: &Program) -> String {
    let mut s = String::new();
    let params: Vec<&str> = p.params.iter().map(|d| d.name.as_str()).collect();
    let _ = writeln!(s, "subroutine {}({})", p.name, params.join(", "));
    for d in &p.params {
        write_decl(&mut s, d);
    }
    for d in &p.locals {
        write_decl(&mut s, d);
    }
    write_body(&mut s, &p.body, 1);
    let _ = writeln!(s, "end subroutine");
    s
}

fn write_decl(s: &mut String, d: &Decl) {
    let _ = write!(s, "  {}", d.ty);
    if !d.is_local {
        let _ = write!(s, ", {}", d.intent);
    }
    let _ = write!(s, " :: {}", d.name);
    if !d.dims.is_empty() {
        let dims: Vec<String> = d.dims.iter().map(expr_to_string).collect();
        let _ = write!(s, "({})", dims.join(", "));
    }
    let _ = writeln!(s);
}

fn indent(s: &mut String, level: usize) {
    for _ in 0..level {
        s.push_str("  ");
    }
}

/// Render a statement list at the given indentation level.
pub fn write_body(s: &mut String, body: &[Stmt], level: usize) {
    for st in body {
        write_stmt(s, st, level);
    }
}

fn write_lvalue(s: &mut String, lv: &LValue) {
    match lv {
        LValue::Var(n) => s.push_str(n),
        LValue::Index { array, indices } => {
            s.push_str(array);
            s.push('(');
            for (k, ix) in indices.iter().enumerate() {
                if k > 0 {
                    s.push_str(", ");
                }
                write_expr(s, ix, 0);
            }
            s.push(')');
        }
    }
}

fn write_parallel_pragma(s: &mut String, info: &ParallelInfo, level: usize) {
    indent(s, level);
    s.push_str("!$omp parallel do");
    if !info.shared.is_empty() {
        let _ = write!(s, " shared({})", info.shared.join(", "));
    }
    if !info.private.is_empty() {
        let _ = write!(s, " private({})", info.private.join(", "));
    }
    for (op, var) in &info.reductions {
        let _ = write!(s, " reduction({}: {})", op.symbol(), var);
    }
    s.push('\n');
}

fn write_stmt(s: &mut String, st: &Stmt, level: usize) {
    match st {
        Stmt::Assign { lhs, rhs } => {
            indent(s, level);
            write_lvalue(s, lhs);
            s.push_str(" = ");
            write_expr(s, rhs, 0);
            s.push('\n');
        }
        Stmt::AtomicAdd { lhs, rhs } => {
            indent(s, level);
            s.push_str("!$omp atomic\n");
            indent(s, level);
            write_lvalue(s, lhs);
            s.push_str(" = ");
            write_lvalue(s, lhs);
            s.push_str(" + ");
            // Parenthesize so the increment re-parses unambiguously.
            write_expr(s, rhs, 2);
            s.push('\n');
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            indent(s, level);
            s.push_str("if (");
            write_bool(s, cond, 0);
            s.push_str(") then\n");
            write_body(s, then_body, level + 1);
            if !else_body.is_empty() {
                indent(s, level);
                s.push_str("else\n");
                write_body(s, else_body, level + 1);
            }
            indent(s, level);
            s.push_str("end if\n");
        }
        Stmt::For(l) => {
            if let Some(info) = &l.parallel {
                write_parallel_pragma(s, info, level);
            }
            indent(s, level);
            let _ = write!(s, "do {} = ", l.var);
            write_expr(s, &l.lo, 0);
            s.push_str(", ");
            write_expr(s, &l.hi, 0);
            if l.step != Expr::IntLit(1) {
                s.push_str(", ");
                write_expr(s, &l.step, 0);
            }
            s.push('\n');
            write_body(s, &l.body, level + 1);
            indent(s, level);
            s.push_str("end do\n");
        }
        Stmt::Push(e) => {
            indent(s, level);
            s.push_str("call push(");
            write_expr(s, e, 0);
            s.push_str(")\n");
        }
        Stmt::Pop(lv) => {
            indent(s, level);
            s.push_str("call pop(");
            write_lvalue(s, lv);
            s.push_str(")\n");
        }
    }
}

/// Writes `e`; parenthesizes if the surrounding precedence demands it.
fn write_expr(s: &mut String, e: &Expr, parent_prec: u8) {
    match e {
        Expr::IntLit(v) => {
            if *v < 0 && parent_prec > 0 {
                let _ = write!(s, "({v})");
            } else {
                let _ = write!(s, "{v}");
            }
        }
        Expr::RealLit(v) => {
            let printed = format_real(*v);
            if *v < 0.0 && parent_prec > 0 {
                let _ = write!(s, "({printed})");
            } else {
                s.push_str(&printed);
            }
        }
        Expr::Var(n) => s.push_str(n),
        Expr::Index { array, indices } => {
            s.push_str(array);
            s.push('(');
            for (k, ix) in indices.iter().enumerate() {
                if k > 0 {
                    s.push_str(", ");
                }
                write_expr(s, ix, 0);
            }
            s.push(')');
        }
        Expr::Unary { op: UnOp::Neg, arg } => {
            let need = parent_prec > 0;
            if need {
                s.push('(');
            }
            s.push('-');
            write_expr(s, arg, 4);
            if need {
                s.push(')');
            }
        }
        Expr::Binary { op, lhs, rhs } => {
            let prec = op.precedence();
            if *op == BinOp::Mod {
                s.push_str("mod(");
                write_expr(s, lhs, 0);
                s.push_str(", ");
                write_expr(s, rhs, 0);
                s.push(')');
                return;
            }
            let need = prec < parent_prec;
            if need {
                s.push('(');
            }
            write_expr(s, lhs, prec);
            let _ = write!(s, " {} ", op.symbol());
            // Right operand of a left-associative operator needs a tighter
            // context so that `a - (b - c)` keeps its parentheses.
            write_expr(s, rhs, prec + 1);
            if need {
                s.push(')');
            }
        }
        Expr::Call { func, args } => {
            s.push_str(func.name());
            s.push('(');
            for (k, a) in args.iter().enumerate() {
                if k > 0 {
                    s.push_str(", ");
                }
                write_expr(s, a, 0);
            }
            s.push(')');
        }
    }
}

/// Format a real literal so it re-parses as a real (always with a decimal
/// point or exponent).
fn format_real(v: f64) -> String {
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
        s
    } else {
        format!("{s}.0")
    }
}

fn write_bool(s: &mut String, b: &BoolExpr, parent_prec: u8) {
    // precedence: or=1, and=2, not=3, cmp=4
    match b {
        BoolExpr::Cmp { op, lhs, rhs } => {
            write_expr(s, lhs, 1);
            let _ = write!(s, " {} ", cmp_str(*op));
            write_expr(s, rhs, 1);
        }
        BoolExpr::And(a, c) => {
            let need = parent_prec > 2;
            if need {
                s.push('(');
            }
            write_bool(s, a, 2);
            s.push_str(" .and. ");
            write_bool(s, c, 3);
            if need {
                s.push(')');
            }
        }
        BoolExpr::Or(a, c) => {
            let need = parent_prec > 1;
            if need {
                s.push('(');
            }
            write_bool(s, a, 1);
            s.push_str(" .or. ");
            write_bool(s, c, 2);
            if need {
                s.push(')');
            }
        }
        BoolExpr::Not(a) => {
            s.push_str(".not. ");
            write_bool(s, a, 3);
        }
    }
}

fn cmp_str(op: CmpOp) -> &'static str {
    op.fortran()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Intrinsic;

    fn v(n: &str) -> Expr {
        Expr::var(n)
    }

    #[test]
    fn precedence_parenthesization() {
        let e = (v("a") + v("b")) * v("c");
        assert_eq!(expr_to_string(&e), "(a + b) * c");
        let e2 = v("a") + v("b") * v("c");
        assert_eq!(expr_to_string(&e2), "a + b * c");
    }

    #[test]
    fn right_assoc_parens_preserved() {
        let e = v("a") - (v("b") - v("c"));
        assert_eq!(expr_to_string(&e), "a - (b - c)");
    }

    #[test]
    fn array_ref_and_call() {
        let e = Expr::index("u", vec![v("i") - Expr::int(1), v("j")]);
        assert_eq!(expr_to_string(&e), "u(i - 1, j)");
        let c = Expr::call(Intrinsic::Min, vec![v("a"), v("b")]);
        assert_eq!(expr_to_string(&c), "min(a, b)");
    }

    #[test]
    fn real_literals_get_decimal_point() {
        assert_eq!(expr_to_string(&Expr::real(1.5)), "1.5");
        assert_eq!(expr_to_string(&Expr::real(2.0)), "2.0");
    }

    #[test]
    fn negative_literal_parenthesized_in_context() {
        let e = v("a") * Expr::int(-1);
        assert_eq!(expr_to_string(&e), "a * (-1)");
    }

    #[test]
    fn bool_printing() {
        let b = BoolExpr::And(
            Box::new(BoolExpr::cmp(CmpOp::Ne, v("i"), v("j"))),
            Box::new(BoolExpr::cmp(CmpOp::Lt, v("i"), v("n"))),
        );
        assert_eq!(bool_to_string(&b), "i .ne. j .and. i .lt. n");
    }

    #[test]
    fn mod_prints_as_intrinsic() {
        let e = Expr::binary(BinOp::Mod, v("i"), Expr::int(2));
        assert_eq!(expr_to_string(&e), "mod(i, 2)");
    }

    #[test]
    fn stmt_printing_shapes() {
        let mut s = String::new();
        write_stmt(
            &mut s,
            &Stmt::increment(LValue::index("u", vec![v("i")]), v("a")),
            0,
        );
        assert_eq!(s, "u(i) = u(i) + a\n");
    }
}
