//! C-flavoured front end.
//!
//! The paper (§3, §8) names C support as the natural next step, "requiring
//! only minor changes to the parser and scoping rules". This module is
//! that extension: a curly-brace dialect that parses into the *same* IR as
//! the Fortran-like syntax, so every analysis and transformation applies
//! unchanged.
//!
//! Semantics note: the dialect keeps the IR's Fortran conventions — array
//! indexing is 1-based and `x[i][j]` denotes the same element as the
//! Fortran-syntax `x(i, j)` (first index fastest). It is C *syntax*, not
//! C memory layout.
//!
//! ```c
//! void saxpy(int n, double a, const double x[n], double y[n]) {
//!   int i;
//!   #pragma omp parallel for shared(x, y)
//!   for (i = 1; i <= n; i++) {
//!     y[i] = y[i] + a * x[i];
//!   }
//! }
//! ```

use crate::expr::{BinOp, BoolExpr, CmpOp, Expr, Intrinsic, UnOp};
use crate::parser::ParseError;
use crate::program::{Decl, Program};
use crate::stmt::{ForLoop, LValue, ParallelInfo, RedOp, Stmt};
use crate::types::{Intent, Ty};

/// Parse a C-flavoured subroutine into the common IR.
pub fn parse_clike(src: &str) -> Result<Program, ParseError> {
    let toks = lex(src)?;
    let mut p = CParser { toks, pos: 0 };
    let prog = p.function()?;
    p.expect(CTok::Eof)?;
    Ok(prog)
}

/// Parse either dialect, keyed on the leading keyword (`subroutine` →
/// Fortran-like, `void` → C-like).
pub fn parse_any(src: &str) -> Result<Program, ParseError> {
    let lower = src.to_ascii_lowercase();
    let void_at = lower.find("void");
    let sub_at = lower.find("subroutine");
    match (void_at, sub_at) {
        (Some(v), Some(s)) if v < s => parse_clike(src),
        (Some(_), None) => parse_clike(src),
        _ => crate::parser::parse_program(src),
    }
}

// ---------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum CTok {
    Ident(String),
    Int(i64),
    Real(f64),
    Pragma(String),
    LBrace,
    RBrace,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Assign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    PlusPlus,
    MinusMinus,
    PlusAssign,
    MinusAssign,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    AndAnd,
    OrOr,
    Not,
    Eof,
}

#[derive(Debug, Clone)]
struct CToken {
    kind: CTok,
    line: u32,
}

fn lex(src: &str) -> Result<Vec<CToken>, ParseError> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let (mut i, n) = (0usize, b.len());
    let mut line = 1u32;
    let err = |line: u32, m: String| ParseError { line, message: m };
    while i < n {
        let c = b[i] as char;
        match c {
            ' ' | '\t' | '\r' => i += 1,
            '\n' => {
                line += 1;
                i += 1;
            }
            '/' if i + 1 < n && b[i + 1] == b'/' => {
                while i < n && b[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < n && b[i + 1] == b'*' => {
                i += 2;
                while i + 1 < n && !(b[i] == b'*' && b[i + 1] == b'/') {
                    if b[i] == b'\n' {
                        line += 1;
                    }
                    i += 1;
                }
                i = (i + 2).min(n);
            }
            '#' => {
                let start = i;
                while i < n && b[i] != b'\n' {
                    i += 1;
                }
                let text = src[start..i].trim();
                let lower = text.to_ascii_lowercase();
                if let Some(rest) = lower.strip_prefix("#pragma omp") {
                    toks.push(CToken {
                        kind: CTok::Pragma(rest.trim().to_string()),
                        line,
                    });
                } else {
                    return Err(err(line, format!("unsupported directive `{text}`")));
                }
            }
            '{' => {
                toks.push(CToken {
                    kind: CTok::LBrace,
                    line,
                });
                i += 1;
            }
            '}' => {
                toks.push(CToken {
                    kind: CTok::RBrace,
                    line,
                });
                i += 1;
            }
            '(' => {
                toks.push(CToken {
                    kind: CTok::LParen,
                    line,
                });
                i += 1;
            }
            ')' => {
                toks.push(CToken {
                    kind: CTok::RParen,
                    line,
                });
                i += 1;
            }
            '[' => {
                toks.push(CToken {
                    kind: CTok::LBracket,
                    line,
                });
                i += 1;
            }
            ']' => {
                toks.push(CToken {
                    kind: CTok::RBracket,
                    line,
                });
                i += 1;
            }
            ';' => {
                toks.push(CToken {
                    kind: CTok::Semi,
                    line,
                });
                i += 1;
            }
            ',' => {
                toks.push(CToken {
                    kind: CTok::Comma,
                    line,
                });
                i += 1;
            }
            '%' => {
                toks.push(CToken {
                    kind: CTok::Percent,
                    line,
                });
                i += 1;
            }
            '*' => {
                toks.push(CToken {
                    kind: CTok::Star,
                    line,
                });
                i += 1;
            }
            '/' => {
                toks.push(CToken {
                    kind: CTok::Slash,
                    line,
                });
                i += 1;
            }
            '+' => {
                if i + 1 < n && b[i + 1] == b'+' {
                    toks.push(CToken {
                        kind: CTok::PlusPlus,
                        line,
                    });
                    i += 2;
                } else if i + 1 < n && b[i + 1] == b'=' {
                    toks.push(CToken {
                        kind: CTok::PlusAssign,
                        line,
                    });
                    i += 2;
                } else {
                    toks.push(CToken {
                        kind: CTok::Plus,
                        line,
                    });
                    i += 1;
                }
            }
            '-' => {
                if i + 1 < n && b[i + 1] == b'-' {
                    toks.push(CToken {
                        kind: CTok::MinusMinus,
                        line,
                    });
                    i += 2;
                } else if i + 1 < n && b[i + 1] == b'=' {
                    toks.push(CToken {
                        kind: CTok::MinusAssign,
                        line,
                    });
                    i += 2;
                } else {
                    toks.push(CToken {
                        kind: CTok::Minus,
                        line,
                    });
                    i += 1;
                }
            }
            '=' => {
                if i + 1 < n && b[i + 1] == b'=' {
                    toks.push(CToken {
                        kind: CTok::Eq,
                        line,
                    });
                    i += 2;
                } else {
                    toks.push(CToken {
                        kind: CTok::Assign,
                        line,
                    });
                    i += 1;
                }
            }
            '!' => {
                if i + 1 < n && b[i + 1] == b'=' {
                    toks.push(CToken {
                        kind: CTok::Ne,
                        line,
                    });
                    i += 2;
                } else {
                    toks.push(CToken {
                        kind: CTok::Not,
                        line,
                    });
                    i += 1;
                }
            }
            '<' => {
                if i + 1 < n && b[i + 1] == b'=' {
                    toks.push(CToken {
                        kind: CTok::Le,
                        line,
                    });
                    i += 2;
                } else {
                    toks.push(CToken {
                        kind: CTok::Lt,
                        line,
                    });
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < n && b[i + 1] == b'=' {
                    toks.push(CToken {
                        kind: CTok::Ge,
                        line,
                    });
                    i += 2;
                } else {
                    toks.push(CToken {
                        kind: CTok::Gt,
                        line,
                    });
                    i += 1;
                }
            }
            '&' if i + 1 < n && b[i + 1] == b'&' => {
                toks.push(CToken {
                    kind: CTok::AndAnd,
                    line,
                });
                i += 2;
            }
            '|' if i + 1 < n && b[i + 1] == b'|' => {
                toks.push(CToken {
                    kind: CTok::OrOr,
                    line,
                });
                i += 2;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < n && (b[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let mut is_real = false;
                if i < n && b[i] == b'.' {
                    is_real = true;
                    i += 1;
                    while i < n && (b[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < n && (b[i] == b'e' || b[i] == b'E') {
                    let mut j = i + 1;
                    if j < n && (b[j] == b'+' || b[j] == b'-') {
                        j += 1;
                    }
                    if j < n && (b[j] as char).is_ascii_digit() {
                        is_real = true;
                        i = j;
                        while i < n && (b[i] as char).is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &src[start..i];
                if is_real {
                    toks.push(CToken {
                        kind: CTok::Real(
                            text.parse()
                                .map_err(|_| err(line, format!("bad real literal `{text}`")))?,
                        ),
                        line,
                    });
                } else {
                    toks.push(CToken {
                        kind: CTok::Int(
                            text.parse()
                                .map_err(|_| err(line, format!("bad integer literal `{text}`")))?,
                        ),
                        line,
                    });
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < n && ((b[i] as char).is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                toks.push(CToken {
                    kind: CTok::Ident(src[start..i].to_string()),
                    line,
                });
            }
            other => return Err(err(line, format!("unexpected character `{other}`"))),
        }
    }
    toks.push(CToken {
        kind: CTok::Eof,
        line,
    });
    Ok(toks)
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct CParser {
    toks: Vec<CToken>,
    pos: usize,
}

impl CParser {
    fn peek(&self) -> &CTok {
        &self.toks[self.pos].kind
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].line
    }

    fn bump(&mut self) -> CTok {
        let t = self.toks[self.pos].kind.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, m: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            line: self.line(),
            message: m.into(),
        })
    }

    fn expect(&mut self, t: CTok) -> Result<(), ParseError> {
        if *self.peek() == t {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {t:?}, found {:?}", self.peek()))
        }
    }

    fn eat(&mut self, t: &CTok) -> bool {
        if self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            CTok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other:?}")),
        }
    }

    fn at_kw(&self, w: &str) -> bool {
        matches!(self.peek(), CTok::Ident(s) if s == w)
    }

    fn eat_kw(&mut self, w: &str) -> bool {
        if self.at_kw(w) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn function(&mut self) -> Result<Program, ParseError> {
        if !self.eat_kw("void") {
            return self.err("expected `void`");
        }
        let name = self.ident()?;
        let mut prog = Program::new(name);
        self.expect(CTok::LParen)?;
        if !self.eat(&CTok::RParen) {
            loop {
                prog.params.push(self.param()?);
                if self.eat(&CTok::RParen) {
                    break;
                }
                self.expect(CTok::Comma)?;
            }
        }
        self.expect(CTok::LBrace)?;
        prog.body = self.block_items(&mut prog.locals)?;
        self.expect(CTok::RBrace)?;
        Ok(prog)
    }

    fn base_ty(&mut self) -> Result<Option<Ty>, ParseError> {
        if self.eat_kw("int") {
            Ok(Some(Ty::Int))
        } else if self.eat_kw("double") || self.eat_kw("float") {
            Ok(Some(Ty::Real))
        } else {
            Ok(None)
        }
    }

    fn param(&mut self) -> Result<Decl, ParseError> {
        let is_const = self.eat_kw("const");
        let ty = self.base_ty()?.ok_or_else(|| ParseError {
            line: self.line(),
            message: "expected parameter type".into(),
        })?;
        let name = self.ident()?;
        let mut dims = Vec::new();
        while self.eat(&CTok::LBracket) {
            dims.push(self.expr()?);
            self.expect(CTok::RBracket)?;
        }
        let intent = if is_const { Intent::In } else { Intent::InOut };
        Ok(Decl {
            name,
            ty,
            dims,
            intent,
            is_local: false,
        })
    }

    /// Statements and interleaved local declarations.
    fn block_items(&mut self, locals: &mut Vec<Decl>) -> Result<Vec<Stmt>, ParseError> {
        let mut out = Vec::new();
        loop {
            if *self.peek() == CTok::RBrace || *self.peek() == CTok::Eof {
                return Ok(out);
            }
            // Local declaration?
            let save = self.pos;
            if let Some(ty) = self.base_ty()? {
                // `int i, j;` or `double t;` (no local arrays for now).
                loop {
                    let name = self.ident()?;
                    let mut dims = Vec::new();
                    while self.eat(&CTok::LBracket) {
                        dims.push(self.expr()?);
                        self.expect(CTok::RBracket)?;
                    }
                    locals.push(Decl {
                        name,
                        ty,
                        dims,
                        intent: Intent::InOut,
                        is_local: true,
                    });
                    if self.eat(&CTok::Semi) {
                        break;
                    }
                    self.expect(CTok::Comma)?;
                }
                continue;
            }
            self.pos = save;
            out.push(self.stmt(locals)?);
        }
    }

    fn stmt(&mut self, locals: &mut Vec<Decl>) -> Result<Stmt, ParseError> {
        if let CTok::Pragma(p) = self.peek().clone() {
            self.bump();
            return self.pragma_stmt(&p, locals);
        }
        if self.at_kw("if") {
            return self.if_stmt(locals);
        }
        if self.at_kw("for") {
            return self.for_stmt(None, locals);
        }
        // assignment
        let lv = self.lvalue()?;
        let st = self.finish_assignment(lv)?;
        self.expect(CTok::Semi)?;
        Ok(st)
    }

    fn finish_assignment(&mut self, lv: LValue) -> Result<Stmt, ParseError> {
        match self.peek().clone() {
            CTok::Assign => {
                self.bump();
                let rhs = self.expr()?;
                Ok(Stmt::Assign { lhs: lv, rhs })
            }
            CTok::PlusAssign => {
                self.bump();
                let rhs = self.expr()?;
                Ok(Stmt::increment(lv, rhs))
            }
            CTok::MinusAssign => {
                self.bump();
                let rhs = self.expr()?;
                Ok(Stmt::increment(lv, rhs.neg()))
            }
            other => self.err(format!("expected assignment operator, found {other:?}")),
        }
    }

    fn pragma_stmt(&mut self, pragma: &str, locals: &mut Vec<Decl>) -> Result<Stmt, ParseError> {
        let p = pragma.trim().to_ascii_lowercase();
        if p == "atomic" {
            let lv = self.lvalue()?;
            let st = self.finish_assignment(lv)?;
            self.expect(CTok::Semi)?;
            match st.as_increment() {
                Some((lhs, added)) => Ok(Stmt::AtomicAdd {
                    lhs: lhs.clone(),
                    rhs: added,
                }),
                None => self.err("#pragma omp atomic must guard an increment"),
            }
        } else if let Some(clauses) = p.strip_prefix("parallel for") {
            let info = parse_clauses(clauses).map_err(|m| ParseError {
                line: self.line(),
                message: m,
            })?;
            if !self.at_kw("for") {
                return self.err("`#pragma omp parallel for` must precede a for loop");
            }
            self.for_stmt(Some(info), locals)
        } else {
            self.err(format!("unsupported pragma `omp {pragma}`"))
        }
    }

    fn if_stmt(&mut self, locals: &mut Vec<Decl>) -> Result<Stmt, ParseError> {
        self.expect(CTok::Ident("if".into()))?;
        self.expect(CTok::LParen)?;
        let cond = self.bool_expr()?;
        self.expect(CTok::RParen)?;
        self.expect(CTok::LBrace)?;
        let then_body = self.block_items(locals)?;
        self.expect(CTok::RBrace)?;
        let else_body = if self.eat_kw("else") {
            self.expect(CTok::LBrace)?;
            let e = self.block_items(locals)?;
            self.expect(CTok::RBrace)?;
            e
        } else {
            Vec::new()
        };
        Ok(Stmt::If {
            cond,
            then_body,
            else_body,
        })
    }

    /// `for (v = lo; v <= hi; v++| v += s | v-- | v -= s) { ... }`
    fn for_stmt(
        &mut self,
        parallel: Option<ParallelInfo>,
        locals: &mut Vec<Decl>,
    ) -> Result<Stmt, ParseError> {
        self.expect(CTok::Ident("for".into()))?;
        self.expect(CTok::LParen)?;
        // Optional inline declaration `int i = ...`.
        if self.at_kw("int") {
            self.bump();
            let peeked = self.ident()?;
            if !locals.iter().any(|d| d.name == peeked) {
                locals.push(Decl::local(peeked.clone(), Ty::Int));
            }
            self.pos -= 1; // re-read the identifier as the loop var
        }
        let var = self.ident()?;
        self.expect(CTok::Assign)?;
        let lo = self.expr()?;
        self.expect(CTok::Semi)?;
        // Condition: var <= hi | var >= hi | var < hi | var > hi.
        let cvar = self.ident()?;
        if cvar != var {
            return self.err("for-loop condition must test the loop variable");
        }
        let (cmp, strict) = match self.bump() {
            CTok::Le => (true, false),
            CTok::Lt => (true, true),
            CTok::Ge => (false, false),
            CTok::Gt => (false, true),
            other => return self.err(format!("unsupported loop condition {other:?}")),
        };
        let bound = self.expr()?;
        // `< n` becomes `<= n - 1` in the inclusive IR; `> n` → `>= n + 1`.
        let hi = if strict {
            if cmp {
                bound - Expr::IntLit(1)
            } else {
                bound + Expr::IntLit(1)
            }
        } else {
            bound
        };
        self.expect(CTok::Semi)?;
        // Step.
        let svar = self.ident()?;
        if svar != var {
            return self.err("for-loop step must update the loop variable");
        }
        let step = match self.bump() {
            CTok::PlusPlus => Expr::IntLit(1),
            CTok::MinusMinus => Expr::IntLit(-1),
            CTok::PlusAssign => self.expr()?,
            CTok::MinusAssign => {
                let e = self.expr()?;
                match e {
                    Expr::IntLit(v) => Expr::IntLit(-v),
                    other => other.neg(),
                }
            }
            other => return self.err(format!("unsupported loop step {other:?}")),
        };
        // Direction sanity: `<=` with positive literal step etc. is not
        // checked here; the validator rejects zero steps.
        self.expect(CTok::RParen)?;
        self.expect(CTok::LBrace)?;
        let body = self.block_items(locals)?;
        self.expect(CTok::RBrace)?;
        let _ = cmp;
        Ok(Stmt::For(Box::new(ForLoop {
            var,
            lo,
            hi,
            step,
            body,
            parallel,
        })))
    }

    fn lvalue(&mut self) -> Result<LValue, ParseError> {
        let name = self.ident()?;
        if *self.peek() == CTok::LBracket {
            let mut indices = Vec::new();
            while self.eat(&CTok::LBracket) {
                indices.push(self.expr()?);
                self.expect(CTok::RBracket)?;
            }
            Ok(LValue::Index {
                array: name,
                indices,
            })
        } else {
            Ok(LValue::Var(name))
        }
    }

    // ---- expressions ----

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.term()?;
        loop {
            let op = match self.peek() {
                CTok::Plus => BinOp::Add,
                CTok::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.term()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn term(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                CTok::Star => BinOp::Mul,
                CTok::Slash => BinOp::Div,
                CTok::Percent => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.unary()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&CTok::Minus) {
            let arg = self.unary()?;
            return Ok(match arg {
                Expr::IntLit(v) => Expr::IntLit(-v),
                Expr::RealLit(v) => Expr::RealLit(-v),
                other => Expr::Unary {
                    op: UnOp::Neg,
                    arg: Box::new(other),
                },
            });
        }
        if self.eat(&CTok::Plus) {
            return self.unary();
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            CTok::Int(v) => {
                self.bump();
                Ok(Expr::IntLit(v))
            }
            CTok::Real(v) => {
                self.bump();
                Ok(Expr::RealLit(v))
            }
            CTok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(CTok::RParen)?;
                Ok(e)
            }
            CTok::Ident(name) => {
                self.bump();
                if self.eat(&CTok::LParen) {
                    let mut args = Vec::new();
                    if !self.eat(&CTok::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if self.eat(&CTok::RParen) {
                                break;
                            }
                            self.expect(CTok::Comma)?;
                        }
                    }
                    if name == "pow" {
                        if args.len() != 2 {
                            return self.err("pow takes 2 arguments");
                        }
                        let mut it = args.into_iter();
                        let a = it.next().unwrap();
                        let b = it.next().unwrap();
                        return Ok(Expr::binary(BinOp::Pow, a, b));
                    }
                    if name == "fmin" || name == "fmax" {
                        let f = if name == "fmin" {
                            Intrinsic::Min
                        } else {
                            Intrinsic::Max
                        };
                        if args.len() != 2 {
                            return self.err("fmin/fmax take 2 arguments");
                        }
                        return Ok(Expr::Call { func: f, args });
                    }
                    if name == "fabs" {
                        if args.len() != 1 {
                            return self.err("fabs takes 1 argument");
                        }
                        return Ok(Expr::Call {
                            func: Intrinsic::Abs,
                            args,
                        });
                    }
                    match Intrinsic::from_name(&name) {
                        Some(f) if args.len() == f.arity() => Ok(Expr::Call { func: f, args }),
                        Some(f) => self.err(format!(
                            "intrinsic {} takes {} argument(s)",
                            f.name(),
                            f.arity()
                        )),
                        None => self.err(format!("unknown function `{name}`")),
                    }
                } else if *self.peek() == CTok::LBracket {
                    let mut indices = Vec::new();
                    while self.eat(&CTok::LBracket) {
                        indices.push(self.expr()?);
                        self.expect(CTok::RBracket)?;
                    }
                    Ok(Expr::Index {
                        array: name,
                        indices,
                    })
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => self.err(format!("expected expression, found {other:?}")),
        }
    }

    // ---- boolean expressions ----

    fn bool_expr(&mut self) -> Result<BoolExpr, ParseError> {
        let mut lhs = self.bool_and()?;
        while self.eat(&CTok::OrOr) {
            let rhs = self.bool_and()?;
            lhs = BoolExpr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn bool_and(&mut self) -> Result<BoolExpr, ParseError> {
        let mut lhs = self.bool_not()?;
        while self.eat(&CTok::AndAnd) {
            let rhs = self.bool_not()?;
            lhs = BoolExpr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn bool_not(&mut self) -> Result<BoolExpr, ParseError> {
        if self.eat(&CTok::Not) {
            return Ok(BoolExpr::Not(Box::new(self.bool_not()?)));
        }
        self.bool_primary()
    }

    fn bool_primary(&mut self) -> Result<BoolExpr, ParseError> {
        let save = self.pos;
        match self.try_cmp() {
            Ok(c) => Ok(c),
            Err(e) => {
                self.pos = save;
                if self.eat(&CTok::LParen) {
                    let inner = self.bool_expr()?;
                    self.expect(CTok::RParen)?;
                    Ok(inner)
                } else {
                    Err(e)
                }
            }
        }
    }

    fn try_cmp(&mut self) -> Result<BoolExpr, ParseError> {
        let lhs = self.expr()?;
        let op = match self.peek() {
            CTok::Eq => CmpOp::Eq,
            CTok::Ne => CmpOp::Ne,
            CTok::Lt => CmpOp::Lt,
            CTok::Le => CmpOp::Le,
            CTok::Gt => CmpOp::Gt,
            CTok::Ge => CmpOp::Ge,
            other => return self.err(format!("expected comparison, found {other:?}")),
        };
        self.bump();
        let rhs = self.expr()?;
        Ok(BoolExpr::Cmp { op, lhs, rhs })
    }
}

fn parse_clauses(text: &str) -> Result<ParallelInfo, String> {
    let mut info = ParallelInfo::default();
    let mut rest = text.trim();
    while !rest.is_empty() {
        let open = rest
            .find('(')
            .ok_or_else(|| format!("malformed clause near `{rest}`"))?;
        let name = rest[..open].trim().to_ascii_lowercase();
        let close = rest[open..]
            .find(')')
            .ok_or_else(|| format!("unterminated clause `{name}`"))?
            + open;
        let args = &rest[open + 1..close];
        match name.as_str() {
            "shared" => info
                .shared
                .extend(args.split(',').map(|s| s.trim().to_string())),
            "private" => info
                .private
                .extend(args.split(',').map(|s| s.trim().to_string())),
            "reduction" => {
                let (op, vars) = args
                    .split_once(':')
                    .ok_or_else(|| "reduction clause needs `op: vars`".to_string())?;
                let op = match op.trim() {
                    "+" => RedOp::Add,
                    "*" => RedOp::Mul,
                    "min" => RedOp::Min,
                    "max" => RedOp::Max,
                    other => return Err(format!("unknown reduction operator `{other}`")),
                };
                for v in vars.split(',') {
                    info.reductions.push((op, v.trim().to_string()));
                }
            }
            other => return Err(format!("unknown clause `{other}`")),
        }
        rest = rest[close + 1..].trim();
    }
    Ok(info)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    const SAXPY_C: &str = r#"
// C-flavoured saxpy.
void saxpy(int n, const double a, const double x[n], double y[n]) {
  int i;
  #pragma omp parallel for shared(x, y)
  for (i = 1; i <= n; i++) {
    y[i] = y[i] + a * x[i];
  }
}
"#;

    const SAXPY_F: &str = r#"
subroutine saxpy(n, a, x, y)
  integer, intent(in) :: n
  real, intent(in) :: a
  real, intent(in) :: x(n)
  real, intent(inout) :: y(n)
  integer :: i
  !$omp parallel do shared(x, y)
  do i = 1, n
    y(i) = y(i) + a * x(i)
  end do
end subroutine
"#;

    #[test]
    fn c_and_fortran_dialects_agree() {
        let c = parse_clike(SAXPY_C).unwrap();
        let f = parse_program(SAXPY_F).unwrap();
        assert_eq!(c.body, f.body);
        assert_eq!(c.params.len(), f.params.len());
        for (a, b) in c.params.iter().zip(&f.params) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.ty, b.ty);
            assert_eq!(a.dims, b.dims);
        }
        assert!(crate::validate(&c).is_empty());
    }

    #[test]
    fn strict_bound_becomes_inclusive() {
        let src = r#"
void t(int n, double y[n]) {
  int i;
  for (i = 1; i < n; i++) {
    y[i] = 0.0;
  }
}
"#;
        let p = parse_clike(src).unwrap();
        let Stmt::For(l) = &p.body[0] else { panic!() };
        assert_eq!(l.hi, Expr::var("n") - Expr::int(1));
    }

    #[test]
    fn downward_loop() {
        let src = r#"
void t(int n, double y[n]) {
  int i;
  for (i = n; i >= 1; i--) {
    y[i] = 0.0;
  }
}
"#;
        let p = parse_clike(src).unwrap();
        let Stmt::For(l) = &p.body[0] else { panic!() };
        assert_eq!(l.step, Expr::IntLit(-1));
        assert_eq!(l.lo, Expr::var("n"));
        assert_eq!(l.hi, Expr::IntLit(1));
    }

    #[test]
    fn compound_assignment_becomes_increment() {
        let src = r#"
void t(int n, double y[n], const double x[n]) {
  int i;
  for (i = 1; i <= n; i += 2) {
    y[i] += 2.0 * x[i];
    y[i] -= x[i];
  }
}
"#;
        let p = parse_clike(src).unwrap();
        let Stmt::For(l) = &p.body[0] else { panic!() };
        assert_eq!(l.step, Expr::IntLit(2));
        assert!(l.body[0].as_increment().is_some());
        assert!(l.body[1].as_increment().is_some());
    }

    #[test]
    fn atomic_pragma_and_if() {
        let src = r#"
void t(int n, const int c[n], double y[n]) {
  int i;
  #pragma omp parallel for shared(y, c)
  for (i = 1; i <= n; i++) {
    if (c[i] > 0 && i != 1) {
      #pragma omp atomic
      y[c[i]] += 1.0;
    } else {
      y[i] = -5.0;
    }
  }
}
"#;
        let p = parse_clike(src).unwrap();
        let Stmt::For(l) = &p.body[0] else { panic!() };
        let Stmt::If {
            cond,
            then_body,
            else_body,
        } = &l.body[0]
        else {
            panic!()
        };
        assert!(matches!(cond, BoolExpr::And(_, _)));
        assert!(matches!(then_body[0], Stmt::AtomicAdd { .. }));
        assert_eq!(else_body.len(), 1);
    }

    #[test]
    fn c_math_function_names() {
        let src = r#"
void t(int n, const double x[n], double y[n]) {
  int i;
  for (i = 1; i <= n; i++) {
    y[i] = fabs(x[i]) + fmin(x[i], 1.0) + fmax(x[i], 0.0) + pow(x[i], 2) + sqrt(2.0 + x[i] * x[i]);
  }
}
"#;
        let p = parse_clike(src).unwrap();
        assert!(crate::validate(&p).is_empty());
        let text = crate::program_to_string(&p);
        assert!(text.contains("abs(x(i))"), "{text}");
        assert!(text.contains("min(x(i), 1.0)"), "{text}");
        assert!(text.contains("x(i) ** 2"), "{text}");
    }

    #[test]
    fn multidim_brackets() {
        let src = r#"
void t(int n, int m, double u[n][m]) {
  int i, j;
  for (i = 1; i <= n; i++) {
    for (j = 1; j <= m; j++) {
      u[i][j] = 1.0;
    }
  }
}
"#;
        let p = parse_clike(src).unwrap();
        assert!(crate::validate(&p).is_empty(), "{:?}", crate::validate(&p));
    }

    #[test]
    fn inline_loop_declaration() {
        let src = r#"
void t(int n, double y[n]) {
  for (int i = 1; i <= n; i++) {
    y[i] = 1.0;
  }
}
"#;
        let p = parse_clike(src).unwrap();
        assert!(p.locals.iter().any(|d| d.name == "i"));
        assert!(crate::validate(&p).is_empty());
    }

    #[test]
    fn parse_any_dispatches() {
        assert!(parse_any(SAXPY_C).is_ok());
        assert!(parse_any(SAXPY_F).is_ok());
    }

    #[test]
    fn comments_ignored() {
        let src = "void t(int n, double y[n]) { /* block\ncomment */ int i; // line\n for (i = 1; i <= n; i++) { y[i] = 1.0; } }";
        assert!(parse_clike(src).is_ok());
    }
}
