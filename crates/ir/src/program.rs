//! Whole-program (subroutine) representation.

use crate::expr::Expr;
use crate::stmt::{ForLoop, Stmt};
use crate::types::{Intent, Ty};

/// Declaration of a parameter or local variable.
#[derive(Debug, Clone, PartialEq)]
pub struct Decl {
    /// Variable name.
    pub name: String,
    /// Element type.
    pub ty: Ty,
    /// Extent expression per dimension; empty for scalars. Extents are
    /// evaluated on entry (typically `n`-like parameters).
    pub dims: Vec<Expr>,
    /// Dataflow intent. Locals use `Intent::InOut` by convention but are
    /// distinguished by `is_local`.
    pub intent: Intent,
    /// True for local variables (declared without `intent`).
    pub is_local: bool,
}

impl Decl {
    /// Scalar parameter.
    pub fn scalar(name: impl Into<String>, ty: Ty, intent: Intent) -> Decl {
        Decl {
            name: name.into(),
            ty,
            dims: Vec::new(),
            intent,
            is_local: false,
        }
    }

    /// Array parameter.
    pub fn array(name: impl Into<String>, ty: Ty, dims: Vec<Expr>, intent: Intent) -> Decl {
        Decl {
            name: name.into(),
            ty,
            dims,
            intent,
            is_local: false,
        }
    }

    /// Scalar local.
    pub fn local(name: impl Into<String>, ty: Ty) -> Decl {
        Decl {
            name: name.into(),
            ty,
            dims: Vec::new(),
            intent: Intent::InOut,
            is_local: true,
        }
    }

    /// Array local.
    pub fn local_array(name: impl Into<String>, ty: Ty, dims: Vec<Expr>) -> Decl {
        Decl {
            name: name.into(),
            ty,
            dims,
            intent: Intent::InOut,
            is_local: true,
        }
    }

    /// True for array declarations.
    pub fn is_array(&self) -> bool {
        !self.dims.is_empty()
    }
}

/// A subroutine: the unit of differentiation.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Subroutine name.
    pub name: String,
    /// Parameters in declaration order.
    pub params: Vec<Decl>,
    /// Local variables.
    pub locals: Vec<Decl>,
    /// Statement list.
    pub body: Vec<Stmt>,
}

impl Program {
    /// Create an empty subroutine.
    pub fn new(name: impl Into<String>) -> Program {
        Program {
            name: name.into(),
            params: Vec::new(),
            locals: Vec::new(),
            body: Vec::new(),
        }
    }

    /// Look up a declaration (parameter or local) by name.
    pub fn decl(&self, name: &str) -> Option<&Decl> {
        self.params
            .iter()
            .chain(&self.locals)
            .find(|d| d.name == name)
    }

    /// All declarations, parameters first.
    pub fn decls(&self) -> impl Iterator<Item = &Decl> {
        self.params.iter().chain(&self.locals)
    }

    /// Element type of a declared variable, if any.
    pub fn ty_of(&self, name: &str) -> Option<Ty> {
        self.decl(name).map(|d| d.ty)
    }

    /// Visit every statement in the program, pre-order.
    pub fn walk_stmts(&self, f: &mut impl FnMut(&Stmt)) {
        for s in &self.body {
            s.walk(f);
        }
    }

    /// Collect references to every parallel loop in the program, in source
    /// order.
    pub fn parallel_loops(&self) -> Vec<&ForLoop> {
        fn collect<'a>(body: &'a [Stmt], out: &mut Vec<&'a ForLoop>) {
            for s in body {
                match s {
                    Stmt::For(l) => {
                        if l.is_parallel() {
                            out.push(l);
                        }
                        collect(&l.body, out);
                    }
                    Stmt::If {
                        then_body,
                        else_body,
                        ..
                    } => {
                        collect(then_body, out);
                        collect(else_body, out);
                    }
                    _ => {}
                }
            }
        }
        let mut out = Vec::new();
        collect(&self.body, &mut out);
        out
    }

    /// A copy of the program with every parallel pragma removed (the
    /// paper's "serial version without any OpenMP pragmas" baselines).
    pub fn strip_parallel(&self) -> Program {
        fn strip(body: &[Stmt]) -> Vec<Stmt> {
            body.iter()
                .map(|s| match s {
                    Stmt::For(l) => {
                        let mut l2 = (**l).clone();
                        l2.parallel = None;
                        l2.body = strip(&l2.body);
                        Stmt::For(Box::new(l2))
                    }
                    Stmt::If {
                        cond,
                        then_body,
                        else_body,
                    } => Stmt::If {
                        cond: cond.clone(),
                        then_body: strip(then_body),
                        else_body: strip(else_body),
                    },
                    other => other.clone(),
                })
                .collect()
        }
        Program {
            name: self.name.clone(),
            params: self.params.clone(),
            locals: self.locals.clone(),
            body: strip(&self.body),
        }
    }

    /// Number of parallel loops.
    pub fn parallel_loop_count(&self) -> usize {
        let mut n = 0;
        self.walk_stmts(&mut |s| {
            if let Stmt::For(l) = s {
                if l.is_parallel() {
                    n += 1;
                }
            }
        });
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::stmt::{LValue, ParallelInfo};

    fn sample() -> Program {
        let mut p = Program::new("axpy");
        p.params.push(Decl::scalar("n", Ty::Int, Intent::In));
        p.params.push(Decl::scalar("a", Ty::Real, Intent::In));
        p.params
            .push(Decl::array("x", Ty::Real, vec![Expr::var("n")], Intent::In));
        p.params.push(Decl::array(
            "y",
            Ty::Real,
            vec![Expr::var("n")],
            Intent::InOut,
        ));
        p.locals.push(Decl::local("i", Ty::Int));
        p.body.push(Stmt::For(Box::new(ForLoop {
            var: "i".into(),
            lo: Expr::int(1),
            hi: Expr::var("n"),
            step: Expr::int(1),
            body: vec![Stmt::increment(
                LValue::index("y", vec![Expr::var("i")]),
                Expr::var("a") * Expr::index("x", vec![Expr::var("i")]),
            )],
            parallel: Some(ParallelInfo::default()),
        })));
        p
    }

    #[test]
    fn decl_lookup() {
        let p = sample();
        assert_eq!(p.ty_of("a"), Some(Ty::Real));
        assert_eq!(p.ty_of("i"), Some(Ty::Int));
        assert_eq!(p.ty_of("zzz"), None);
        assert!(p.decl("x").unwrap().is_array());
        assert!(!p.decl("a").unwrap().is_array());
    }

    #[test]
    fn parallel_loops_found() {
        let p = sample();
        assert_eq!(p.parallel_loop_count(), 1);
        let loops = p.parallel_loops();
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].var, "i");
    }

    #[test]
    fn decls_order_params_first() {
        let p = sample();
        let names: Vec<_> = p.decls().map(|d| d.name.as_str()).collect();
        assert_eq!(names, vec!["n", "a", "x", "y", "i"]);
    }
}
