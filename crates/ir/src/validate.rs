//! Static well-formedness checks for parsed or built programs.

use std::collections::HashSet;
use std::fmt;

use crate::expr::{BinOp, BoolExpr, Expr};
use crate::program::Program;
use crate::stmt::{LValue, Stmt};
use crate::types::Ty;

/// A validation diagnostic.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidateError {
    pub message: String,
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for ValidateError {}

fn err(msg: impl Into<String>) -> ValidateError {
    ValidateError {
        message: msg.into(),
    }
}

/// Validate a program; returns all diagnostics found (empty = valid).
pub fn validate(p: &Program) -> Vec<ValidateError> {
    let mut v = Validator {
        prog: p,
        errors: Vec::new(),
        parallel_depth: 0,
        privatized: Vec::new(),
    };
    let mut seen = HashSet::new();
    for d in p.decls() {
        if !seen.insert(d.name.clone()) {
            v.errors
                .push(err(format!("duplicate declaration `{}`", d.name)));
        }
        for dim in &d.dims {
            v.check_int_expr(dim, &format!("extent of `{}`", d.name));
        }
    }
    v.check_body(&p.body);
    v.errors
}

/// Convenience: validate and return `Err` on the first diagnostic.
pub fn validate_strict(p: &Program) -> Result<(), ValidateError> {
    let errs = validate(p);
    match errs.into_iter().next() {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

struct Validator<'a> {
    prog: &'a Program,
    errors: Vec<ValidateError>,
    parallel_depth: usize,
    /// Names privatized by enclosing parallel loops (incl. loop counters).
    privatized: Vec<String>,
}

impl<'a> Validator<'a> {
    fn ty_of_expr(&mut self, e: &Expr) -> Option<Ty> {
        match e {
            Expr::IntLit(_) => Some(Ty::Int),
            Expr::RealLit(_) => Some(Ty::Real),
            Expr::Var(name) => match self.prog.decl(name) {
                Some(d) => {
                    if d.is_array() {
                        self.errors
                            .push(err(format!("array `{name}` used without indices")));
                    }
                    Some(d.ty)
                }
                None => {
                    self.errors
                        .push(err(format!("use of undeclared variable `{name}`")));
                    None
                }
            },
            Expr::Index { array, indices } => match self.prog.decl(array) {
                Some(d) => {
                    if !d.is_array() {
                        self.errors
                            .push(err(format!("scalar `{array}` indexed like an array")));
                    } else if d.dims.len() != indices.len() {
                        self.errors.push(err(format!(
                            "array `{array}` has {} dimension(s) but is indexed with {}",
                            d.dims.len(),
                            indices.len()
                        )));
                    }
                    for ix in indices {
                        self.check_int_expr(ix, &format!("index of `{array}`"));
                    }
                    Some(d.ty)
                }
                None => {
                    self.errors
                        .push(err(format!("use of undeclared array `{array}`")));
                    None
                }
            },
            Expr::Unary { arg, .. } => self.ty_of_expr(arg),
            Expr::Binary { op, lhs, rhs } => {
                let a = self.ty_of_expr(lhs)?;
                let b = self.ty_of_expr(rhs)?;
                match op {
                    BinOp::Mod => {
                        if a != Ty::Int || b != Ty::Int {
                            self.errors.push(err("mod requires integer operands"));
                        }
                        Some(Ty::Int)
                    }
                    _ => {
                        if a == Ty::Real || b == Ty::Real {
                            Some(Ty::Real)
                        } else {
                            Some(Ty::Int)
                        }
                    }
                }
            }
            Expr::Call { func, args } => {
                for a in args {
                    self.ty_of_expr(a);
                }
                use crate::expr::Intrinsic::*;
                match func {
                    Abs | Min | Max => {
                        // Polymorphic over Int/Real; result follows args.
                        let tys: Vec<_> = args.iter().filter_map(|a| self.ty_of_expr(a)).collect();
                        if tys.contains(&Ty::Real) {
                            Some(Ty::Real)
                        } else {
                            Some(Ty::Int)
                        }
                    }
                    _ => Some(Ty::Real),
                }
            }
        }
    }

    fn check_int_expr(&mut self, e: &Expr, what: &str) {
        if let Some(ty) = self.ty_of_expr(e) {
            if ty != Ty::Int {
                self.errors
                    .push(err(format!("{what} must be an integer expression")));
            }
        }
    }

    fn check_bool(&mut self, b: &BoolExpr) {
        match b {
            BoolExpr::Cmp { lhs, rhs, .. } => {
                self.ty_of_expr(lhs);
                self.ty_of_expr(rhs);
            }
            BoolExpr::And(a, b) | BoolExpr::Or(a, b) => {
                self.check_bool(a);
                self.check_bool(b);
            }
            BoolExpr::Not(a) => self.check_bool(a),
        }
    }

    fn check_lvalue(&mut self, lv: &LValue) -> Option<Ty> {
        let ty = self.ty_of_expr(&lv.as_expr());
        if self.parallel_depth > 0 {
            if let LValue::Var(name) = lv {
                if !self.privatized.iter().any(|p| p == name) {
                    self.errors.push(err(format!(
                        "scalar `{name}` is assigned inside a parallel loop but is \
                         not in a private or reduction clause (data race in the primal)"
                    )));
                }
            }
        }
        ty
    }

    fn check_body(&mut self, body: &[Stmt]) {
        for s in body {
            self.check_stmt(s);
        }
    }

    fn check_stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Assign { lhs, rhs } | Stmt::AtomicAdd { lhs, rhs } => {
                let lt = self.check_lvalue(lhs);
                let rt = self.ty_of_expr(rhs);
                if let (Some(Ty::Int), Some(Ty::Real)) = (lt, rt) {
                    self.errors.push(err(format!(
                        "cannot assign a real expression to integer `{}`",
                        lhs.name()
                    )));
                }
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                self.check_bool(cond);
                self.check_body(then_body);
                self.check_body(else_body);
            }
            Stmt::For(l) => {
                match self.prog.ty_of(&l.var) {
                    Some(Ty::Int) => {}
                    Some(Ty::Real) => self
                        .errors
                        .push(err(format!("loop counter `{}` must be an integer", l.var))),
                    None => self
                        .errors
                        .push(err(format!("loop counter `{}` is not declared", l.var))),
                }
                self.check_int_expr(&l.lo, "loop lower bound");
                self.check_int_expr(&l.hi, "loop upper bound");
                self.check_int_expr(&l.step, "loop step");
                if let Expr::IntLit(0) = l.step {
                    self.errors.push(err("loop step must be nonzero"));
                }
                let entered_parallel = l.parallel.is_some();
                let mut pushed = 0;
                if let Some(info) = &l.parallel {
                    if self.parallel_depth > 0 {
                        self.errors
                            .push(err("nested parallel loops are not supported"));
                    }
                    self.parallel_depth += 1;
                    for name in info
                        .shared
                        .iter()
                        .chain(&info.private)
                        .chain(info.reductions.iter().map(|(_, v)| v))
                    {
                        if self.prog.decl(name).is_none() {
                            self.errors.push(err(format!(
                                "pragma clause references undeclared variable `{name}`"
                            )));
                        }
                    }
                    for name in info
                        .private
                        .iter()
                        .chain(info.reductions.iter().map(|(_, v)| v))
                    {
                        self.privatized.push(name.clone());
                        pushed += 1;
                    }
                    // The loop counter is implicitly private (OpenMP).
                    self.privatized.push(l.var.clone());
                    pushed += 1;
                } else if self.parallel_depth > 0 {
                    // Sequential loop nested inside a parallel one: its
                    // counter is thread-local.
                    self.privatized.push(l.var.clone());
                    pushed += 1;
                }
                self.check_body(&l.body);
                for _ in 0..pushed {
                    self.privatized.pop();
                }
                if entered_parallel {
                    self.parallel_depth -= 1;
                }
            }
            Stmt::Push(e) => {
                self.ty_of_expr(e);
            }
            Stmt::Pop(lv) => {
                self.check_lvalue(lv);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn check(src: &str) -> Vec<ValidateError> {
        validate(&parse_program(src).unwrap())
    }

    #[test]
    fn valid_program_passes() {
        let errs = check(
            r#"
subroutine t(n, x, y)
  integer, intent(in) :: n
  real, intent(in) :: x(n)
  real, intent(inout) :: y(n)
  integer :: i
  !$omp parallel do shared(x, y)
  do i = 1, n
    y(i) = y(i) + 2.0 * x(i)
  end do
end subroutine
"#,
        );
        assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn undeclared_variable_caught() {
        let errs = check(
            r#"
subroutine t(n)
  integer, intent(in) :: n
  integer :: i
  do i = 1, n
    i = zzz
  end do
end subroutine
"#,
        );
        assert!(errs.iter().any(|e| e.message.contains("undeclared")));
    }

    #[test]
    fn arity_mismatch_caught() {
        let errs = check(
            r#"
subroutine t(n, u)
  integer, intent(in) :: n
  real, intent(inout) :: u(n)
  integer :: i
  do i = 1, n
    u(i, i) = 1.0
  end do
end subroutine
"#,
        );
        assert!(errs.iter().any(|e| e.message.contains("dimension")));
    }

    #[test]
    fn real_index_caught() {
        let errs = check(
            r#"
subroutine t(n, u, a)
  integer, intent(in) :: n
  real, intent(inout) :: u(n)
  real, intent(in) :: a
  integer :: i
  do i = 1, n
    u(a) = 1.0
  end do
end subroutine
"#,
        );
        assert!(errs
            .iter()
            .any(|e| e.message.contains("integer expression")));
    }

    #[test]
    fn shared_scalar_write_in_parallel_loop_caught() {
        let errs = check(
            r#"
subroutine t(n, u)
  integer, intent(in) :: n
  real, intent(inout) :: u(n)
  integer :: i
  real :: tmp
  !$omp parallel do shared(u)
  do i = 1, n
    tmp = u(i)
    u(i) = tmp * 2.0
  end do
end subroutine
"#,
        );
        assert!(errs.iter().any(|e| e.message.contains("data race")));
    }

    #[test]
    fn private_scalar_write_allowed() {
        let errs = check(
            r#"
subroutine t(n, u)
  integer, intent(in) :: n
  real, intent(inout) :: u(n)
  integer :: i
  real :: tmp
  !$omp parallel do shared(u) private(tmp)
  do i = 1, n
    tmp = u(i)
    u(i) = tmp * 2.0
  end do
end subroutine
"#,
        );
        assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn inner_sequential_loop_counter_is_threadlocal() {
        let errs = check(
            r#"
subroutine t(n, u)
  integer, intent(in) :: n
  real, intent(inout) :: u(n)
  integer :: i, j
  !$omp parallel do shared(u)
  do i = 1, n
    do j = 1, n
      u(i) = u(i) + 1.0
    end do
  end do
end subroutine
"#,
        );
        assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn int_lvalue_real_rhs_caught() {
        let errs = check(
            r#"
subroutine t(n)
  integer, intent(in) :: n
  integer :: k
  k = 1.5
end subroutine
"#,
        );
        assert!(errs.iter().any(|e| e.message.contains("real expression")));
    }

    #[test]
    fn real_loop_counter_caught() {
        let errs = check(
            r#"
subroutine t(n, a)
  integer, intent(in) :: n
  real, intent(inout) :: a
  do a = 1, n
    a = 1.0
  end do
end subroutine
"#,
        );
        assert!(errs
            .iter()
            .any(|e| e.message.contains("must be an integer")));
    }

    #[test]
    fn zero_step_caught() {
        let errs = check(
            r#"
subroutine t(n, u)
  integer, intent(in) :: n
  real, intent(inout) :: u(n)
  integer :: i
  do i = 1, n, 0
    u(i) = 1.0
  end do
end subroutine
"#,
        );
        assert!(errs.iter().any(|e| e.message.contains("nonzero")));
    }
}
