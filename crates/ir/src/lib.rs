//! # formad-ir
//!
//! Intermediate representation of the Fortran-like, OpenMP-annotated loop
//! language used throughout the FormAD reproduction.
//!
//! This crate provides:
//!
//! - the AST ([`Expr`], [`BoolExpr`], [`Stmt`], [`ForLoop`], [`Program`]);
//! - a lexer and recursive-descent [`parser`] for the surface syntax;
//! - a [`printer`] emitting that syntax back (parser ∘ printer = identity);
//! - [`mod@validate`]: static well-formedness checks, including detection of
//!   obviously racy primal programs (shared scalar writes in parallel loops).
//!
//! The language is the subset of Fortran + OpenMP exercised by the paper
//! *"Automatic Differentiation of Parallel Loops with Formal Methods"*
//! (Hückelheim & Hascoët, ICPP 2022): counted `do` loops with optional
//! strides and `!$omp parallel do` pragmas (`shared`/`private`/`reduction`
//! clauses), multi-dimensional arrays with arbitrary (data-dependent) index
//! expressions, `if`/`else` control flow, and differentiable intrinsics.
//!
//! ```
//! use formad_ir::{parse_program, program_to_string};
//!
//! let src = r#"
//! subroutine saxpy(n, a, x, y)
//!   integer, intent(in) :: n
//!   real, intent(in) :: a
//!   real, intent(in) :: x(n)
//!   real, intent(inout) :: y(n)
//!   integer :: i
//!   !$omp parallel do shared(x, y)
//!   do i = 1, n
//!     y(i) = y(i) + a * x(i)
//!   end do
//! end subroutine
//! "#;
//! let prog = parse_program(src).unwrap();
//! assert_eq!(prog.parallel_loop_count(), 1);
//! let printed = program_to_string(&prog);
//! assert_eq!(formad_ir::parse_program(&printed).unwrap(), prog);
//! ```

pub mod clike;
pub mod expr;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod printer_c;
pub mod program;
pub mod stmt;
pub mod types;
pub mod validate;

pub use clike::{parse_any, parse_clike};
pub use expr::{BinOp, BoolExpr, CmpOp, Expr, Intrinsic, UnOp};
pub use parser::{parse_expr, parse_program, ParseError};
pub use printer::{expr_to_string, program_to_string};
pub use printer_c::program_to_clike;
pub use program::{Decl, Program};
pub use stmt::{count_stmts, ForLoop, LValue, ParallelInfo, RedOp, Stmt};
pub use types::{Intent, Ty};
pub use validate::{validate, validate_strict, ValidateError};
