//! End-to-end tests of the differential fuzzer itself.
//!
//! - a clean campaign over generated programs finds zero divergences
//!   and produces byte-identical output across two runs (the CI
//!   fuzz-smoke contract);
//! - a deliberately poisoned oracle (chaos-injected legacy search core)
//!   is caught, shrunk, written to the corpus, and reproduced from the
//!   emitted file;
//! - the concrete footprint oracle really detects unsound `Shared`
//!   verdicts;
//! - reproducer files round-trip.

use formad_fuzz::harness::campaign_case;
use formad_fuzz::oracle::strip_times;
use formad_fuzz::shrink::shrink_case;
use formad_fuzz::{
    run_fuzz, Divergence, EngineCache, FuzzConfig, GenConfig, OracleConfig, OracleId, Reproducer,
};
use formad_smt::ChaosConfig;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("formad-fuzz-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn clean_campaign_finds_no_divergences_and_is_deterministic() {
    let cfg = FuzzConfig {
        seed: 42,
        cases: 50,
        shrink_budget: 64,
        ..FuzzConfig::default()
    };
    let a = run_fuzz(&cfg).expect("campaign runs");
    assert!(
        a.divergences.is_empty(),
        "clean campaign diverged:\n{}",
        a.lines.join("\n")
    );
    assert_eq!(
        a.lines.len() as u64,
        cfg.cases + 1,
        "one line per case + summary"
    );
    let b = run_fuzz(&cfg).expect("campaign runs twice");
    assert_eq!(a.lines, b.lines, "same seed must be byte-identical");
}

#[test]
fn poisoned_legacy_oracle_is_caught_shrunk_and_reproduced() {
    let corpus = temp_dir("poison");
    let mut cfg = FuzzConfig {
        seed: 7,
        cases: 12,
        corpus: Some(corpus.clone()),
        shrink_budget: 96,
        ..FuzzConfig::default()
    };
    // Poison ONLY the legacy analysis run: every prover check() answers
    // Unknown, so its verdicts degrade and the cross-core report check
    // must flag the disagreement.
    cfg.oracle.poison_legacy = Some(ChaosConfig {
        seed: 5,
        panic_per_mille: 0,
        unknown_per_mille: 1000,
        delay_per_mille: 0,
        delay: std::time::Duration::ZERO,
    });
    let out = run_fuzz(&cfg).expect("campaign runs");
    assert!(
        !out.divergences.is_empty(),
        "poisoned oracle must be caught:\n{}",
        out.lines.join("\n")
    );
    assert!(
        out.divergences
            .iter()
            .all(|(_, d)| d.oracle == OracleId::CrossCore),
        "poison shows up as cross-core disagreement: {:?}",
        out.divergences
    );
    assert!(!out.corpus_files.is_empty(), "corpus files written");

    // The shrunk reproducer is no larger than the original program and
    // still reproduces the divergence when replayed from disk.
    let (first_id, _) = out.divergences[0];
    let original = campaign_case(cfg.seed, first_id, &cfg.gen);
    let repro = Reproducer::load(&out.corpus_files[0]).expect("reproducer parses");
    assert_eq!(repro.oracle, OracleId::CrossCore);
    assert_eq!(repro.case.seed, cfg.seed);
    assert_eq!(repro.case.id, first_id);
    assert!(
        repro.case.source().len() <= original.source().len(),
        "shrinker must not grow the program"
    );
    let mut engines = EngineCache::new();
    match repro.run(&mut engines) {
        Err(Divergence { oracle, .. }) => assert_eq!(oracle, OracleId::CrossCore),
        Ok(_) => panic!("replayed reproducer no longer diverges"),
    }
    let _ = std::fs::remove_dir_all(&corpus);
}

#[test]
fn shrinker_minimizes_while_preserving_the_divergence() {
    // Find one poisoned divergence and shrink it hard: the result must
    // be strictly smaller than the original for any non-trivial case,
    // still valid, and still diverge on the same oracle.
    let cfg = OracleConfig {
        poison_legacy: Some(ChaosConfig {
            seed: 3,
            panic_per_mille: 0,
            unknown_per_mille: 1000,
            delay_per_mille: 0,
            delay: std::time::Duration::ZERO,
        }),
        ..OracleConfig::default()
    };
    let mut engines = EngineCache::new();
    let gen = GenConfig::default();
    let mut shrunk_one = false;
    for id in 0..20u64 {
        let case = campaign_case(21, id, &gen);
        if let Err(d) = formad_fuzz::run_case(&case, &cfg, &mut engines) {
            let (min, evals) = shrink_case(&case, d.oracle, &cfg, &mut engines, 128);
            assert!(evals > 0, "shrinker must try candidates");
            assert!(min.source().len() <= case.source().len());
            assert!(formad_ir::validate(&min.program).is_empty());
            match formad_fuzz::run_case(&min, &cfg, &mut engines) {
                Err(d2) => assert_eq!(d2.oracle, d.oracle, "shrink preserved the oracle"),
                Ok(_) => panic!("shrunk case no longer diverges"),
            }
            shrunk_one = true;
            break;
        }
    }
    assert!(
        shrunk_one,
        "poison campaign produced no divergence to shrink"
    );
}

#[test]
fn footprint_oracle_detects_unsound_shared_verdicts() {
    use formad::{Decision, Formad, FormadOptions};
    use formad_ir::parse_program;

    // A folded read map: the adjoint scatters into x̄(mod(i,2)+1), so
    // iterations collide on two locations. The analysis must say
    // Guarded; if its verdict were Shared the concrete footprint check
    // must catch the contradiction.
    let src = "subroutine f(n, x, y)\n  integer, intent(in) :: n\n  \
               real, intent(in) :: x(n)\n  real, intent(inout) :: y(n)\n  integer :: i\n  \
               !$omp parallel do shared(x, y)\n  do i = 1, n\n    \
               y(i) = y(i) + x(mod(i, 2) + 1)\n  end do\nend subroutine\n";
    let prog = parse_program(src).unwrap();
    let bind = formad_machine::bind_params(&prog, &[("n".into(), "8".into())], 3).unwrap();
    let tool = Formad::new(FormadOptions::new(&["x"], &["y"]));
    let mut analysis = tool.analyze(&prog).unwrap();
    // Sound verdicts pass the concrete check.
    formad_fuzz::footprint::check_footprints(&prog, &bind, &analysis)
        .expect("sound analysis must pass the footprint oracle");
    // Forcing the colliding array to Shared must be caught.
    analysis.regions[0]
        .decisions
        .insert("x".to_string(), Decision::Shared);
    let err = formad_fuzz::footprint::check_footprints(&prog, &bind, &analysis)
        .expect_err("unsound Shared verdict must be flagged");
    assert!(err.contains("x"), "detail names the array: {err}");
}

#[test]
fn reproducer_files_round_trip() {
    let case = campaign_case(9, 4, &GenConfig::default());
    let repro = Reproducer {
        case,
        oracle: OracleId::ExecBitwise,
        detail: "sim vs bytecode T=3: array `y0`[2]: 1.5 vs 1.25".to_string(),
        config: OracleConfig {
            poison_legacy: Some(ChaosConfig {
                seed: 11,
                panic_per_mille: 1,
                unknown_per_mille: 2,
                delay_per_mille: 3,
                delay: std::time::Duration::from_micros(4),
            }),
            ..OracleConfig::default()
        },
    };
    let rendered = repro.render();
    let parsed = Reproducer::parse(&rendered).expect("parses back");
    assert_eq!(parsed.render(), rendered, "render ∘ parse is a fixpoint");
    assert_eq!(parsed.oracle, repro.oracle);
    assert_eq!(parsed.detail, repro.detail);
    assert_eq!(parsed.case.sets, repro.case.sets);
    let p = parsed.config.poison_legacy.expect("poison preserved");
    assert_eq!(
        (
            p.seed,
            p.panic_per_mille,
            p.unknown_per_mille,
            p.delay_per_mille
        ),
        (11, 1, 2, 3)
    );
}

#[test]
fn stripped_reports_have_no_wall_clock() {
    let s = "region 0 (parallel do i): 3 stmts, model size 5, 4 unique exprs, 7 queries, 0.123s\n  adjoint of `x`: shared [proved]";
    let t = strip_times(s);
    assert!(!t.contains("0.123"), "{t}");
    assert!(t.contains("7 queries"), "{t}");
}
