//! The generator's building blocks exposed as `proptest` strategies.
//!
//! `tests/property_based.rs` (and any future property test) can draw
//! whole well-typed programs, boundary-shaped index expressions,
//! permutations, and bounded real vectors from the same grammar the
//! fuzzer uses, instead of hand-rolling its own inputs.

use formad_ir::Program;
use proptest::strategy::Strategy;
use proptest::test_runner::TestRng;

use crate::grammar::{generate_case, FuzzCase, GenConfig};

/// Strategy producing whole generated fuzz cases (program + bindings
/// recipe). Each draw derives a fresh sub-seed from the runner's RNG,
/// so `proptest!` seeds reproduce exactly.
#[derive(Debug, Clone, Copy)]
pub struct FuzzCaseStrategy {
    cfg: GenConfig,
}

impl Strategy for FuzzCaseStrategy {
    type Value = FuzzCase;
    fn generate(&self, rng: &mut TestRng) -> FuzzCase {
        let seed = rng.next_u64();
        let mut sub = TestRng::from_seed(seed);
        generate_case(0, seed, &self.cfg, &mut sub)
    }
}

/// A well-typed generated case under the given shape knobs.
pub fn fuzz_case(cfg: GenConfig) -> FuzzCaseStrategy {
    FuzzCaseStrategy { cfg }
}

/// Just the generated program.
pub fn program(cfg: GenConfig) -> impl Strategy<Value = Program> {
    fuzz_case(cfg).prop_map(|c| c.program)
}

/// Index-expression source strings covering the grammar's read-map
/// shapes over counter `i` and extent `n` (affine, strided, reversed,
/// folded, indirect). All of them parse; whether they are in-bounds
/// depends on the surrounding declaration, which is the caller's
/// business (round-trip tests don't execute them).
#[derive(Debug, Clone, Copy, Default)]
pub struct IndexExprStrategy;

impl Strategy for IndexExprStrategy {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        match rng.below(9) {
            0 => "i".to_string(),
            1 => format!("i + {}", 1 + rng.below(3)),
            2 => "i - 1".to_string(),
            3 => format!("{} * i", 2 + rng.below(2)),
            4 => "n + 1 - i".to_string(),
            5 => format!("mod(i, {}) + 1", 2 + rng.below(3)),
            6 => "c(i)".to_string(),
            7 => format!("c(i) + {}", 1 + rng.below(2)),
            _ => format!("mod(c(i), {}) + 1", 2 + rng.below(3)),
        }
    }
}

/// See [`IndexExprStrategy`].
pub fn index_expr_src() -> IndexExprStrategy {
    IndexExprStrategy
}

/// A uniformly random permutation of `1..=n` (Fisher–Yates over the
/// runner's RNG), e.g. for race-free indirect index arrays.
#[derive(Debug, Clone, Copy)]
pub struct PermutationStrategy {
    n: usize,
}

impl Strategy for PermutationStrategy {
    type Value = Vec<i64>;
    fn generate(&self, rng: &mut TestRng) -> Vec<i64> {
        let mut v: Vec<i64> = (1..=self.n as i64).collect();
        for k in (1..self.n).rev() {
            let j = rng.below(k as u128 + 1) as usize;
            v.swap(k, j);
        }
        v
    }
}

/// See [`PermutationStrategy`].
pub fn permutation(n: usize) -> PermutationStrategy {
    PermutationStrategy { n }
}

/// A vector of `len` reals in `(-1, 1)` — well-conditioned data for
/// finite-difference checks.
#[derive(Debug, Clone, Copy)]
pub struct RealVecStrategy {
    len: usize,
}

impl Strategy for RealVecStrategy {
    type Value = Vec<f64>;
    fn generate(&self, rng: &mut TestRng) -> Vec<f64> {
        (0..self.len)
            .map(|_| {
                // 53 random mantissa bits, scaled to (-1, 1).
                let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                2.0 * u - 1.0
            })
            .collect()
    }
}

/// See [`RealVecStrategy`].
pub fn real_vec(len: usize) -> RealVecStrategy {
    RealVecStrategy { len }
}

#[cfg(test)]
mod tests {
    use super::*;
    use formad_ir::parse_program;

    #[test]
    fn index_exprs_parse_inside_a_program() {
        let mut rng = TestRng::from_seed(11);
        for _ in 0..100 {
            let e = index_expr_src().generate(&mut rng);
            let src = format!(
                "subroutine t(n, v, c)\n  integer, intent(in) :: n\n  \
                 real, intent(inout) :: v(3 * n + 3)\n  integer, intent(in) :: c(n)\n  \
                 integer :: i\n  do i = 1, n\n    v({e}) = 1.0\n  end do\nend subroutine\n"
            );
            parse_program(&src).unwrap_or_else(|err| panic!("`{e}` failed to parse: {err}"));
        }
    }

    #[test]
    fn permutations_are_permutations() {
        let mut rng = TestRng::from_seed(12);
        for n in [1usize, 2, 7, 12] {
            let p = permutation(n).generate(&mut rng);
            let mut sorted = p.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (1..=n as i64).collect::<Vec<_>>());
        }
    }

    #[test]
    fn real_vecs_are_bounded() {
        let mut rng = TestRng::from_seed(13);
        let v = real_vec(500).generate(&mut rng);
        assert_eq!(v.len(), 500);
        assert!(v.iter().all(|x| x.abs() < 1.0));
    }

    #[test]
    fn generated_programs_are_strategy_drawable() {
        let mut rng = TestRng::from_seed(14);
        for _ in 0..20 {
            let p = program(GenConfig::default()).generate(&mut rng);
            assert!(formad_ir::validate(&p).is_empty());
        }
    }
}
