//! Seeded, grammar-driven generator of well-typed DSL programs.
//!
//! Every generated program is a subroutine of 1..`max_loops` parallel
//! regions whose *write* footprints are concretely injective per region
//! (so the primal is schedule-independent and all executor backends must
//! agree bitwise at every thread count), while *read* footprints range
//! over the shapes near the provable/unprovable boundary: affine
//! (`i + k`), strided (`2*i`), reversed (`n + 1 - i`), folded
//! (`mod(i, m) + 1`), and indirect (`c(i) + k`) maps. The adjoint of a
//! gather is a scatter, so wild read maps are exactly what drives the
//! region analysis toward its Shared/Guarded decision boundary.
//!
//! Structural constraints enforced by construction (they mirror
//! `formad_ir::validate` and the executor/AD preconditions):
//!
//! - per region and array, every write uses one index map, and the
//!   target array is only ever *read* through that same map — no
//!   cross-iteration read/write overlap in the primal;
//! - branch conditions read only loop counters, `intent(in)` data, and
//!   constants, so taken paths are schedule-independent too;
//! - all indices stay inside the declared extents under the driver's
//!   deterministic bindings (`bind_params`: int arrays are filled
//!   1, 2, 3, …; extents are padded by the maximum offset used);
//! - real arithmetic avoids `exp`/`log`/`sqrt`/`pow` and division by
//!   anything but constants, so no run can produce NaN/Inf and
//!   finite-difference checks stay well-conditioned;
//! - loop bounds are never modified inside loops, no name ends in the
//!   adjoint suffix `b`, and shared scalars are written only under a
//!   `reduction` clause.

use std::collections::BTreeMap;

use formad_ir::{
    program_to_string, BinOp, BoolExpr, CmpOp, Decl, Expr, ForLoop, Intent, Intrinsic, LValue,
    ParallelInfo, Program, RedOp, Stmt, Ty,
};
use proptest::test_runner::TestRng;

/// Knobs for the program generator (`formad fuzz --max-loops
/// --max-arrays`).
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Maximum parallel regions per program (≥ 1).
    pub max_loops: usize,
    /// Maximum real data arrays (inputs + outputs, ≥ 2).
    pub max_arrays: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_loops: 3,
            max_arrays: 4,
        }
    }
}

/// One generated test case: the program plus everything needed to bind
/// and differentiate it deterministically. `sets`/`fill_seed` follow the
/// `formad exec --set/--seed` convention, so a reproducer is directly
/// runnable by the CLI.
#[derive(Debug, Clone)]
pub struct FuzzCase {
    /// Case index within the fuzz run.
    pub id: u64,
    /// Master seed of the fuzz run.
    pub seed: u64,
    /// The generated subroutine.
    pub program: Program,
    /// Independent (input) arrays.
    pub wrt: Vec<String>,
    /// Dependent (output) arrays.
    pub of: Vec<String>,
    /// Scalar parameter assignments (`n`, and any real scalar params).
    pub sets: Vec<(String, String)>,
    /// Seed for the deterministic real-array fill.
    pub fill_seed: u64,
}

impl FuzzCase {
    /// Fortran-dialect source of the program.
    pub fn source(&self) -> String {
        program_to_string(&self.program)
    }

    /// Driver bindings for the recorded `sets`/`fill_seed` (the same
    /// rule `formad exec` uses: int arrays filled 1, 2, 3, …; real
    /// arrays deterministically in (-1, 1)).
    pub fn bindings(&self) -> Result<formad_machine::Bindings, String> {
        formad_machine::bind_params(&self.program, &self.sets, self.fill_seed)
            .map_err(|e| e.to_string())
    }
}

/// Uniform pick in `[0, n)`.
fn pick(rng: &mut TestRng, n: usize) -> usize {
    rng.below(n.max(1) as u128) as usize
}

/// True with probability `mille`/1000.
fn chance(rng: &mut TestRng, mille: u64) -> bool {
    rng.below(1000) < u128::from(mille)
}

/// An index map's extent requirement: every produced value lies in
/// `[1, mult*n + add]` (assuming `n ≥ 1`).
#[derive(Debug, Clone, Copy)]
struct Extent {
    mult: i64,
    add: i64,
}

/// Range of an index variable: `var ∈ [lo, mult*n + add]`.
#[derive(Debug, Clone, Copy)]
struct VarRange {
    name: &'static str,
    lo: i64,
    mult: i64,
    add: i64,
}

struct Builder<'r> {
    rng: &'r mut TestRng,
    use_c: bool,
    use_a: bool,
    use_s: bool,
    xs: Vec<String>,
    ys: Vec<String>,
    /// Required extent per array, merged as component-wise max.
    extents: BTreeMap<String, Extent>,
    needs_j: bool,
    needs_t: bool,
    used_s: bool,
}

impl<'r> Builder<'r> {
    fn need(&mut self, name: &str, e: Extent) {
        let cur = self.extents.entry(name.to_string()).or_insert(e);
        cur.mult = cur.mult.max(e.mult);
        cur.add = cur.add.max(e.add);
    }

    /// A read-position index map over `var`. Returns the index
    /// expression and registers the extent it needs on `array`.
    fn read_map(&mut self, array: &str, var: VarRange) -> Expr {
        let v = Expr::var(var.name);
        let indirect = self.use_c && var.name == "i";
        let n_choices = if indirect { 8 } else { 6 };
        let (expr, ext) = match pick(self.rng, n_choices) {
            0 => (
                v,
                Extent {
                    mult: var.mult,
                    add: var.add,
                },
            ),
            1 => {
                let k = 1 + pick(self.rng, 2) as i64;
                (
                    v + Expr::int(k),
                    Extent {
                        mult: var.mult,
                        add: var.add + k,
                    },
                )
            }
            2 if var.lo >= 2 => (
                v - Expr::int(1),
                Extent {
                    mult: var.mult,
                    add: var.add,
                },
            ),
            2 => (
                v,
                Extent {
                    mult: var.mult,
                    add: var.add,
                },
            ),
            3 => {
                let s = 2 + pick(self.rng, 2) as i64;
                (
                    Expr::int(s) * v,
                    Extent {
                        mult: s * var.mult,
                        add: s * var.add,
                    },
                )
            }
            4 => (
                Expr::var("n") + Expr::int(1) - v,
                Extent { mult: 1, add: 0 },
            ),
            5 => {
                let m = 2 + pick(self.rng, 3) as i64;
                (
                    Expr::binary(BinOp::Mod, v, Expr::int(m)) + Expr::int(1),
                    Extent { mult: 0, add: m },
                )
            }
            6 => {
                // c(var): the int array is filled 1..=n by the driver.
                let k = pick(self.rng, 3) as i64;
                self.need("c", Extent { mult: 1, add: 0 });
                (
                    Expr::index("c", vec![v]) + Expr::int(k),
                    Extent { mult: 1, add: k },
                )
            }
            _ => {
                let m = 2 + pick(self.rng, 3) as i64;
                self.need("c", Extent { mult: 1, add: 0 });
                (
                    Expr::binary(BinOp::Mod, Expr::index("c", vec![v]), Expr::int(m))
                        + Expr::int(1),
                    Extent { mult: 0, add: m },
                )
            }
        };
        self.need(array, ext);
        expr
    }

    /// A write-position index map over the parallel counter `i`. Every
    /// alternative is injective in `i` under the driver's identity fill
    /// of `c`, so concurrent iterations never write the same element.
    fn write_map(&mut self, array: &str) -> Expr {
        let i = Expr::var("i");
        let n_choices = if self.use_c { 6 } else { 4 };
        let (expr, ext) = match pick(self.rng, n_choices) {
            0 => (i, Extent { mult: 1, add: 0 }),
            1 => {
                let k = 1 + pick(self.rng, 2) as i64;
                (i + Expr::int(k), Extent { mult: 1, add: k })
            }
            2 => {
                let s = 2 + pick(self.rng, 2) as i64;
                (Expr::int(s) * i, Extent { mult: s, add: 0 })
            }
            3 => (
                Expr::var("n") + Expr::int(1) - i,
                Extent { mult: 1, add: 0 },
            ),
            4 => {
                self.need("c", Extent { mult: 1, add: 0 });
                (Expr::index("c", vec![i]), Extent { mult: 1, add: 0 })
            }
            _ => {
                let k = 1 + pick(self.rng, 2) as i64;
                self.need("c", Extent { mult: 1, add: 0 });
                (
                    Expr::index("c", vec![i]) + Expr::int(k),
                    Extent { mult: 1, add: k },
                )
            }
        };
        self.need(array, ext);
        expr
    }

    /// A real constant literal (kept to short dyadic values so the
    /// printer round-trips exactly).
    fn real_const(&mut self) -> Expr {
        const POOL: [f64; 6] = [0.25, 0.5, 0.75, 1.5, 2.0, -0.5];
        Expr::real(POOL[pick(self.rng, POOL.len())])
    }

    /// A real-valued leaf. `target` is the region's (array, write map)
    /// pair, readable only through its own map; `vars` are the index
    /// variables in scope. When `force_x`, the leaf is always a gather
    /// from an input array (keeps the case active for FD checks).
    fn real_leaf(
        &mut self,
        vars: &[VarRange],
        target: Option<&(String, Expr)>,
        force_x: bool,
    ) -> Expr {
        if !force_x {
            if let Some((arr, map)) = target {
                if chance(self.rng, 100) {
                    return Expr::index(arr.clone(), vec![map.clone()]);
                }
            }
            if self.use_a && chance(self.rng, 150) {
                return Expr::var("a");
            }
            if chance(self.rng, 200) {
                return self.real_const();
            }
        }
        let x = self.xs[pick(self.rng, self.xs.len())].clone();
        let var = vars[pick(self.rng, vars.len())];
        let map = self.read_map(&x, var);
        Expr::index(x, vec![map])
    }

    /// A bounded real expression tree (no exp/log/sqrt/pow, division
    /// only by constants — see module docs).
    fn real_expr(
        &mut self,
        depth: usize,
        vars: &[VarRange],
        target: Option<&(String, Expr)>,
        force_x: bool,
    ) -> Expr {
        if depth == 0 || chance(self.rng, 250) {
            return self.real_leaf(vars, target, force_x);
        }
        match pick(self.rng, 10) {
            0..=2 => {
                let a = self.real_expr(depth - 1, vars, target, force_x);
                let b = self.real_expr(depth - 1, vars, target, false);
                a + b
            }
            3 | 4 => {
                let a = self.real_expr(depth - 1, vars, target, force_x);
                let b = self.real_expr(depth - 1, vars, target, false);
                a - b
            }
            5 | 6 => {
                let a = self.real_expr(depth - 1, vars, target, force_x);
                let b = self.real_expr(depth - 1, vars, target, false);
                a * b
            }
            7 => {
                let a = self.real_expr(depth - 1, vars, target, force_x);
                a / Expr::real(if chance(self.rng, 500) { 2.0 } else { 4.0 })
            }
            8 => {
                // The parser constant-folds a negated literal, so an
                // emitted `-(-0.5)` would break the print/parse
                // fixpoint — fold it at construction instead.
                match self.real_expr(depth - 1, vars, target, force_x) {
                    Expr::RealLit(v) => Expr::real(-v),
                    other => other.neg(),
                }
            }
            _ => {
                let f = [Intrinsic::Sin, Intrinsic::Cos, Intrinsic::Tanh][pick(self.rng, 3)];
                Expr::call(f, vec![self.real_expr(depth - 1, vars, target, force_x)])
            }
        }
    }

    /// A schedule-independent branch condition: integer shapes on the
    /// loop counter / index array, or (rarely) a comparison on
    /// `intent(in)` real data.
    fn condition(&mut self, vars: &[VarRange]) -> BoolExpr {
        let var = vars[pick(self.rng, vars.len())];
        let v = Expr::var(var.name);
        match pick(self.rng, if self.use_c { 4 } else { 3 }) {
            0 => BoolExpr::cmp(
                CmpOp::Eq,
                Expr::binary(BinOp::Mod, v, Expr::int(2)),
                Expr::int(0),
            ),
            1 => BoolExpr::cmp(CmpOp::Lt, v, Expr::int(3 + pick(self.rng, 4) as i64)),
            2 => {
                let x = self.xs[pick(self.rng, self.xs.len())].clone();
                let map = self.read_map(&x, var);
                BoolExpr::cmp(CmpOp::Gt, Expr::index(x, vec![map]), Expr::real(0.25))
            }
            _ => {
                self.need("c", Extent { mult: 1, add: 0 });
                BoolExpr::cmp(CmpOp::Le, Expr::index("c", vec![v.clone()]), v)
            }
        }
    }

    /// A write/increment to the region target through its fixed map.
    fn target_stmt(&mut self, vars: &[VarRange], target: &(String, Expr)) -> Stmt {
        let lhs = LValue::index(target.0.clone(), vec![target.1.clone()]);
        let rhs = self.real_expr(2, vars, Some(target), true);
        if chance(self.rng, 600) {
            Stmt::increment(lhs, rhs)
        } else {
            Stmt::assign(lhs, rhs)
        }
    }

    /// Append one template's statements to a region body.
    #[allow(clippy::too_many_arguments)]
    fn body_stmt(
        &mut self,
        out: &mut Vec<Stmt>,
        vars: &[VarRange],
        target: &(String, Expr),
        region_t: &mut bool,
        region_s: &mut bool,
        region_j: &mut bool,
        allow_loop: bool,
    ) {
        match pick(self.rng, 10) {
            // Branch around a target write.
            0 | 1 => {
                let cond = self.condition(vars);
                let then_body = vec![self.target_stmt(vars, target)];
                let else_body = if chance(self.rng, 500) {
                    vec![self.target_stmt(vars, target)]
                } else {
                    Vec::new()
                };
                out.push(Stmt::If {
                    cond,
                    then_body,
                    else_body,
                });
            }
            // Private scalar temporary feeding an increment.
            2 => {
                *region_t = true;
                self.needs_t = true;
                let rhs = self.real_expr(2, vars, Some(target), true);
                out.push(Stmt::assign(LValue::var("t"), rhs));
                out.push(Stmt::increment(
                    LValue::index(target.0.clone(), vec![target.1.clone()]),
                    Expr::var("t") * self.real_const(),
                ));
            }
            // Scalar reduction.
            3 if self.use_s => {
                *region_s = true;
                self.used_s = true;
                let rhs = self.real_expr(1, vars, None, true);
                out.push(Stmt::increment(LValue::var("s"), rhs));
            }
            // Inner sequential loop accumulating into the target.
            4 | 5 if allow_loop => {
                self.needs_j = true;
                *region_j = true;
                let m = 2 + pick(self.rng, 3) as i64;
                let jvar = VarRange {
                    name: "j",
                    lo: 1,
                    mult: 0,
                    add: m,
                };
                let mut inner_vars = vars.to_vec();
                inner_vars.push(jvar);
                let body = vec![self.target_stmt(&inner_vars, target)];
                out.push(Stmt::For(Box::new(ForLoop {
                    var: "j".into(),
                    lo: Expr::int(1),
                    hi: Expr::int(m),
                    step: Expr::int(1),
                    body,
                    parallel: None,
                })));
            }
            _ => out.push(self.target_stmt(vars, target)),
        }
    }

    /// One `!$omp parallel do` region.
    fn region(&mut self) -> Stmt {
        let lo_pad = pick(self.rng, 2) as i64; // 1 allows `i - 1` reads
        let ivar = VarRange {
            name: "i",
            lo: 1 + lo_pad,
            mult: 1,
            add: 0,
        };
        let target_name = self.ys[pick(self.rng, self.ys.len())].clone();
        let map = self.write_map(&target_name);
        let target = (target_name, map);
        let vars = [ivar];
        let mut region_t = false;
        let mut region_s = false;
        let mut region_j = false;
        let n_stmts = 1 + pick(self.rng, 3);
        let mut body = Vec::new();
        for k in 0..n_stmts {
            self.body_stmt(
                &mut body,
                &vars,
                &target,
                &mut region_t,
                &mut region_s,
                &mut region_j,
                k == 0,
            );
        }
        // shared(...) lists every array the region touches, in name order.
        let mut shared: Vec<String> = Vec::new();
        for s in &body {
            collect_arrays(s, &mut shared);
        }
        shared.sort();
        shared.dedup();
        let mut info = ParallelInfo {
            shared,
            private: Vec::new(),
            reductions: Vec::new(),
        };
        // Inner sequential loop counters must be private (the executors
        // enforce this, matching OpenMP semantics).
        if region_j {
            info.private.push("j".into());
        }
        if region_t {
            info.private.push("t".into());
        }
        if region_s {
            info.reductions.push((RedOp::Add, "s".into()));
        }
        Stmt::For(Box::new(ForLoop {
            var: "i".into(),
            lo: Expr::int(1 + lo_pad),
            hi: Expr::var("n"),
            step: Expr::int(1),
            body,
            parallel: Some(info),
        }))
    }
}

/// Collect array names referenced anywhere in a statement.
fn collect_arrays(s: &Stmt, out: &mut Vec<String>) {
    s.walk(&mut |st| match st {
        Stmt::Assign { lhs, rhs } => {
            if let LValue::Index { array, indices } = lhs {
                out.push(array.clone());
                for ix in indices {
                    ix.array_names(out);
                }
            }
            rhs.array_names(out);
        }
        Stmt::If { cond, .. } => cond.walk_exprs(&mut |e| e.array_names(out)),
        Stmt::For(l) => {
            l.lo.array_names(out);
            l.hi.array_names(out);
            l.step.array_names(out);
        }
        _ => {}
    });
}

/// Render an extent requirement as a declaration dimension expression.
fn extent_expr(e: Extent) -> Expr {
    match (e.mult, e.add) {
        (0, a) => Expr::int(a.max(1)),
        (1, 0) => Expr::var("n"),
        (1, a) => Expr::var("n") + Expr::int(a),
        (m, 0) => Expr::int(m) * Expr::var("n"),
        (m, a) => Expr::int(m) * Expr::var("n") + Expr::int(a),
    }
}

/// Generate one well-typed case. Deterministic in (`id`, `seed`,
/// `cfg`, the `rng` stream).
pub fn generate_case(id: u64, seed: u64, cfg: &GenConfig, rng: &mut TestRng) -> FuzzCase {
    let max_arrays = cfg.max_arrays.max(2);
    let nx = 1 + pick(rng, (max_arrays - 1).min(2));
    let ny = 1 + pick(rng, (max_arrays - nx).clamp(1, 2));
    let mut b = Builder {
        use_c: chance(rng, 550),
        use_a: chance(rng, 500),
        use_s: chance(rng, 300),
        xs: (0..nx).map(|k| format!("x{k}")).collect(),
        ys: (0..ny).map(|k| format!("y{k}")).collect(),
        extents: BTreeMap::new(),
        needs_j: false,
        needs_t: false,
        used_s: false,
        rng,
    };
    // Every data array exists even if a body never touches it.
    for name in b.xs.clone().iter().chain(b.ys.clone().iter()) {
        b.need(name, Extent { mult: 1, add: 0 });
    }
    let n_regions = 1 + pick(b.rng, cfg.max_loops.max(1));
    let body: Vec<Stmt> = (0..n_regions).map(|_| b.region()).collect();

    let n_val = 6 + pick(b.rng, 7) as i64;
    let a_val = [0.25, 0.5, 0.75, 1.5][pick(b.rng, 4)];
    let mut prog = Program::new(format!("fz{id}"));
    prog.params.push(Decl::scalar("n", Ty::Int, Intent::In));
    let mut sets = vec![("n".to_string(), n_val.to_string())];
    if b.use_a {
        prog.params.push(Decl::scalar("a", Ty::Real, Intent::In));
        sets.push(("a".to_string(), format!("{a_val}")));
    }
    if b.used_s {
        prog.params.push(Decl::scalar("s", Ty::Real, Intent::InOut));
        sets.push(("s".to_string(), "0.125".to_string()));
    }
    if b.extents.contains_key("c") {
        prog.params
            .push(Decl::array("c", Ty::Int, vec![Expr::var("n")], Intent::In));
    }
    for name in &b.xs {
        let e = b.extents[name.as_str()];
        prog.params.push(Decl::array(
            name.clone(),
            Ty::Real,
            vec![extent_expr(e)],
            Intent::In,
        ));
    }
    for name in &b.ys {
        let e = b.extents[name.as_str()];
        prog.params.push(Decl::array(
            name.clone(),
            Ty::Real,
            vec![extent_expr(e)],
            Intent::InOut,
        ));
    }
    prog.locals.push(Decl::local("i", Ty::Int));
    if b.needs_j {
        prog.locals.push(Decl::local("j", Ty::Int));
    }
    if b.needs_t {
        prog.locals.push(Decl::local("t", Ty::Real));
    }
    prog.body = body;

    let fill_seed = b.rng.next_u64() % 1_000_000;
    FuzzCase {
        id,
        seed,
        program: prog,
        wrt: b.xs.clone(),
        of: b.ys.clone(),
        sets,
        fill_seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_programs_validate() {
        let cfg = GenConfig::default();
        for case_id in 0..200u64 {
            let mut rng = TestRng::from_seed(1000 + case_id);
            let case = generate_case(case_id, 1000, &cfg, &mut rng);
            let errs = formad_ir::validate(&case.program);
            assert!(
                errs.is_empty(),
                "case {case_id} failed validation: {errs:?}\n{}",
                case.source()
            );
            assert!(case.program.parallel_loop_count() >= 1);
            case.bindings().expect("bindable");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        let mut r1 = TestRng::from_seed(7);
        let mut r2 = TestRng::from_seed(7);
        let a = generate_case(3, 7, &cfg, &mut r1);
        let b = generate_case(3, 7, &cfg, &mut r2);
        assert_eq!(a.source(), b.source());
        assert_eq!(a.sets, b.sets);
        assert_eq!(a.fill_seed, b.fill_seed);
    }
}
