//! Grammar-driven differential fuzzer over every oracle pair of the
//! FormAD stack.
//!
//! The crate has five layers, each usable on its own:
//!
//! - [`grammar`] — seeded generator of well-typed DSL programs whose
//!   parallel regions are schedule-independent by construction (see the
//!   module docs for the invariants), biased toward footprint shapes
//!   near the provable/unprovable boundary;
//! - [`oracle`] — the differential harness: one generated case is
//!   pushed through the full pipeline and every independent oracle pair
//!   is cross-checked (verdicts across search cores / jobs / cache,
//!   trace validity, the concrete brute-force footprint check, bitwise
//!   execution across backends and thread counts, adjoint-vs-FD);
//! - [`footprint`] — the concrete race oracle backing the `Brute`
//!   check;
//! - [`shrink`] — a delta-debugging minimizer that preserves the
//!   observed divergence;
//! - [`repro`] — self-contained reproducer files (source + seed +
//!   config) written to a corpus directory and replayable by
//!   `formad fuzz --repro`.
//!
//! [`harness`] ties them together for the `formad fuzz` CLI verb, and
//! [`strategies`] re-exposes the generator as `proptest` strategies for
//! property tests elsewhere in the workspace.

pub mod footprint;
pub mod grammar;
pub mod harness;
pub mod oracle;
pub mod repro;
pub mod shrink;
pub mod strategies;

pub use grammar::{generate_case, FuzzCase, GenConfig};
pub use harness::{run_fuzz, FuzzConfig, FuzzOutcome};
pub use oracle::{run_case, Divergence, EngineCache, OracleConfig, OracleId};
pub use repro::Reproducer;
// Re-exported so the CLI can build `--chaos-legacy` poison configs
// without depending on the SMT crate directly.
pub use formad_smt::ChaosConfig;
