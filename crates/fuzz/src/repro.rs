//! Self-contained reproducer files.
//!
//! A reproducer is a single `.f90` file: a block of `! key: value`
//! comment lines (the fuzz seed, oracle, driver bindings, and oracle
//! configuration) followed by the minimized program source. The lexer
//! skips `!` comments, so the file parses as an ordinary Fortran-dialect
//! program too — `formad analyze repro.f90 --wrt … --of …` works on it
//! directly, and `formad fuzz --repro repro.f90` replays the exact
//! differential check that failed.

use std::time::Duration;

use formad_ir::parse_program;
use formad_smt::ChaosConfig;

use crate::grammar::FuzzCase;
use crate::oracle::{run_case, CaseSummary, Divergence, EngineCache, OracleConfig, OracleId};

/// Format tag written as the first line of every reproducer.
pub const REPRO_HEADER: &str = "! formad-fuzz reproducer v1";

/// A divergence captured as a replayable file.
#[derive(Debug, Clone)]
pub struct Reproducer {
    pub case: FuzzCase,
    pub oracle: OracleId,
    /// First line of the original divergence detail (informational).
    pub detail: String,
    pub config: OracleConfig,
}

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn unesc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

fn fmt_usizes(v: &[usize]) -> String {
    v.iter().map(usize::to_string).collect::<Vec<_>>().join(",")
}

impl Reproducer {
    /// Corpus file name: `fz-<seed>-<case>-<oracle>.f90`.
    pub fn file_name(&self) -> String {
        format!(
            "fz-{}-{:06}-{}.f90",
            self.case.seed, self.case.id, self.oracle
        )
    }

    /// Render the reproducer file contents.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(REPRO_HEADER);
        s.push('\n');
        s.push_str(&format!("! oracle: {}\n", self.oracle));
        s.push_str(&format!("! detail: {}\n", esc(&self.detail)));
        s.push_str(&format!("! seed: {}\n", self.case.seed));
        s.push_str(&format!("! case: {}\n", self.case.id));
        s.push_str(&format!("! fill-seed: {}\n", self.case.fill_seed));
        s.push_str(&format!("! wrt: {}\n", self.case.wrt.join(",")));
        s.push_str(&format!("! of: {}\n", self.case.of.join(",")));
        for (k, v) in &self.case.sets {
            s.push_str(&format!("! set: {k}={v}\n"));
        }
        s.push_str(&format!(
            "! threads: {}\n",
            fmt_usizes(&self.config.threads)
        ));
        s.push_str(&format!("! jobs: {}\n", self.config.jobs));
        s.push_str(&format!("! aot: {}\n", self.config.check_aot));
        s.push_str(&format!("! fd-h: {}\n", self.config.fd_h));
        s.push_str(&format!("! fd-tol: {}\n", self.config.fd_tol));
        if let Some(c) = &self.config.poison_legacy {
            s.push_str(&format!(
                "! poison-legacy: seed={},panic={},unknown={},delay={},delay-us={}\n",
                c.seed,
                c.panic_per_mille,
                c.unknown_per_mille,
                c.delay_per_mille,
                c.delay.as_micros()
            ));
        }
        s.push_str(&self.case.source());
        s
    }

    /// Parse a reproducer file back into a replayable case.
    pub fn parse(src: &str) -> Result<Reproducer, String> {
        let mut lines = src.lines().peekable();
        if lines.next().map(str::trim) != Some(REPRO_HEADER) {
            return Err(format!("not a reproducer: expected `{REPRO_HEADER}`"));
        }
        let mut oracle = None;
        let mut detail = String::new();
        let mut seed = 0u64;
        let mut case_id = 0u64;
        let mut fill_seed = 0u64;
        let mut wrt = Vec::new();
        let mut of = Vec::new();
        let mut sets = Vec::new();
        let mut config = OracleConfig::default();
        let mut body = String::new();
        let mut in_header = true;
        for line in lines {
            let header_kv = in_header
                .then(|| line.strip_prefix("! "))
                .flatten()
                .and_then(|rest| rest.split_once(": "));
            let Some((key, value)) = header_kv else {
                in_header = false;
                body.push_str(line);
                body.push('\n');
                continue;
            };
            match key {
                "oracle" => {
                    oracle = Some(
                        OracleId::parse(value)
                            .ok_or_else(|| format!("unknown oracle `{value}`"))?,
                    );
                }
                "detail" => detail = unesc(value),
                "seed" => seed = value.parse().map_err(|e| format!("seed: {e}"))?,
                "case" => case_id = value.parse().map_err(|e| format!("case: {e}"))?,
                "fill-seed" => {
                    fill_seed = value.parse().map_err(|e| format!("fill-seed: {e}"))?;
                }
                "wrt" => wrt = value.split(',').map(str::to_string).collect(),
                "of" => of = value.split(',').map(str::to_string).collect(),
                "set" => {
                    let (k, v) = value
                        .split_once('=')
                        .ok_or_else(|| format!("malformed set `{value}`"))?;
                    sets.push((k.to_string(), v.to_string()));
                }
                "threads" => {
                    config.threads = value
                        .split(',')
                        .map(|t| t.parse().map_err(|e| format!("threads: {e}")))
                        .collect::<Result<_, _>>()?;
                }
                "jobs" => config.jobs = value.parse().map_err(|e| format!("jobs: {e}"))?,
                "aot" => config.check_aot = value == "true",
                "fd-h" => config.fd_h = value.parse().map_err(|e| format!("fd-h: {e}"))?,
                "fd-tol" => {
                    config.fd_tol = value.parse().map_err(|e| format!("fd-tol: {e}"))?;
                }
                "poison-legacy" => {
                    let mut c = ChaosConfig {
                        seed: 0,
                        panic_per_mille: 0,
                        unknown_per_mille: 0,
                        delay_per_mille: 0,
                        delay: Duration::ZERO,
                    };
                    for part in value.split(',') {
                        let (k, v) = part
                            .split_once('=')
                            .ok_or_else(|| format!("malformed poison `{part}`"))?;
                        let n: u64 = v.parse().map_err(|e| format!("poison {k}: {e}"))?;
                        match k {
                            "seed" => c.seed = n,
                            "panic" => c.panic_per_mille = n as u16,
                            "unknown" => c.unknown_per_mille = n as u16,
                            "delay" => c.delay_per_mille = n as u16,
                            "delay-us" => c.delay = Duration::from_micros(n),
                            other => return Err(format!("unknown poison key `{other}`")),
                        }
                    }
                    config.poison_legacy = Some(c);
                }
                // Unknown headers are tolerated for forward compatibility.
                _ => {}
            }
        }
        let oracle = oracle.ok_or("missing `oracle` header")?;
        if wrt.is_empty() || of.is_empty() {
            return Err("missing `wrt`/`of` headers".into());
        }
        let program = parse_program(&body).map_err(|e| format!("reproducer source: {e}"))?;
        Ok(Reproducer {
            case: FuzzCase {
                id: case_id,
                seed,
                program,
                wrt,
                of,
                sets,
                fill_seed,
            },
            oracle,
            detail,
            config,
        })
    }

    /// Load a reproducer from disk.
    pub fn load(path: &std::path::Path) -> Result<Reproducer, String> {
        let src = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Reproducer::parse(&src)
    }

    /// Replay the case under the recorded configuration. `Err` means
    /// the divergence still reproduces.
    pub fn run(&self, engines: &mut EngineCache) -> Result<CaseSummary, Divergence> {
        run_case(&self.case, &self.config, engines)
    }
}
