//! The differential harness: run one generated case through the full
//! pipeline and cross-check every independent oracle pair.
//!
//! Checks, in order (the first failure wins — later checks often depend
//! on earlier artifacts):
//!
//! 1. `Pipeline` — `validate`, driver binding, and the reference
//!    `differentiate` call must succeed. A generated program is
//!    well-typed by construction, so any rejection is a bug in the
//!    generator or the pipeline.
//! 2. `RoundTrip` — printing the program and re-parsing the print must
//!    be a fixpoint (`print ∘ parse ∘ print = print`).
//! 3. `Trace` — every collected proof trace must pass
//!    [`formad::validate_trace`].
//! 4. `JobsCache` — the analysis report (wall-clock stripped) and the
//!    deterministic trace JSON must be byte-identical with `jobs > 1`
//!    and with the proof cache disabled.
//! 5. `CrossCore` — the legacy search core must produce the same report
//!    as CDCL. An injected [`ChaosConfig`] poisons only this run, which
//!    is how the acceptance test proves the fuzzer catches an oracle
//!    bug.
//! 6. `Brute` — concrete adjoint footprints must not contradict a
//!    `Shared` verdict (see [`crate::footprint`]).
//! 7. `ExecBitwise` — primal and all three adjoint disciplines must be
//!    bitwise identical across {sim, bytecode, aot} at every thread
//!    count; reduction-free primals additionally across thread counts
//!    (guarded adjoints reassociate with the schedule, so cross-count
//!    identity is not an invariant for them).
//! 8. `Fd` — the FormAD adjoint must pass the dot-product test against
//!    central finite differences.

use std::collections::HashMap;
use std::fmt;

use formad::{
    deterministic_json, full_report, trace_json, validate_trace, Decision, Formad, FormadAnalysis,
    FormadOptions, IncMode, ParallelTreatment, SearchCore, TraceSink,
};
use formad_ir::{parse_program, program_to_string, validate, Program};
use formad_machine::{
    compile, dot_product_test, fill_real, load_or_compile, lower, run, Bindings, Machine,
    NativeEngine,
};
use formad_smt::ChaosConfig;

use crate::footprint::check_footprints;
use crate::grammar::FuzzCase;

/// Which oracle pair a divergence was found by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleId {
    /// validate / bind / differentiate rejected a generated program.
    Pipeline,
    /// Printer/parser fixpoint violated.
    RoundTrip,
    /// A proof trace failed `validate_trace`.
    Trace,
    /// Report or deterministic trace changed under jobs / cache.
    JobsCache,
    /// Legacy and CDCL search cores disagree.
    CrossCore,
    /// A `Shared` verdict contradicts the concrete adjoint footprint.
    Brute,
    /// Backends or thread counts disagree bitwise.
    ExecBitwise,
    /// Adjoint-vs-finite-difference dot test failed.
    Fd,
}

impl OracleId {
    /// Stable spelling used in reproducer files and fuzz output.
    pub fn name(self) -> &'static str {
        match self {
            OracleId::Pipeline => "pipeline",
            OracleId::RoundTrip => "round-trip",
            OracleId::Trace => "trace",
            OracleId::JobsCache => "jobs-cache",
            OracleId::CrossCore => "cross-core",
            OracleId::Brute => "brute",
            OracleId::ExecBitwise => "exec-bitwise",
            OracleId::Fd => "fd",
        }
    }

    /// Inverse of [`OracleId::name`].
    pub fn parse(s: &str) -> Option<OracleId> {
        Some(match s {
            "pipeline" => OracleId::Pipeline,
            "round-trip" => OracleId::RoundTrip,
            "trace" => OracleId::Trace,
            "jobs-cache" => OracleId::JobsCache,
            "cross-core" => OracleId::CrossCore,
            "brute" => OracleId::Brute,
            "exec-bitwise" => OracleId::ExecBitwise,
            "fd" => OracleId::Fd,
            _ => return None,
        })
    }
}

impl fmt::Display for OracleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A cross-check failure: which oracle pair disagreed and how.
#[derive(Debug, Clone)]
pub struct Divergence {
    pub oracle: OracleId,
    pub detail: String,
}

impl Divergence {
    fn new(oracle: OracleId, detail: impl Into<String>) -> Divergence {
        Divergence {
            oracle,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.oracle, self.detail)
    }
}

/// Oracle tunables (`formad fuzz` maps its flags onto this).
#[derive(Debug, Clone)]
pub struct OracleConfig {
    /// Thread counts for the execution cross-check; the first entry is
    /// the reference schedule.
    pub threads: Vec<usize>,
    /// Extra worker count for the jobs-invariance check.
    pub jobs: usize,
    /// Also build and run the AOT kernel (one `rustc` invocation per
    /// program — expensive; the harness samples it).
    pub check_aot: bool,
    /// Central-difference step for the dot-product test.
    pub fd_h: f64,
    /// Relative-error tolerance for the dot-product test.
    pub fd_tol: f64,
    /// Fault injection applied to the *legacy* analysis run only. Used
    /// by tests to prove a poisoned oracle is caught.
    pub poison_legacy: Option<ChaosConfig>,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            threads: vec![1, 3],
            jobs: 2,
            check_aot: false,
            fd_h: 1e-6,
            fd_tol: 1e-4,
            poison_legacy: None,
        }
    }
}

/// Per-case result summary (feeds the deterministic fuzz output line).
#[derive(Debug, Clone, Copy, Default)]
pub struct CaseSummary {
    pub regions: usize,
    pub shared: usize,
    pub guarded: usize,
    pub aot_checked: bool,
}

/// `NativeEngine` spawns its worker threads at construction, so the
/// harness shares one engine per thread count across all cases.
#[derive(Default)]
pub struct EngineCache {
    engines: HashMap<usize, NativeEngine>,
}

impl EngineCache {
    pub fn new() -> EngineCache {
        EngineCache::default()
    }

    fn get(&mut self, threads: usize) -> &mut NativeEngine {
        self.engines
            .entry(threads)
            .or_insert_with(|| NativeEngine::new(threads))
    }
}

/// Drop the only wall-clock-dependent token (the region time that ends
/// `… N queries, 0.123s` header lines) so reports compare bytewise.
pub fn strip_times(report: &str) -> String {
    report
        .lines()
        .map(|l| match l.split_once(" queries, ") {
            Some((head, _)) => format!("{head} queries"),
            None => l.to_string(),
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// First line where `a` and `b` differ, for divergence details.
fn first_diff(what: &str, a: &str, b: &str) -> String {
    for (k, (la, lb)) in a.lines().zip(b.lines()).enumerate() {
        if la != lb {
            return format!("{what} differs at line {}: `{la}` vs `{lb}`", k + 1);
        }
    }
    format!(
        "{what} differs in length: {} vs {} lines",
        a.lines().count(),
        b.lines().count()
    )
}

fn options(case: &FuzzCase) -> FormadOptions {
    let wrt: Vec<&str> = case.wrt.iter().map(String::as_str).collect();
    let of: Vec<&str> = case.of.iter().map(String::as_str).collect();
    FormadOptions::new(&wrt, &of)
}

/// Bitwise comparison of two executed binding sets; `None` = identical.
fn bitwise_diff(a: &Bindings, b: &Bindings) -> Option<String> {
    for (name, v) in &a.real_scalars {
        let w = b.real_scalars.get(name)?;
        if v.to_bits() != w.to_bits() {
            return Some(format!("scalar `{name}`: {v} vs {w}"));
        }
    }
    for (name, v) in &a.real_arrays {
        let w = b.real_arrays.get(name)?;
        if v.len() != w.len() {
            return Some(format!("array `{name}` length {} vs {}", v.len(), w.len()));
        }
        for (k, (p, q)) in v.iter().zip(w).enumerate() {
            if p.to_bits() != q.to_bits() {
                return Some(format!("array `{name}`[{k}]: {p} vs {q}"));
            }
        }
    }
    for (name, v) in &a.int_scalars {
        if b.int_scalars.get(name) != Some(v) {
            return Some(format!("int `{name}`"));
        }
    }
    for (name, v) in &a.int_arrays {
        if b.int_arrays.get(name) != Some(v) {
            return Some(format!("int array `{name}`"));
        }
    }
    None
}

/// Seed adjoint bindings the way `fd::dot_product_test` and the AOT
/// differential wall do: dependents' bars at 1.0, independents' bars
/// zeroed, any remaining active bar array zeroed to its primal length.
fn adjoint_bindings(adjoint: &Program, base: &Bindings, case: &FuzzCase) -> Bindings {
    let mut b = base.clone();
    for name in &case.of {
        if let Some(arr) = base.get_real_array(name) {
            b.real_arrays
                .insert(format!("{name}b"), vec![1.0; arr.len()]);
        }
    }
    for name in &case.wrt {
        if let Some(arr) = base.get_real_array(name) {
            b.real_arrays
                .entry(format!("{name}b"))
                .or_insert_with(|| vec![0.0; arr.len()]);
        }
    }
    for d in &adjoint.params {
        if d.ty != formad_ir::Ty::Real {
            continue;
        }
        if d.dims.is_empty() {
            if !b.real_scalars.contains_key(&d.name) {
                b.real_scalars.insert(d.name.clone(), 0.0);
            }
        } else if !b.real_arrays.contains_key(&d.name) {
            if let Some(stem) = d.name.strip_suffix('b') {
                if let Some(arr) = base.get_real_array(stem) {
                    b.real_arrays.insert(d.name.clone(), vec![0.0; arr.len()]);
                }
            }
        }
    }
    b
}

/// Analysis outcome of one knob setting: the analysis itself, the
/// stripped report, and (when requested) the deterministic trace
/// events plus their rendered JSON.
type AnalyzedVariant = (
    FormadAnalysis,
    String,
    Option<(Vec<formad::TraceEvent>, String)>,
);

/// One analysis run with the given knobs; returns the stripped report
/// and (optionally) the deterministic trace JSON.
fn analyze_variant(
    case: &FuzzCase,
    jobs: usize,
    cache: bool,
    core: SearchCore,
    chaos: Option<ChaosConfig>,
    want_trace: bool,
) -> Result<AnalyzedVariant, String> {
    let mut opts = options(case);
    opts.region.jobs = jobs;
    opts.region.search_core = core;
    if !cache {
        opts.region.cache = None;
    }
    opts.region.chaos = chaos;
    let sink = want_trace.then(TraceSink::new);
    opts.region.trace = sink.clone();
    let tool = Formad::new(opts);
    let analysis = tool.analyze(&case.program).map_err(|e| e.to_string())?;
    let report = strip_times(&full_report(&case.program.name, &analysis));
    let trace = sink.map(|s| {
        let events = s.snapshot();
        let det = deterministic_json(&events);
        (events, det)
    });
    Ok((analysis, report, trace))
}

/// Run every oracle over one case. `Err` is the first divergence found.
pub fn run_case(
    case: &FuzzCase,
    cfg: &OracleConfig,
    engines: &mut EngineCache,
) -> Result<CaseSummary, Divergence> {
    let prog = &case.program;

    // 1. The program must be well-typed.
    let errs = validate(prog);
    if !errs.is_empty() {
        return Err(Divergence::new(
            OracleId::Pipeline,
            format!("validate rejected the program: {}", errs[0]),
        ));
    }

    // 2. Printer/parser fixpoint.
    let src = program_to_string(prog);
    let reparsed = parse_program(&src)
        .map_err(|e| Divergence::new(OracleId::RoundTrip, format!("re-parse failed: {e}")))?;
    let src2 = program_to_string(&reparsed);
    if src2 != src {
        return Err(Divergence::new(
            OracleId::RoundTrip,
            first_diff("printed source", &src, &src2),
        ));
    }

    // 3. Driver bindings.
    let base = case
        .bindings()
        .map_err(|e| Divergence::new(OracleId::Pipeline, format!("bind failed: {e}")))?;

    // 4. Reference analysis (CDCL, jobs=1, cache on, traced). The
    //    adjoint comes from a separate untraced pipeline run so the
    //    reference trace covers exactly what the variant runs record.
    let mut opts = options(case);
    opts.region.jobs = 1;
    let sink = TraceSink::new();
    opts.region.trace = Some(sink.clone());
    let analysis = Formad::new(opts)
        .analyze(prog)
        .map_err(|e| Divergence::new(OracleId::Pipeline, format!("analyze failed: {e}")))?;
    let ref_events = sink.snapshot();
    validate_trace(&trace_json(&ref_events))
        .map_err(|e| Divergence::new(OracleId::Trace, format!("reference trace invalid: {e}")))?;
    let ref_det = deterministic_json(&ref_events);
    let ref_report = strip_times(&full_report(&prog.name, &analysis));
    let tool = Formad::new(options(case));
    let diff = tool
        .differentiate(prog)
        .map_err(|e| Divergence::new(OracleId::Pipeline, format!("differentiate failed: {e}")))?;

    let mut summary = CaseSummary {
        regions: analysis.regions.len(),
        ..CaseSummary::default()
    };
    for r in &analysis.regions {
        for d in r.decisions.values() {
            match d {
                Decision::Shared => summary.shared += 1,
                Decision::Guarded(_) => summary.guarded += 1,
            }
        }
    }

    // 5. Jobs- and cache-invariance (report and deterministic trace).
    for (label, jobs, cache) in [("jobs", cfg.jobs.max(2), true), ("no-cache", 1, false)] {
        let (_, report, trace) = analyze_variant(case, jobs, cache, SearchCore::Cdcl, None, true)
            .map_err(|e| {
            Divergence::new(OracleId::JobsCache, format!("{label} analysis failed: {e}"))
        })?;
        if report != ref_report {
            return Err(Divergence::new(
                OracleId::JobsCache,
                first_diff(&format!("report ({label})"), &ref_report, &report),
            ));
        }
        let (events, det) = trace.expect("trace requested");
        validate_trace(&trace_json(&events))
            .map_err(|e| Divergence::new(OracleId::Trace, format!("{label} trace invalid: {e}")))?;
        if det != ref_det {
            return Err(Divergence::new(
                OracleId::JobsCache,
                first_diff(&format!("deterministic trace ({label})"), &ref_det, &det),
            ));
        }
    }

    // 6. Cross-core: legacy must agree with CDCL (possibly poisoned).
    match analyze_variant(
        case,
        1,
        true,
        SearchCore::Legacy,
        cfg.poison_legacy.clone(),
        false,
    ) {
        Ok((_, report, _)) => {
            if report != ref_report {
                return Err(Divergence::new(
                    OracleId::CrossCore,
                    first_diff("report (legacy vs cdcl)", &ref_report, &report),
                ));
            }
        }
        Err(e) => {
            return Err(Divergence::new(
                OracleId::CrossCore,
                format!("legacy analysis failed where cdcl succeeded: {e}"),
            ));
        }
    }

    // 7. Concrete footprints must not contradict `Shared`.
    check_footprints(prog, &base, &analysis).map_err(|e| Divergence::new(OracleId::Brute, e))?;

    // 8. Execution: primal + three adjoint disciplines, bitwise across
    //    backends and thread counts.
    let atomic = tool
        .adjoint_with(prog, ParallelTreatment::Uniform(IncMode::Atomic))
        .map_err(|e| Divergence::new(OracleId::Pipeline, format!("atomic adjoint: {e}")))?;
    let reduction = tool
        .adjoint_with(prog, ParallelTreatment::Uniform(IncMode::Reduction))
        .map_err(|e| Divergence::new(OracleId::Pipeline, format!("reduction adjoint: {e}")))?;
    let versions: Vec<(&str, &Program)> = vec![
        ("primal", prog),
        ("adj-formad", &diff.adjoint),
        ("adj-atomic", &atomic),
        ("adj-reduction", &reduction),
    ];
    let ref_threads = *cfg.threads.first().unwrap_or(&1);
    // Guarded adjoints (atomic/reduction increments) are only bitwise
    // deterministic at a *fixed* thread count — accumulation order moves
    // with the schedule. The primal of a race-free generated program is
    // schedule-independent, unless it carries a scalar reduction (whose
    // combine tree also depends on the partition). So: backends are
    // compared at every thread count; thread counts are compared against
    // each other only for reduction-free primals.
    let has_reductions = {
        let mut found = false;
        for s in &prog.body {
            s.walk(&mut |st| {
                if let formad_ir::Stmt::For(l) = st {
                    if let Some(p) = &l.parallel {
                        found |= !p.reductions.is_empty();
                    }
                }
            });
        }
        found
    };
    for (label, vprog) in &versions {
        let bind = if *label == "primal" {
            base.clone()
        } else {
            adjoint_bindings(vprog, &base, case)
        };
        let lp = lower(vprog, &bind).map_err(|e| {
            Divergence::new(OracleId::Pipeline, format!("{label}: lower failed: {e}"))
        })?;
        let bc = compile(&lp, vprog).map_err(|e| {
            Divergence::new(OracleId::Pipeline, format!("{label}: compile failed: {e}"))
        })?;
        let kernel = if cfg.check_aot && !bc.regions.is_empty() {
            summary.aot_checked = true;
            Some(load_or_compile(&lp, &bc).map_err(|e| {
                Divergence::new(
                    OracleId::ExecBitwise,
                    format!("{label}: aot build failed: {e}"),
                )
            })?)
        } else {
            None
        };
        let mut primal_ref: Option<Bindings> = None;
        for &t in &cfg.threads {
            let mut sim = bind.clone();
            run(vprog, &mut sim, &Machine::with_threads(t)).map_err(|e| {
                Divergence::new(
                    OracleId::Pipeline,
                    format!("{label}: sim run (T={t}) failed: {e}"),
                )
            })?;
            if *label == "primal" && !has_reductions {
                match &primal_ref {
                    None => primal_ref = Some(sim.clone()),
                    Some(r) => {
                        if let Some(d) = bitwise_diff(r, &sim) {
                            return Err(Divergence::new(
                                OracleId::ExecBitwise,
                                format!("{label}: sim T={ref_threads} vs sim T={t}: {d}"),
                            ));
                        }
                    }
                }
            }
            let mut byt = bind.clone();
            engines.get(t).run(&bc, &mut byt).map_err(|e| {
                Divergence::new(
                    OracleId::Pipeline,
                    format!("{label}: bytecode run (T={t}) failed: {e}"),
                )
            })?;
            if let Some(d) = bitwise_diff(&sim, &byt) {
                return Err(Divergence::new(
                    OracleId::ExecBitwise,
                    format!("{label}: sim vs bytecode T={t}: {d}"),
                ));
            }
            if let Some(kernel) = &kernel {
                let mut aot = bind.clone();
                engines
                    .get(t)
                    .run_with(&bc, Some(kernel), &mut aot)
                    .map_err(|e| {
                        Divergence::new(
                            OracleId::Pipeline,
                            format!("{label}: aot run (T={t}) failed: {e}"),
                        )
                    })?;
                if let Some(d) = bitwise_diff(&sim, &aot) {
                    return Err(Divergence::new(
                        OracleId::ExecBitwise,
                        format!("{label}: sim vs aot T={t}: {d}"),
                    ));
                }
            }
        }
    }

    // 9. Adjoint-vs-FD dot-product test on the FormAD adjoint.
    let indeps: Vec<(String, Vec<f64>)> = case
        .wrt
        .iter()
        .filter_map(|name| {
            base.get_real_array(name).map(|arr| {
                let dir = fill_real(&format!("{name}.dir"), case.fill_seed ^ 0x5eed, arr.len());
                (name.clone(), dir)
            })
        })
        .collect();
    let deps: Vec<(String, Vec<f64>)> = case
        .of
        .iter()
        .filter_map(|name| {
            base.get_real_array(name)
                .map(|arr| (name.clone(), vec![1.0; arr.len()]))
        })
        .collect();
    let indep_refs: Vec<(&str, Vec<f64>)> = indeps
        .iter()
        .map(|(n, v)| (n.as_str(), v.clone()))
        .collect();
    let dep_refs: Vec<(&str, Vec<f64>)> =
        deps.iter().map(|(n, v)| (n.as_str(), v.clone())).collect();
    let dot = dot_product_test(
        prog,
        &diff.adjoint,
        &base,
        &indep_refs,
        &dep_refs,
        &Machine::with_threads(1),
        cfg.fd_h,
        "b",
    )
    .map_err(|e| Divergence::new(OracleId::Fd, format!("dot-product run failed: {e}")))?;
    if !dot.passes(cfg.fd_tol) {
        return Err(Divergence::new(
            OracleId::Fd,
            format!(
                "dot-product mismatch: fd {} vs adjoint {} (rel {})",
                dot.fd_value, dot.adjoint_value, dot.rel_error
            ),
        ));
    }

    Ok(summary)
}
