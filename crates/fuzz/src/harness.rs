//! The fuzz campaign driver behind `formad fuzz`.
//!
//! Deterministic by construction: the per-case RNG is derived from the
//! master seed and the case index alone, the oracle checks compare only
//! wall-clock-free artifacts, and every output line is reproducible —
//! two runs with the same seed and flags produce byte-identical output.

use std::path::PathBuf;

use proptest::test_runner::TestRng;

use crate::grammar::{generate_case, FuzzCase, GenConfig};
use crate::oracle::{run_case, Divergence, EngineCache, OracleConfig};
use crate::repro::Reproducer;
use crate::shrink::shrink_case;

/// Campaign configuration (`formad fuzz` flags map 1:1 onto this).
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Master seed; every case derives its RNG from `(seed, id)`.
    pub seed: u64,
    /// Number of cases to generate and check.
    pub cases: u64,
    /// Program-shape knobs.
    pub gen: GenConfig,
    /// Oracle knobs (threads, jobs, FD tolerances, poison hook).
    pub oracle: OracleConfig,
    /// Directory for reproducer files (`None` = don't write).
    pub corpus: Option<PathBuf>,
    /// Max oracle evaluations the shrinker may spend per divergence
    /// (0 disables shrinking).
    pub shrink_budget: usize,
    /// Check the AOT backend on every k-th case (0 = never; each check
    /// costs one `rustc` invocation per program version).
    pub aot_every: u64,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 42,
            cases: 100,
            gen: GenConfig::default(),
            oracle: OracleConfig::default(),
            corpus: None,
            shrink_budget: 256,
            aot_every: 0,
        }
    }
}

/// Campaign result: deterministic output lines plus every divergence.
#[derive(Debug, Default)]
pub struct FuzzOutcome {
    /// One line per case plus a trailing summary — byte-identical across
    /// runs with the same seed and flags.
    pub lines: Vec<String>,
    /// `(case id, divergence)` for every failed case.
    pub divergences: Vec<(u64, Divergence)>,
    /// Reproducer files written to the corpus directory.
    pub corpus_files: Vec<PathBuf>,
    /// Totals across all clean cases.
    pub regions: usize,
    pub shared: usize,
    pub guarded: usize,
}

/// Derive the RNG for one case: seed-splitting keeps cases independent,
/// so `--cases 10` and `--cases 200` agree on the first ten programs.
pub fn case_rng(seed: u64, id: u64) -> TestRng {
    TestRng::from_seed(seed ^ (id + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Generate case `id` of a campaign (used by `formad fuzz --emit`-style
/// debugging and the property-test strategies).
pub fn campaign_case(seed: u64, id: u64, gen: &GenConfig) -> FuzzCase {
    let mut rng = case_rng(seed, id);
    generate_case(id, seed, gen, &mut rng)
}

/// Run a fuzz campaign. The only side effect is writing reproducer
/// files when `cfg.corpus` is set; all reporting goes through the
/// returned [`FuzzOutcome`].
pub fn run_fuzz(cfg: &FuzzConfig) -> Result<FuzzOutcome, String> {
    let mut out = FuzzOutcome::default();
    let mut engines = EngineCache::new();
    if let Some(dir) = &cfg.corpus {
        std::fs::create_dir_all(dir).map_err(|e| format!("corpus {}: {e}", dir.display()))?;
    }
    for id in 0..cfg.cases {
        let case = campaign_case(cfg.seed, id, &cfg.gen);
        let mut oracle = cfg.oracle.clone();
        oracle.check_aot = cfg.oracle.check_aot || (cfg.aot_every != 0 && id % cfg.aot_every == 0);
        match run_case(&case, &oracle, &mut engines) {
            Ok(s) => {
                out.regions += s.regions;
                out.shared += s.shared;
                out.guarded += s.guarded;
                let aot = if s.aot_checked { " [aot]" } else { "" };
                out.lines.push(format!(
                    "case {id:04}: regions={} shared={} guarded={} ok{aot}",
                    s.regions, s.shared, s.guarded
                ));
            }
            Err(d) => {
                let (min_case, evals) = if cfg.shrink_budget > 0 {
                    shrink_case(&case, d.oracle, &oracle, &mut engines, cfg.shrink_budget)
                } else {
                    (case.clone(), 0)
                };
                let repro = Reproducer {
                    case: min_case,
                    oracle: d.oracle,
                    detail: d.detail.lines().next().unwrap_or("").to_string(),
                    config: oracle,
                };
                let mut where_to = String::new();
                if let Some(dir) = &cfg.corpus {
                    let path = dir.join(repro.file_name());
                    std::fs::write(&path, repro.render())
                        .map_err(|e| format!("write {}: {e}", path.display()))?;
                    where_to = format!(" -> {}", repro.file_name());
                    out.corpus_files.push(path);
                }
                out.lines.push(format!(
                    "case {id:04}: DIVERGENCE [{}] {} (shrunk to {} bytes in {evals} evals){where_to}",
                    d.oracle,
                    repro.detail,
                    repro.case.source().len()
                ));
                out.divergences.push((id, d));
            }
        }
    }
    out.lines.push(format!(
        "fuzz: {} cases, {} divergences, {} regions ({} shared / {} guarded decisions), seed {}",
        cfg.cases,
        out.divergences.len(),
        out.regions,
        out.shared,
        out.guarded,
        cfg.seed
    ));
    Ok(out)
}
