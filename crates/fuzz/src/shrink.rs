//! Delta-debugging minimizer for diverging cases.
//!
//! Classic greedy ddmin over the program AST: propose one-edit
//! simplifications (drop a statement, splice a branch, shrink an
//! expression, halve `n`), keep an edit only if the *same oracle* still
//! diverges, and iterate to a fixpoint under an evaluation budget.
//! After every structural edit the case is renormalized — `shared`/
//! `private`/`reduction` clauses, parameter and local declarations,
//! `wrt`/`of` lists and `--set` bindings are pruned to what the body
//! still references — so every candidate stays well-typed.

use std::collections::HashSet;

use formad_ir::{validate, Expr, ForLoop, LValue, Stmt};

use crate::grammar::FuzzCase;
use crate::oracle::{run_case, EngineCache, OracleConfig, OracleId};

/// Minimize `case` while `oracle` keeps diverging. Returns the smallest
/// reproducing case found and the number of oracle evaluations spent.
pub fn shrink_case(
    case: &FuzzCase,
    oracle: OracleId,
    cfg: &OracleConfig,
    engines: &mut EngineCache,
    budget: usize,
) -> (FuzzCase, usize) {
    let mut best = case.clone();
    let mut evals = 0usize;
    loop {
        let mut improved = false;
        for cand in candidates(&best) {
            if evals >= budget {
                return (best, evals);
            }
            let Some(cand) = cleanup(cand) else { continue };
            if size(&cand) >= size(&best) {
                continue;
            }
            evals += 1;
            if reproduces(&cand, oracle, cfg, engines) {
                best = cand;
                improved = true;
                break;
            }
        }
        if !improved {
            return (best, evals);
        }
    }
}

fn reproduces(
    case: &FuzzCase,
    oracle: OracleId,
    cfg: &OracleConfig,
    engines: &mut EngineCache,
) -> bool {
    matches!(run_case(case, cfg, engines), Err(d) if d.oracle == oracle)
}

fn size(case: &FuzzCase) -> usize {
    case.source().len()
}

/// All one-edit simplification candidates of `case`, deterministic order.
fn candidates(case: &FuzzCase) -> Vec<FuzzCase> {
    let mut out = Vec::new();
    for body in stmts_variants(&case.program.body) {
        let mut c = case.clone();
        c.program.body = body;
        out.push(c);
    }
    // Halve the problem size.
    if let Some((_, v)) = case.sets.iter().find(|(k, _)| k == "n") {
        if let Ok(n) = v.parse::<i64>() {
            if n > 4 {
                let mut c = case.clone();
                for (k, v) in &mut c.sets {
                    if k == "n" {
                        *v = (n / 2).max(4).to_string();
                    }
                }
                out.push(c);
            }
        }
    }
    out
}

/// One-edit variants of a statement list: drop any statement, or apply
/// one [`stmt_variants`] edit in place (splices allowed).
fn stmts_variants(stmts: &[Stmt]) -> Vec<Vec<Stmt>> {
    let mut out = Vec::new();
    for k in 0..stmts.len() {
        let mut dropped = stmts.to_vec();
        dropped.remove(k);
        out.push(dropped);
        for repl in stmt_variants(&stmts[k]) {
            let mut edited = stmts.to_vec();
            edited.splice(k..=k, repl);
            out.push(edited);
        }
    }
    out
}

/// One-edit variants of a single statement, each a replacement splice.
fn stmt_variants(s: &Stmt) -> Vec<Vec<Stmt>> {
    match s {
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            let mut out = vec![then_body.clone()];
            if !else_body.is_empty() {
                out.push(else_body.clone());
                out.push(vec![Stmt::If {
                    cond: cond.clone(),
                    then_body: then_body.clone(),
                    else_body: Vec::new(),
                }]);
            }
            out
        }
        Stmt::For(l) => stmts_variants(&l.body)
            .into_iter()
            .map(|body| {
                vec![Stmt::For(Box::new(ForLoop {
                    body,
                    ..(**l).clone()
                }))]
            })
            .collect(),
        Stmt::Assign { lhs, rhs } => {
            let mut out: Vec<Vec<Stmt>> = subexprs(rhs)
                .into_iter()
                .map(|e| {
                    vec![Stmt::Assign {
                        lhs: lhs.clone(),
                        rhs: e,
                    }]
                })
                .collect();
            if !matches!(rhs, Expr::RealLit(_)) {
                out.push(vec![Stmt::Assign {
                    lhs: lhs.clone(),
                    rhs: Expr::real(1.0),
                }]);
            }
            out
        }
        _ => Vec::new(),
    }
}

/// Direct real-valued subexpressions usable as a simpler right-hand side.
fn subexprs(e: &Expr) -> Vec<Expr> {
    match e {
        Expr::Binary { lhs, rhs, .. } => vec![(**lhs).clone(), (**rhs).clone()],
        Expr::Unary { arg, .. } => vec![(**arg).clone()],
        Expr::Call { args, .. } => args.clone(),
        _ => Vec::new(),
    }
}

/// Names referenced (as scalar or array) anywhere in `stmts`.
fn referenced(stmts: &[Stmt]) -> HashSet<String> {
    fn grab_expr(names: &mut HashSet<String>, e: &Expr) {
        e.walk(&mut |x| match x {
            Expr::Var(n) => {
                names.insert(n.clone());
            }
            Expr::Index { array, .. } => {
                names.insert(array.clone());
            }
            _ => {}
        });
    }
    let mut names = HashSet::new();
    for s in stmts {
        s.walk(&mut |st| match st {
            Stmt::Assign { lhs, rhs } => {
                match lhs {
                    LValue::Var(n) => {
                        names.insert(n.clone());
                    }
                    LValue::Index { array, indices } => {
                        names.insert(array.clone());
                        for ix in indices {
                            grab_expr(&mut names, ix);
                        }
                    }
                }
                grab_expr(&mut names, rhs);
            }
            Stmt::If { cond, .. } => {
                cond.walk_exprs(&mut |e| grab_expr(&mut names, e));
            }
            Stmt::For(l) => {
                names.insert(l.var.clone());
                grab_expr(&mut names, &l.lo);
                grab_expr(&mut names, &l.hi);
                grab_expr(&mut names, &l.step);
            }
            _ => {}
        });
    }
    names
}

/// Renormalize a candidate after edits: prune parallel clauses, unused
/// declarations, `wrt`/`of`, and `sets` to what the body references.
/// Returns `None` when the candidate can no longer be differentiated
/// (empty `wrt`/`of`) or fails validation.
fn cleanup(mut case: FuzzCase) -> Option<FuzzCase> {
    // Per-region clause pruning.
    for s in &mut case.program.body {
        if let Stmt::For(l) = s {
            if let Some(info) = &mut l.parallel {
                let used = referenced(&l.body);
                info.shared.retain(|n| used.contains(n));
                info.private.retain(|n| used.contains(n));
                info.reductions.retain(|(_, n)| used.contains(n));
            }
        }
    }
    let used = referenced(&case.program.body);
    // `n` stays: loop bounds and array extents are expressed in it.
    let keep = |name: &str| name == "n" || used.contains(name);
    case.program.params.retain(|d| keep(&d.name));
    case.program.locals.retain(|d| keep(&d.name));
    let params: HashSet<String> = case.program.params.iter().map(|d| d.name.clone()).collect();
    case.wrt.retain(|n| params.contains(n));
    case.of.retain(|n| params.contains(n));
    case.sets.retain(|(k, _)| params.contains(k));
    if case.wrt.is_empty() || case.of.is_empty() {
        return None;
    }
    if !validate(&case.program).is_empty() {
        return None;
    }
    Some(case)
}
