//! Concrete brute-force race oracle for region verdicts.
//!
//! The SMT layer *proves* (or fails to prove) that the adjoint of a
//! parallel region is race-free under plain increments. This module
//! checks the cheap direction of that claim concretely: replay every
//! iteration of every parallel region under the actual driver bindings,
//! collect the **adjoint footprint** each iteration would touch, and
//! verify that a `Shared` verdict really has no cross-iteration
//! conflict. (The converse — `Guarded` despite no concrete conflict —
//! is *not* flagged: incompleteness is allowed, and a conflict can be
//! data-dependent.)
//!
//! Adjoint footprint of a primal statement (paper §5):
//!
//! - exact increment `y(w) = y(w) + e` → **read** of `ȳ(w)` only
//!   (§5.4: increments commute, the adjoint seeds from `ȳ(w)` without
//!   modifying it);
//! - plain write `y(w) = e` → **write** of `ȳ(w)` (it is read and then
//!   zeroed);
//! - every read `x(r)` of a real array inside the assigned expression →
//!   **write** of `x̄(r)` (the adjoint scatters an increment into it).
//!
//! A conflict is a location written by one iteration and touched (read
//! or written) by a different one. Iterations are replayed in ascending
//! order with full state updates, so later regions see earlier regions'
//! results exactly as the executors do.

use std::collections::HashMap;

use formad::{Decision, FormadAnalysis};
use formad_ir::{BinOp, BoolExpr, CmpOp, Expr, Intrinsic, Program, Stmt, Ty, UnOp};
use formad_machine::Bindings;

/// One adjoint access: array, element (1-based), and whether the
/// adjoint location is written (true) or only read (false).
type Access = (String, i64, bool);

#[derive(Debug, Clone, Copy, PartialEq)]
enum V {
    I(i64),
    R(f64),
}

impl V {
    fn as_i(self) -> Result<i64, String> {
        match self {
            V::I(v) => Ok(v),
            V::R(v) => Err(format!("expected integer, got real {v}")),
        }
    }

    fn as_r(self) -> f64 {
        match self {
            V::I(v) => v as f64,
            V::R(v) => v,
        }
    }
}

struct State {
    ints: HashMap<String, i64>,
    reals: HashMap<String, f64>,
    int_arrays: HashMap<String, Vec<i64>>,
    real_arrays: HashMap<String, Vec<f64>>,
}

impl State {
    fn from_bindings(prog: &Program, bind: &Bindings) -> State {
        let mut st = State {
            ints: bind.int_scalars.clone(),
            reals: bind.real_scalars.clone(),
            int_arrays: bind.int_arrays.clone(),
            real_arrays: bind.real_arrays.clone(),
        };
        // Locals are zero-initialized, like the interpreter.
        for d in &prog.locals {
            if d.dims.is_empty() {
                match d.ty {
                    Ty::Int => {
                        st.ints.entry(d.name.clone()).or_insert(0);
                    }
                    Ty::Real => {
                        st.reals.entry(d.name.clone()).or_insert(0.0);
                    }
                }
            }
        }
        st
    }

    fn is_real_array(&self, name: &str) -> bool {
        self.real_arrays.contains_key(name)
    }

    fn index(&self, array: &str, indices: &[Expr]) -> Result<i64, String> {
        if indices.len() != 1 {
            return Err(format!(
                "footprint oracle handles 1-D arrays only (`{array}`)"
            ));
        }
        self.eval(&indices[0])?.as_i()
    }

    fn eval(&self, e: &Expr) -> Result<V, String> {
        Ok(match e {
            Expr::IntLit(v) => V::I(*v),
            Expr::RealLit(v) => V::R(*v),
            Expr::Var(n) => {
                if let Some(v) = self.ints.get(n) {
                    V::I(*v)
                } else if let Some(v) = self.reals.get(n) {
                    V::R(*v)
                } else {
                    return Err(format!("unbound scalar `{n}`"));
                }
            }
            Expr::Index { array, indices } => {
                let k = self.index(array, indices)?;
                if let Some(arr) = self.int_arrays.get(array) {
                    V::I(
                        *arr.get((k - 1) as usize)
                            .ok_or_else(|| format!("index {k} out of bounds for `{array}`"))?,
                    )
                } else if let Some(arr) = self.real_arrays.get(array) {
                    V::R(
                        *arr.get((k - 1) as usize)
                            .ok_or_else(|| format!("index {k} out of bounds for `{array}`"))?,
                    )
                } else {
                    return Err(format!("unbound array `{array}`"));
                }
            }
            Expr::Unary { op, arg } => {
                let v = self.eval(arg)?;
                match (op, v) {
                    (UnOp::Neg, V::I(a)) => V::I(-a),
                    (UnOp::Neg, V::R(a)) => V::R(-a),
                }
            }
            Expr::Binary { op, lhs, rhs } => {
                let a = self.eval(lhs)?;
                let b = self.eval(rhs)?;
                if let (V::I(x), V::I(y)) = (a, b) {
                    match op {
                        BinOp::Add => V::I(x.wrapping_add(y)),
                        BinOp::Sub => V::I(x.wrapping_sub(y)),
                        BinOp::Mul => V::I(x.wrapping_mul(y)),
                        BinOp::Div => V::I(x.checked_div(y).ok_or("integer division by zero")?),
                        BinOp::Mod => V::I(x.checked_rem(y).ok_or("mod by zero")?),
                        BinOp::Pow => {
                            V::I(x.pow(u32::try_from(y).map_err(|_| "negative int power")?))
                        }
                    }
                } else {
                    let (x, y) = (a.as_r(), b.as_r());
                    match op {
                        BinOp::Add => V::R(x + y),
                        BinOp::Sub => V::R(x - y),
                        BinOp::Mul => V::R(x * y),
                        BinOp::Div => V::R(x / y),
                        BinOp::Mod => V::R(x % y),
                        BinOp::Pow => V::R(x.powf(y)),
                    }
                }
            }
            Expr::Call { func, args } => {
                let v: Vec<f64> = args
                    .iter()
                    .map(|a| self.eval(a).map(V::as_r))
                    .collect::<Result<_, _>>()?;
                let r = match func {
                    Intrinsic::Sin => v[0].sin(),
                    Intrinsic::Cos => v[0].cos(),
                    Intrinsic::Exp => v[0].exp(),
                    Intrinsic::Log => v[0].ln(),
                    Intrinsic::Sqrt => v[0].sqrt(),
                    Intrinsic::Abs => v[0].abs(),
                    Intrinsic::Tanh => v[0].tanh(),
                    Intrinsic::Min => v[0].min(v[1]),
                    Intrinsic::Max => v[0].max(v[1]),
                };
                V::R(r)
            }
        })
    }

    fn eval_bool(&self, b: &BoolExpr) -> Result<bool, String> {
        Ok(match b {
            BoolExpr::Cmp { op, lhs, rhs } => {
                let a = self.eval(lhs)?;
                let c = self.eval(rhs)?;
                let (x, y) = match (a, c) {
                    (V::I(x), V::I(y)) => (x as f64, y as f64),
                    _ => (a.as_r(), c.as_r()),
                };
                match op {
                    CmpOp::Eq => x == y,
                    CmpOp::Ne => x != y,
                    CmpOp::Lt => x < y,
                    CmpOp::Le => x <= y,
                    CmpOp::Gt => x > y,
                    CmpOp::Ge => x >= y,
                }
            }
            BoolExpr::And(a, b) => self.eval_bool(a)? && self.eval_bool(b)?,
            BoolExpr::Or(a, b) => self.eval_bool(a)? || self.eval_bool(b)?,
            BoolExpr::Not(a) => !self.eval_bool(a)?,
        })
    }

    /// Record the adjoint writes induced by the real-array reads of `e`.
    fn record_reads(&self, e: &Expr, rec: &mut Vec<Access>) -> Result<(), String> {
        match e {
            Expr::Index { array, indices } if self.is_real_array(array) => {
                let k = self.index(array, indices)?;
                rec.push((array.clone(), k, true));
                Ok(())
            }
            Expr::Index { indices, .. } => {
                for ix in indices {
                    self.record_reads(ix, rec)?;
                }
                Ok(())
            }
            Expr::Unary { arg, .. } => self.record_reads(arg, rec),
            Expr::Binary { lhs, rhs, .. } => {
                self.record_reads(lhs, rec)?;
                self.record_reads(rhs, rec)
            }
            Expr::Call { args, .. } => {
                for a in args {
                    self.record_reads(a, rec)?;
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }

    /// Execute one statement concretely, appending the adjoint accesses
    /// it induces (only meaningful inside a parallel region body).
    fn exec(&mut self, s: &Stmt, rec: &mut Vec<Access>) -> Result<(), String> {
        match s {
            Stmt::Assign { lhs, rhs } => {
                match lhs {
                    formad_ir::LValue::Index { array, indices } if self.is_real_array(array) => {
                        let k = self.index(array, indices)?;
                        // Adjoint footprint of the assignment itself.
                        if let Some((_, added)) = s.as_increment() {
                            rec.push((array.clone(), k, false));
                            self.record_reads(&added, rec)?;
                        } else {
                            rec.push((array.clone(), k, true));
                            self.record_reads(rhs, rec)?;
                        }
                        // Primal state update.
                        let v = self.eval(rhs)?.as_r();
                        let arr = self.real_arrays.get_mut(array).unwrap();
                        let slot = arr
                            .get_mut((k - 1) as usize)
                            .ok_or_else(|| format!("index {k} out of bounds for `{array}`"))?;
                        *slot = v;
                    }
                    formad_ir::LValue::Index { array, indices } => {
                        let k = self.index(array, indices)?;
                        let v = self.eval(rhs)?.as_i()?;
                        let arr = self
                            .int_arrays
                            .get_mut(array)
                            .ok_or_else(|| format!("unbound array `{array}`"))?;
                        let slot = arr
                            .get_mut((k - 1) as usize)
                            .ok_or_else(|| format!("index {k} out of bounds for `{array}`"))?;
                        *slot = v;
                    }
                    formad_ir::LValue::Var(name) => {
                        // Scalar adjoints are handled by reduction/
                        // privatization clauses, not the region verdict;
                        // only the data reads feed array adjoints.
                        self.record_reads(rhs, rec)?;
                        let v = self.eval(rhs)?;
                        if self.ints.contains_key(name) {
                            self.ints.insert(name.clone(), v.as_i()?);
                        } else {
                            self.reals.insert(name.clone(), v.as_r());
                        }
                    }
                }
                Ok(())
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let taken = if self.eval_bool(cond)? {
                    then_body
                } else {
                    else_body
                };
                for t in taken {
                    self.exec(t, rec)?;
                }
                Ok(())
            }
            Stmt::For(l) => {
                let lo = self.eval(&l.lo)?.as_i()?;
                let hi = self.eval(&l.hi)?.as_i()?;
                let step = self.eval(&l.step)?.as_i()?;
                if step == 0 {
                    return Err("zero loop step".into());
                }
                let mut v = lo;
                while (step > 0 && v <= hi) || (step < 0 && v >= hi) {
                    self.ints.insert(l.var.clone(), v);
                    for t in &l.body {
                        self.exec(t, rec)?;
                    }
                    v += step;
                }
                Ok(())
            }
            // Tape statements never appear in source programs.
            _ => Err("tape statement in primal".into()),
        }
    }
}

/// Check every `Shared` verdict of `analysis` against the concrete
/// adjoint footprints of `prog` under `bind`. Returns a description of
/// the first unsound verdict found, if any.
pub fn check_footprints(
    prog: &Program,
    bind: &Bindings,
    analysis: &FormadAnalysis,
) -> Result<(), String> {
    let mut st = State::from_bindings(prog, bind);
    let mut region_idx = 0usize;
    for s in &prog.body {
        check_stmt(s, &mut st, analysis, &mut region_idx)?;
    }
    Ok(())
}

fn check_stmt(
    s: &Stmt,
    st: &mut State,
    analysis: &FormadAnalysis,
    region_idx: &mut usize,
) -> Result<(), String> {
    let Stmt::For(l) = s else {
        let mut sink = Vec::new();
        return st.exec(s, &mut sink);
    };
    if l.parallel.is_none() {
        let mut sink = Vec::new();
        return st.exec(s, &mut sink);
    }
    // A parallel region: replay each iteration, collecting footprints.
    let k = *region_idx;
    *region_idx += 1;
    let lo = st.eval(&l.lo)?.as_i()?;
    let hi = st.eval(&l.hi)?.as_i()?;
    let step = st.eval(&l.step)?.as_i()?;
    if step == 0 {
        return Err("zero loop step".into());
    }
    // (array, loc) → (iterations that write, iterations that touch).
    let mut writers: HashMap<(String, i64), Vec<i64>> = HashMap::new();
    let mut touchers: HashMap<(String, i64), Vec<i64>> = HashMap::new();
    let mut v = lo;
    while (step > 0 && v <= hi) || (step < 0 && v >= hi) {
        st.ints.insert(l.var.clone(), v);
        let mut rec = Vec::new();
        for t in &l.body {
            st.exec(t, &mut rec)?;
        }
        for (arr, loc, write) in rec {
            let key = (arr, loc);
            if write {
                writers.entry(key.clone()).or_default().push(v);
            }
            touchers.entry(key).or_default().push(v);
        }
        v += step;
    }
    let Some(region) = analysis.regions.get(k) else {
        return Err(format!("analysis has no region {k}"));
    };
    for (arr, decision) in &region.decisions {
        if !matches!(decision, Decision::Shared) {
            continue;
        }
        for ((a, loc), ws) in &writers {
            if a != arr {
                continue;
            }
            let all = &touchers[&(a.clone(), *loc)];
            let conflict = ws.iter().any(|w| all.iter().any(|t| t != w))
                || ws.windows(2).any(|p| p[0] != p[1]);
            if conflict {
                let other = all
                    .iter()
                    .chain(ws.iter())
                    .find(|t| **t != ws[0])
                    .copied()
                    .unwrap_or(ws[0]);
                return Err(format!(
                    "region {k}: `{arr}` decided Shared, but adjoint location \
                     {a}({loc}) is written by iteration {} and touched by \
                     iteration {other}",
                    ws[0]
                ));
            }
        }
    }
    Ok(())
}
