//! The paper's qualitative results, §7: which benchmarks FormAD proves
//! safe (no atomics in the adjoint) and which it correctly rejects.

use formad::{Decision, Formad, FormadOptions};
use formad_ir::parse_program;

fn analyze(src: &str, indep: &[&str], dep: &[&str]) -> formad::FormadAnalysis {
    let p = parse_program(src).unwrap();
    Formad::new(FormadOptions::new(indep, dep))
        .analyze(&p)
        .unwrap()
}

fn decision<'a>(a: &'a formad::FormadAnalysis, region: usize, arr: &str) -> &'a Decision {
    a.regions[region]
        .decisions
        .get(arr)
        .unwrap_or_else(|| panic!("no decision for {arr} in region {region}"))
}

/// §7.1: compact stencil, stride-2 loops, increments only — FormAD proves
/// the adjoint free of conflicts.
const STENCIL: &str = r#"
subroutine stencil(n, wl, wc, wr, uold, unew)
  integer, intent(in) :: n
  real, intent(in) :: wl, wc, wr
  real, intent(in) :: uold(n)
  real, intent(inout) :: unew(n)
  integer :: i, offset, from
  do offset = 0, 1
    from = 2 * 1 + offset
    !$omp parallel do shared(unew, uold)
    do i = from, n - 2, 2
      unew(i) = unew(i) + wl * uold(i - 1)
      unew(i) = unew(i) + wc * uold(i)
      unew(i - 1) = unew(i - 1) + wr * uold(i)
    end do
  end do
end subroutine
"#;

#[test]
fn stencil_proved_safe() {
    let a = analyze(STENCIL, &["uold"], &["unew"]);
    // One parallel loop in the source (the outer `offset` loop re-enters
    // it at run time).
    assert_eq!(a.regions.len(), 1);
    assert_eq!(decision(&a, 0, "uold"), &Decision::Shared);
    assert_eq!(decision(&a, 0, "unew"), &Decision::Shared);
    assert!(a.all_safe());
    // Table 1, stencil 1: 2 unique index expressions, model size 5.
    assert_eq!(a.regions[0].unique_exprs, 2);
    assert_eq!(a.regions[0].model_size, 5);
}

/// Figure 2: indirect write through a gather array.
#[test]
fn fig2_indirect_proved_safe() {
    let a = analyze(
        r#"
subroutine fig2(n, x, y, c)
  integer, intent(in) :: n
  real, intent(in) :: x(n)
  real, intent(inout) :: y(n)
  integer, intent(in) :: c(n)
  integer :: i
  !$omp parallel do shared(x, y, c)
  do i = 1, n
    y(c(i)) = x(c(i) + 7)
  end do
end subroutine
"#,
        &["x"],
        &["y"],
    );
    assert_eq!(decision(&a, 0, "x"), &Decision::Shared);
    assert_eq!(decision(&a, 0, "y"), &Decision::Shared);
}

/// §7.2 GFMC, split version: the spin-exchange loop's gathers match its
/// writes, so the adjoint increments to `cr` are proven safe.
const GFMC_SPLIT: &str = r#"
subroutine gfmc(ns, np, mss, xee, xmm, cr, cl)
  integer, intent(in) :: ns, np
  integer, intent(in) :: mss(4, np)
  real, intent(in) :: xee, xmm
  real, intent(inout) :: cr(ns, ns)
  real, intent(inout) :: cl(ns, ns)
  integer :: k12, j, idd, iud, idu, iuu
  !$omp parallel do shared(cl, cr, mss) private(j, idd, iud, idu, iuu)
  do k12 = 1, np
    idd = mss(1, k12)
    iud = mss(2, k12)
    idu = mss(3, k12)
    iuu = mss(4, k12)
    do j = 1, ns
      cl(idd, j) = xee * cr(idd, j) + xmm * cr(iuu, j)
      cl(iuu, j) = xee * cr(iuu, j) + xmm * cr(idd, j)
      cl(iud, j) = xmm * cr(iud, j) + xee * cr(idu, j)
      cl(idu, j) = xmm * cr(idu, j) + xee * cr(iud, j)
    end do
  end do
end subroutine
"#;

#[test]
fn gfmc_split_proved_safe() {
    let a = analyze(GFMC_SPLIT, &["cr"], &["cl"]);
    assert_eq!(decision(&a, 0, "cr"), &Decision::Shared);
    assert_eq!(decision(&a, 0, "cl"), &Decision::Shared);
}

/// §7.2 GFMC*, fused version: an extra gather (`msx`) reads `cr` at
/// indices not covered by any write knowledge; FormAD must refuse.
const GFMC_FUSED: &str = r#"
subroutine gfmcstar(ns, np, mss, msx, xee, cr, cl)
  integer, intent(in) :: ns, np
  integer, intent(in) :: mss(4, np)
  integer, intent(in) :: msx(np)
  real, intent(in) :: xee
  real, intent(inout) :: cr(ns, ns)
  real, intent(inout) :: cl(ns, ns)
  integer :: k12, j, idd, kk
  !$omp parallel do shared(cl, cr, mss, msx) private(j, idd, kk)
  do k12 = 1, np
    idd = mss(1, k12)
    kk = msx(k12)
    do j = 1, ns
      cl(idd, j) = xee * cr(idd, j) + xee * cr(kk, j)
    end do
  end do
end subroutine
"#;

#[test]
fn gfmc_fused_rejected() {
    let a = analyze(GFMC_FUSED, &["cr"], &["cl"]);
    // cl's adjoint (read-then-zero at write indices) stays safe…
    assert_eq!(decision(&a, 0, "cl"), &Decision::Shared);
    // …but cr's adjoint increments include the uncovered gather: guarded.
    assert!(
        matches!(decision(&a, 0, "cr"), Decision::Guarded(_)),
        "{:?}",
        decision(&a, 0, "cr")
    );
    assert!(!a.regions[0].rejected_exprs.is_empty());
}

/// §7.3 LBM: streaming offsets. The write set uses matched
/// offset/multiplier pairs; one adjoint increment (`eb + 0·ncell + i`)
/// falls outside it. FormAD correctly keeps the safeguards.
const LBM: &str = r#"
subroutine lbm(ncell, nel, src, dst)
  integer, intent(in) :: ncell, nel
  real, intent(in) :: src(nel)
  real, intent(inout) :: dst(nel)
  integer :: i, e, w, c, nb, sb, eb
  !$omp parallel do shared(src, dst) private(e, w, c, nb, sb, eb)
  do i = 1, ncell
    e = 1
    w = 2
    c = 3
    nb = 4
    sb = 5
    eb = 6
    dst(e + ncell * 1 + i) = 0.1 * src(e + ncell * 1 + i)
    dst(w + ncell * (-1) + i) = 0.1 * src(w + ncell * (-1) + i)
    dst(c + ncell * 0 + i) = 0.1 * src(c + ncell * 0 + i)
    dst(nb + ncell * (-14280) + i) = 0.1 * src(nb + ncell * (-14280) + i)
    dst(sb + ncell * (-14520) + i) = 0.1 * src(sb + ncell * (-14520) + i)
    dst(eb + ncell * (-14399) + i) = 0.1 * src(eb + ncell * 0 + i)
  end do
end subroutine
"#;

#[test]
fn lbm_rejected() {
    let a = analyze(LBM, &["src"], &["dst"]);
    // The adjoint of src is incremented at the read offsets, one of which
    // (eb + 0·ncell + i) does not match the write set — guarded.
    assert!(
        matches!(decision(&a, 0, "src"), Decision::Guarded(_)),
        "{:?}",
        decision(&a, 0, "src")
    );
    // dst is overwritten at the (disjoint) write offsets: its adjoint
    // zero-writes are provably safe.
    assert_eq!(decision(&a, 0, "dst"), &Decision::Shared);
    // Six write expressions in the knowledge model.
    assert!(a.regions[0].unique_exprs >= 6);
}

/// §7.4 Green-Gauss gradients: data-dependent node indices from a colored
/// edge loop, guarded by `if (i /= j)`. The `dv` read-read pair (which
/// becomes an adjoint increment-increment) is proven safe *through* the
/// knowledge extracted from the `grad` increments — the cross-array
/// transfer at the heart of the paper.
const GREEN_GAUSS: &str = r#"
subroutine greengauss(nc, ne, nn, color_ia, e2n, sij, dv, grad)
  integer, intent(in) :: nc, ne, nn
  integer, intent(in) :: color_ia(nc + 1)
  integer, intent(in) :: e2n(2, ne)
  real, intent(in) :: sij(ne)
  real, intent(in) :: dv(nn)
  real, intent(inout) :: grad(nn)
  integer :: ic, ie, i, j
  real :: dvface
  do ic = 1, nc
    !$omp parallel do private(ie, i, j, dvface) shared(grad, dv, sij, e2n, color_ia)
    do ie = color_ia(ic), color_ia(ic + 1) - 1
      i = e2n(1, ie)
      j = e2n(2, ie)
      if (i .ne. j) then
        dvface = 0.5 * (dv(i) + dv(j))
        grad(i) = grad(i) + dvface * sij(ie)
        grad(j) = grad(j) - dvface * sij(ie)
      end if
    end do
  end do
end subroutine
"#;

#[test]
fn green_gauss_proved_safe() {
    let a = analyze(GREEN_GAUSS, &["dv"], &["grad"]);
    assert_eq!(decision(&a, 0, "dv"), &Decision::Shared);
    assert_eq!(decision(&a, 0, "grad"), &Decision::Shared);
    // Table 1, GreenGauss: 2 unique index expressions.
    assert_eq!(a.regions[0].unique_exprs, 2);
}

/// A racy primal (same location written by all iterations) must trip the
/// buildModel satisfiability safeguard.
#[test]
fn racy_primal_detected() {
    let a = analyze(
        r#"
subroutine racy(n, x, y)
  integer, intent(in) :: n
  real, intent(in) :: x(n)
  real, intent(inout) :: y(n)
  integer :: i
  !$omp parallel do shared(x, y)
  do i = 1, n
    y(1) = x(i)
  end do
end subroutine
"#,
        &["x"],
        &["y"],
    );
    assert!(
        a.regions[0]
            .warnings
            .iter()
            .any(|w| w.contains("data race")),
        "{:?}",
        a.regions[0].warnings
    );
    assert!(matches!(decision(&a, 0, "x"), Decision::Guarded(_)));
}

/// Strided write sets that need the stride root assertions: writes to
/// even offsets, reads at odd — only the parity argument proves it.
#[test]
fn stride_parity_needed() {
    let src = r#"
subroutine parity(n, x, y)
  integer, intent(in) :: n
  real, intent(in) :: x(n)
  real, intent(inout) :: y(n)
  integer :: i
  !$omp parallel do shared(x, y)
  do i = 2, n - 1, 2
    y(i) = y(i) + x(i - 1)
    y(i + 1) = y(i + 1) + x(i)
  end do
end subroutine
"#;
    // With stride constraints: y(i) vs y(i+1) needs i' ≠ i+1 which follows
    // from parity (i, i' both even).
    let a = analyze(src, &["x"], &["y"]);
    assert_eq!(decision(&a, 0, "x"), &Decision::Shared);
    assert_eq!(decision(&a, 0, "y"), &Decision::Shared);

    // Ablation: without stride constraints the write-set knowledge still
    // contains primed(i)≠i+1 etc., so this particular case stays safe;
    // but the adjoint read pair x(i-1)/x(i) maps onto the same shapes.
    let p = parse_program(src).unwrap();
    let mut opts = FormadOptions::new(&["x"], &["y"]);
    opts.region.stride_constraints = false;
    let a2 = Formad::new(opts).analyze(&p).unwrap();
    // Knowledge covers it even without stride info (same shapes).
    assert_eq!(decision(&a2, 0, "y"), &Decision::Shared);
}

/// Mutated index arrays poison the analysis (soundness guard).
#[test]
fn mutated_index_array_guarded() {
    let a = analyze(
        r#"
subroutine mut(n, c, x, y)
  integer, intent(in) :: n
  integer, intent(inout) :: c(n)
  real, intent(in) :: x(n)
  real, intent(inout) :: y(n)
  integer :: i
  !$omp parallel do shared(c, x, y)
  do i = 1, n
    c(i) = i
    y(c(i)) = x(c(i))
  end do
end subroutine
"#,
        &["x"],
        &["y"],
    );
    assert!(matches!(decision(&a, 0, "x"), Decision::Guarded(_)));
}

/// Affine disjointness with no knowledge needed (the "classical
/// parallelizer" capability the paper mentions): y(2i) and y(2i+1).
#[test]
fn affine_disjointness_without_knowledge() {
    let a = analyze(
        r#"
subroutine aff(n, x, y)
  integer, intent(in) :: n
  real, intent(in) :: x(2 * n)
  real, intent(inout) :: y(2 * n)
  integer :: i
  !$omp parallel do shared(x, y)
  do i = 1, n
    y(2 * i) = y(2 * i) + x(2 * i)
    y(2 * i + 1) = y(2 * i + 1) + x(2 * i + 1)
  end do
end subroutine
"#,
        &["x"],
        &["y"],
    );
    assert_eq!(decision(&a, 0, "x"), &Decision::Shared);
    assert_eq!(decision(&a, 0, "y"), &Decision::Shared);
}

/// Context sensitivity: knowledge from inside a guard must not prove a
/// pair whose references only share the root context.
#[test]
fn incomparable_contexts_give_no_knowledge() {
    // Writes to w(c(i)) under pred1, reads of x at c(i) under pred2:
    // the contexts are incomparable, so x's adjoint pair cannot use the
    // disjointness of c(i) — guarded.
    let a = analyze(
        r#"
subroutine ctx(n, c, p, x, y, w)
  integer, intent(in) :: n
  integer, intent(in) :: c(n)
  integer, intent(in) :: p(n)
  real, intent(in) :: x(n)
  real, intent(inout) :: y(n)
  real, intent(inout) :: w(n)
  integer :: i
  !$omp parallel do shared(c, p, x, y, w)
  do i = 1, n
    if (p(i) .gt. 0) then
      w(c(i)) = 1.0
    else
      y(i) = y(i) + x(c(i))
    end if
  end do
end subroutine
"#,
        &["x"],
        &["y"],
    );
    // x is read at c(i) only in the else-branch; knowledge about c(i)
    // disjointness lives in the then-branch context. The xb increments at
    // c(i) must therefore stay guarded.
    assert!(
        matches!(decision(&a, 0, "x"), Decision::Guarded(_)),
        "{:?}",
        decision(&a, 0, "x")
    );

    // Ablation: pretending everything is root-context (use_contexts =
    // false places refs at root) would unsoundly accept — verify the flag
    // actually changes the outcome, demonstrating why contexts matter.
    let p = parse_program(
        r#"
subroutine ctx(n, c, p, x, y, w)
  integer, intent(in) :: n
  integer, intent(in) :: c(n)
  integer, intent(in) :: p(n)
  real, intent(in) :: x(n)
  real, intent(inout) :: y(n)
  real, intent(inout) :: w(n)
  integer :: i
  !$omp parallel do shared(c, p, x, y, w)
  do i = 1, n
    if (p(i) .gt. 0) then
      w(c(i)) = 1.0
    else
      y(i) = y(i) + x(c(i))
    end if
  end do
end subroutine
"#,
    )
    .unwrap();
    let mut opts = FormadOptions::new(&["x"], &["y"]);
    opts.region.use_contexts = false;
    let a2 = Formad::new(opts).analyze(&p).unwrap();
    assert_eq!(
        a2.regions[0].decisions.get("x"),
        Some(&Decision::Shared),
        "context-insensitive ablation should (unsoundly) accept"
    );
}

/// Increment-detection ablation (§5.4): without it, the stencil's
/// increment-only array gets read-then-zero adjoint writes, which are
/// still provable here, but the number of queries grows.
#[test]
fn increment_detection_reduces_queries() {
    let p = parse_program(STENCIL).unwrap();
    let a_with = Formad::new(FormadOptions::new(&["uold"], &["unew"]))
        .analyze(&p)
        .unwrap();
    let mut opts = FormadOptions::new(&["uold"], &["unew"]);
    opts.region.use_increment_detection = false;
    let a_without = Formad::new(opts).analyze(&p).unwrap();
    assert!(
        a_without.total_queries() > a_with.total_queries(),
        "with: {}, without: {}",
        a_with.total_queries(),
        a_without.total_queries()
    );
}

/// The full pipeline produces an adjoint whose pragmas reflect the
/// decisions: no atomics for the stencil, atomics for GFMC*.
#[test]
fn pipeline_applies_decisions() {
    let p = parse_program(STENCIL).unwrap();
    let r = Formad::new(FormadOptions::new(&["uold"], &["unew"]))
        .differentiate(&p)
        .unwrap();
    let text = formad_ir::program_to_string(&r.adjoint);
    assert!(!text.contains("!$omp atomic"), "{text}");

    let p = parse_program(GFMC_FUSED).unwrap();
    let r = Formad::new(FormadOptions::new(&["cr"], &["cl"]))
        .differentiate(&p)
        .unwrap();
    let text = formad_ir::program_to_string(&r.adjoint);
    assert!(text.contains("!$omp atomic"), "{text}");
}
