//! Human-readable reporting of the analysis (Table 1 of the paper).

use std::fmt::Write;

use crate::pipeline::FormadAnalysis;
use crate::region::{Decision, Provenance, RegionAnalysis};

/// Render one Table-1-style row: `problem, time, model size, queries,
/// exprs, loc`.
pub fn table1_row(name: &str, a: &FormadAnalysis) -> String {
    let time: f64 = a.regions.iter().map(|r| r.time.as_secs_f64()).sum();
    let size: usize = a.regions.iter().map(|r| r.model_size).sum();
    let queries: u64 = a.total_queries();
    let exprs: usize = a.regions.iter().map(|r| r.unique_exprs).sum();
    let loc: usize = a.regions.iter().map(|r| r.loc).sum();
    format!("{name:<12} {time:>8.3} {size:>8} {queries:>8} {exprs:>6} {loc:>5}")
}

/// Header matching [`table1_row`].
pub fn table1_header() -> String {
    format!(
        "{:<12} {:>8} {:>8} {:>8} {:>6} {:>5}",
        "problem", "time", "size", "queries", "exprs", "loc"
    )
}

/// Long-form report for one region (decisions, warnings, §7.3-style safe
/// set and rejected expressions).
pub fn region_report(r: &RegionAnalysis) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "region {} (parallel do {}): {} stmts, model size {}, {} unique exprs, {} queries, {:.3}s",
        r.region,
        r.loop_var,
        r.loc,
        r.model_size,
        r.unique_exprs,
        r.queries,
        r.time.as_secs_f64()
    );
    let mut arrays: Vec<_> = r.decisions.iter().collect();
    arrays.sort_by(|a, b| a.0.cmp(b.0));
    for (arr, d) in arrays {
        let tag = r
            .provenance
            .get(arr.as_str())
            .map(Provenance::tag)
            .unwrap_or("unrecorded");
        match d {
            Decision::Shared => {
                let _ = writeln!(
                    s,
                    "  adjoint of `{arr}`: shared (no atomics needed) [{tag}]"
                );
            }
            Decision::Guarded(reason) => {
                let _ = writeln!(s, "  adjoint of `{arr}`: guarded [{tag}] — {reason}");
            }
        }
    }
    if r.stats.unknowns > 0 || r.recovered_panics > 0 {
        let _ = writeln!(
            s,
            "  prover health: {} unknown verdicts ({} deadline/cancel), {} panics recovered",
            r.stats.unknowns, r.stats.interrupts, r.recovered_panics
        );
    }
    if !r.safe_write_exprs.is_empty() {
        let _ = writeln!(s, "  known-safe write expressions:");
        for e in &r.safe_write_exprs {
            let _ = writeln!(s, "    ({e})");
        }
    }
    for e in &r.rejected_exprs {
        let _ = writeln!(s, "  rejected adjoint expression: ({e})");
    }
    for w in &r.warnings {
        let _ = writeln!(s, "  warning: {w}");
    }
    s
}

/// Full report over all regions.
pub fn full_report(name: &str, a: &FormadAnalysis) -> String {
    let mut s = format!("FormAD analysis of `{name}`\n");
    for r in &a.regions {
        s.push_str(&region_report(r));
    }
    if a.regions.is_empty() {
        s.push_str("  (no parallel regions)\n");
    }
    if a.degraded() {
        s.push_str(
            "  note: some arrays kept safeguards due to resource limits or \
             recovered prover faults (correctness unaffected; only speed)\n",
        );
    }
    s
}
