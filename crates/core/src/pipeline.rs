//! The FormAD pipeline: analysis → safeguard plan → adjoint generation.

use std::collections::HashMap;
use std::fmt;
use std::time::Instant;

use formad_ad::{differentiate, AdError, AdjointOptions, IncMode, ParallelTreatment};
use formad_analysis::Activity;
use formad_ir::Program;
use formad_smt::SolverStats;

use crate::region::{analyze_region, Decision, RegionAnalysis, RegionOptions};
use crate::trace::TraceEvent;

/// Options for the full pipeline.
#[derive(Debug, Clone)]
pub struct FormadOptions {
    /// Differentiation inputs.
    pub independents: Vec<String>,
    /// Differentiation outputs.
    pub dependents: Vec<String>,
    /// Region-analysis tunables (stride constraints, ablations, budget).
    pub region: RegionOptions,
}

impl FormadOptions {
    /// Conventional constructor.
    pub fn new(independents: &[&str], dependents: &[&str]) -> FormadOptions {
        FormadOptions {
            independents: independents.iter().map(|s| s.to_string()).collect(),
            dependents: dependents.iter().map(|s| s.to_string()).collect(),
            region: RegionOptions::default(),
        }
    }
}

/// Whole-program analysis result: one report per parallel region plus the
/// derived safeguard plan.
#[derive(Debug)]
pub struct FormadAnalysis {
    /// Per-region reports, in pre-order.
    pub regions: Vec<RegionAnalysis>,
    /// The safeguard plan FormAD derived (Plain where proven, Atomic
    /// elsewhere) — feed to [`Formad::adjoint_with`] or read directly.
    pub plan: ParallelTreatment,
    /// Prover statistics aggregated over every region (saturating).
    pub stats: SolverStats,
}

impl FormadAnalysis {
    /// True if every analyzed adjoint array in every region is `Shared`.
    pub fn all_safe(&self) -> bool {
        self.regions
            .iter()
            .all(|r| r.decisions.values().all(|d| matches!(d, Decision::Shared)))
    }

    /// Total prover queries across regions.
    pub fn total_queries(&self) -> u64 {
        self.regions.iter().map(|r| r.queries).sum()
    }

    /// True if any region lost a `Shared` verdict to a resource limit or
    /// a recovered prover fault (as opposed to a definite refutation).
    pub fn degraded(&self) -> bool {
        self.regions.iter().any(|r| r.degraded())
    }

    /// Total prover panics recovered from across regions.
    pub fn recovered_panics(&self) -> u64 {
        self.regions.iter().map(|r| r.recovered_panics).sum()
    }

    /// Flatten the derived plan into `(region, array, mode)` triples in
    /// deterministic (region pre-order, array name) order — the
    /// report-to-discipline record an execution backend or benchmark
    /// embeds next to measured numbers to show *which* increment
    /// discipline each adjoint array actually ran under.
    pub fn discipline_map(&self) -> Vec<(usize, String, IncMode)> {
        let mut out = Vec::new();
        for (ri, region) in self.regions.iter().enumerate() {
            let mut arrays: Vec<&String> = region.decisions.keys().collect();
            arrays.sort();
            for arr in arrays {
                out.push((ri, arr.clone(), self.plan.mode_of(ri, arr)));
            }
        }
        out
    }
}

/// Classification of pipeline errors; each kind maps to a distinct CLI
/// exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FormadErrorKind {
    /// The source program could not be parsed.
    Parse,
    /// The program parsed but failed semantic validation.
    Validate,
    /// The AD transformation itself failed.
    Ad,
    /// The prover panicked and the failure could not be absorbed by
    /// degradation (not produced by the analysis itself, which always
    /// degrades; reserved for callers that choose to re-raise).
    ProverPanic,
    /// A global deadline expired before the pipeline finished.
    Deadline,
}

impl FormadErrorKind {
    /// Stable diagnostic label.
    pub fn label(&self) -> &'static str {
        match self {
            FormadErrorKind::Parse => "parse",
            FormadErrorKind::Validate => "validate",
            FormadErrorKind::Ad => "ad",
            FormadErrorKind::ProverPanic => "prover-panic",
            FormadErrorKind::Deadline => "deadline",
        }
    }
}

/// Errors from the pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct FormadError {
    /// Machine-readable classification.
    pub kind: FormadErrorKind,
    /// Human-readable detail.
    pub message: String,
}

impl FormadError {
    pub fn new(kind: FormadErrorKind, message: impl Into<String>) -> FormadError {
        FormadError {
            kind,
            message: message.into(),
        }
    }

    pub fn parse(message: impl Into<String>) -> FormadError {
        FormadError::new(FormadErrorKind::Parse, message)
    }

    pub fn validate(message: impl Into<String>) -> FormadError {
        FormadError::new(FormadErrorKind::Validate, message)
    }
}

impl fmt::Display for FormadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "formad [{}]: {}", self.kind.label(), self.message)
    }
}

impl std::error::Error for FormadError {}

impl From<AdError> for FormadError {
    fn from(e: AdError) -> Self {
        FormadError {
            kind: FormadErrorKind::Ad,
            message: e.message,
        }
    }
}

/// The FormAD tool: differentiates parallel-loop programs, using its
/// theorem-prover analysis to avoid atomic updates wherever the primal's
/// parallelization proves them unnecessary.
///
/// ```
/// use formad::{Formad, FormadOptions};
/// use formad_ir::parse_program;
///
/// let primal = parse_program(r#"
/// subroutine fig2(n, x, y, c)
///   integer, intent(in) :: n
///   real, intent(in) :: x(n)
///   real, intent(inout) :: y(n)
///   integer, intent(in) :: c(n)
///   integer :: i
///   !$omp parallel do shared(x, y, c)
///   do i = 1, n
///     y(c(i)) = x(c(i) + 7)
///   end do
/// end subroutine
/// "#).unwrap();
/// let tool = Formad::new(FormadOptions::new(&["x"], &["y"]));
/// let result = tool.differentiate(&primal).unwrap();
/// assert!(result.analysis.all_safe()); // Figure 2: no atomics needed
/// ```
#[derive(Debug)]
pub struct Formad {
    /// Pipeline options.
    pub options: FormadOptions,
}

/// Pipeline output: the adjoint program plus the analysis report.
#[derive(Debug)]
pub struct DiffResult {
    /// Generated adjoint subroutine.
    pub adjoint: Program,
    /// The analysis that selected the safeguards.
    pub analysis: FormadAnalysis,
}

impl Formad {
    /// Create the tool.
    pub fn new(options: FormadOptions) -> Formad {
        Formad { options }
    }

    /// Run only the analysis (knowledge extraction + exploitation) and
    /// derive the safeguard plan.
    pub fn analyze(&self, primal: &Program) -> Result<FormadAnalysis, FormadError> {
        let sink = self.options.region.trace.as_ref();
        if let Some(s) = sink {
            s.record(TraceEvent::Pipeline {
                program: primal.name.clone(),
                independents: self.options.independents.clone(),
                dependents: self.options.dependents.clone(),
            });
        }
        let mark = Instant::now();
        formad_ir::validate_strict(primal)
            .map_err(|e| FormadError::validate(format!("invalid primal: {e}")))?;
        if let Some(s) = sink {
            s.record(TraceEvent::Phase {
                id: "phase/validate".to_string(),
                dur_us: mark.elapsed().as_micros() as u64,
            });
        }
        let mark = Instant::now();
        let activity =
            Activity::analyze(primal, &self.options.independents, &self.options.dependents);
        if let Some(s) = sink {
            s.record(TraceEvent::Phase {
                id: "phase/activity".to_string(),
                dur_us: mark.elapsed().as_micros() as u64,
            });
        }
        let mut regions = Vec::new();
        let mut maps: Vec<HashMap<String, IncMode>> = Vec::new();
        let mut stats = SolverStats::default();
        for (k, l) in primal.parallel_loops().into_iter().enumerate() {
            let ra = analyze_region(primal, l, k, &activity, &self.options.region);
            let mut map = HashMap::new();
            for (arr, d) in &ra.decisions {
                map.insert(
                    arr.clone(),
                    match d {
                        Decision::Shared => IncMode::Plain,
                        Decision::Guarded(_) => IncMode::Atomic,
                    },
                );
            }
            stats.merge(&ra.stats);
            maps.push(map);
            regions.push(ra);
        }
        self.check_deadline("analysis")?;
        Ok(FormadAnalysis {
            regions,
            plan: ParallelTreatment::PerArray(maps),
            stats,
        })
    }

    /// Full pipeline: analysis + reverse-mode transformation with the
    /// derived per-array plan (the paper's *Adjoint FormAD* version).
    pub fn differentiate(&self, primal: &Program) -> Result<DiffResult, FormadError> {
        let analysis = self.analyze(primal)?;
        let mark = Instant::now();
        let adjoint = differentiate(primal, &self.ad_options(analysis.plan.clone()))?;
        if let Some(s) = self.options.region.trace.as_ref() {
            s.record(TraceEvent::Phase {
                id: "phase/ad".to_string(),
                dur_us: mark.elapsed().as_micros() as u64,
            });
        }
        self.check_deadline("differentiation")?;
        Ok(DiffResult { adjoint, analysis })
    }

    /// Enforce the optional global deadline: expiry is a hard pipeline
    /// failure (exit 7 from the CLI), unlike `prover_timeout` whose
    /// expiry degrades arrays and still succeeds.
    fn check_deadline(&self, stage: &str) -> Result<(), FormadError> {
        if let Some(d) = self.options.region.deadline {
            if d.expired() {
                return Err(FormadError::new(
                    FormadErrorKind::Deadline,
                    format!("global deadline expired before {stage} finished"),
                ));
            }
        }
        Ok(())
    }

    /// Generate an adjoint with an explicit treatment (the paper's
    /// *Serial*, *Atomic*, and *Reduction* baseline versions).
    pub fn adjoint_with(
        &self,
        primal: &Program,
        treatment: ParallelTreatment,
    ) -> Result<Program, FormadError> {
        Ok(differentiate(primal, &self.ad_options(treatment))?)
    }

    fn ad_options(&self, treatment: ParallelTreatment) -> AdjointOptions {
        let indep: Vec<&str> = self
            .options
            .independents
            .iter()
            .map(|s| s.as_str())
            .collect();
        let dep: Vec<&str> = self.options.dependents.iter().map(|s| s.as_str()).collect();
        AdjointOptions::new(&indep, &dep, treatment)
    }
}
