//! The FormAD pipeline: analysis → safeguard plan → adjoint generation.

use std::fmt;

use formad_ad::{AdError, IncMode, ParallelTreatment};
use formad_ir::Program;
use formad_smt::SolverStats;

use crate::engine::SharedEngine;
use crate::region::{Decision, RegionAnalysis, RegionOptions};

/// Options for the full pipeline.
#[derive(Debug, Clone)]
pub struct FormadOptions {
    /// Differentiation inputs.
    pub independents: Vec<String>,
    /// Differentiation outputs.
    pub dependents: Vec<String>,
    /// Region-analysis tunables (stride constraints, ablations, budget).
    pub region: RegionOptions,
}

impl FormadOptions {
    /// Conventional constructor.
    pub fn new(independents: &[&str], dependents: &[&str]) -> FormadOptions {
        FormadOptions {
            independents: independents.iter().map(|s| s.to_string()).collect(),
            dependents: dependents.iter().map(|s| s.to_string()).collect(),
            region: RegionOptions::default(),
        }
    }
}

/// Whole-program analysis result: one report per parallel region plus the
/// derived safeguard plan.
#[derive(Debug)]
pub struct FormadAnalysis {
    /// Per-region reports, in pre-order.
    pub regions: Vec<RegionAnalysis>,
    /// The safeguard plan FormAD derived (Plain where proven, Atomic
    /// elsewhere) — feed to [`Formad::adjoint_with`] or read directly.
    pub plan: ParallelTreatment,
    /// Prover statistics aggregated over every region (saturating).
    pub stats: SolverStats,
}

impl FormadAnalysis {
    /// True if every analyzed adjoint array in every region is `Shared`.
    pub fn all_safe(&self) -> bool {
        self.regions
            .iter()
            .all(|r| r.decisions.values().all(|d| matches!(d, Decision::Shared)))
    }

    /// Total prover queries across regions.
    pub fn total_queries(&self) -> u64 {
        self.regions.iter().map(|r| r.queries).sum()
    }

    /// True if any region lost a `Shared` verdict to a resource limit or
    /// a recovered prover fault (as opposed to a definite refutation).
    pub fn degraded(&self) -> bool {
        self.regions.iter().any(|r| r.degraded())
    }

    /// Total prover panics recovered from across regions.
    pub fn recovered_panics(&self) -> u64 {
        self.regions.iter().map(|r| r.recovered_panics).sum()
    }

    /// Flatten the derived plan into `(region, array, mode)` triples in
    /// deterministic (region pre-order, array name) order — the
    /// report-to-discipline record an execution backend or benchmark
    /// embeds next to measured numbers to show *which* increment
    /// discipline each adjoint array actually ran under.
    pub fn discipline_map(&self) -> Vec<(usize, String, IncMode)> {
        let mut out = Vec::new();
        for (ri, region) in self.regions.iter().enumerate() {
            let mut arrays: Vec<&String> = region.decisions.keys().collect();
            arrays.sort();
            for arr in arrays {
                out.push((ri, arr.clone(), self.plan.mode_of(ri, arr)));
            }
        }
        out
    }
}

/// Classification of pipeline errors; each kind maps to a distinct CLI
/// exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FormadErrorKind {
    /// The source program could not be parsed.
    Parse,
    /// The program parsed but failed semantic validation.
    Validate,
    /// The AD transformation itself failed.
    Ad,
    /// The prover panicked and the failure could not be absorbed by
    /// degradation (not produced by the analysis itself, which always
    /// degrades; reserved for callers that choose to re-raise).
    ProverPanic,
    /// A global deadline expired before the pipeline finished.
    Deadline,
}

impl FormadErrorKind {
    /// Stable diagnostic label.
    pub fn label(&self) -> &'static str {
        match self {
            FormadErrorKind::Parse => "parse",
            FormadErrorKind::Validate => "validate",
            FormadErrorKind::Ad => "ad",
            FormadErrorKind::ProverPanic => "prover-panic",
            FormadErrorKind::Deadline => "deadline",
        }
    }
}

/// Errors from the pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct FormadError {
    /// Machine-readable classification.
    pub kind: FormadErrorKind,
    /// Human-readable detail.
    pub message: String,
}

impl FormadError {
    pub fn new(kind: FormadErrorKind, message: impl Into<String>) -> FormadError {
        FormadError {
            kind,
            message: message.into(),
        }
    }

    pub fn parse(message: impl Into<String>) -> FormadError {
        FormadError::new(FormadErrorKind::Parse, message)
    }

    pub fn validate(message: impl Into<String>) -> FormadError {
        FormadError::new(FormadErrorKind::Validate, message)
    }
}

impl fmt::Display for FormadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "formad [{}]: {}", self.kind.label(), self.message)
    }
}

impl std::error::Error for FormadError {}

impl From<AdError> for FormadError {
    fn from(e: AdError) -> Self {
        FormadError {
            kind: FormadErrorKind::Ad,
            message: e.message,
        }
    }
}

/// The FormAD tool: differentiates parallel-loop programs, using its
/// theorem-prover analysis to avoid atomic updates wherever the primal's
/// parallelization proves them unnecessary.
///
/// ```
/// use formad::{Formad, FormadOptions};
/// use formad_ir::parse_program;
///
/// let primal = parse_program(r#"
/// subroutine fig2(n, x, y, c)
///   integer, intent(in) :: n
///   real, intent(in) :: x(n)
///   real, intent(inout) :: y(n)
///   integer, intent(in) :: c(n)
///   integer :: i
///   !$omp parallel do shared(x, y, c)
///   do i = 1, n
///     y(c(i)) = x(c(i) + 7)
///   end do
/// end subroutine
/// "#).unwrap();
/// let tool = Formad::new(FormadOptions::new(&["x"], &["y"]));
/// let result = tool.differentiate(&primal).unwrap();
/// assert!(result.analysis.all_safe()); // Figure 2: no atomics needed
/// ```
#[derive(Debug)]
pub struct Formad {
    /// Pipeline options.
    pub options: FormadOptions,
}

/// Pipeline output: the adjoint program plus the analysis report.
#[derive(Debug)]
pub struct DiffResult {
    /// Generated adjoint subroutine.
    pub adjoint: Program,
    /// The analysis that selected the safeguards.
    pub analysis: FormadAnalysis,
}

impl Formad {
    /// Create the tool.
    pub fn new(options: FormadOptions) -> Formad {
        Formad { options }
    }

    /// The engine this invocation runs on: whatever cache handle is
    /// wired into `options.region.cache` *is* the shared state, so
    /// one-shot callers keep per-invocation caches and a resident caller
    /// can pass the same handle to every `Formad` it builds.
    fn engine(&self) -> SharedEngine {
        SharedEngine::from_options(&self.options)
    }

    /// Run only the analysis (knowledge extraction + exploitation) and
    /// derive the safeguard plan.
    pub fn analyze(&self, primal: &Program) -> Result<FormadAnalysis, FormadError> {
        self.engine().analyze(primal, &self.options)
    }

    /// Full pipeline: analysis + reverse-mode transformation with the
    /// derived per-array plan (the paper's *Adjoint FormAD* version).
    pub fn differentiate(&self, primal: &Program) -> Result<DiffResult, FormadError> {
        self.engine().differentiate(primal, &self.options)
    }

    /// Generate an adjoint with an explicit treatment (the paper's
    /// *Serial*, *Atomic*, and *Reduction* baseline versions).
    pub fn adjoint_with(
        &self,
        primal: &Program,
        treatment: ParallelTreatment,
    ) -> Result<Program, FormadError> {
        self.engine().adjoint_with(primal, &self.options, treatment)
    }
}
