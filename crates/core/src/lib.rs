//! # formad
//!
//! Reproduction of **"Automatic Differentiation of Parallel Loops with
//! Formal Methods"** (Hückelheim & Hascoët, ICPP 2022): reverse-mode
//! automatic differentiation of OpenMP-style shared-memory parallel loops,
//! with a theorem-prover-backed static analysis that removes atomic
//! updates and reductions from the generated adjoint whenever the
//! *assumed-correct parallelization of the primal* proves them
//! unnecessary.
//!
//! ## How it works (paper §5)
//!
//! 1. **Knowledge extraction.** A correctly parallelized loop has no
//!    loop-carried dependences, so for every pair of references to an
//!    array — at least one a write — the index tuples must be disjoint
//!    across iterations. Each pair becomes an assertion
//!    `primed(e₁) ≠ e₂` in a knowledge base, attached to the control
//!    *context* that must execute both references.
//! 2. **Knowledge exploitation.** Reverse-mode AD turns primal reads into
//!    adjoint increments. For every candidate conflict between adjoint
//!    references, the prover is asked whether the indices can be equal
//!    under the knowledge usable at the pair's common context root —
//!    UNSAT means the increment is race-free and the adjoint array can be
//!    `shared` without atomics.
//!
//! The prover is `formad-smt` (a from-scratch QF-UFLIA core standing in
//! for Z3), the AD engine is `formad-ad`, and the static analyses
//! (contexts, instances, activity) live in `formad-analysis`.
//!
//! ## Entry points
//!
//! - [`Formad::analyze`] — run the analysis, get per-region reports
//!   (Table 1 statistics) and the safeguard plan;
//! - [`Formad::differentiate`] — full pipeline: the *Adjoint FormAD*
//!   program version of the paper's evaluation;
//! - [`Formad::adjoint_with`] — the *Serial* / *Atomic* / *Reduction*
//!   baseline versions;
//! - [`SharedEngine`] — the resident-service form of the same pipeline:
//!   one shared proof cache across requests, with per-request overlay
//!   isolation (absorb on success, roll back on failure).

pub mod engine;
pub mod pipeline;
pub mod region;
pub mod report;
pub mod trace;
pub mod translate;

pub use engine::SharedEngine;
pub use formad_ad::{IncMode, ParallelTreatment};
pub use formad_smt::{Deadline, SearchCore};
pub use pipeline::{
    DiffResult, Formad, FormadAnalysis, FormadError, FormadErrorKind, FormadOptions,
};
pub use region::{analyze_region_with, Decision, Provenance, RegionAnalysis, RegionOptions};
pub use report::{full_report, region_report, table1_header, table1_row};
pub use trace::{
    deterministic_json, explain, trace_json, validate_trace, CacheAttr, QueryPerf, TraceDecision,
    TraceEvent, TraceSink, TraceSummary, TRACE_SCHEMA,
};
pub use translate::{Taint, Translator};
