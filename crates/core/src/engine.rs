//! A long-lived, shareable pipeline engine.
//!
//! The one-shot CLI builds its proof cache, thread pool, and interned
//! state per invocation and throws them away. A service cannot afford
//! that: the whole point of a resident daemon is that the 102nd user's
//! stencil proves in microseconds because the first user's verdicts are
//! still warm. [`SharedEngine`] is the seam between the two worlds: it
//! owns the shared proof cache, and every pipeline entry point —
//! one-shot [`Formad`](crate::Formad) methods included — runs *through*
//! it rather than constructing cache state inline.
//!
//! Two execution modes:
//!
//! - **direct** ([`SharedEngine::analyze`] /
//!   [`SharedEngine::differentiate`]): prover verdicts land straight in
//!   the shared cache. This is the one-shot path; counters and entries
//!   accrue on the caller's own handle exactly as before the engine
//!   existed.
//! - **isolated** ([`SharedEngine::analyze_isolated`] /
//!   [`SharedEngine::differentiate_isolated`]): the request runs against
//!   a private [`overlay`](formad_smt::ProofCache::overlay) of the
//!   shared cache. On success the overlay is absorbed (published); on
//!   error — or if the pipeline panics and unwinds through the call —
//!   the overlay is dropped and the shared cache is untouched. A
//!   multi-tenant daemon uses this so a poisoned request cannot leak
//!   half-finished state into every later request's lookups.
//!
//! The execution side has an analogue of this cache: the process-wide
//! AOT kernel registry in `formad-machine`'s `aot` module, which
//! memoizes compiled native kernels (keyed by generated-source hash, on
//! disk and in-process) the same way this engine memoizes prover
//! verdicts, so a daemon's repeat `exec` requests skip `rustc` exactly
//! like its repeat `prove` requests skip the solver.

use std::collections::HashMap;
use std::time::Instant;

use formad_ad::{differentiate, AdjointOptions, IncMode, ParallelTreatment};
use formad_analysis::Activity;
use formad_ir::Program;
use formad_smt::{ProofCache, SolverStats};

use crate::pipeline::{DiffResult, FormadAnalysis, FormadError, FormadErrorKind, FormadOptions};
use crate::region::{analyze_region, Decision};
use crate::trace::TraceEvent;

/// Shared pipeline state: the proof cache every request reads through.
/// Cloning is cheap and shares the cache (it is a handle), so one engine
/// can serve any number of threads.
#[derive(Debug, Clone, Default)]
pub struct SharedEngine {
    cache: Option<ProofCache>,
}

impl SharedEngine {
    /// An engine with a fresh, empty proof cache.
    pub fn new() -> SharedEngine {
        SharedEngine {
            cache: Some(ProofCache::new()),
        }
    }

    /// An engine over an explicit cache handle (`None` disables caching
    /// entirely — every query is proved from scratch).
    pub fn with_cache(cache: Option<ProofCache>) -> SharedEngine {
        SharedEngine { cache }
    }

    /// Adopt the cache handle already configured in `options` — the
    /// one-shot constructor: whatever cache the caller wired into
    /// `options.region.cache` *is* the engine's shared state.
    pub fn from_options(options: &FormadOptions) -> SharedEngine {
        SharedEngine {
            cache: options.region.cache.clone(),
        }
    }

    /// The shared proof cache, if caching is enabled.
    pub fn cache(&self) -> Option<&ProofCache> {
        self.cache.as_ref()
    }

    fn options_with(&self, options: &FormadOptions, cache: Option<ProofCache>) -> FormadOptions {
        let mut o = options.clone();
        o.region.cache = cache;
        o
    }

    /// Analysis with verdicts published directly to the shared cache.
    pub fn analyze(
        &self,
        primal: &Program,
        options: &FormadOptions,
    ) -> Result<FormadAnalysis, FormadError> {
        run_analysis(primal, &self.options_with(options, self.cache.clone()))
    }

    /// Full pipeline with verdicts published directly to the shared
    /// cache.
    pub fn differentiate(
        &self,
        primal: &Program,
        options: &FormadOptions,
    ) -> Result<DiffResult, FormadError> {
        run_differentiate(primal, &self.options_with(options, self.cache.clone()))
    }

    /// Analysis against a private overlay of the shared cache: absorbed
    /// on success, rolled back (dropped) on error or unwind.
    pub fn analyze_isolated(
        &self,
        primal: &Program,
        options: &FormadOptions,
    ) -> Result<FormadAnalysis, FormadError> {
        self.isolated(options, |o| run_analysis(primal, o))
    }

    /// Full pipeline against a private overlay of the shared cache:
    /// absorbed on success, rolled back (dropped) on error or unwind.
    pub fn differentiate_isolated(
        &self,
        primal: &Program,
        options: &FormadOptions,
    ) -> Result<DiffResult, FormadError> {
        self.isolated(options, |o| run_differentiate(primal, o))
    }

    /// Generate an adjoint with an explicit treatment, no prover
    /// involved. This is the always-safe fallback a service answers with
    /// when it sheds load: `ParallelTreatment::Uniform(IncMode::Atomic)`
    /// is correct for every program the validator accepts.
    pub fn adjoint_with(
        &self,
        primal: &Program,
        options: &FormadOptions,
        treatment: ParallelTreatment,
    ) -> Result<Program, FormadError> {
        Ok(differentiate(primal, &ad_options(options, treatment))?)
    }

    fn isolated<T>(
        &self,
        options: &FormadOptions,
        run: impl FnOnce(&FormadOptions) -> Result<T, FormadError>,
    ) -> Result<T, FormadError> {
        match &self.cache {
            None => run(&self.options_with(options, None)),
            Some(base) => {
                let overlay = base.overlay();
                // If `run` unwinds, `overlay` is dropped here without an
                // absorb — rollback is the no-op path.
                let result = run(&self.options_with(options, Some(overlay.clone())));
                if result.is_ok() {
                    base.absorb(&overlay);
                }
                result
            }
        }
    }
}

/// Derived `AdjointOptions` for a treatment under `options`' inputs and
/// outputs.
pub(crate) fn ad_options(options: &FormadOptions, treatment: ParallelTreatment) -> AdjointOptions {
    let indep: Vec<&str> = options.independents.iter().map(|s| s.as_str()).collect();
    let dep: Vec<&str> = options.dependents.iter().map(|s| s.as_str()).collect();
    AdjointOptions::new(&indep, &dep, treatment)
}

/// Enforce the optional global deadline: expiry is a hard pipeline
/// failure (exit 7 from the CLI), unlike `prover_timeout` whose expiry
/// degrades arrays and still succeeds.
pub(crate) fn check_deadline(options: &FormadOptions, stage: &str) -> Result<(), FormadError> {
    if let Some(d) = options.region.deadline {
        if d.expired() {
            return Err(FormadError::new(
                FormadErrorKind::Deadline,
                format!("global deadline expired before {stage} finished"),
            ));
        }
    }
    Ok(())
}

/// The analysis pipeline body (knowledge extraction + exploitation +
/// safeguard planning), run against exactly the cache wired into
/// `options.region.cache`.
pub(crate) fn run_analysis(
    primal: &Program,
    options: &FormadOptions,
) -> Result<FormadAnalysis, FormadError> {
    let sink = options.region.trace.as_ref();
    if let Some(s) = sink {
        s.record(TraceEvent::Pipeline {
            program: primal.name.clone(),
            independents: options.independents.clone(),
            dependents: options.dependents.clone(),
        });
    }
    let mark = Instant::now();
    formad_ir::validate_strict(primal)
        .map_err(|e| FormadError::validate(format!("invalid primal: {e}")))?;
    if let Some(s) = sink {
        s.record(TraceEvent::Phase {
            id: "phase/validate".to_string(),
            dur_us: mark.elapsed().as_micros() as u64,
        });
    }
    let mark = Instant::now();
    let activity = Activity::analyze(primal, &options.independents, &options.dependents);
    if let Some(s) = sink {
        s.record(TraceEvent::Phase {
            id: "phase/activity".to_string(),
            dur_us: mark.elapsed().as_micros() as u64,
        });
    }
    let mut regions = Vec::new();
    let mut maps: Vec<HashMap<String, IncMode>> = Vec::new();
    let mut stats = SolverStats::default();
    for (k, l) in primal.parallel_loops().into_iter().enumerate() {
        let ra = analyze_region(primal, l, k, &activity, &options.region);
        let mut map = HashMap::new();
        for (arr, d) in &ra.decisions {
            map.insert(
                arr.clone(),
                match d {
                    Decision::Shared => IncMode::Plain,
                    Decision::Guarded(_) => IncMode::Atomic,
                },
            );
        }
        stats.merge(&ra.stats);
        maps.push(map);
        regions.push(ra);
    }
    check_deadline(options, "analysis")?;
    Ok(FormadAnalysis {
        regions,
        plan: ParallelTreatment::PerArray(maps),
        stats,
    })
}

/// The full pipeline body: analysis + reverse-mode transformation with
/// the derived per-array plan.
pub(crate) fn run_differentiate(
    primal: &Program,
    options: &FormadOptions,
) -> Result<DiffResult, FormadError> {
    let analysis = run_analysis(primal, options)?;
    let mark = Instant::now();
    let adjoint = differentiate(primal, &ad_options(options, analysis.plan.clone()))?;
    if let Some(s) = options.region.trace.as_ref() {
        s.record(TraceEvent::Phase {
            id: "phase/ad".to_string(),
            dur_us: mark.elapsed().as_micros() as u64,
        });
    }
    check_deadline(options, "differentiation")?;
    Ok(DiffResult { adjoint, analysis })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Formad;
    use formad_ir::parse_program;

    const FIG2: &str = r#"
subroutine fig2(n, x, y, c)
  integer, intent(in) :: n
  real, intent(in) :: x(n)
  real, intent(inout) :: y(n)
  integer, intent(in) :: c(n)
  integer :: i
  !$omp parallel do shared(x, y, c)
  do i = 1, n
    y(c(i)) = x(c(i) + 7)
  end do
end subroutine
"#;

    fn opts() -> FormadOptions {
        let mut o = FormadOptions::new(&["x"], &["y"]);
        o.region.jobs = 1;
        o
    }

    #[test]
    fn direct_mode_publishes_to_the_shared_cache() {
        let primal = parse_program(FIG2).unwrap();
        let engine = SharedEngine::new();
        let a = engine.analyze(&primal, &opts()).unwrap();
        assert!(a.all_safe());
        // A second run against the same engine issues no new lia calls
        // for presolve-hard queries (everything is discharged or served
        // warm), and the verdicts agree.
        let b = engine.analyze(&primal, &opts()).unwrap();
        assert!(b.all_safe());
    }

    #[test]
    fn isolated_mode_absorbs_on_success() {
        let primal = parse_program(FIG2).unwrap();
        let engine = SharedEngine::new();
        let before = engine.cache().unwrap().len();
        let a = engine.analyze_isolated(&primal, &opts()).unwrap();
        assert!(a.all_safe());
        // Whatever the request proved (if anything was presolve-hard) is
        // now in the shared base, not stranded in a dropped overlay.
        assert!(engine.cache().unwrap().len() >= before);
        assert_eq!(engine.cache().unwrap().depth(), 0);
    }

    #[test]
    fn isolated_mode_rolls_back_on_error() {
        let engine = SharedEngine::new();
        let primal = parse_program(FIG2).unwrap();
        let mut o = opts();
        // Pre-expired deadline: the pipeline fails with a hard Deadline
        // error after the region loop; nothing may be published.
        o.region.deadline = Some(formad_smt::Deadline::in_ms(0));
        let err = engine.analyze_isolated(&primal, &o).unwrap_err();
        assert_eq!(err.kind, FormadErrorKind::Deadline);
        assert_eq!(engine.cache().unwrap().len(), 0);
    }

    #[test]
    fn formad_entry_points_ride_the_engine() {
        // The one-shot API is a thin shim over SharedEngine: same handle,
        // same verdicts.
        let primal = parse_program(FIG2).unwrap();
        let tool = Formad::new(opts());
        let direct = tool.analyze(&primal).unwrap();
        let engine = SharedEngine::from_options(&tool.options);
        let via_engine = engine.analyze(&primal, &tool.options).unwrap();
        assert_eq!(direct.all_safe(), via_engine.all_safe());
        assert_eq!(
            direct.discipline_map(),
            via_engine.discipline_map(),
            "engine and one-shot disagree on disciplines"
        );
    }
}
