//! Structured proof-trace events for the whole pipeline.
//!
//! The paper's contribution is an *explainable* static decision: which
//! conflict pairs were proven disjoint, from which parallelization facts,
//! and why an array fell back to atomics (§5, §7.3). This module records
//! that reasoning as a stream of [`TraceEvent`]s threaded through
//! parse → analysis → per-array/per-pair proving → degradation decisions,
//! and renders it three ways:
//!
//! * [`trace_json`] — a versioned JSON document ([`TRACE_SCHEMA`]) split
//!   into a deterministic `events` section and a volatile `perf` section.
//!   Every event has a span-style id (`r0`, `r0/grad`, `r0/grad/q3`);
//!   `perf` entries reference those ids and carry wall-clock durations,
//!   SMT stats deltas, and cache hit/miss attribution. The `events`
//!   section is byte-identical for every `--jobs` value and cache setting
//!   — workers buffer their events locally and the coordinator merges the
//!   buffers in candidate order — while `perf` is allowed to vary.
//! * [`explain`] — a human-readable proof narrative per array (the
//!   `formad explain` subcommand).
//! * [`validate_trace`] — schema validation of an emitted document (a
//!   hand-rolled JSON reader; the workspace takes no serde dependency),
//!   returning a [`TraceSummary`] for cross-checks against the report.
//!
//! Tracing is strictly opt-in: when [`crate::RegionOptions::trace`] is
//! `None`, no event is constructed, no clock is read, and no stats are
//! snapshotted — the hot path costs one branch per site.

use std::sync::{Arc, Mutex};

/// Version tag of the JSON document layout.
pub const TRACE_SCHEMA: &str = "formad-trace/v1";

/// Volatile per-query measurements: everything about a prover call that
/// may legitimately differ between runs, job counts, or cache settings.
/// Rendered into the `perf` section only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryPerf {
    /// Wall-clock time of the `check()`.
    pub dur_us: u64,
    /// Linear-feasibility core calls attributed to this query.
    pub lia_calls: u64,
    /// Branch nodes explored by this query.
    pub branches: u64,
    /// Watched-literal unit propagations (0 under the legacy core).
    pub propagations: u64,
    /// Theory/boolean conflicts analyzed (0 under the legacy core).
    pub conflicts: u64,
    /// `"hit"` / `"miss"` when a proof cache was consulted, `"off"`
    /// otherwise.
    pub cache: CacheAttr,
}

/// Cache attribution of one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheAttr {
    /// Answered from the canonical proof cache.
    Hit,
    /// Consulted the cache and missed.
    Miss,
    /// The cache was never consulted: none attached, or the solver's
    /// presolve prefix discharged the query before the cache fast path
    /// (canonicalizing such queries costs more than answering them).
    #[default]
    Off,
}

impl CacheAttr {
    fn label(self) -> &'static str {
        match self {
            CacheAttr::Hit => "hit",
            CacheAttr::Miss => "miss",
            CacheAttr::Off => "off",
        }
    }
}

/// One structured event. The deterministic fields (everything except
/// durations and [`QueryPerf`]) render into the `events` section; timing
/// and attribution render into `perf` under the same span id.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A pipeline run begins (one per analyzed program; a suite trace
    /// holds several segments, each opened by one of these).
    Pipeline {
        /// Subroutine name of the primal.
        program: String,
        /// Differentiation inputs.
        independents: Vec<String>,
        /// Differentiation outputs.
        dependents: Vec<String>,
    },
    /// A named phase finished. Pipeline-level ids are `phase/{name}`,
    /// region-level ids `r{k}/phase/{name}`.
    Phase {
        /// Span id (doubles as the phase name).
        id: String,
        /// Wall-clock duration (perf section only).
        dur_us: u64,
    },
    /// A parallel region's analysis begins.
    RegionBegin {
        /// Pre-order region index.
        region: usize,
        /// Parallel loop counter variable.
        loop_var: String,
        /// Statements in the region.
        loc: usize,
    },
    /// Knowledge model assembled (phase 1 done).
    Model {
        region: usize,
        /// Assertions in the model (roots + facts).
        model_size: usize,
        /// Distinct index-expression tuples.
        unique_exprs: usize,
        /// Root assertions (counter disjointness, strides).
        roots: usize,
        /// Extracted disjointness facts.
        facts: usize,
    },
    /// `buildModel` satisfiability safeguard for one context (§5.5).
    RaceCheck {
        region: usize,
        /// Context index checked.
        ctx: usize,
        /// `sat` (expected), `unsat` (primal race suspected),
        /// `unknown: …`, or `panicked`.
        verdict: String,
    },
    /// A candidate array enters the per-array proof fan-out.
    ArrayBegin {
        region: usize,
        array: String,
        /// Adjoint write tuples to prove disjoint.
        writes: usize,
        /// Adjoint reference tuples they are checked against.
        entries: usize,
    },
    /// A conflict pair answered without a prover call: the knowledge base
    /// contains `primed(write) ≠ entry` verbatim at a usable site.
    PairSkipped {
        region: usize,
        array: String,
        /// Per-array skip sequence number.
        seq: usize,
        write: String,
        entry: String,
    },
    /// One prover query for one conflict pair.
    Query {
        region: usize,
        array: String,
        /// Per-array query sequence number (monotonic across attempts).
        seq: usize,
        /// Retry-ladder rung that issued the query.
        attempt: u32,
        write: String,
        entry: String,
        /// `unsat` (pair disjoint), `sat` (conflict), or `unknown: …`
        /// with the governor's stop reason.
        verdict: String,
        /// Volatile measurements (perf section only).
        perf: QueryPerf,
    },
    /// One rung of the escalating retry ladder finished.
    Attempt {
        region: usize,
        array: String,
        attempt: u32,
        /// LIA-call budget of this rung.
        max_lia_calls: u64,
        /// Branch budget of this rung.
        max_branches: u64,
        /// `safe`, `conflict`, `normalization-failed`, `unknown: …`, or
        /// `panicked`.
        outcome: String,
    },
    /// Final per-array decision, with the PR-1 provenance rung.
    Decision {
        region: usize,
        array: String,
        /// `shared` or `guarded`.
        decision: String,
        /// [`crate::Provenance::tag`].
        provenance: String,
        /// Guard reason (empty for `shared`).
        reason: String,
    },
    /// A region's analysis finished.
    RegionEnd {
        region: usize,
        /// Prover checks issued in the region.
        queries: u64,
        /// Diagnostics recorded.
        warnings: usize,
        /// Wall-clock duration (perf section only).
        dur_us: u64,
    },
}

impl TraceEvent {
    /// Span id: unique within one pipeline segment.
    pub fn id(&self) -> String {
        match self {
            TraceEvent::Pipeline { .. } => "pipeline".to_string(),
            TraceEvent::Phase { id, .. } => id.clone(),
            TraceEvent::RegionBegin { region, .. } => format!("r{region}"),
            TraceEvent::Model { region, .. } => format!("r{region}/model"),
            TraceEvent::RaceCheck { region, ctx, .. } => format!("r{region}/ctx{ctx}"),
            TraceEvent::ArrayBegin { region, array, .. } => format!("r{region}/{array}"),
            TraceEvent::PairSkipped {
                region, array, seq, ..
            } => format!("r{region}/{array}/s{seq}"),
            TraceEvent::Query {
                region, array, seq, ..
            } => format!("r{region}/{array}/q{seq}"),
            TraceEvent::Attempt {
                region,
                array,
                attempt,
                ..
            } => format!("r{region}/{array}/t{attempt}"),
            TraceEvent::Decision { region, array, .. } => format!("r{region}/{array}/decision"),
            TraceEvent::RegionEnd { region, .. } => format!("r{region}/end"),
        }
    }

    /// Event discriminator in the JSON document.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Pipeline { .. } => "pipeline",
            TraceEvent::Phase { .. } => "phase",
            TraceEvent::RegionBegin { .. } => "region-begin",
            TraceEvent::Model { .. } => "model",
            TraceEvent::RaceCheck { .. } => "race-check",
            TraceEvent::ArrayBegin { .. } => "array-begin",
            TraceEvent::PairSkipped { .. } => "pair-skipped",
            TraceEvent::Query { .. } => "query",
            TraceEvent::Attempt { .. } => "attempt",
            TraceEvent::Decision { .. } => "decision",
            TraceEvent::RegionEnd { .. } => "region-end",
        }
    }

    /// Deterministic JSON object for the `events` section — no timing,
    /// no stats deltas, no cache attribution.
    fn event_json(&self) -> String {
        let mut o = JObj::new(self.kind(), &self.id());
        match self {
            TraceEvent::Pipeline {
                program,
                independents,
                dependents,
            } => {
                o.str("program", program);
                o.str_list("independents", independents);
                o.str_list("dependents", dependents);
            }
            TraceEvent::Phase { .. } => {}
            TraceEvent::RegionBegin {
                region,
                loop_var,
                loc,
            } => {
                o.num("region", *region as u64);
                o.str("loop_var", loop_var);
                o.num("loc", *loc as u64);
            }
            TraceEvent::Model {
                region,
                model_size,
                unique_exprs,
                roots,
                facts,
            } => {
                o.num("region", *region as u64);
                o.num("model_size", *model_size as u64);
                o.num("unique_exprs", *unique_exprs as u64);
                o.num("roots", *roots as u64);
                o.num("facts", *facts as u64);
            }
            TraceEvent::RaceCheck {
                region,
                ctx,
                verdict,
            } => {
                o.num("region", *region as u64);
                o.num("ctx", *ctx as u64);
                o.str("verdict", verdict);
            }
            TraceEvent::ArrayBegin {
                region,
                array,
                writes,
                entries,
            } => {
                o.num("region", *region as u64);
                o.str("array", array);
                o.num("writes", *writes as u64);
                o.num("entries", *entries as u64);
            }
            TraceEvent::PairSkipped {
                region,
                array,
                write,
                entry,
                ..
            } => {
                o.num("region", *region as u64);
                o.str("array", array);
                o.str("write", write);
                o.str("entry", entry);
            }
            TraceEvent::Query {
                region,
                array,
                attempt,
                write,
                entry,
                verdict,
                ..
            } => {
                o.num("region", *region as u64);
                o.str("array", array);
                o.num("attempt", u64::from(*attempt));
                o.str("write", write);
                o.str("entry", entry);
                o.str("verdict", verdict);
            }
            TraceEvent::Attempt {
                region,
                array,
                attempt,
                max_lia_calls,
                max_branches,
                outcome,
            } => {
                o.num("region", *region as u64);
                o.str("array", array);
                o.num("attempt", u64::from(*attempt));
                o.num("max_lia_calls", *max_lia_calls);
                o.num("max_branches", *max_branches);
                o.str("outcome", outcome);
            }
            TraceEvent::Decision {
                region,
                array,
                decision,
                provenance,
                reason,
            } => {
                o.num("region", *region as u64);
                o.str("array", array);
                o.str("decision", decision);
                o.str("provenance", provenance);
                o.str("reason", reason);
            }
            TraceEvent::RegionEnd {
                region,
                queries,
                warnings,
                ..
            } => {
                o.num("region", *region as u64);
                o.num("queries", *queries);
                o.num("warnings", *warnings as u64);
            }
        }
        o.finish()
    }

    /// `perf` entry for events that carry volatile measurements.
    fn perf_json(&self) -> Option<String> {
        match self {
            TraceEvent::Phase { id, dur_us } => {
                let mut o = JObj::bare(id);
                o.num("dur_us", *dur_us);
                Some(o.finish())
            }
            TraceEvent::Query { perf, .. } => {
                let mut o = JObj::bare(&self.id());
                o.num("dur_us", perf.dur_us);
                o.num("lia_calls", perf.lia_calls);
                o.num("branches", perf.branches);
                o.num("propagations", perf.propagations);
                o.num("conflicts", perf.conflicts);
                o.str("cache", perf.cache.label());
                Some(o.finish())
            }
            TraceEvent::RegionEnd { dur_us, .. } => {
                let mut o = JObj::bare(&self.id());
                o.num("dur_us", *dur_us);
                Some(o.finish())
            }
            _ => None,
        }
    }
}

/// Shared, clonable event collector. Workers buffer events privately and
/// the coordinator [`TraceSink::extend`]s the buffers in candidate order,
/// so the recorded stream is deterministic for every job count; the
/// mutex is only ever contended at merge points, never per event.
#[derive(Debug, Clone, Default)]
pub struct TraceSink {
    inner: Arc<Mutex<Vec<TraceEvent>>>,
}

impl TraceSink {
    /// Fresh empty sink.
    pub fn new() -> TraceSink {
        TraceSink::default()
    }

    /// Append one event.
    pub fn record(&self, e: TraceEvent) {
        if let Ok(mut v) = self.inner.lock() {
            v.push(e);
        }
    }

    /// Append a worker's buffered events in order.
    pub fn extend(&self, events: Vec<TraceEvent>) {
        if let Ok(mut v) = self.inner.lock() {
            v.extend(events);
        }
    }

    /// Copy out everything recorded so far.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.inner.lock().map(|v| v.clone()).unwrap_or_default()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.inner.lock().map(|v| v.len()).unwrap_or(0)
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------
// JSON rendering.
// ---------------------------------------------------------------------

/// Escape `s` into a JSON string literal (with quotes).
fn jstr(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Ordered-field JSON object builder.
struct JObj {
    body: String,
}

impl JObj {
    /// Object opened with the standard `"ev"`/`"id"` pair.
    fn new(ev: &str, id: &str) -> JObj {
        JObj {
            body: format!("{{\"ev\": {}, \"id\": {}", jstr(ev), jstr(id)),
        }
    }

    /// Object opened with only an `"id"` (perf entries).
    fn bare(id: &str) -> JObj {
        JObj {
            body: format!("{{\"id\": {}", jstr(id)),
        }
    }

    fn str(&mut self, key: &str, val: &str) {
        self.body
            .push_str(&format!(", {}: {}", jstr(key), jstr(val)));
    }

    fn num(&mut self, key: &str, val: u64) {
        self.body.push_str(&format!(", {}: {val}", jstr(key)));
    }

    fn str_list(&mut self, key: &str, vals: &[String]) {
        let items: Vec<String> = vals.iter().map(|v| jstr(v)).collect();
        self.body
            .push_str(&format!(", {}: [{}]", jstr(key), items.join(", ")));
    }

    fn finish(mut self) -> String {
        self.body.push('}');
        self.body
    }
}

/// The deterministic `events` section alone (one JSON array). Tests use
/// this to assert byte-identity across `--jobs` and cache settings.
pub fn deterministic_json(events: &[TraceEvent]) -> String {
    let mut s = String::from("[\n");
    for (k, e) in events.iter().enumerate() {
        s.push_str("    ");
        s.push_str(&e.event_json());
        if k + 1 < events.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("  ]");
    s
}

/// Render the full versioned trace document.
pub fn trace_json(events: &[TraceEvent]) -> String {
    let perf: Vec<String> = events.iter().filter_map(TraceEvent::perf_json).collect();
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"schema\": {},\n", jstr(TRACE_SCHEMA)));
    s.push_str(&format!("  \"events\": {},\n", deterministic_json(events)));
    s.push_str("  \"perf\": [\n");
    for (k, p) in perf.iter().enumerate() {
        s.push_str("    ");
        s.push_str(p);
        if k + 1 < perf.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("  ]\n}\n");
    s
}

// ---------------------------------------------------------------------
// Human-readable proof narrative (`formad explain`).
// ---------------------------------------------------------------------

/// Render a per-array proof narrative from a recorded event stream.
/// `array` filters to one adjoint array; `None` explains every decision.
pub fn explain(events: &[TraceEvent], array: Option<&str>) -> String {
    use std::collections::HashMap;
    use std::fmt::Write;

    // Pre-rendered proof steps per (region, array), in event order.
    let mut steps: HashMap<(usize, String), Vec<String>> = HashMap::new();
    // Region header info.
    let mut region_meta: HashMap<usize, (String, usize)> = HashMap::new();
    let mut region_model: HashMap<usize, (usize, usize, usize, usize)> = HashMap::new();
    for e in events {
        match e {
            TraceEvent::RegionBegin {
                region,
                loop_var,
                loc,
            } => {
                region_meta.insert(*region, (loop_var.clone(), *loc));
            }
            TraceEvent::Model {
                region,
                model_size,
                unique_exprs,
                roots,
                facts,
            } => {
                region_model.insert(*region, (*model_size, *unique_exprs, *roots, *facts));
            }
            TraceEvent::ArrayBegin {
                region,
                array,
                writes,
                entries,
            } => {
                steps
                    .entry((*region, array.clone()))
                    .or_default()
                    .push(format!(
                    "conflict pairs: {writes} adjoint write tuple(s) × {entries} reference tuple(s)"
                ));
            }
            TraceEvent::PairSkipped {
                region,
                array,
                write,
                entry,
                ..
            } => {
                steps.entry((*region, array.clone())).or_default().push(format!(
                    "skipped: primed({write}) = ({entry}) — contradicted verbatim by a knowledge-base fact"
                ));
            }
            TraceEvent::Query {
                region,
                array,
                seq,
                write,
                entry,
                verdict,
                ..
            } => {
                steps
                    .entry((*region, array.clone()))
                    .or_default()
                    .push(format!(
                        "query q{seq}: primed({write}) = ({entry}) → {verdict}"
                    ));
            }
            TraceEvent::Attempt {
                region,
                array,
                attempt,
                max_lia_calls,
                max_branches,
                outcome,
            } => {
                steps
                    .entry((*region, array.clone()))
                    .or_default()
                    .push(format!(
                        "attempt {attempt} (≤{max_lia_calls} lia calls, \
                         ≤{max_branches} branches): {outcome}"
                    ));
            }
            _ => {}
        }
    }

    let mut s = String::new();
    let mut matched = false;
    for e in events {
        let TraceEvent::Decision {
            region,
            array: arr,
            decision,
            provenance,
            reason,
        } = e
        else {
            continue;
        };
        if let Some(want) = array {
            if arr != want {
                continue;
            }
        }
        matched = true;
        let (loop_var, loc) = region_meta
            .get(region)
            .cloned()
            .unwrap_or_else(|| ("?".into(), 0));
        let _ = writeln!(
            s,
            "proof narrative for `{arr}` (region {region}, parallel do {loop_var}, {loc} stmts):"
        );
        if let Some((size, exprs, roots, facts)) = region_model.get(region) {
            let _ = writeln!(
                s,
                "  knowledge model: {size} assertions ({roots} root(s) + {facts} fact(s)), \
                 {exprs} unique index expressions"
            );
        }
        match steps.get(&(*region, arr.clone())) {
            Some(lines) => {
                for line in lines {
                    let _ = writeln!(s, "  {line}");
                }
            }
            None => {
                let _ = writeln!(s, "  no prover queries were needed");
            }
        }
        let verdict = match decision.as_str() {
            "shared" => "shared (no atomics needed)".to_string(),
            _ => format!("guarded — {reason}"),
        };
        let _ = writeln!(s, "  decision: {verdict} [{provenance}]");
    }
    if !matched {
        match array {
            Some(a) => {
                let _ = writeln!(s, "no decision recorded for array `{a}`");
            }
            None => {
                let _ = writeln!(s, "no decisions recorded");
            }
        }
    }
    s
}

// ---------------------------------------------------------------------
// Schema validation (hand-rolled JSON reader; no serde in the workspace).
// ---------------------------------------------------------------------

/// Minimal JSON value for validation.
#[derive(Debug, Clone, PartialEq)]
enum JVal {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JVal>),
    Obj(Vec<(String, JVal)>),
}

impl JVal {
    fn get<'a>(&'a self, key: &str) -> Option<&'a JVal> {
        match self {
            JVal::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            JVal::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            JVal::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[JVal]> {
        match self {
            JVal::Arr(v) => Some(v),
            _ => None,
        }
    }
}

struct JParser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> JParser<'a> {
    fn new(src: &'a str) -> JParser<'a> {
        JParser {
            b: src.as_bytes(),
            i: 0,
        }
    }

    fn err(&self, msg: &str) -> String {
        format!("trace JSON invalid at byte {}: {msg}", self.i)
    }

    fn skip_ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", c as char)))
        }
    }

    fn value(&mut self) -> Result<JVal, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JVal::Str(self.string()?)),
            Some(b't') => self.literal("true", JVal::Bool(true)),
            Some(b'f') => self.literal("false", JVal::Bool(false)),
            Some(b'n') => self.literal("null", JVal::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, word: &str, val: JVal) -> Result<JVal, String> {
        self.skip_ws();
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(val)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn number(&mut self) -> Result<JVal, String> {
        self.skip_ws();
        let start = self.i;
        while self.i < self.b.len()
            && matches!(
                self.b[self.i],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(JVal::Num)
            .ok_or_else(|| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&c) = self.b.get(self.i) else {
                return Err(self.err("unterminated string"));
            };
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&e) = self.b.get(self.i) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.i..self.i + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("malformed \\u escape"))?;
                            self.i += 4;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting at c.
                    let start = self.i - 1;
                    let len = match c {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .b
                        .get(start..start + len)
                        .and_then(|s| std::str::from_utf8(s).ok())
                        .ok_or_else(|| self.err("invalid UTF-8"))?;
                    out.push_str(chunk);
                    self.i = start + len;
                }
            }
        }
    }

    fn array(&mut self) -> Result<JVal, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(JVal::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(JVal::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<JVal, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(JVal::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(JVal::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn document(mut self) -> Result<JVal, String> {
        let v = self.value()?;
        self.skip_ws();
        if self.i != self.b.len() {
            return Err(self.err("trailing content"));
        }
        Ok(v)
    }
}

/// One `decision` event as seen by the validator, for cross-checking a
/// trace against the textual report.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceDecision {
    pub region: u64,
    pub array: String,
    /// `shared` or `guarded`.
    pub decision: String,
    /// Provenance tag.
    pub provenance: String,
    /// Guard reason (empty for `shared`).
    pub reason: String,
}

/// What [`validate_trace`] learned about a valid document.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// Total events.
    pub events: usize,
    /// `query` events.
    pub queries: usize,
    /// Pipeline segments (`pipeline` events).
    pub pipelines: usize,
    /// Every per-array decision, in recorded order.
    pub decisions: Vec<TraceDecision>,
}

fn need_str(o: &JVal, key: &str, at: &str) -> Result<String, String> {
    o.get(key)
        .and_then(JVal::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("{at}: missing string field `{key}`"))
}

fn need_num(o: &JVal, key: &str, at: &str) -> Result<u64, String> {
    o.get(key)
        .and_then(JVal::as_u64)
        .ok_or_else(|| format!("{at}: missing integer field `{key}`"))
}

fn need_str_list(o: &JVal, key: &str, at: &str) -> Result<(), String> {
    let arr = o
        .get(key)
        .and_then(JVal::as_arr)
        .ok_or_else(|| format!("{at}: missing array field `{key}`"))?;
    if arr.iter().all(|v| matches!(v, JVal::Str(_))) {
        Ok(())
    } else {
        Err(format!("{at}: `{key}` must contain only strings"))
    }
}

const PROVENANCE_TAGS: [&str; 5] = [
    "proved",
    "refuted",
    "budget-exhausted",
    "timed-out",
    "recovered",
];

/// Validate a rendered trace document against [`TRACE_SCHEMA`]: the
/// schema tag, per-event required fields, span-id uniqueness within each
/// pipeline segment, and that every `perf` entry references a recorded
/// event id.
pub fn validate_trace(src: &str) -> Result<TraceSummary, String> {
    let doc = JParser::new(src).document()?;
    let schema = need_str(&doc, "schema", "document")?;
    if schema != TRACE_SCHEMA {
        return Err(format!(
            "unsupported schema `{schema}` (expected `{TRACE_SCHEMA}`)"
        ));
    }
    let events = doc
        .get("events")
        .and_then(JVal::as_arr)
        .ok_or("document: missing `events` array")?;
    let perf = doc
        .get("perf")
        .and_then(JVal::as_arr)
        .ok_or("document: missing `perf` array")?;

    let mut summary = TraceSummary {
        events: events.len(),
        queries: 0,
        pipelines: 0,
        decisions: Vec::new(),
    };
    let mut all_ids: std::collections::HashSet<String> = std::collections::HashSet::new();
    let mut segment_ids: std::collections::HashSet<String> = std::collections::HashSet::new();
    for (k, e) in events.iter().enumerate() {
        let at = format!("events[{k}]");
        let ev = need_str(e, "ev", &at)?;
        let id = need_str(e, "id", &at)?;
        if ev == "pipeline" {
            // A new segment: region/array ids may legally repeat.
            segment_ids.clear();
            summary.pipelines += 1;
        }
        if !segment_ids.insert(id.clone()) {
            return Err(format!("{at}: duplicate span id `{id}` within a segment"));
        }
        all_ids.insert(id);
        match ev.as_str() {
            "pipeline" => {
                need_str(e, "program", &at)?;
                need_str_list(e, "independents", &at)?;
                need_str_list(e, "dependents", &at)?;
            }
            "phase" => {}
            "region-begin" => {
                need_num(e, "region", &at)?;
                need_str(e, "loop_var", &at)?;
                need_num(e, "loc", &at)?;
            }
            "model" => {
                need_num(e, "region", &at)?;
                for f in ["model_size", "unique_exprs", "roots", "facts"] {
                    need_num(e, f, &at)?;
                }
            }
            "race-check" => {
                need_num(e, "region", &at)?;
                need_num(e, "ctx", &at)?;
                need_str(e, "verdict", &at)?;
            }
            "array-begin" => {
                need_num(e, "region", &at)?;
                need_str(e, "array", &at)?;
                need_num(e, "writes", &at)?;
                need_num(e, "entries", &at)?;
            }
            "pair-skipped" => {
                need_num(e, "region", &at)?;
                need_str(e, "array", &at)?;
                need_str(e, "write", &at)?;
                need_str(e, "entry", &at)?;
            }
            "query" => {
                summary.queries += 1;
                need_num(e, "region", &at)?;
                need_str(e, "array", &at)?;
                need_num(e, "attempt", &at)?;
                need_str(e, "write", &at)?;
                need_str(e, "entry", &at)?;
                let v = need_str(e, "verdict", &at)?;
                if v != "sat" && v != "unsat" && !v.starts_with("unknown") {
                    return Err(format!("{at}: bad query verdict `{v}`"));
                }
            }
            "attempt" => {
                need_num(e, "region", &at)?;
                need_str(e, "array", &at)?;
                need_num(e, "attempt", &at)?;
                need_num(e, "max_lia_calls", &at)?;
                need_num(e, "max_branches", &at)?;
                need_str(e, "outcome", &at)?;
            }
            "decision" => {
                let d = TraceDecision {
                    region: need_num(e, "region", &at)?,
                    array: need_str(e, "array", &at)?,
                    decision: need_str(e, "decision", &at)?,
                    provenance: need_str(e, "provenance", &at)?,
                    reason: need_str(e, "reason", &at)?,
                };
                if d.decision != "shared" && d.decision != "guarded" {
                    return Err(format!("{at}: bad decision `{}`", d.decision));
                }
                if !PROVENANCE_TAGS.contains(&d.provenance.as_str()) {
                    return Err(format!("{at}: bad provenance `{}`", d.provenance));
                }
                summary.decisions.push(d);
            }
            "region-end" => {
                need_num(e, "region", &at)?;
                need_num(e, "queries", &at)?;
                need_num(e, "warnings", &at)?;
            }
            other => return Err(format!("{at}: unknown event kind `{other}`")),
        }
    }
    for (k, p) in perf.iter().enumerate() {
        let at = format!("perf[{k}]");
        let id = need_str(p, "id", &at)?;
        if !all_ids.contains(&id) {
            return Err(format!("{at}: id `{id}` matches no recorded event"));
        }
        need_num(p, "dur_us", &at)?;
        if let Some(c) = p.get("cache") {
            let c = c
                .as_str()
                .ok_or_else(|| format!("{at}: `cache` must be a string"))?;
            if !matches!(c, "hit" | "miss" | "off") {
                return Err(format!("{at}: bad cache attribution `{c}`"));
            }
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Pipeline {
                program: "fig2".into(),
                independents: vec!["x".into()],
                dependents: vec!["y".into()],
            },
            TraceEvent::RegionBegin {
                region: 0,
                loop_var: "i".into(),
                loc: 1,
            },
            TraceEvent::Model {
                region: 0,
                model_size: 5,
                unique_exprs: 2,
                roots: 1,
                facts: 4,
            },
            TraceEvent::RaceCheck {
                region: 0,
                ctx: 0,
                verdict: "sat".into(),
            },
            TraceEvent::Phase {
                id: "r0/phase/extract".into(),
                dur_us: 42,
            },
            TraceEvent::ArrayBegin {
                region: 0,
                array: "x".into(),
                writes: 1,
                entries: 1,
            },
            TraceEvent::Query {
                region: 0,
                array: "x".into(),
                seq: 0,
                attempt: 0,
                write: "c(i$1) + 7".into(),
                entry: "c(i$1) + 7".into(),
                verdict: "unsat".into(),
                perf: QueryPerf {
                    dur_us: 7,
                    lia_calls: 3,
                    branches: 1,
                    propagations: 0,
                    conflicts: 0,
                    cache: CacheAttr::Miss,
                },
            },
            TraceEvent::Attempt {
                region: 0,
                array: "x".into(),
                attempt: 0,
                max_lia_calls: 10_000,
                max_branches: 50_000,
                outcome: "safe".into(),
            },
            TraceEvent::Decision {
                region: 0,
                array: "x".into(),
                decision: "shared".into(),
                provenance: "proved".into(),
                reason: String::new(),
            },
            TraceEvent::RegionEnd {
                region: 0,
                queries: 1,
                warnings: 0,
                dur_us: 99,
            },
        ]
    }

    #[test]
    fn rendered_trace_validates() {
        let doc = trace_json(&sample_events());
        let sum = validate_trace(&doc).expect("valid trace");
        assert_eq!(sum.queries, 1);
        assert_eq!(sum.pipelines, 1);
        assert_eq!(sum.decisions.len(), 1);
        assert_eq!(sum.decisions[0].array, "x");
        assert_eq!(sum.decisions[0].decision, "shared");
        assert_eq!(sum.decisions[0].provenance, "proved");
    }

    #[test]
    fn deterministic_section_hides_perf() {
        let mut events = sample_events();
        let before = deterministic_json(&events);
        // Mutate every volatile field; the deterministic render must not move.
        for e in &mut events {
            match e {
                TraceEvent::Phase { dur_us, .. } | TraceEvent::RegionEnd { dur_us, .. } => {
                    *dur_us += 1000;
                }
                TraceEvent::Query { perf, .. } => {
                    perf.dur_us += 1000;
                    perf.lia_calls = 0;
                    perf.cache = CacheAttr::Hit;
                }
                _ => {}
            }
        }
        assert_eq!(before, deterministic_json(&events));
        assert_ne!(trace_json(&sample_events()), trace_json(&events));
    }

    #[test]
    fn validator_rejects_drift() {
        let good = trace_json(&sample_events());
        assert!(validate_trace(&good.replace("formad-trace/v1", "formad-trace/v0")).is_err());
        assert!(
            validate_trace(&good.replace("\"verdict\": \"unsat\"", "\"verdict\": \"maybe\""))
                .is_err()
        );
        assert!(validate_trace(
            &good.replace("\"provenance\": \"proved\"", "\"provenance\": \"x\"")
        )
        .is_err());
        assert!(validate_trace("{").is_err());
        assert!(validate_trace("[]").is_err());
    }

    #[test]
    fn duplicate_ids_rejected_within_segment_allowed_across() {
        let mut events = sample_events();
        events.push(TraceEvent::RegionBegin {
            region: 0,
            loop_var: "i".into(),
            loc: 1,
        });
        assert!(validate_trace(&trace_json(&events)).is_err());
        // A second pipeline segment legally reuses region ids.
        let mut two = sample_events();
        two.extend(sample_events());
        let sum = validate_trace(&trace_json(&two)).expect("two segments");
        assert_eq!(sum.pipelines, 2);
    }

    #[test]
    fn string_escaping_round_trips() {
        let events = vec![TraceEvent::Pipeline {
            program: "we\"ird\\name\nwith\tctl\u{1}".into(),
            independents: vec![],
            dependents: vec![],
        }];
        let doc = trace_json(&events);
        validate_trace(&doc).expect("escaped strings stay valid");
    }

    #[test]
    fn explain_narrates_decisions() {
        let text = explain(&sample_events(), Some("x"));
        assert!(text.contains("proof narrative for `x`"));
        assert!(text.contains("query q0"));
        assert!(text.contains("decision: shared (no atomics needed) [proved]"));
        assert!(explain(&sample_events(), Some("nope")).contains("no decision recorded"));
    }
}
