//! Translation of array index expressions into prover terms (paper §6).
//!
//! Loop counters of the parallel loop keep their bare name (the root
//! assertion `i ≠ i'` refers to it); every other scalar is tagged with its
//! *instance number* (§5.2) so that two textually identical uses separated
//! by an overwrite become distinct symbols. Integer-array reads inside
//! indices (`c(i)`, `mss(1, ig, k12)`) become uninterpreted applications.
//! Privatized variables are *primed* on one side of each pair (§5.3) by a
//! renaming pass over the resulting term.

use std::collections::HashSet;

use formad_analysis::{Instances, NodeId};
use formad_ir::{BinOp, Expr, UnOp};
use formad_smt::Term;

/// Why an index expression could not be translated.
#[derive(Debug, Clone, PartialEq)]
pub enum Taint {
    /// The expression reads an array that is written inside the region, so
    /// its value is not stable across the region (treated as unanalyzable;
    /// FormAD keeps the safeguards).
    MutatedIndexArray(String),
    /// A construct with no integer-term semantics (real literal/intrinsic).
    NonInteger(String),
}

/// Context for translating index expressions of one parallel region.
pub struct Translator<'a> {
    /// Instance numbering of the region's CFG.
    pub instances: &'a Instances,
    /// Parallel loop counter (kept as a bare symbol).
    pub counter: &'a str,
    /// Arrays written anywhere in the region (index reads of these taint).
    pub written_arrays: &'a HashSet<String>,
    /// Privatized scalars (clause privates + in-body assigned scalars +
    /// inner loop counters); these are primed on one side of a pair.
    pub privatized: &'a HashSet<String>,
}

impl<'a> Translator<'a> {
    /// Symbol for a scalar at a node: `name` when instance 0, else
    /// `name@k`.
    fn sym_at(&self, name: &str, node: NodeId) -> String {
        if name == self.counter {
            return name.to_string();
        }
        let inst = self.instances.instance(node, name);
        if inst == 0 {
            name.to_string()
        } else {
            format!("{name}@{inst}")
        }
    }

    /// Translate one index expression located at CFG node `node`.
    pub fn term(&self, e: &Expr, node: NodeId) -> Result<Term, Taint> {
        Ok(match e {
            Expr::IntLit(v) => Term::Int(*v),
            Expr::RealLit(v) => {
                return Err(Taint::NonInteger(format!("real literal {v}")));
            }
            Expr::Var(n) => Term::sym(self.sym_at(n, node)),
            Expr::Index { array, indices } => {
                if self.written_arrays.contains(array) {
                    return Err(Taint::MutatedIndexArray(array.clone()));
                }
                let args: Result<Vec<Term>, Taint> =
                    indices.iter().map(|ix| self.term(ix, node)).collect();
                Term::App(array.clone(), args?)
            }
            Expr::Unary { op: UnOp::Neg, arg } => Term::Neg(Box::new(self.term(arg, node)?)),
            Expr::Binary { op, lhs, rhs } => {
                let a = Box::new(self.term(lhs, node)?);
                let b = Box::new(self.term(rhs, node)?);
                match op {
                    BinOp::Add => Term::Add(a, b),
                    BinOp::Sub => Term::Sub(a, b),
                    BinOp::Mul => Term::Mul(a, b),
                    BinOp::Div => Term::Div(a, b),
                    BinOp::Mod => Term::Mod(a, b),
                    BinOp::Pow => {
                        return Err(Taint::NonInteger("exponentiation in index".into()));
                    }
                }
            }
            Expr::Call { func, .. } => {
                return Err(Taint::NonInteger(format!(
                    "intrinsic {} in index",
                    func.name()
                )));
            }
        })
    }

    /// Translate a full index tuple.
    pub fn tuple(&self, indices: &[Expr], node: NodeId) -> Result<Vec<Term>, Taint> {
        indices.iter().map(|e| self.term(e, node)).collect()
    }

    /// Prime every privatized symbol in `t` (append `'`), including the
    /// parallel loop counter. Instance suffixes are preserved
    /// (`w@2 → w@2'`).
    pub fn prime(&self, t: &Term) -> Term {
        t.rename_syms(
            &|name: &str| {
                let base = name.split('@').next().unwrap_or(name);
                if base == self.counter || self.privatized.contains(base) {
                    format!("{name}'")
                } else {
                    name.to_string()
                }
            },
            false,
        )
    }

    /// Prime a tuple.
    pub fn prime_tuple(&self, ts: &[Term]) -> Vec<Term> {
        ts.iter().map(|t| self.prime(t)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use formad_analysis::{Cfg, Instances};
    use formad_ir::parse_program;

    fn setup(src: &str) -> (Vec<formad_ir::Stmt>,) {
        let p = parse_program(src).unwrap();
        let l = p.parallel_loops()[0].clone();
        (l.body,)
    }

    #[test]
    fn fig2_translation_and_priming() {
        let (body,) = setup(
            r#"
subroutine fig2(n, x, y, c)
  integer, intent(in) :: n
  real, intent(in) :: x(n)
  real, intent(inout) :: y(n)
  integer, intent(in) :: c(n)
  integer :: i
  !$omp parallel do shared(x, y, c)
  do i = 1, n
    y(c(i)) = x(c(i) + 7)
  end do
end subroutine
"#,
        );
        let cfg = Cfg::build(&body);
        let inst = Instances::analyze(&cfg);
        let written: HashSet<String> = HashSet::new();
        let privatized: HashSet<String> = HashSet::new();
        let tr = Translator {
            instances: &inst,
            counter: "i",
            written_arrays: &written,
            privatized: &privatized,
        };
        // Find the statement node.
        let node = (0..cfg.len())
            .find(|&n| matches!(cfg.nodes[n], formad_analysis::NodeKind::Simple(_)))
            .unwrap();
        let e = formad_ir::parse_expr("c(i) + 7").unwrap();
        let t = tr.term(&e, node).unwrap();
        assert_eq!(t.to_string(), "(c(i) + 7)");
        let p = tr.prime(&t);
        assert_eq!(p.to_string(), "(c(i') + 7)");
    }

    #[test]
    fn written_index_array_taints() {
        let (body,) = setup(
            r#"
subroutine t(n, c, y)
  integer, intent(in) :: n
  integer, intent(inout) :: c(n)
  real, intent(inout) :: y(n)
  integer :: i
  !$omp parallel do shared(c, y)
  do i = 1, n
    c(i) = i
    y(c(i)) = 1.0
  end do
end subroutine
"#,
        );
        let cfg = Cfg::build(&body);
        let inst = Instances::analyze(&cfg);
        let written: HashSet<String> = HashSet::from(["c".to_string()]);
        let privatized = HashSet::new();
        let tr = Translator {
            instances: &inst,
            counter: "i",
            written_arrays: &written,
            privatized: &privatized,
        };
        let e = formad_ir::parse_expr("c(i)").unwrap();
        assert_eq!(
            tr.term(&e, 2),
            Err(Taint::MutatedIndexArray("c".to_string()))
        );
    }

    #[test]
    fn instanced_scalar_naming_and_priming() {
        let (body,) = setup(
            r#"
subroutine t(n, mss, y)
  integer, intent(in) :: n
  integer, intent(in) :: mss(n)
  real, intent(inout) :: y(n)
  integer :: i, idd
  !$omp parallel do shared(mss, y) private(idd)
  do i = 1, n
    idd = mss(i)
    y(idd) = 1.0
  end do
end subroutine
"#,
        );
        let cfg = Cfg::build(&body);
        let inst = Instances::analyze(&cfg);
        let written = HashSet::new();
        let privatized: HashSet<String> = HashSet::from(["idd".to_string()]);
        let tr = Translator {
            instances: &inst,
            counter: "i",
            written_arrays: &written,
            privatized: &privatized,
        };
        // idd at the y(idd) node has a non-zero instance (defined at the
        // previous statement).
        let y_node = (0..cfg.len())
            .filter(|&n| matches!(cfg.nodes[n], formad_analysis::NodeKind::Simple(_)))
            .nth(1)
            .unwrap();
        let e = formad_ir::parse_expr("idd").unwrap();
        let t = tr.term(&e, y_node).unwrap();
        assert!(t.to_string().starts_with("idd@"), "{t}");
        let p = tr.prime(&t);
        assert!(p.to_string().ends_with('\''), "{p}");
    }

    #[test]
    fn shared_scalars_not_primed() {
        let written = HashSet::new();
        let privatized = HashSet::new();
        let (body,) = setup(
            r#"
subroutine t(n, y)
  integer, intent(in) :: n
  real, intent(inout) :: y(n)
  integer :: i
  !$omp parallel do shared(y)
  do i = 1, n
    y(i + n) = 1.0
  end do
end subroutine
"#,
        );
        let cfg = Cfg::build(&body);
        let inst = Instances::analyze(&cfg);
        let tr = Translator {
            instances: &inst,
            counter: "i",
            written_arrays: &written,
            privatized: &privatized,
        };
        let e = formad_ir::parse_expr("i + n").unwrap();
        let t = tr.term(&e, 2).unwrap();
        let p = tr.prime(&t);
        assert_eq!(p.to_string(), "(i' + n)");
    }
}
