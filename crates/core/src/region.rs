//! Per-parallel-region analysis: knowledge extraction (§5, phase 1) and
//! knowledge exploitation (§5, phase 2).
//!
//! **Extraction.** The primal parallel loop is assumed correctly
//! parallelized, so for every pair of references to one array — at least
//! one a write — the index tuples are disjoint across distinct iterations.
//! Each such pair becomes an assertion `primed(w) ≠ e` in the knowledge
//! base, attached to the innermost of the two references' contexts. After
//! each context's model is assembled it is checked satisfiable, mirroring
//! the `assert(model.check() == SAT)` safeguard of the paper's
//! `buildModel`: an unsatisfiable knowledge base means the primal has a
//! data race (or FormAD has a bug), and the whole region is demoted to
//! guarded mode with a warning.
//!
//! **Exploitation.** For every active shared array the adjoint will
//! touch, the candidate conflict pairs of its *adjoint* references are
//! derived from the primal references (reads become increments, plain
//! writes become read-then-zero, exact-increment writes become pure reads
//! — §5.4). A pair is safe when asserting equality of its primed/unprimed
//! index tuples is UNSAT under the knowledge usable at the pair's common
//! context root. All pairs safe ⇒ the adjoint array is declared `shared`
//! with no atomics.

use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

use formad_analysis::{
    collect_refs, AccessKind, Activity, ArrayRef, Cfg, Contexts, CtxId, IncRole, Instances,
};
use formad_ir::{count_stmts, Expr, ForLoop, Program, Stmt, Ty};
use formad_smt::{Formula, SatResult, Solver, SolverBudget, Term};

use crate::translate::{Taint, Translator};

/// Decision for one adjoint array in one region.
#[derive(Debug, Clone, PartialEq)]
pub enum Decision {
    /// All candidate conflicts proven absent: plain shared increments.
    Shared,
    /// At least one pair not provably disjoint: guard with atomics (or
    /// privatize). The payload explains why.
    Guarded(String),
}

/// Analysis output for one parallel region (one row of Table 1).
#[derive(Debug)]
pub struct RegionAnalysis {
    /// Pre-order region index.
    pub region: usize,
    /// Parallel loop counter.
    pub loop_var: String,
    /// Statements inside the region (the paper's `loc` column).
    pub loc: usize,
    /// Assertions in the knowledge model including the root `i ≠ i'`
    /// (the paper's "Z3 size" column, `1 + e²` in the benchmarks).
    pub model_size: usize,
    /// Distinct index-expression tuples entering the model (the paper's
    /// `exprs` column).
    pub unique_exprs: usize,
    /// Theorem-prover checks issued (the paper's `queries` column).
    pub queries: u64,
    /// Wall time of the analysis.
    pub time: Duration,
    /// Per-array decisions for adjoint increments.
    pub decisions: HashMap<String, Decision>,
    /// Diagnostics (possible primal races, unguardable overwrites).
    pub warnings: Vec<String>,
    /// Rendered write-set expressions proven disjoint (for §7.3-style
    /// reporting).
    pub safe_write_exprs: Vec<String>,
    /// First rejected adjoint expression per guarded array.
    pub rejected_exprs: Vec<String>,
}

/// Tunables for the region analysis.
#[derive(Debug, Clone)]
pub struct RegionOptions {
    /// Add `i = lo + step·k ∧ i' = lo + step·k' ∧ k ≠ k'` root assertions
    /// encoding the loop's stride (needed for stride-2 loops when the
    /// write-set knowledge alone is insufficient).
    pub stride_constraints: bool,
    /// Use control contexts (§5.1). Disabling is an ablation: all facts
    /// land at the root context only if their references are root-context.
    pub use_contexts: bool,
    /// Use exact-increment detection (§5.4). Disabling is an ablation:
    /// increment writes are treated like plain writes.
    pub use_increment_detection: bool,
    /// Solver budget per region.
    pub budget: SolverBudget,
}

impl Default for RegionOptions {
    fn default() -> Self {
        RegionOptions {
            stride_constraints: true,
            use_contexts: true,
            use_increment_detection: true,
            budget: SolverBudget::default(),
        }
    }
}

/// One translated reference.
struct TrRef {
    terms: Vec<Term>,
    ctx: CtxId,
    kind: AccessKind,
    inc: IncRole,
}

/// Analyze one parallel region of `prog`.
pub fn analyze_region(
    prog: &Program,
    l: &ForLoop,
    region: usize,
    activity: &Activity,
    opts: &RegionOptions,
) -> RegionAnalysis {
    let started = Instant::now();
    let cfg = Cfg::build(&l.body);
    let contexts = Contexts::build(&cfg);
    let instances = Instances::analyze(&cfg);
    let refs = collect_refs(&cfg);
    let info = l.parallel.as_ref().expect("parallel region");

    let mut out = RegionAnalysis {
        region,
        loop_var: l.var.clone(),
        loc: count_stmts(&l.body),
        model_size: 0,
        unique_exprs: 0,
        queries: 0,
        time: Duration::ZERO,
        decisions: HashMap::new(),
        warnings: Vec::new(),
        safe_write_exprs: Vec::new(),
        rejected_exprs: Vec::new(),
    };

    // Written arrays and privatized scalars.
    let written_arrays: HashSet<String> = refs
        .iter()
        .filter(|r| r.kind == AccessKind::Write)
        .map(|r| r.array.clone())
        .collect();
    let mut privatized: HashSet<String> = info.private.iter().cloned().collect();
    privatized.extend(info.reductions.iter().map(|(_, v)| v.clone()));
    for s in &l.body {
        s.walk(&mut |st| match st {
            Stmt::Assign { lhs: formad_ir::LValue::Var(v), .. } => {
                privatized.insert(v.clone());
            }
            Stmt::For(inner) => {
                privatized.insert(inner.var.clone());
            }
            _ => {}
        });
    }

    let tr = Translator {
        instances: &instances,
        counter: &l.var,
        written_arrays: &written_arrays,
        privatized: &privatized,
    };

    // Translate all references once; remember taints per array.
    let mut by_array: HashMap<String, Vec<TrRef>> = HashMap::new();
    let mut tainted_arrays: HashMap<String, String> = HashMap::new();
    for r in &refs {
        let ctx = contexts.ctx_of[r.node];
        let ctx = if opts.use_contexts { ctx } else { contexts.root };
        let inc = if opts.use_increment_detection {
            r.inc
        } else {
            IncRole::None
        };
        match tr.tuple(&r.indices, r.node) {
            Ok(terms) => {
                by_array.entry(r.array.clone()).or_default().push(TrRef {
                    terms,
                    ctx,
                    kind: r.kind,
                    inc,
                });
            }
            Err(taint) => {
                tainted_arrays
                    .entry(r.array.clone())
                    .or_insert_with(|| taint_msg(&taint, r));
            }
        }
    }

    // ------------------------------------------------------------------
    // Root assertions.
    // ------------------------------------------------------------------
    let mut solver = Solver::with_budget(opts.budget);
    let counter = Term::sym(l.var.clone());
    let counter_p = tr.prime(&counter);
    let mut roots: Vec<Formula> = Vec::new();
    match Formula::term_ne(&counter, &counter_p, &mut solver.table) {
        Ok(f) => roots.push(f),
        Err(e) => out.warnings.push(format!("root assertion failed: {e}")),
    }
    out.model_size += 1;
    if opts.stride_constraints {
        if let Some(fs) = stride_formulas(&tr, l, &counter, &counter_p, &mut solver) {
            roots.extend(fs);
        }
    }

    // ------------------------------------------------------------------
    // Knowledge extraction (phase 1).
    // ------------------------------------------------------------------
    // Facts: (site context, formula). Expressions dedup'd per array.
    let mut facts: Vec<(CtxId, Formula)> = Vec::new();
    let mut expr_set: HashSet<String> = HashSet::new();
    for (array, trefs) in &by_array {
        if tainted_arrays.contains_key(array) {
            continue;
        }
        let has_write = trefs.iter().any(|r| r.kind == AccessKind::Write);
        if !has_write {
            continue;
        }
        // Unique (terms, ctx) for writes and for all refs.
        let writes = dedup_refs(trefs.iter().filter(|r| r.kind == AccessKind::Write));
        let all = dedup_refs(trefs.iter());
        for (w_terms, w_ctx) in &writes {
            expr_set.insert(render_tuple(w_terms));
            out.safe_write_exprs.push(render_tuple(w_terms));
            for (e_terms, e_ctx) in &all {
                expr_set.insert(render_tuple(e_terms));
                let Some(site) = contexts.knowledge_site(*w_ctx, *e_ctx) else {
                    continue;
                };
                let wp = tr.prime_tuple(w_terms);
                match Formula::tuple_ne(&wp, e_terms, &mut solver.table) {
                    Ok(f) => {
                        facts.push((site, f));
                        out.model_size += 1;
                    }
                    Err(e) => out
                        .warnings
                        .push(format!("knowledge normalization failed: {e}")),
                }
            }
        }
    }
    out.safe_write_exprs.sort();
    out.safe_write_exprs.dedup();
    out.unique_exprs = expr_set.len();

    // buildModel satisfiability safeguard, per context (paper §5.5).
    let mut race_detected = false;
    for c in (0..contexts.count).map(|k| CtxId(k as u32)) {
        solver.push();
        for f in &roots {
            solver.assert(f.clone());
        }
        for (site, f) in &facts {
            if contexts.included(c, *site) {
                solver.assert(f.clone());
            }
        }
        let r = solver.check();
        solver.pop();
        if r == SatResult::Unsat {
            race_detected = true;
            out.warnings.push(format!(
                "knowledge base for context {c:?} is unsatisfiable: the primal \
                 parallel loop over `{}` appears to contain a data race",
                l.var
            ));
            break;
        }
    }

    // ------------------------------------------------------------------
    // Knowledge exploitation (phase 2).
    // ------------------------------------------------------------------
    // Candidate arrays: active real shared arrays referenced in the region
    // (including arrays whose every reference failed to translate).
    let mut candidates: Vec<String> = refs.iter().map(|r| r.array.clone()).collect();
    candidates.sort();
    candidates.dedup();
    static EMPTY: Vec<TrRef> = Vec::new();
    for array in &candidates {
        let trefs = by_array.get(array).unwrap_or(&EMPTY);
        if prog.ty_of(array) != Some(Ty::Real) {
            continue;
        }
        if !activity.is_active(array) || info.is_privatized(array) {
            continue;
        }
        if race_detected {
            out.decisions.insert(
                array.clone(),
                Decision::Guarded("primal race suspected; all safeguards kept".into()),
            );
            continue;
        }
        if let Some(reason) = tainted_arrays.get(array) {
            out.decisions
                .insert(array.clone(), Decision::Guarded(reason.clone()));
            continue;
        }
        // Adjoint reference sets derived from the primal ones (§5.4).
        let mut q_writes: Vec<(Vec<Term>, CtxId, bool)> = Vec::new(); // bool: from overwrite
        let mut q_reads: Vec<(Vec<Term>, CtxId)> = Vec::new();
        for r in trefs {
            match (r.kind, r.inc) {
                // Primal read → adjoint increment (write).
                (AccessKind::Read, IncRole::None) => {
                    q_writes.push((r.terms.clone(), r.ctx, false));
                }
                // Self-read of an exact increment: covered by the write.
                (AccessKind::Read, IncRole::IncrementRead) => {}
                (AccessKind::Read, IncRole::IncrementWrite) => unreachable!(),
                // Plain overwrite → adjoint reads then zeroes.
                (AccessKind::Write, IncRole::None) => {
                    q_writes.push((r.terms.clone(), r.ctx, true));
                }
                // Exact increment → adjoint only reads (§5.4).
                (AccessKind::Write, IncRole::IncrementWrite) => {
                    q_reads.push((r.terms.clone(), r.ctx));
                }
                (AccessKind::Write, IncRole::IncrementRead) => unreachable!(),
            }
        }
        dedup_triples(&mut q_writes);
        let mut q_all: Vec<(Vec<Term>, CtxId)> = q_writes
            .iter()
            .map(|(t, c, _)| (t.clone(), *c))
            .chain(q_reads.iter().cloned())
            .collect();
        dedup_pairs(&mut q_all);

        if q_writes.is_empty() {
            // Adjoint only reads this array: trivially shared.
            out.decisions.insert(array.clone(), Decision::Shared);
            continue;
        }

        let mut verdict = Decision::Shared;
        'pairs: for (w_terms, w_ctx, from_overwrite) in &q_writes {
            for (e_terms, e_ctx) in &q_all {
                let usable = contexts.usable_for(*w_ctx, *e_ctx);
                solver.push();
                for f in &roots {
                    solver.assert(f.clone());
                }
                for (site, f) in &facts {
                    if usable.contains(site) {
                        solver.assert(f.clone());
                    }
                }
                let wp = tr.prime_tuple(w_terms);
                let q = match Formula::tuple_eq(&wp, e_terms, &mut solver.table) {
                    Ok(q) => q,
                    Err(e) => {
                        solver.pop();
                        verdict =
                            Decision::Guarded(format!("query normalization failed: {e}"));
                        break 'pairs;
                    }
                };
                solver.assert(q);
                let r = solver.check();
                solver.pop();
                if r != SatResult::Unsat {
                    // Report the expression outside the proven-safe write
                    // set when possible (the paper's §7.3 presentation).
                    let w_r = render_tuple(w_terms);
                    let e_r = render_tuple(e_terms);
                    let rej = if !out.safe_write_exprs.contains(&e_r) {
                        e_r.clone()
                    } else if !out.safe_write_exprs.contains(&w_r) {
                        w_r.clone()
                    } else {
                        e_r.clone()
                    };
                    out.rejected_exprs.push(rej.clone());
                    if *from_overwrite {
                        out.warnings.push(format!(
                            "adjoint of `{array}` has a potentially conflicting \
                             overwrite at ({rej}); atomics cannot guard overwrites — \
                             treat this region's adjoint as requiring privatization \
                             or serialization"
                        ));
                    }
                    verdict = Decision::Guarded(format!(
                        "cannot prove ({}) disjoint from ({})",
                        rej,
                        render_tuple(e_terms)
                    ));
                    break 'pairs;
                }
            }
        }
        out.decisions.insert(array.clone(), verdict);
    }

    out.queries = solver.stats.checks;
    out.time = started.elapsed();
    out
}

fn dedup_refs<'a>(iter: impl Iterator<Item = &'a TrRef>) -> Vec<(Vec<Term>, CtxId)> {
    let mut v: Vec<(Vec<Term>, CtxId)> = iter.map(|r| (r.terms.clone(), r.ctx)).collect();
    dedup_pairs(&mut v);
    v
}

fn dedup_pairs(v: &mut Vec<(Vec<Term>, CtxId)>) {
    let mut seen = HashSet::new();
    v.retain(|(t, c)| seen.insert((render_tuple(t), *c)));
}

fn dedup_triples(v: &mut Vec<(Vec<Term>, CtxId, bool)>) {
    let mut seen = HashSet::new();
    v.retain(|(t, c, b)| seen.insert((render_tuple(t), *c, *b)));
}

fn render_tuple(ts: &[Term]) -> String {
    let parts: Vec<String> = ts.iter().map(|t| t.to_string()).collect();
    parts.join(", ")
}

fn taint_msg(t: &Taint, r: &ArrayRef) -> String {
    match t {
        Taint::MutatedIndexArray(a) => format!(
            "index of `{}` reads array `{a}` which is written in the region",
            r.array
        ),
        Taint::NonInteger(w) => format!("index of `{}` is not integral: {w}", r.array),
    }
}

/// Root stride assertions `i = lo + step·k`, `i' = lo + step·k'`, `k ≠ k'`
/// (plus `k ≥ 0`, `k' ≥ 0`), when the loop bounds are translatable and
/// loop-invariant.
fn stride_formulas(
    tr: &Translator<'_>,
    l: &ForLoop,
    counter: &Term,
    counter_p: &Term,
    solver: &mut Solver,
) -> Option<Vec<Formula>> {
    // Only worthwhile for non-unit strides.
    if l.step == Expr::IntLit(1) {
        return None;
    }
    let entry = formad_analysis::ENTRY;
    let lo = tr.term(&l.lo, entry).ok()?;
    let step = tr.term(&l.step, entry).ok()?;
    // Bail out if the bounds reference privatized variables (their value
    // would differ per thread, invalidating the shared `lo`/`step` terms).
    if tr.prime(&lo) != lo || tr.prime(&step) != step {
        return None;
    }
    let k = Term::sym("k$");
    let kp = Term::sym("k$'");
    let mut fs = Vec::new();
    fs.push(
        Formula::term_eq(
            counter,
            &(lo.clone() + step.clone() * k.clone()),
            &mut solver.table,
        )
        .ok()?,
    );
    fs.push(
        Formula::term_eq(counter_p, &(lo + step * kp.clone()), &mut solver.table).ok()?,
    );
    fs.push(Formula::term_ne(&k, &kp, &mut solver.table).ok()?);
    // k ≥ 0 on both ranks.
    for kk in [k, kp] {
        fs.push(Formula::Lit(formad_smt::Literal::le(
            formad_smt::LinExpr::constant(0),
            formad_smt::normalize(&kk, &mut solver.table).ok()?,
        )));
    }
    Some(fs)
}
