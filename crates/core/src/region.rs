//! Per-parallel-region analysis: knowledge extraction (§5, phase 1) and
//! knowledge exploitation (§5, phase 2).
//!
//! **Extraction.** The primal parallel loop is assumed correctly
//! parallelized, so for every pair of references to one array — at least
//! one a write — the index tuples are disjoint across distinct iterations.
//! Each such pair becomes an assertion `primed(w) ≠ e` in the knowledge
//! base, attached to the innermost of the two references' contexts. After
//! each context's model is assembled it is checked satisfiable, mirroring
//! the `assert(model.check() == SAT)` safeguard of the paper's
//! `buildModel`: an unsatisfiable knowledge base means the primal has a
//! data race (or FormAD has a bug), and the whole region is demoted to
//! guarded mode with a warning.
//!
//! **Exploitation.** For every active shared array the adjoint will
//! touch, the candidate conflict pairs of its *adjoint* references are
//! derived from the primal references (reads become increments, plain
//! writes become read-then-zero, exact-increment writes become pure reads
//! — §5.4). A pair is safe when asserting equality of its primed/unprimed
//! index tuples is UNSAT under the knowledge usable at the pair's common
//! context root. All pairs safe ⇒ the adjoint array is declared `shared`
//! with no atomics.
//!
//! **Degradation ladder.** The prover is treated like a fallible service:
//! each per-array proof attempt is panic-isolated (`catch_unwind`), runs
//! under the configured budget/deadline, and on `Unknown(Budget)` is
//! retried with an escalated budget. Any failure mode — budget, deadline,
//! cancellation, or a prover panic — degrades *that array* to `Guarded`
//! (atomics stay in place) and records why; it never aborts the analysis
//! and never produces an unsound `Shared`.

use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use formad_analysis::{
    collect_refs, AccessKind, Activity, ArrayRef, Cfg, Contexts, CtxId, IncRole, Instances,
};
use formad_ir::{count_stmts, Expr, ForLoop, Program, Stmt, Ty};
use formad_smt::{
    CancelToken, ChaosConfig, ChaosSolver, Deadline, Formula, InternedFormula, ProofCache,
    SatResult, SearchCore, Solver, SolverApi, SolverBudget, SolverStats, StopReason, Term,
};

use crate::trace::{CacheAttr, QueryPerf, TraceEvent, TraceSink};
use crate::translate::{Taint, Translator};

/// Decision for one adjoint array in one region.
#[derive(Debug, Clone, PartialEq)]
pub enum Decision {
    /// All candidate conflicts proven absent: plain shared increments.
    Shared,
    /// At least one pair not provably disjoint: guard with atomics (or
    /// privatize). The payload explains why.
    Guarded(String),
}

/// How a per-array decision was reached — the rung of the degradation
/// ladder the analysis ended on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// Every candidate conflict was proven absent (UNSAT).
    Proved,
    /// A definite obstruction: a satisfiable conflict pair, an
    /// untranslatable index, or a suspected primal race.
    Refuted,
    /// The work budget ran out on every attempt of the retry ladder.
    BudgetExhausted,
    /// The wall-clock deadline (or a cancellation) cut the proof short;
    /// escalating the budget cannot help, so no retry was made.
    TimedOut,
    /// The prover panicked; the analysis recovered by keeping safeguards.
    Recovered,
}

impl Provenance {
    /// Short tag for reports.
    pub fn tag(&self) -> &'static str {
        match self {
            Provenance::Proved => "proved",
            Provenance::Refuted => "refuted",
            Provenance::BudgetExhausted => "budget-exhausted",
            Provenance::TimedOut => "timed-out",
            Provenance::Recovered => "recovered",
        }
    }
}

/// Analysis output for one parallel region (one row of Table 1).
#[derive(Debug)]
pub struct RegionAnalysis {
    /// Pre-order region index.
    pub region: usize,
    /// Parallel loop counter.
    pub loop_var: String,
    /// Statements inside the region (the paper's `loc` column).
    pub loc: usize,
    /// Assertions in the knowledge model including the root `i ≠ i'`
    /// (the paper's "Z3 size" column, `1 + e²` in the benchmarks).
    pub model_size: usize,
    /// Distinct index-expression tuples entering the model (the paper's
    /// `exprs` column).
    pub unique_exprs: usize,
    /// Theorem-prover checks issued (the paper's `queries` column).
    pub queries: u64,
    /// Wall time of the analysis.
    pub time: Duration,
    /// Per-array decisions for adjoint increments.
    pub decisions: HashMap<String, Decision>,
    /// How each decision was reached (same keys as `decisions`).
    pub provenance: HashMap<String, Provenance>,
    /// Diagnostics (possible primal races, unguardable overwrites).
    pub warnings: Vec<String>,
    /// Rendered write-set expressions proven disjoint (for §7.3-style
    /// reporting).
    pub safe_write_exprs: Vec<String>,
    /// First rejected adjoint expression per guarded array.
    pub rejected_exprs: Vec<String>,
    /// Prover statistics accumulated over the region (all attempts).
    pub stats: SolverStats,
    /// Prover panics caught and recovered from during this region.
    pub recovered_panics: u64,
}

impl RegionAnalysis {
    /// True if any array was degraded for a resource/fault reason rather
    /// than a definite refutation.
    pub fn degraded(&self) -> bool {
        self.provenance.values().any(|p| {
            matches!(
                p,
                Provenance::BudgetExhausted | Provenance::TimedOut | Provenance::Recovered
            )
        })
    }
}

/// Tunables for the region analysis.
#[derive(Debug, Clone)]
pub struct RegionOptions {
    /// Add `i = lo + step·k ∧ i' = lo + step·k' ∧ k ≠ k'` root assertions
    /// encoding the loop's stride (needed for stride-2 loops when the
    /// write-set knowledge alone is insufficient).
    pub stride_constraints: bool,
    /// Use control contexts (§5.1). Disabling is an ablation: all facts
    /// land at the root context only if their references are root-context.
    pub use_contexts: bool,
    /// Use exact-increment detection (§5.4). Disabling is an ablation:
    /// increment writes are treated like plain writes.
    pub use_increment_detection: bool,
    /// Solver budget for the first (cheap) proof attempt per array.
    pub budget: SolverBudget,
    /// Additional attempts after an `Unknown(Budget)`, each multiplying
    /// the counter budgets by `escalation_factor`.
    pub max_retries: u32,
    /// Budget multiplier per retry rung.
    pub escalation_factor: u64,
    /// Wall-clock allowance per prover `check()` (`None` = unbounded).
    pub prover_timeout: Option<Duration>,
    /// Cooperative cancellation observed by every prover call.
    pub cancel: Option<CancelToken>,
    /// Fault injection for robustness tests: wraps the prover in a
    /// `ChaosSolver` (seed offset by region index).
    pub chaos: Option<ChaosConfig>,
    /// Worker threads for per-array proofs: `0` = one per available core,
    /// `1` = run in-line on the calling thread. Verdicts, provenance, and
    /// report text are identical for every value — parallelism only
    /// changes wall-clock time.
    pub jobs: usize,
    /// Shared canonical-query proof cache consulted by every prover
    /// `check()`. Cloning `RegionOptions` shares the cache (it is a
    /// handle), which is how verdicts are reused across regions and whole
    /// kernel suites. `None` disables caching.
    pub cache: Option<ProofCache>,
    /// Hard wall-clock deadline for the whole analysis. Unlike
    /// `prover_timeout` (whose expiry *degrades* the affected arrays and
    /// still exits 0), an expired global deadline makes the pipeline fail
    /// with [`crate::FormadErrorKind::Deadline`]. The deadline is also
    /// threaded into every prover so in-flight proofs stop promptly.
    pub deadline: Option<Deadline>,
    /// Structured event sink (see [`crate::trace`]). `None` — the default
    /// — records nothing and costs one branch per instrumentation site;
    /// `Some` collects a deterministic proof trace (worker events are
    /// buffered and merged in candidate order, so the recorded stream is
    /// identical for every `jobs` value and cache setting).
    pub trace: Option<TraceSink>,
    /// Which SMT search core answers the per-array queries. `Cdcl` (the
    /// default) is the watched-literal CDCL(T) engine with presolve;
    /// `Legacy` is the original enumerate-and-split core, kept as a
    /// differential oracle. Verdicts and reports are identical for both.
    pub search_core: SearchCore,
}

impl Default for RegionOptions {
    fn default() -> Self {
        RegionOptions {
            stride_constraints: true,
            use_contexts: true,
            use_increment_detection: true,
            budget: SolverBudget::default(),
            max_retries: 2,
            escalation_factor: 8,
            prover_timeout: None,
            cancel: None,
            chaos: None,
            jobs: 0,
            cache: Some(ProofCache::new()),
            deadline: None,
            trace: None,
            search_core: SearchCore::from_env(),
        }
    }
}

/// Resolve a `jobs` request against the machine, never exceeding the
/// number of tasks there are to run.
fn effective_jobs(requested: usize, tasks: usize) -> usize {
    let jobs = if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    };
    jobs.min(tasks).max(1)
}

/// One translated reference.
struct TrRef {
    terms: Vec<Term>,
    ctx: CtxId,
    kind: AccessKind,
    inc: IncRole,
}

/// Analyze one parallel region of `prog`.
pub fn analyze_region(
    prog: &Program,
    l: &ForLoop,
    region: usize,
    activity: &Activity,
    opts: &RegionOptions,
) -> RegionAnalysis {
    match &opts.chaos {
        Some(cfg) => {
            let mut cfg = cfg.clone();
            cfg.seed = cfg.seed.wrapping_add(region as u64);
            let mut solver = ChaosSolver::new(cfg);
            analyze_region_with(prog, l, region, activity, opts, &mut solver)
        }
        None => {
            let mut solver = Solver::new();
            analyze_region_with(prog, l, region, activity, opts, &mut solver)
        }
    }
}

/// [`analyze_region`] against a caller-provided prover (the real
/// [`Solver`] or a fault-injecting [`ChaosSolver`]).
///
/// Phase 1 (knowledge extraction and the per-context satisfiability
/// safeguard) runs on the calling thread against `solver`. Phase 2 forks
/// one worker solver per candidate array (salted by candidate order, so
/// results do not depend on thread scheduling) and fans the per-array
/// proofs out over [`RegionOptions::jobs`] scoped threads; outcomes are
/// merged back in candidate order, making reports byte-identical for any
/// job count.
pub fn analyze_region_with<S: SolverApi + Send>(
    prog: &Program,
    l: &ForLoop,
    region: usize,
    activity: &Activity,
    opts: &RegionOptions,
    solver: &mut S,
) -> RegionAnalysis {
    let started = Instant::now();
    let cfg = Cfg::build(&l.body);
    let contexts = Contexts::build(&cfg);
    let instances = Instances::analyze(&cfg);
    let refs = collect_refs(&cfg);
    let info = l.parallel.as_ref().expect("parallel region");

    solver.set_budget(opts.budget);
    solver.set_search_core(opts.search_core);
    solver.set_timeout(opts.prover_timeout);
    if let Some(token) = &opts.cancel {
        solver.set_cancel_token(token.clone());
    }
    if let Some(d) = opts.deadline {
        solver.set_deadline(d);
    }
    solver.set_cache(opts.cache.clone());

    let sink = opts.trace.as_ref();
    if let Some(s) = sink {
        s.record(TraceEvent::RegionBegin {
            region,
            loop_var: l.var.clone(),
            loc: count_stmts(&l.body),
        });
    }

    let mut out = RegionAnalysis {
        region,
        loop_var: l.var.clone(),
        loc: count_stmts(&l.body),
        model_size: 0,
        unique_exprs: 0,
        queries: 0,
        time: Duration::ZERO,
        decisions: HashMap::new(),
        provenance: HashMap::new(),
        warnings: Vec::new(),
        safe_write_exprs: Vec::new(),
        rejected_exprs: Vec::new(),
        stats: SolverStats::default(),
        recovered_panics: 0,
    };

    // Written arrays and privatized scalars.
    let written_arrays: HashSet<String> = refs
        .iter()
        .filter(|r| r.kind == AccessKind::Write)
        .map(|r| r.array.clone())
        .collect();
    let mut privatized: HashSet<String> = info.private.iter().cloned().collect();
    privatized.extend(info.reductions.iter().map(|(_, v)| v.clone()));
    for s in &l.body {
        s.walk(&mut |st| match st {
            Stmt::Assign {
                lhs: formad_ir::LValue::Var(v),
                ..
            } => {
                privatized.insert(v.clone());
            }
            Stmt::For(inner) => {
                privatized.insert(inner.var.clone());
            }
            _ => {}
        });
    }

    let tr = Translator {
        instances: &instances,
        counter: &l.var,
        written_arrays: &written_arrays,
        privatized: &privatized,
    };

    // Translate all references once; remember taints per array.
    let mut by_array: HashMap<String, Vec<TrRef>> = HashMap::new();
    let mut tainted_arrays: HashMap<String, String> = HashMap::new();
    for r in &refs {
        let ctx = contexts.ctx_of[r.node];
        let ctx = if opts.use_contexts {
            ctx
        } else {
            contexts.root
        };
        let inc = if opts.use_increment_detection {
            r.inc
        } else {
            IncRole::None
        };
        match tr.tuple(&r.indices, r.node) {
            Ok(terms) => {
                by_array.entry(r.array.clone()).or_default().push(TrRef {
                    terms,
                    ctx,
                    kind: r.kind,
                    inc,
                });
            }
            Err(taint) => {
                tainted_arrays
                    .entry(r.array.clone())
                    .or_insert_with(|| taint_msg(&taint, r));
            }
        }
    }

    // ------------------------------------------------------------------
    // Root assertions.
    // ------------------------------------------------------------------
    let counter = Term::sym(l.var.clone());
    let counter_p = tr.prime(&counter);
    // Roots and facts are lowered to CNF exactly once; re-asserting one is
    // a reference-count bump, not a clone (hot-loop `Formula::clone` is
    // gone).
    let mut roots: Vec<InternedFormula> = Vec::new();
    match Formula::term_ne(&counter, &counter_p, solver.table_mut()) {
        Ok(f) => roots.push(InternedFormula::new(f)),
        Err(e) => out.warnings.push(format!("root assertion failed: {e}")),
    }
    out.model_size += 1;
    if opts.stride_constraints {
        if let Some(fs) = stride_formulas(&tr, l, &counter, &counter_p, solver.table_mut()) {
            roots.extend(fs.into_iter().map(InternedFormula::new));
        }
    }

    // ------------------------------------------------------------------
    // Knowledge extraction (phase 1).
    // ------------------------------------------------------------------
    // Facts: (site context, formula). Expressions dedup'd per array.
    // `fact_keys` remembers which `(site, primed(w) ≠ e)` facts exist
    // verbatim, so phase 2 can skip queries they contradict directly.
    let mut facts: Vec<(CtxId, InternedFormula)> = Vec::new();
    let mut fact_keys: HashSet<(CtxId, String)> = HashSet::new();
    let mut expr_set: HashSet<String> = HashSet::new();
    for (array, trefs) in &by_array {
        if tainted_arrays.contains_key(array) {
            continue;
        }
        let has_write = trefs.iter().any(|r| r.kind == AccessKind::Write);
        if !has_write {
            continue;
        }
        // Unique (terms, ctx) for writes and for all refs.
        let writes = dedup_refs(trefs.iter().filter(|r| r.kind == AccessKind::Write));
        let all = dedup_refs(trefs.iter());
        for (w_terms, w_ctx) in &writes {
            expr_set.insert(render_tuple(w_terms));
            out.safe_write_exprs.push(render_tuple(w_terms));
            for (e_terms, e_ctx) in &all {
                expr_set.insert(render_tuple(e_terms));
                let Some(site) = contexts.knowledge_site(*w_ctx, *e_ctx) else {
                    continue;
                };
                let wp = tr.prime_tuple(w_terms);
                match Formula::tuple_ne(&wp, e_terms, solver.table_mut()) {
                    Ok(f) => {
                        fact_keys.insert((site, pair_key(w_terms, e_terms)));
                        facts.push((site, InternedFormula::new(f)));
                        out.model_size += 1;
                    }
                    Err(e) => out
                        .warnings
                        .push(format!("knowledge normalization failed: {e}")),
                }
            }
        }
    }
    out.safe_write_exprs.sort();
    out.safe_write_exprs.dedup();
    out.unique_exprs = expr_set.len();
    let mut phase_mark = Instant::now();
    if let Some(s) = sink {
        s.record(TraceEvent::Model {
            region,
            model_size: out.model_size,
            unique_exprs: out.unique_exprs,
            roots: roots.len(),
            facts: facts.len(),
        });
        s.record(TraceEvent::Phase {
            id: format!("r{region}/phase/extract"),
            dur_us: started.elapsed().as_micros() as u64,
        });
    }

    // buildModel satisfiability safeguard, per context (paper §5.5). A
    // prover panic here is recovered and treated like a suspected race:
    // the whole region keeps its safeguards.
    let mut race_detected = false;
    let mut race_provenance = Provenance::Refuted;
    for c in (0..contexts.count).map(|k| CtxId(k as u32)) {
        let checked = catch_unwind(AssertUnwindSafe(|| {
            solver.push();
            for f in &roots {
                solver.assert_interned(f);
            }
            for (site, f) in &facts {
                if contexts.included(c, *site) {
                    solver.assert_interned(f);
                }
            }
            let r = solver.check();
            solver.pop();
            r
        }));
        if let Some(s) = sink {
            s.record(TraceEvent::RaceCheck {
                region,
                ctx: c.0 as usize,
                verdict: match &checked {
                    Ok(r) => verdict_str(r),
                    Err(_) => "panicked".to_string(),
                },
            });
        }
        match checked {
            Ok(SatResult::Unsat) => {
                race_detected = true;
                out.warnings.push(format!(
                    "knowledge base for context {c:?} is unsatisfiable: the primal \
                     parallel loop over `{}` appears to contain a data race",
                    l.var
                ));
                break;
            }
            Ok(_) => {}
            Err(_) => {
                solver.reset_to_base();
                out.recovered_panics += 1;
                race_detected = true;
                race_provenance = Provenance::Recovered;
                out.warnings.push(format!(
                    "prover panicked while validating the knowledge model of \
                     context {c:?}; keeping every safeguard in the region"
                ));
                break;
            }
        }
    }
    if let Some(s) = sink {
        s.record(TraceEvent::Phase {
            id: format!("r{region}/phase/validate"),
            dur_us: phase_mark.elapsed().as_micros() as u64,
        });
        phase_mark = Instant::now();
    }

    // ------------------------------------------------------------------
    // Knowledge exploitation (phase 2).
    // ------------------------------------------------------------------
    // Candidate arrays: active real shared arrays referenced in the region
    // (including arrays whose every reference failed to translate).
    let mut candidates: Vec<String> = refs.iter().map(|r| r.array.clone()).collect();
    candidates.sort();
    candidates.dedup();
    static EMPTY: Vec<TrRef> = Vec::new();
    // Arrays with an immediate decision are settled in-line; the rest
    // become proof tasks for the worker pool below. `chunks` remembers, in
    // candidate order, whether each decided array was settled here
    // (`Ready`) or by proof task `i` (`Task`), so trace events can be
    // flushed in candidate order after the fan-out.
    let mut tasks: Vec<ProofTask<S>> = Vec::new();
    let mut overlays: Vec<Option<ProofCache>> = Vec::new();
    let mut chunks: Vec<TraceChunk> = Vec::new();
    for array in &candidates {
        let trefs = by_array.get(array).unwrap_or(&EMPTY);
        if prog.ty_of(array) != Some(Ty::Real) {
            continue;
        }
        if !activity.is_active(array) || info.is_privatized(array) {
            continue;
        }
        if race_detected {
            let d = Decision::Guarded("primal race suspected; all safeguards kept".into());
            if sink.is_some() {
                chunks.push(TraceChunk::Ready(decision_event(
                    region,
                    array,
                    &d,
                    race_provenance,
                )));
            }
            out.decisions.insert(array.clone(), d);
            out.provenance.insert(array.clone(), race_provenance);
            continue;
        }
        if let Some(reason) = tainted_arrays.get(array) {
            let d = Decision::Guarded(reason.clone());
            if sink.is_some() {
                chunks.push(TraceChunk::Ready(decision_event(
                    region,
                    array,
                    &d,
                    Provenance::Refuted,
                )));
            }
            out.decisions.insert(array.clone(), d);
            out.provenance.insert(array.clone(), Provenance::Refuted);
            continue;
        }
        // Adjoint reference sets derived from the primal ones (§5.4).
        let mut q_writes: Vec<(Vec<Term>, CtxId, bool)> = Vec::new(); // bool: from overwrite
        let mut q_reads: Vec<(Vec<Term>, CtxId)> = Vec::new();
        for r in trefs {
            match (r.kind, r.inc) {
                // Primal read → adjoint increment (write).
                (AccessKind::Read, IncRole::None) => {
                    q_writes.push((r.terms.clone(), r.ctx, false));
                }
                // Self-read of an exact increment: covered by the write.
                (AccessKind::Read, IncRole::IncrementRead) => {}
                (AccessKind::Read, IncRole::IncrementWrite) => unreachable!(),
                // Plain overwrite → adjoint reads then zeroes.
                (AccessKind::Write, IncRole::None) => {
                    q_writes.push((r.terms.clone(), r.ctx, true));
                }
                // Exact increment → adjoint only reads (§5.4).
                (AccessKind::Write, IncRole::IncrementWrite) => {
                    q_reads.push((r.terms.clone(), r.ctx));
                }
                (AccessKind::Write, IncRole::IncrementRead) => unreachable!(),
            }
        }
        dedup_triples(&mut q_writes);
        let mut q_all: Vec<(Vec<Term>, CtxId)> = q_writes
            .iter()
            .map(|(t, c, _)| (t.clone(), *c))
            .chain(q_reads.iter().cloned())
            .collect();
        dedup_pairs(&mut q_all);

        if q_writes.is_empty() {
            // Adjoint only reads this array: trivially shared.
            if sink.is_some() {
                chunks.push(TraceChunk::Ready(decision_event(
                    region,
                    array,
                    &Decision::Shared,
                    Provenance::Proved,
                )));
            }
            out.decisions.insert(array.clone(), Decision::Shared);
            out.provenance.insert(array.clone(), Provenance::Proved);
            continue;
        }

        // Needs proving: fork a worker solver for the fan-out. The fork
        // salt is the *candidate* index (not the worker id), so derived
        // state — e.g. a `ChaosSolver`'s fault stream — depends only on
        // which array is being proven, never on thread scheduling.
        let salt = tasks.len() as u64;
        let overlay = opts.cache.as_ref().map(ProofCache::overlay);
        let mut worker = solver.fork(salt);
        // Workers read the shared cache through a private overlay: lookups
        // see exactly (verdicts published before this region's fan-out) ∪
        // (the worker's own inserts), never a sibling's in-flight inserts,
        // so hit/miss behavior is schedule-independent.
        worker.set_cache(overlay.clone());
        overlays.push(overlay);
        if sink.is_some() {
            chunks.push(TraceChunk::Task(tasks.len()));
        }
        tasks.push(ProofTask {
            array: array.clone(),
            region,
            trace: sink.is_some(),
            q_writes,
            q_all,
            solver: worker,
        });
    }

    // ------------------------------------------------------------------
    // Parallel per-array proof fan-out.
    // ------------------------------------------------------------------
    let safe_exprs = out.safe_write_exprs.clone();
    let jobs = effective_jobs(opts.jobs, tasks.len());
    let results: Vec<Mutex<Option<ArrayOutcome>>> =
        tasks.iter().map(|_| Mutex::new(None)).collect();
    let cells: Vec<Mutex<Option<ProofTask<S>>>> =
        tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let next = AtomicUsize::new(0);
    let drain = || loop {
        let idx = next.fetch_add(1, Ordering::Relaxed);
        if idx >= cells.len() {
            break;
        }
        let task = cells[idx].lock().ok().and_then(|mut c| c.take());
        let Some(mut task) = task else { continue };
        let outcome = run_proof_task(
            &mut task,
            &roots,
            &facts,
            &fact_keys,
            &contexts,
            &tr,
            &safe_exprs,
            opts,
        );
        if let Ok(mut slot) = results[idx].lock() {
            *slot = Some(outcome);
        }
    };
    if jobs <= 1 {
        drain();
    } else {
        crossbeam::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|_| drain());
            }
        })
        .expect("prover worker pool");
    }

    // Publish worker cache overlays (candidate order; verdicts are unique
    // per canonical key, so order only matters for determinism of the
    // publication itself).
    if let Some(base) = &opts.cache {
        for ov in overlays.iter().flatten() {
            base.absorb(ov);
        }
    }

    // Merge outcomes in candidate order — reports are byte-identical to a
    // sequential run regardless of `jobs`.
    let mut task_trace: Vec<Vec<TraceEvent>> = Vec::new();
    for slot in &results {
        let mut outcome = slot
            .lock()
            .expect("proof worker poisoned a result slot")
            .take()
            .expect("every proof task produces an outcome");
        if sink.is_some() {
            let mut evs = std::mem::take(&mut outcome.events);
            evs.push(decision_event(
                region,
                &outcome.array,
                &outcome.decision,
                outcome.provenance,
            ));
            task_trace.push(evs);
        }
        out.decisions
            .insert(outcome.array.clone(), outcome.decision);
        out.provenance.insert(outcome.array, outcome.provenance);
        if let Some(r) = outcome.rejected {
            out.rejected_exprs.push(r);
        }
        out.warnings.extend(outcome.warnings);
        out.recovered_panics += outcome.recovered_panics;
        out.stats.merge(&outcome.stats);
    }
    solver.set_budget(opts.budget);

    let phase1 = solver.stats();
    out.stats.merge(&phase1);
    out.queries = out.stats.checks;
    out.time = started.elapsed();
    // Flush the deterministic trace: immediate decisions and worker
    // buffers interleave exactly in candidate order, for every job count.
    if let Some(s) = sink {
        for chunk in chunks {
            match chunk {
                TraceChunk::Ready(ev) => s.record(ev),
                TraceChunk::Task(i) => s.extend(std::mem::take(&mut task_trace[i])),
            }
        }
        s.record(TraceEvent::Phase {
            id: format!("r{region}/phase/prove"),
            dur_us: phase_mark.elapsed().as_micros() as u64,
        });
        s.record(TraceEvent::RegionEnd {
            region,
            queries: out.queries,
            warnings: out.warnings.len(),
            dur_us: out.time.as_micros() as u64,
        });
    }
    out
}

/// Trace bookkeeping for one candidate array: either a single immediate
/// `Decision` event, or a reference to proof task `i`'s event buffer.
enum TraceChunk {
    Ready(TraceEvent),
    Task(usize),
}

/// Render a per-array decision as a trace event.
fn decision_event(region: usize, array: &str, d: &Decision, p: Provenance) -> TraceEvent {
    let (decision, reason) = match d {
        Decision::Shared => ("shared".to_string(), String::new()),
        Decision::Guarded(r) => ("guarded".to_string(), r.clone()),
    };
    TraceEvent::Decision {
        region,
        array: array.to_string(),
        decision,
        provenance: p.tag().to_string(),
        reason,
    }
}

/// Uniform rendering of a prover verdict in trace events.
fn verdict_str(r: &SatResult) -> String {
    match r {
        SatResult::Sat => "sat".to_string(),
        SatResult::Unsat => "unsat".to_string(),
        SatResult::Unknown(reason) => format!("unknown: {reason}"),
    }
}

/// One candidate array whose adjoint conflict pairs need proving, bundled
/// with the worker solver forked for it.
struct ProofTask<S> {
    array: String,
    region: usize,
    trace: bool,
    q_writes: Vec<(Vec<Term>, CtxId, bool)>,
    q_all: Vec<(Vec<Term>, CtxId)>,
    solver: S,
}

/// The decision a proof task produced, with everything the coordinator
/// needs to merge deterministically.
struct ArrayOutcome {
    array: String,
    decision: Decision,
    provenance: Provenance,
    rejected: Option<String>,
    warnings: Vec<String>,
    recovered_panics: u64,
    stats: SolverStats,
    /// Worker-buffered trace events (empty when tracing is off); the
    /// coordinator flushes them in candidate order.
    events: Vec<TraceEvent>,
}

/// Per-task trace state: the worker's private event buffer plus the
/// sequence counters that keep span ids unique across retry attempts.
struct TaskTracer {
    region: usize,
    array: String,
    attempt: u32,
    qseq: usize,
    sseq: usize,
    events: Vec<TraceEvent>,
}

/// Run the escalating-budget retry ladder for one array on its worker
/// solver. This is the panic-isolated unit of work the fan-out schedules;
/// the cheap pass runs first and only `Unknown(Budget)` outcomes are
/// re-proven with larger counters. A deadline/cancellation trip is final
/// (a bigger budget cannot beat the clock), and a panic consumes the
/// attempt but leaves the solver usable via `reset_to_base`.
#[allow(clippy::too_many_arguments)]
fn run_proof_task<S: SolverApi>(
    task: &mut ProofTask<S>,
    roots: &[InternedFormula],
    facts: &[(CtxId, InternedFormula)],
    fact_keys: &HashSet<(CtxId, String)>,
    contexts: &Contexts,
    tr: &Translator<'_>,
    safe_write_exprs: &[String],
    opts: &RegionOptions,
) -> ArrayOutcome {
    let array = task.array.clone();
    let mut tracer = task.trace.then(|| TaskTracer {
        region: task.region,
        array: array.clone(),
        attempt: 0,
        qseq: 0,
        sseq: 0,
        events: vec![TraceEvent::ArrayBegin {
            region: task.region,
            array: array.clone(),
            writes: task.q_writes.len(),
            entries: task.q_all.len(),
        }],
    });
    let solver = &mut task.solver;
    let mut budget = opts.budget;
    let mut panics_here = 0u32;
    let mut last_failure = StopReason::Budget;
    let mut settled: Option<(Decision, Provenance)> = None;
    let mut rejected = None;
    let mut warnings = Vec::new();
    for attempt in 0..=opts.max_retries {
        if attempt > 0 {
            budget = SolverBudget {
                max_lia_calls: budget.max_lia_calls.saturating_mul(opts.escalation_factor),
                max_branches: budget.max_branches.saturating_mul(opts.escalation_factor),
                ..budget
            };
        }
        solver.set_budget(budget);
        if let Some(t) = tracer.as_mut() {
            t.attempt = attempt;
        }
        let proof = catch_unwind(AssertUnwindSafe(|| {
            prove_array(
                &mut *solver,
                roots,
                facts,
                fact_keys,
                contexts,
                tr,
                &task.q_writes,
                &task.q_all,
                safe_write_exprs,
                &mut tracer,
            )
        }));
        if let Some(t) = tracer.as_mut() {
            t.events.push(TraceEvent::Attempt {
                region: t.region,
                array: t.array.clone(),
                attempt,
                max_lia_calls: budget.max_lia_calls,
                max_branches: budget.max_branches,
                outcome: match &proof {
                    Err(_) => "panicked".to_string(),
                    Ok(ArrayProof::Safe) => "safe".to_string(),
                    Ok(ArrayProof::Conflict { .. }) => "conflict".to_string(),
                    Ok(ArrayProof::NormalizationFailed(_)) => "normalization-failed".to_string(),
                    Ok(ArrayProof::Unknown(reason)) => format!("unknown: {reason}"),
                },
            });
        }
        match proof {
            Err(_) => {
                solver.reset_to_base();
                panics_here += 1;
                last_failure = StopReason::Panicked;
            }
            Ok(ArrayProof::Safe) => {
                settled = Some((Decision::Shared, Provenance::Proved));
                break;
            }
            Ok(ArrayProof::Conflict {
                rejected: r,
                verdict,
                overwrite_warning,
            }) => {
                rejected = Some(r);
                if let Some(w) = overwrite_warning {
                    warnings.push(w);
                }
                settled = Some((verdict, Provenance::Refuted));
                break;
            }
            Ok(ArrayProof::NormalizationFailed(msg)) => {
                settled = Some((Decision::Guarded(msg), Provenance::Refuted));
                break;
            }
            Ok(ArrayProof::Unknown(reason)) => {
                last_failure = reason;
                if matches!(reason, StopReason::Deadline | StopReason::Cancelled) {
                    break;
                }
            }
        }
    }
    if panics_here > 0 {
        warnings.push(format!(
            "prover panicked {panics_here}× while analyzing adjoint of \
             `{array}`; recovered"
        ));
    }
    let (decision, provenance) = settled.unwrap_or_else(|| match last_failure {
        StopReason::Deadline | StopReason::Cancelled => (
            Decision::Guarded(format!(
                "prover {last_failure} before a verdict; atomics kept"
            )),
            Provenance::TimedOut,
        ),
        StopReason::Panicked => (
            Decision::Guarded("prover panicked on every attempt; atomics kept".to_string()),
            Provenance::Recovered,
        ),
        StopReason::Budget => (
            Decision::Guarded(format!(
                "budget exhausted after {} attempts; atomics kept",
                opts.max_retries + 1
            )),
            Provenance::BudgetExhausted,
        ),
    });
    ArrayOutcome {
        array,
        decision,
        provenance,
        rejected,
        warnings,
        recovered_panics: u64::from(panics_here),
        stats: solver.stats(),
        events: tracer.map(|t| t.events).unwrap_or_default(),
    }
}

/// Pair groups for assertion reuse: each entry couples the set of usable
/// fact indices with the `(write, entry)` index pairs proven under it.
type FactGroups = Vec<(Vec<usize>, Vec<(usize, usize)>)>;

/// Outcome of one panic-isolated proof attempt over all conflict pairs of
/// one adjoint array.
enum ArrayProof {
    /// Every pair proven disjoint.
    Safe,
    /// A pair is satisfiable (or structurally rejected): definite guard.
    Conflict {
        rejected: String,
        verdict: Decision,
        overwrite_warning: Option<String>,
    },
    /// A query could not be normalized into the solver fragment.
    NormalizationFailed(String),
    /// The prover gave up on some pair without a definite answer.
    Unknown(StopReason),
}

/// Try to prove every candidate conflict pair of one array disjoint.
/// Leaves the solver balanced (every `push` matched by a `pop`) on every
/// non-panicking path.
///
/// Assertion reuse: the roots are asserted once per array under a base
/// frame, and pairs are grouped by the *set of facts usable at their
/// common context* so each fact group is asserted once per group. Total
/// re-assertion work drops from O(pairs·(roots+facts)) to
/// O(roots + groups·facts); only the one-clause equality query is
/// asserted per pair.
#[allow(clippy::too_many_arguments)]
fn prove_array<S: SolverApi>(
    solver: &mut S,
    roots: &[InternedFormula],
    facts: &[(CtxId, InternedFormula)],
    fact_keys: &HashSet<(CtxId, String)>,
    contexts: &Contexts,
    tr: &Translator<'_>,
    q_writes: &[(Vec<Term>, CtxId, bool)],
    q_all: &[(Vec<Term>, CtxId)],
    safe_write_exprs: &[String],
    tracer: &mut Option<TaskTracer>,
) -> ArrayProof {
    let mut unknown: Option<StopReason> = None;
    // Base frame: the roots hold for every pair of this array.
    solver.push();
    for f in roots {
        solver.assert_interned(f);
    }
    // Group pairs by the set of fact indices usable at their common
    // context. Groups keep first-encounter order, so proofs run in the
    // same order on every machine and job count.
    let mut group_of: HashMap<Vec<usize>, usize> = HashMap::new();
    let mut groups: FactGroups = Vec::new();
    for (wi, (w_terms, w_ctx, _)) in q_writes.iter().enumerate() {
        for (ei, (e_terms, e_ctx)) in q_all.iter().enumerate() {
            let usable = contexts.usable_for(*w_ctx, *e_ctx);
            // Redundant self-pair skip: when a write tuple meets its own
            // identical entry of `q_all` in the same context and the
            // knowledge base contains `primed(w) ≠ e` verbatim at a usable
            // site, the query `primed(w) = e` is UNSAT by direct
            // contradiction with that fact — no prover call needed.
            if w_ctx == e_ctx
                && render_tuple(w_terms) == render_tuple(e_terms)
                && usable
                    .iter()
                    .any(|site| fact_keys.contains(&(*site, pair_key(w_terms, e_terms))))
            {
                if let Some(t) = tracer.as_mut() {
                    t.events.push(TraceEvent::PairSkipped {
                        region: t.region,
                        array: t.array.clone(),
                        seq: t.sseq,
                        write: render_tuple(w_terms),
                        entry: render_tuple(e_terms),
                    });
                    t.sseq += 1;
                }
                continue;
            }
            let included: Vec<usize> = facts
                .iter()
                .enumerate()
                .filter(|(_, (site, _))| usable.contains(site))
                .map(|(k, _)| k)
                .collect();
            match group_of.get(&included) {
                Some(&g) => groups[g].1.push((wi, ei)),
                None => {
                    group_of.insert(included.clone(), groups.len());
                    groups.push((included, vec![(wi, ei)]));
                }
            }
        }
    }
    for (included, pairs) in &groups {
        // Group frame: this fact set is shared by every pair in the group.
        solver.push();
        for &k in included {
            solver.assert_interned(&facts[k].1);
        }
        for &(wi, ei) in pairs {
            let (w_terms, _, from_overwrite) = &q_writes[wi];
            let (e_terms, _) = &q_all[ei];
            let wp = tr.prime_tuple(w_terms);
            let q = match Formula::tuple_eq(&wp, e_terms, solver.table_mut()) {
                Ok(q) => q,
                Err(e) => {
                    solver.pop(); // group frame
                    solver.pop(); // base frame
                    return ArrayProof::NormalizationFailed(format!(
                        "query normalization failed: {e}"
                    ));
                }
            };
            solver.push();
            solver.assert(q);
            let before = tracer.as_ref().map(|_| (solver.stats(), Instant::now()));
            let r = solver.check();
            if let Some(t) = tracer.as_mut() {
                let (since, t0) = before.expect("stats snapshot taken when tracing");
                let d = solver.stats().delta(&since);
                let cache = if d.cache_hits > 0 {
                    CacheAttr::Hit
                } else if d.cache_misses > 0 {
                    CacheAttr::Miss
                } else {
                    CacheAttr::Off
                };
                t.events.push(TraceEvent::Query {
                    region: t.region,
                    array: t.array.clone(),
                    seq: t.qseq,
                    attempt: t.attempt,
                    write: render_tuple(w_terms),
                    entry: render_tuple(e_terms),
                    verdict: verdict_str(&r),
                    perf: QueryPerf {
                        dur_us: t0.elapsed().as_micros() as u64,
                        lia_calls: d.lia_calls,
                        branches: d.branches,
                        propagations: d.propagations,
                        conflicts: d.conflicts,
                        cache,
                    },
                });
                t.qseq += 1;
            }
            solver.pop();
            match r {
                SatResult::Unsat => {}
                SatResult::Unknown(reason) => {
                    // Remember and move on: a later pair may still be a
                    // definite conflict, which beats retrying.
                    unknown = unknown.or(Some(reason));
                }
                SatResult::Sat => {
                    solver.pop(); // group frame
                    solver.pop(); // base frame
                    return conflict(w_terms, e_terms, *from_overwrite, safe_write_exprs);
                }
            }
        }
        solver.pop(); // group frame
    }
    solver.pop(); // base frame
    match unknown {
        Some(reason) => ArrayProof::Unknown(reason),
        None => ArrayProof::Safe,
    }
}

/// Canonical lookup key of a `primed(w) ≠ e` fact, used to recognize
/// queries the knowledge base contradicts verbatim.
fn pair_key(w_terms: &[Term], e_terms: &[Term]) -> String {
    format!("{} | {}", render_tuple(w_terms), render_tuple(e_terms))
}

/// Build the `Conflict` outcome for a satisfiable pair, preferring to
/// report the expression outside the proven-safe write set (the paper's
/// §7.3 presentation).
fn conflict(
    w_terms: &[Term],
    e_terms: &[Term],
    from_overwrite: bool,
    safe_write_exprs: &[String],
) -> ArrayProof {
    let w_r = render_tuple(w_terms);
    let e_r = render_tuple(e_terms);
    let rejected = if !safe_write_exprs.contains(&e_r) {
        e_r.clone()
    } else if !safe_write_exprs.contains(&w_r) {
        w_r.clone()
    } else {
        e_r.clone()
    };
    let overwrite_warning = from_overwrite.then(|| {
        format!(
            "adjoint has a potentially conflicting overwrite at ({rejected}); \
             atomics cannot guard overwrites — treat this region's adjoint as \
             requiring privatization or serialization"
        )
    });
    ArrayProof::Conflict {
        rejected: rejected.clone(),
        verdict: Decision::Guarded(format!("cannot prove ({rejected}) disjoint from ({e_r})")),
        overwrite_warning,
    }
}

fn dedup_refs<'a>(iter: impl Iterator<Item = &'a TrRef>) -> Vec<(Vec<Term>, CtxId)> {
    let mut v: Vec<(Vec<Term>, CtxId)> = iter.map(|r| (r.terms.clone(), r.ctx)).collect();
    dedup_pairs(&mut v);
    v
}

fn dedup_pairs(v: &mut Vec<(Vec<Term>, CtxId)>) {
    let mut seen = HashSet::new();
    v.retain(|(t, c)| seen.insert((render_tuple(t), *c)));
}

fn dedup_triples(v: &mut Vec<(Vec<Term>, CtxId, bool)>) {
    let mut seen = HashSet::new();
    v.retain(|(t, c, b)| seen.insert((render_tuple(t), *c, *b)));
}

fn render_tuple(ts: &[Term]) -> String {
    let parts: Vec<String> = ts.iter().map(|t| t.to_string()).collect();
    parts.join(", ")
}

fn taint_msg(t: &Taint, r: &ArrayRef) -> String {
    match t {
        Taint::MutatedIndexArray(a) => format!(
            "index of `{}` reads array `{a}` which is written in the region",
            r.array
        ),
        Taint::NonInteger(w) => format!("index of `{}` is not integral: {w}", r.array),
    }
}

/// Root stride assertions `i = lo + step·k`, `i' = lo + step·k'`, `k ≠ k'`
/// (plus `k ≥ 0`, `k' ≥ 0`), when the loop bounds are translatable and
/// loop-invariant.
fn stride_formulas(
    tr: &Translator<'_>,
    l: &ForLoop,
    counter: &Term,
    counter_p: &Term,
    table: &mut formad_smt::AtomTable,
) -> Option<Vec<Formula>> {
    // Only worthwhile for non-unit strides.
    if l.step == Expr::IntLit(1) {
        return None;
    }
    let entry = formad_analysis::ENTRY;
    let lo = tr.term(&l.lo, entry).ok()?;
    let step = tr.term(&l.step, entry).ok()?;
    // Bail out if the bounds reference privatized variables (their value
    // would differ per thread, invalidating the shared `lo`/`step` terms).
    if tr.prime(&lo) != lo || tr.prime(&step) != step {
        return None;
    }
    let k = Term::sym("k$");
    let kp = Term::sym("k$'");
    let mut fs = Vec::new();
    fs.push(Formula::term_eq(counter, &(lo.clone() + step.clone() * k.clone()), table).ok()?);
    fs.push(Formula::term_eq(counter_p, &(lo + step * kp.clone()), table).ok()?);
    fs.push(Formula::term_ne(&k, &kp, table).ok()?);
    // k ≥ 0 on both ranks.
    for kk in [k, kp] {
        fs.push(Formula::Lit(formad_smt::Literal::le(
            formad_smt::LinExpr::constant(0),
            formad_smt::normalize(&kk, table).ok()?,
        )));
    }
    Some(fs)
}
