//! Input term language of the prover.
//!
//! Terms are integer-valued expressions over symbols (loop counters,
//! instanced scalar variables) and uninterpreted function applications
//! (integer-array reads used inside index expressions, e.g. `c(i)` in
//! Figure 2 of the paper). Products of two non-constant terms, divisions,
//! and modulos are treated as *opaque* atoms — a sound over-approximation
//! (the solver learns nothing about them, so it can only fail towards
//! "maybe equal", which keeps safeguards in place).

use std::fmt;

/// An integer-valued term.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// Integer constant.
    Int(i64),
    /// Free integer symbol (name carries instance number / prime marks).
    Sym(String),
    /// Uninterpreted function application, e.g. `c(i)`.
    App(String, Vec<Term>),
    /// Sum.
    Add(Box<Term>, Box<Term>),
    /// Difference.
    Sub(Box<Term>, Box<Term>),
    /// Product.
    Mul(Box<Term>, Box<Term>),
    /// Negation.
    Neg(Box<Term>),
    /// Truncated division (opaque to the linear core).
    Div(Box<Term>, Box<Term>),
    /// Modulo (opaque to the linear core).
    Mod(Box<Term>, Box<Term>),
}

impl Term {
    /// Symbol shorthand.
    pub fn sym(name: impl Into<String>) -> Term {
        Term::Sym(name.into())
    }

    /// Constant shorthand.
    pub fn int(v: i64) -> Term {
        Term::Int(v)
    }

    /// Uninterpreted application shorthand.
    pub fn app(f: impl Into<String>, args: Vec<Term>) -> Term {
        Term::App(f.into(), args)
    }

    /// Rename every symbol through `f` (used for priming private variables,
    /// paper §5.3). Function names are renamed too when `rename_funs` — a
    /// private *array* read on one side of a pair must also be distinct.
    pub fn rename_syms(&self, f: &impl Fn(&str) -> String, rename_funs: bool) -> Term {
        match self {
            Term::Int(v) => Term::Int(*v),
            Term::Sym(s) => Term::Sym(f(s)),
            Term::App(name, args) => {
                let name = if rename_funs { f(name) } else { name.clone() };
                Term::App(
                    name,
                    args.iter().map(|a| a.rename_syms(f, rename_funs)).collect(),
                )
            }
            Term::Add(a, b) => Term::Add(
                Box::new(a.rename_syms(f, rename_funs)),
                Box::new(b.rename_syms(f, rename_funs)),
            ),
            Term::Sub(a, b) => Term::Sub(
                Box::new(a.rename_syms(f, rename_funs)),
                Box::new(b.rename_syms(f, rename_funs)),
            ),
            Term::Mul(a, b) => Term::Mul(
                Box::new(a.rename_syms(f, rename_funs)),
                Box::new(b.rename_syms(f, rename_funs)),
            ),
            Term::Neg(a) => Term::Neg(Box::new(a.rename_syms(f, rename_funs))),
            Term::Div(a, b) => Term::Div(
                Box::new(a.rename_syms(f, rename_funs)),
                Box::new(b.rename_syms(f, rename_funs)),
            ),
            Term::Mod(a, b) => Term::Mod(
                Box::new(a.rename_syms(f, rename_funs)),
                Box::new(b.rename_syms(f, rename_funs)),
            ),
        }
    }

    /// Collect all symbol names appearing in the term.
    pub fn syms(&self, out: &mut Vec<String>) {
        match self {
            Term::Int(_) => {}
            Term::Sym(s) => {
                if !out.contains(s) {
                    out.push(s.clone());
                }
            }
            Term::App(_, args) => {
                for a in args {
                    a.syms(out);
                }
            }
            Term::Add(a, b)
            | Term::Sub(a, b)
            | Term::Mul(a, b)
            | Term::Div(a, b)
            | Term::Mod(a, b) => {
                a.syms(out);
                b.syms(out);
            }
            Term::Neg(a) => a.syms(out),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Int(v) => write!(f, "{v}"),
            Term::Sym(s) => write!(f, "{s}"),
            Term::App(name, args) => {
                write!(f, "{name}(")?;
                for (k, a) in args.iter().enumerate() {
                    if k > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Term::Add(a, b) => write!(f, "({a} + {b})"),
            Term::Sub(a, b) => write!(f, "({a} - {b})"),
            Term::Mul(a, b) => write!(f, "({a} * {b})"),
            Term::Neg(a) => write!(f, "(-{a})"),
            Term::Div(a, b) => write!(f, "({a} / {b})"),
            Term::Mod(a, b) => write!(f, "({a} mod {b})"),
        }
    }
}

impl std::ops::Add for Term {
    type Output = Term;
    fn add(self, rhs: Term) -> Term {
        Term::Add(Box::new(self), Box::new(rhs))
    }
}
impl std::ops::Sub for Term {
    type Output = Term;
    fn sub(self, rhs: Term) -> Term {
        Term::Sub(Box::new(self), Box::new(rhs))
    }
}
impl std::ops::Mul for Term {
    type Output = Term;
    fn mul(self, rhs: Term) -> Term {
        Term::Mul(Box::new(self), Box::new(rhs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rename_primes_symbols_and_app_args() {
        let t = Term::app("c", vec![Term::sym("i")]) + Term::sym("j");
        let primed = t.rename_syms(&|s| format!("{s}'"), false);
        assert_eq!(
            primed,
            Term::app("c", vec![Term::sym("i'")]) + Term::sym("j'")
        );
    }

    #[test]
    fn rename_funs_when_requested() {
        let t = Term::app("c", vec![Term::sym("i")]);
        let primed = t.rename_syms(&|s| format!("{s}'"), true);
        assert_eq!(primed, Term::app("c'", vec![Term::sym("i'")]));
    }

    #[test]
    fn syms_collects_nested() {
        let t = Term::app("mss", vec![Term::int(1), Term::sym("ig"), Term::sym("k12")])
            * Term::sym("w");
        let mut s = Vec::new();
        t.syms(&mut s);
        assert_eq!(s, vec!["ig", "k12", "w"]);
    }

    #[test]
    fn display_roundtrips_shape() {
        let t = (Term::sym("i") - Term::int(1)) * Term::int(2);
        assert_eq!(t.to_string(), "((i - 1) * 2)");
    }
}
