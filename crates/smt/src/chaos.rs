//! Deterministic fault injection for the prover.
//!
//! `ChaosSolver` wraps a real [`Solver`] and, with seeded per-mille
//! probabilities, makes `check()` panic, answer `Unknown`, or stall for a
//! configurable delay before answering. The pipeline's degradation ladder
//! must absorb every one of these faults by keeping safeguards (more
//! atomics), never by miscompiling or crashing — the integration tests in
//! `formad-kernels` assert exactly that with finite-difference checks.
//!
//! All randomness is a splitmix64 stream over `ChaosConfig::seed`, so a
//! failing fault pattern is reproducible from the seed alone.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::cache::ProofCache;
use crate::ctrl::{CancelToken, Deadline, StopReason};
use crate::formula::Formula;
use crate::linexpr::AtomTable;
use crate::search::SearchCore;
use crate::solver::{InternedFormula, SatResult, Solver, SolverApi, SolverBudget, SolverStats};

/// Fault probabilities (per 1000 `check()` calls) and the deterministic
/// seed that drives them.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Seed of the fault stream; same seed ⇒ same fault pattern.
    pub seed: u64,
    /// Chance per mille that `check()` panics.
    pub panic_per_mille: u16,
    /// Chance per mille that `check()` answers `Unknown` without running.
    pub unknown_per_mille: u16,
    /// Chance per mille that `check()` sleeps for `delay` first (to
    /// exercise deadlines).
    pub delay_per_mille: u16,
    /// Stall length for delay faults.
    pub delay: Duration,
}

impl ChaosConfig {
    /// A fairly hostile default: 5% panics, 10% unknowns, no delays.
    pub fn with_seed(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            panic_per_mille: 50,
            unknown_per_mille: 100,
            delay_per_mille: 0,
            delay: Duration::from_millis(1),
        }
    }
}

/// Counters of injected faults, shared so they survive a panic unwinding
/// through the wrapped `check()` call.
#[derive(Debug, Default, Clone)]
pub struct ChaosCounters {
    inner: Arc<ChaosCountersInner>,
}

#[derive(Debug, Default)]
struct ChaosCountersInner {
    panics: AtomicU64,
    unknowns: AtomicU64,
    delays: AtomicU64,
    checks: AtomicU64,
}

impl ChaosCounters {
    pub fn panics(&self) -> u64 {
        self.inner.panics.load(Ordering::Relaxed)
    }
    pub fn unknowns(&self) -> u64 {
        self.inner.unknowns.load(Ordering::Relaxed)
    }
    pub fn delays(&self) -> u64 {
        self.inner.delays.load(Ordering::Relaxed)
    }
    pub fn checks(&self) -> u64 {
        self.inner.checks.load(Ordering::Relaxed)
    }
    pub fn faults(&self) -> u64 {
        self.panics() + self.unknowns() + self.delays()
    }
}

/// A [`Solver`] that randomly misbehaves on `check()`.
#[derive(Debug)]
pub struct ChaosSolver {
    inner: Solver,
    cfg: ChaosConfig,
    state: u64,
    /// Injected-fault counters (clone to keep a handle across a panic).
    pub counters: ChaosCounters,
}

impl ChaosSolver {
    pub fn new(cfg: ChaosConfig) -> ChaosSolver {
        ChaosSolver::wrap(Solver::new(), cfg)
    }

    pub fn wrap(inner: Solver, cfg: ChaosConfig) -> ChaosSolver {
        ChaosSolver {
            inner,
            state: cfg.seed ^ 0x6c62_272e_07bb_0142,
            cfg,
            counters: ChaosCounters::default(),
        }
    }

    /// The wrapped solver (e.g. to read its stats directly).
    pub fn inner(&self) -> &Solver {
        &self.inner
    }

    /// Derive a deterministic per-fork seed from a base seed and a salt.
    /// Workers forked with distinct salts draw independent fault streams,
    /// while the same (seed, salt) pair always reproduces the same stream
    /// — parallel schedules cannot change which checks fault.
    pub fn derive_seed(seed: u64, salt: u64) -> u64 {
        seed ^ salt.wrapping_add(1).wrapping_mul(0x9e37_79b9_7f4a_7c15)
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Draw the fault (if any) for one `check()` call.
    fn draw_fault(&mut self) -> Option<Fault> {
        let roll = (self.next_u64() % 1000) as u16;
        let p = self.cfg.panic_per_mille;
        let u = p + self.cfg.unknown_per_mille;
        let d = u + self.cfg.delay_per_mille;
        if roll < p {
            Some(Fault::Panic)
        } else if roll < u {
            Some(Fault::Unknown)
        } else if roll < d {
            Some(Fault::Delay)
        } else {
            None
        }
    }
}

enum Fault {
    Panic,
    Unknown,
    Delay,
}

impl SolverApi for ChaosSolver {
    fn table_mut(&mut self) -> &mut AtomTable {
        &mut self.inner.table
    }
    fn push(&mut self) {
        self.inner.push();
    }
    fn pop(&mut self) {
        self.inner.pop();
    }
    fn assert(&mut self, f: Formula) {
        self.inner.assert(f);
    }
    fn check(&mut self) -> SatResult {
        self.counters.inner.checks.fetch_add(1, Ordering::Relaxed);
        match self.draw_fault() {
            Some(Fault::Panic) => {
                self.counters.inner.panics.fetch_add(1, Ordering::Relaxed);
                panic!("chaos: injected prover fault (seed {})", self.cfg.seed);
            }
            Some(Fault::Unknown) => {
                self.counters.inner.unknowns.fetch_add(1, Ordering::Relaxed);
                SatResult::Unknown(StopReason::Budget)
            }
            Some(Fault::Delay) => {
                self.counters.inner.delays.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(self.cfg.delay);
                self.inner.check()
            }
            None => self.inner.check(),
        }
    }
    fn stats(&self) -> SolverStats {
        self.inner.stats
    }
    fn set_budget(&mut self, budget: SolverBudget) {
        self.inner.set_budget(budget);
    }
    fn budget(&self) -> SolverBudget {
        self.inner.budget()
    }
    fn set_timeout(&mut self, timeout: Option<Duration>) {
        self.inner.set_timeout(timeout);
    }
    fn set_deadline(&mut self, deadline: Deadline) {
        self.inner.set_deadline(deadline);
    }
    fn set_cancel_token(&mut self, token: CancelToken) {
        self.inner.set_cancel_token(token);
    }
    fn reset_to_base(&mut self) {
        self.inner.reset_to_base();
    }
    fn assert_interned(&mut self, f: &InternedFormula) {
        self.inner.assert_interned(f);
    }
    fn set_cache(&mut self, cache: Option<ProofCache>) {
        self.inner.set_cache(cache);
    }
    fn set_search_core(&mut self, core: SearchCore) {
        self.inner.set_search_core(core);
    }
    /// Fork with a salted fault stream: the wrapped solver is forked as
    /// usual, the chaos RNG is reseeded from `(seed, salt)` so each fork
    /// faults independently but reproducibly, and the counters handle is
    /// shared so faults across all forks aggregate.
    fn fork(&self, salt: u64) -> ChaosSolver {
        let mut cfg = self.cfg.clone();
        cfg.seed = ChaosSolver::derive_seed(cfg.seed, salt);
        ChaosSolver {
            inner: self.inner.fork(salt),
            state: cfg.seed ^ 0x6c62_272e_07bb_0142,
            cfg,
            counters: self.counters.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::Formula;
    use crate::term::Term;

    fn assert_xy_ne(s: &mut ChaosSolver) {
        let f = Formula::term_ne(&Term::sym("x"), &Term::sym("y"), s.table_mut()).unwrap();
        s.assert(f);
    }

    #[test]
    fn fault_pattern_is_deterministic() {
        let run = |seed| {
            let mut s = ChaosSolver::new(ChaosConfig::with_seed(seed));
            assert_xy_ne(&mut s);
            let mut pattern = Vec::new();
            for _ in 0..200 {
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| s.check()));
                pattern.push(match r {
                    Ok(SatResult::Sat) => 's',
                    Ok(SatResult::Unsat) => 'u',
                    Ok(SatResult::Unknown(_)) => '?',
                    Err(_) => {
                        s.reset_to_base();
                        '!'
                    }
                });
            }
            pattern
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds should differ");
    }

    #[test]
    fn injects_roughly_configured_fault_rates() {
        let mut s = ChaosSolver::new(ChaosConfig {
            seed: 42,
            panic_per_mille: 100,
            unknown_per_mille: 200,
            delay_per_mille: 0,
            delay: Duration::ZERO,
        });
        assert_xy_ne(&mut s);
        let counters = s.counters.clone();
        for _ in 0..1000 {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| s.check()));
            s.reset_to_base();
        }
        assert!(
            (50..200).contains(&counters.panics()),
            "{}",
            counters.panics()
        );
        assert!(
            (100..320).contains(&counters.unknowns()),
            "{}",
            counters.unknowns()
        );
    }

    #[test]
    fn forks_fault_independently_but_reproducibly() {
        let pattern = |s: &mut ChaosSolver| {
            let mut p = Vec::new();
            for _ in 0..100 {
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| s.check()));
                if r.is_err() {
                    s.reset_to_base();
                }
                p.push(r.is_err());
            }
            p
        };
        let mut base = ChaosSolver::new(ChaosConfig::with_seed(9));
        assert_xy_ne(&mut base);
        let mut f1 = base.fork(0);
        let mut f1b = base.fork(0);
        let mut f2 = base.fork(1);
        assert_eq!(
            pattern(&mut f1),
            pattern(&mut f1b),
            "same salt, same stream"
        );
        assert_ne!(pattern(&mut base.fork(0)), pattern(&mut f2));
        // Counters are shared across base and all forks.
        assert!(base.counters.checks() >= 400);
    }

    #[test]
    fn zero_rates_behave_like_real_solver() {
        let mut chaos = ChaosSolver::new(ChaosConfig {
            seed: 1,
            panic_per_mille: 0,
            unknown_per_mille: 0,
            delay_per_mille: 0,
            delay: Duration::ZERO,
        });
        assert_xy_ne(&mut chaos);
        assert_eq!(chaos.check(), SatResult::Sat);
        let f = Formula::term_eq(&Term::sym("x"), &Term::sym("y"), chaos.table_mut()).unwrap();
        assert_eq!(chaos.check_with(f), SatResult::Unsat);
        assert_eq!(chaos.counters.faults(), 0);
    }
}
