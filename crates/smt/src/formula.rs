//! Literals, clauses, and formulas, with conversion to CNF.

use crate::linexpr::{AtomTable, LinExpr, NormalizeError};
use crate::term::Term;

/// Relation of a literal `e ⋈ 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rel {
    /// `e = 0`.
    Eq,
    /// `e ≠ 0`.
    Ne,
    /// `e ≤ 0`.
    Le,
}

/// An atomic constraint `expr ⋈ 0` over integers.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Literal {
    pub rel: Rel,
    pub expr: LinExpr,
}

impl Literal {
    /// `a = b`.
    pub fn eq(a: LinExpr, b: LinExpr) -> Literal {
        Literal {
            rel: Rel::Eq,
            expr: a.sub(&b),
        }
    }

    /// `a ≠ b`.
    pub fn ne(a: LinExpr, b: LinExpr) -> Literal {
        Literal {
            rel: Rel::Ne,
            expr: a.sub(&b),
        }
    }

    /// `a ≤ b`.
    pub fn le(a: LinExpr, b: LinExpr) -> Literal {
        Literal {
            rel: Rel::Le,
            expr: a.sub(&b),
        }
    }

    /// `a < b` (integer-tightened to `a - b + 1 ≤ 0`).
    pub fn lt(a: LinExpr, b: LinExpr) -> Literal {
        let mut e = a.sub(&b);
        e.constant += 1;
        Literal {
            rel: Rel::Le,
            expr: e,
        }
    }

    /// Logical negation.
    pub fn negate(&self) -> Literal {
        match self.rel {
            Rel::Eq => Literal {
                rel: Rel::Ne,
                expr: self.expr.clone(),
            },
            Rel::Ne => Literal {
                rel: Rel::Eq,
                expr: self.expr.clone(),
            },
            // ¬(e ≤ 0) ⇔ e ≥ 1 ⇔ -e + 1 ≤ 0 (integers).
            Rel::Le => {
                let mut e = self.expr.scale(-1);
                e.constant += 1;
                Literal {
                    rel: Rel::Le,
                    expr: e,
                }
            }
        }
    }

    /// If the literal is ground (constant expression), evaluate it.
    pub fn const_value(&self) -> Option<bool> {
        if !self.expr.is_const() {
            return None;
        }
        let c = self.expr.constant;
        Some(match self.rel {
            Rel::Eq => c == 0,
            Rel::Ne => c != 0,
            Rel::Le => c <= 0,
        })
    }
}

/// A formula over literals.
#[derive(Debug, Clone, PartialEq)]
pub enum Formula {
    Lit(Literal),
    And(Vec<Formula>),
    Or(Vec<Formula>),
    Not(Box<Formula>),
    True,
    False,
}

impl Formula {
    /// Conjunction helper.
    pub fn and(fs: Vec<Formula>) -> Formula {
        Formula::And(fs)
    }

    /// Disjunction helper.
    pub fn or(fs: Vec<Formula>) -> Formula {
        Formula::Or(fs)
    }

    /// Build `a = b` from terms, normalizing into the table.
    pub fn term_eq(a: &Term, b: &Term, table: &mut AtomTable) -> Result<Formula, NormalizeError> {
        let a = crate::linexpr::normalize(a, table)?;
        let b = crate::linexpr::normalize(b, table)?;
        Ok(Formula::Lit(Literal::eq(a, b)))
    }

    /// Build `a ≠ b` from terms.
    pub fn term_ne(a: &Term, b: &Term, table: &mut AtomTable) -> Result<Formula, NormalizeError> {
        let a = crate::linexpr::normalize(a, table)?;
        let b = crate::linexpr::normalize(b, table)?;
        Ok(Formula::Lit(Literal::ne(a, b)))
    }

    /// Tuple disjointness: `¬(a₁=b₁ ∧ … ∧ aₖ=bₖ)`, i.e. `⋁ aᵢ≠bᵢ`.
    /// This is the paper's "indices are disjoint" assertion generalized to
    /// multi-dimensional arrays.
    pub fn tuple_ne(
        a: &[Term],
        b: &[Term],
        table: &mut AtomTable,
    ) -> Result<Formula, NormalizeError> {
        assert_eq!(a.len(), b.len(), "tuple arity mismatch");
        let mut lits = Vec::with_capacity(a.len());
        for (x, y) in a.iter().zip(b) {
            lits.push(Formula::term_ne(x, y, table)?);
        }
        Ok(Formula::Or(lits))
    }

    /// Tuple equality: `a₁=b₁ ∧ … ∧ aₖ=bₖ` (used when *querying* whether two
    /// adjoint references can collide).
    pub fn tuple_eq(
        a: &[Term],
        b: &[Term],
        table: &mut AtomTable,
    ) -> Result<Formula, NormalizeError> {
        assert_eq!(a.len(), b.len(), "tuple arity mismatch");
        let mut lits = Vec::with_capacity(a.len());
        for (x, y) in a.iter().zip(b) {
            lits.push(Formula::term_eq(x, y, table)?);
        }
        Ok(Formula::And(lits))
    }

    /// Negation-normal form (push `Not` to literals).
    fn nnf(self, negated: bool) -> Formula {
        match self {
            Formula::Lit(l) => {
                if negated {
                    Formula::Lit(l.negate())
                } else {
                    Formula::Lit(l)
                }
            }
            Formula::Not(f) => f.nnf(!negated),
            Formula::And(fs) => {
                let inner: Vec<Formula> = fs.into_iter().map(|f| f.nnf(negated)).collect();
                if negated {
                    Formula::Or(inner)
                } else {
                    Formula::And(inner)
                }
            }
            Formula::Or(fs) => {
                let inner: Vec<Formula> = fs.into_iter().map(|f| f.nnf(negated)).collect();
                if negated {
                    Formula::And(inner)
                } else {
                    Formula::Or(inner)
                }
            }
            Formula::True => {
                if negated {
                    Formula::False
                } else {
                    Formula::True
                }
            }
            Formula::False => {
                if negated {
                    Formula::True
                } else {
                    Formula::False
                }
            }
        }
    }

    /// Convert to CNF clauses (each clause a disjunction of literals).
    /// Distribution is naive; FormAD formulas are tiny (tuple arity ≤ 4).
    pub fn to_cnf(self) -> Vec<Clause> {
        let f = self.nnf(false);
        let mut clauses = cnf(f);
        // Drop trivially-true clauses, simplify ground literals.
        clauses.retain_mut(|c| {
            let mut keep = Vec::new();
            for lit in c.lits.drain(..) {
                match lit.const_value() {
                    Some(true) => return false, // clause satisfied
                    Some(false) => {}           // drop literal
                    None => keep.push(lit),
                }
            }
            c.lits = keep;
            true
        });
        clauses
    }
}

/// A disjunction of literals. The empty clause is unsatisfiable.
#[derive(Debug, Clone, PartialEq)]
pub struct Clause {
    pub lits: Vec<Literal>,
}

fn cnf(f: Formula) -> Vec<Clause> {
    match f {
        Formula::Lit(l) => vec![Clause { lits: vec![l] }],
        Formula::True => vec![],
        Formula::False => vec![Clause { lits: vec![] }],
        Formula::And(fs) => fs.into_iter().flat_map(cnf).collect(),
        Formula::Or(fs) => {
            // Cartesian product of the operands' clause sets.
            let mut acc: Vec<Clause> = vec![Clause { lits: vec![] }];
            for sub in fs {
                let sub_clauses = cnf(sub);
                let mut next = Vec::with_capacity(acc.len() * sub_clauses.len().max(1));
                if sub_clauses.is_empty() {
                    // OR with True = True: whole disjunction satisfied.
                    return vec![];
                }
                for a in &acc {
                    for s in &sub_clauses {
                        let mut lits = a.lits.clone();
                        lits.extend(s.lits.iter().cloned());
                        next.push(Clause { lits });
                    }
                }
                acc = next;
            }
            acc
        }
        Formula::Not(_) => unreachable!("nnf removed all Nots"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linexpr::AtomTable;
    use crate::term::Term;

    #[test]
    fn negate_le_is_integer_tight() {
        let mut tab = AtomTable::new();
        let x = crate::linexpr::normalize(&Term::sym("x"), &mut tab).unwrap();
        let l = Literal::le(x.clone(), LinExpr::constant(0)); // x <= 0
        let n = l.negate(); // -x + 1 <= 0 i.e. x >= 1
        assert_eq!(n.rel, Rel::Le);
        assert_eq!(n.expr.constant, 1);
        assert_eq!(n.expr.terms[0].1, -1);
    }

    #[test]
    fn lt_tightens() {
        let mut tab = AtomTable::new();
        let x = crate::linexpr::normalize(&Term::sym("x"), &mut tab).unwrap();
        let l = Literal::lt(x, LinExpr::constant(5)); // x < 5 -> x - 4 <= 0
        assert_eq!(l.expr.constant, -4);
    }

    #[test]
    fn tuple_ne_builds_disjunction() {
        let mut tab = AtomTable::new();
        let f = Formula::tuple_ne(
            &[Term::sym("a"), Term::sym("b")],
            &[Term::sym("c"), Term::sym("d")],
            &mut tab,
        )
        .unwrap();
        let clauses = f.to_cnf();
        assert_eq!(clauses.len(), 1);
        assert_eq!(clauses[0].lits.len(), 2);
        assert!(clauses[0].lits.iter().all(|l| l.rel == Rel::Ne));
    }

    #[test]
    fn tuple_eq_builds_conjunction() {
        let mut tab = AtomTable::new();
        let f = Formula::tuple_eq(
            &[Term::sym("a"), Term::sym("b")],
            &[Term::sym("c"), Term::sym("d")],
            &mut tab,
        )
        .unwrap();
        let clauses = f.to_cnf();
        assert_eq!(clauses.len(), 2);
        assert!(clauses.iter().all(|c| c.lits.len() == 1));
    }

    #[test]
    fn cnf_distributes_or_over_and() {
        let mut tab = AtomTable::new();
        let a = crate::linexpr::normalize(&Term::sym("a"), &mut tab).unwrap();
        let b = crate::linexpr::normalize(&Term::sym("b"), &mut tab).unwrap();
        let c = crate::linexpr::normalize(&Term::sym("c"), &mut tab).unwrap();
        let zero = LinExpr::constant(0);
        // a=0 ∨ (b=0 ∧ c=0)  →  (a=0 ∨ b=0) ∧ (a=0 ∨ c=0)
        let f = Formula::Or(vec![
            Formula::Lit(Literal::eq(a, zero.clone())),
            Formula::And(vec![
                Formula::Lit(Literal::eq(b, zero.clone())),
                Formula::Lit(Literal::eq(c, zero)),
            ]),
        ]);
        let clauses = f.to_cnf();
        assert_eq!(clauses.len(), 2);
        assert!(clauses.iter().all(|cl| cl.lits.len() == 2));
    }

    #[test]
    fn ground_simplification() {
        // 0 = 0 is true: clause drops entirely.
        let f = Formula::Lit(Literal::eq(LinExpr::constant(0), LinExpr::constant(0)));
        assert!(f.to_cnf().is_empty());
        // 1 = 0 is false: empty clause remains.
        let f = Formula::Lit(Literal::eq(LinExpr::constant(1), LinExpr::constant(0)));
        let c = f.to_cnf();
        assert_eq!(c.len(), 1);
        assert!(c[0].lits.is_empty());
    }

    #[test]
    fn not_pushes_through() {
        let mut tab = AtomTable::new();
        let a = crate::linexpr::normalize(&Term::sym("a"), &mut tab).unwrap();
        let zero = LinExpr::constant(0);
        // ¬(a=0 ∧ a≤0) → a≠0 ∨ a≥1
        let f = Formula::Not(Box::new(Formula::And(vec![
            Formula::Lit(Literal::eq(a.clone(), zero.clone())),
            Formula::Lit(Literal::le(a, zero)),
        ])));
        let clauses = f.to_cnf();
        assert_eq!(clauses.len(), 1);
        assert_eq!(clauses[0].lits.len(), 2);
    }
}
