//! Brute-force model enumeration over small domains.
//!
//! Used by tests (including property tests) to cross-validate the solver:
//! whenever the solver answers `Unsat`, no assignment over any finite
//! domain may satisfy the assertions; whenever brute force finds a model,
//! the solver must not answer `Unsat`.
//!
//! Only free symbols are enumerated; formulas containing opaque atoms
//! (uninterpreted applications etc.) are rejected since their semantics
//! would need function enumeration.

use std::collections::HashMap;

use crate::ctrl::Interrupt;
use crate::formula::{Clause, Formula, Literal, Rel};
use crate::linexpr::{AtomKey, AtomTable, LinExpr};

/// A satisfying assignment, symbol name → value.
pub type Model = HashMap<String, i64>;

/// How many assignments are tried between interrupt checks.
const INTERRUPT_STRIDE: u64 = 4096;

/// Exhaustively search `lo..=hi` per symbol for a model of `formulas`.
/// Returns `Err` if a non-symbol atom appears, `Ok(None)` if no model
/// exists in the box, `Ok(Some(model))` otherwise.
pub fn find_model(
    formulas: &[Formula],
    table: &AtomTable,
    lo: i64,
    hi: i64,
) -> Result<Option<Model>, String> {
    find_model_under(formulas, table, lo, hi, &Interrupt::none())
}

/// [`find_model`] with a deadline/cancellation bundle, polled every
/// [`INTERRUPT_STRIDE`] assignments. A trip aborts the enumeration with
/// `Err("interrupted: ...")` — callers cross-validating against the solver
/// must then skip the comparison, not treat it as "no model".
pub fn find_model_under(
    formulas: &[Formula],
    table: &AtomTable,
    lo: i64,
    hi: i64,
    interrupt: &Interrupt,
) -> Result<Option<Model>, String> {
    let clauses: Vec<Clause> = formulas.iter().flat_map(|f| f.clone().to_cnf()).collect();

    // Collect atoms, reject opaque ones.
    let mut atoms: Vec<(u32, String)> = Vec::new();
    for c in &clauses {
        for l in &c.lits {
            for a in l.expr.atoms() {
                match table.key(a) {
                    AtomKey::Sym(name) => {
                        if !atoms.iter().any(|(id, _)| *id == a.0) {
                            atoms.push((a.0, name.clone()));
                        }
                    }
                    other => return Err(format!("opaque atom {other:?} not enumerable")),
                }
            }
        }
    }

    let width = (hi - lo + 1) as u64;
    let n = atoms.len() as u32;
    let total = width.checked_pow(n).ok_or("domain too large")?;
    if total > 20_000_000 {
        return Err(format!("domain too large: {total} assignments"));
    }

    let mut values: HashMap<u32, i64> = HashMap::new();
    'outer: for k in 0..total {
        if k % INTERRUPT_STRIDE == 0 {
            if let Some(reason) = interrupt.tripped() {
                return Err(format!("interrupted: {reason}"));
            }
        }
        let mut rem = k;
        for (id, _) in &atoms {
            values.insert(*id, lo + (rem % width) as i64);
            rem /= width;
        }
        for c in &clauses {
            if !clause_holds(c, &values) {
                continue 'outer;
            }
        }
        let model = atoms
            .iter()
            .map(|(id, name)| (name.clone(), values[id]))
            .collect();
        return Ok(Some(model));
    }
    Ok(None)
}

fn clause_holds(c: &Clause, values: &HashMap<u32, i64>) -> bool {
    c.lits.iter().any(|l| lit_holds(l, values))
}

fn lit_holds(l: &Literal, values: &HashMap<u32, i64>) -> bool {
    let v = eval(&l.expr, values);
    match l.rel {
        Rel::Eq => v == 0,
        Rel::Ne => v != 0,
        Rel::Le => v <= 0,
    }
}

fn eval(e: &LinExpr, values: &HashMap<u32, i64>) -> i128 {
    let mut acc = e.constant;
    for (a, c) in &e.terms {
        acc += c * values[&a.0] as i128;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::Formula;
    use crate::solver::{SatResult, Solver};
    use crate::term::Term;

    #[test]
    fn finds_model_for_simple_system() {
        let mut table = AtomTable::new();
        let f1 = Formula::term_ne(&Term::sym("x"), &Term::sym("y"), &mut table).unwrap();
        let f2 = Formula::term_eq(
            &(Term::sym("x") + Term::int(1)),
            &Term::sym("y"),
            &mut table,
        )
        .unwrap();
        let m = find_model(&[f1, f2], &table, -2, 2).unwrap().unwrap();
        assert_eq!(m["y"], m["x"] + 1);
    }

    #[test]
    fn no_model_when_unsat() {
        let mut table = AtomTable::new();
        let f1 = Formula::term_eq(&Term::sym("x"), &Term::sym("y"), &mut table).unwrap();
        let f2 = Formula::term_ne(&Term::sym("x"), &Term::sym("y"), &mut table).unwrap();
        assert!(find_model(&[f1, f2], &table, -3, 3).unwrap().is_none());
    }

    #[test]
    fn opaque_atoms_rejected() {
        let mut table = AtomTable::new();
        let f = Formula::term_eq(
            &Term::app("c", vec![Term::sym("i")]),
            &Term::int(0),
            &mut table,
        )
        .unwrap();
        assert!(find_model(&[f], &table, 0, 1).is_err());
    }

    #[test]
    fn agreement_with_solver_on_small_instances() {
        // Cross-check: for a handful of hand-picked systems, solver UNSAT
        // must imply brute-force finds nothing.
        let cases: Vec<Vec<(&str, &str, bool)>> = vec![
            vec![("x", "y", true), ("x", "y", false)], // eq + ne → unsat
            vec![("x", "y", true), ("y", "z", true), ("x", "z", false)], // transitivity
            vec![("x", "y", false), ("y", "z", false)], // sat
        ];
        for case in cases {
            let mut s = Solver::new();
            let mut fs = Vec::new();
            for (a, b, eq) in case {
                let f = if eq {
                    Formula::term_eq(&Term::sym(a), &Term::sym(b), &mut s.table).unwrap()
                } else {
                    Formula::term_ne(&Term::sym(a), &Term::sym(b), &mut s.table).unwrap()
                };
                s.assert(f.clone());
                fs.push(f);
            }
            let solver_result = s.check();
            let brute = find_model(&fs, &s.table, -2, 2).unwrap();
            if solver_result == SatResult::Unsat {
                assert!(brute.is_none(), "solver unsat but model found");
            }
            if brute.is_some() {
                assert_ne!(solver_result, SatResult::Unsat);
            }
        }
    }
}
