//! # formad-smt
//!
//! A from-scratch decision procedure standing in for the Z3 theorem prover
//! in the FormAD pipeline (paper §5.5/§6). The fragment is exactly what
//! FormAD's disjointness knowledge and queries live in: quantifier-free
//! linear integer arithmetic over free symbols and *opaque atoms*
//! (uninterpreted index-array reads such as `c(i)`, non-linear products,
//! divisions, modulos), with disequalities and small disjunctions (tuple
//! disjointness for multi-dimensional arrays).
//!
//! ## Soundness contract
//!
//! Every `Unsat` answer is backed by a derivation (Gaussian elimination
//! with GCD/integrality tests + Fourier–Motzkin with integer tightening),
//! so it is sound over the integers. `Sat` and `Unknown` answers may be
//! over-approximations; FormAD treats both as "possibly conflicting" and
//! keeps atomics in place — exactly the safe direction required by the
//! paper ("If the model remains satisfiable or if the theorem prover fails
//! to come to a conclusion, ... we will assume that the parallel accesses
//! to this adjoint variable are unsafe").
//!
//! ```
//! use formad_smt::{Formula, Solver, SatResult, Term};
//!
//! // Figure 2 of the paper: knowing i ≠ i' and c(i) ≠ c(i'),
//! // prove c(i)+7 and c(i')+7 cannot collide.
//! let mut s = Solver::new();
//! let i = Term::sym("i");
//! let ip = Term::sym("i'");
//! let ci = Term::app("c", vec![i.clone()]);
//! let cip = Term::app("c", vec![ip.clone()]);
//! let k1 = Formula::term_ne(&i, &ip, &mut s.table).unwrap();
//! let k2 = Formula::term_ne(&ci, &cip, &mut s.table).unwrap();
//! s.assert(k1);
//! s.assert(k2);
//! let q = Formula::term_eq(
//!     &(ci + Term::int(7)),
//!     &(cip + Term::int(7)),
//!     &mut s.table,
//! ).unwrap();
//! assert_eq!(s.check_with(q), SatResult::Unsat); // increment is safe
//! ```

pub mod brute;
pub mod cache;
pub mod chaos;
pub mod ctrl;
pub mod fm;
pub mod formula;
pub mod linexpr;
pub mod search;
pub mod solver;
pub mod term;

pub use cache::{canonical_query_key, ProofCache};
pub use chaos::{ChaosConfig, ChaosCounters, ChaosSolver};
pub use ctrl::{CancelToken, Deadline, Governor, Interrupt, StopReason};
pub use fm::{feasible, feasible_paced, Feasibility, FmBudget};
pub use formula::{Clause, Formula, Literal, Rel};
pub use linexpr::{normalize, AtomId, AtomKey, AtomTable, LinExpr, NormalizeError};
pub use search::SearchCore;
pub use solver::{InternedFormula, SatResult, Solver, SolverApi, SolverBudget, SolverStats};
pub use term::Term;
