//! Theory side of the search cores: the committed-literal set, feasibility
//! checks through the Fourier–Motzkin core, the EUF-lite congruence
//! closure, and cheap exact fast paths that avoid FM calls for literals
//! over atoms the linear core does not constrain.

use std::collections::BTreeSet;

use crate::ctrl::StopReason;
use crate::fm::Feasibility;
use crate::formula::{Literal, Rel};
use crate::linexpr::{AtomId, AtomKey, AtomTable, LinExpr};

use super::SearchCtx;

/// The set of literals committed on the current branch.
#[derive(Debug, Clone, Default)]
pub(crate) struct Committed {
    pub(crate) eqs: Vec<LinExpr>,
    pub(crate) ineqs: Vec<LinExpr>,
    pub(crate) nes: Vec<LinExpr>,
}

impl Committed {
    pub(crate) fn with(&self, lit: &Literal) -> Committed {
        let mut c = self.clone();
        c.push(lit);
        c
    }

    pub(crate) fn push(&mut self, lit: &Literal) {
        match lit.rel {
            Rel::Eq => self.eqs.push(lit.expr.clone()),
            Rel::Le => self.ineqs.push(lit.expr.clone()),
            Rel::Ne => self.nes.push(lit.expr.clone()),
        }
    }

    /// Top-level atoms of the linear (Eq/Le) core — the variables the FM
    /// backend actually constrains. Opaque/application atoms count as
    /// single variables here, exactly as FM sees them.
    fn core_atoms(&self) -> BTreeSet<AtomId> {
        let mut out = BTreeSet::new();
        for e in self.eqs.iter().chain(&self.ineqs) {
            out.extend(e.atoms());
        }
        out
    }
}

/// Feasibility of the committed set alone. Disequalities are handled by the
/// *independent* approximation: each `e ≠ 0` is refutable only if both
/// `e ≤ -1` and `e ≥ 1` are infeasible against the Eq/Le core; if every
/// disequality is individually satisfiable we report `Feasible`. This may
/// report `Feasible` for jointly-unsatisfiable disequality sets — the
/// conservative direction (a missed UNSAT keeps atomics in place).
pub(crate) fn committed_feasible(c: &Committed, ctx: &mut SearchCtx<'_>) -> Feasibility {
    let core = ctx.lia(&c.eqs, &c.ineqs);
    if core != Feasibility::Feasible {
        return core;
    }
    // The core is feasible, so any disequality mentioning an atom the core
    // never constrains is trivially satisfiable: extend a core solution by
    // an arbitrary value for the free atom. Exact, and saves two FM calls
    // per such disequality.
    let core_atoms = c.core_atoms();
    let mut unknown: Option<StopReason> = None;
    for ne in &c.nes {
        if !ne.is_const() && ne.atoms().any(|a| !core_atoms.contains(&a)) {
            continue;
        }
        match ne_feasible(ne, c, ctx) {
            Feasibility::Infeasible => return Feasibility::Infeasible,
            Feasibility::Unknown(r) => unknown = unknown.or(Some(r)),
            Feasibility::Feasible => {}
        }
    }
    match unknown {
        Some(r) => Feasibility::Unknown(r),
        None => Feasibility::Feasible,
    }
}

/// Can `ne ≠ 0` hold together with the Eq/Le core of `c`?
pub(crate) fn ne_feasible(ne: &LinExpr, c: &Committed, ctx: &mut SearchCtx<'_>) -> Feasibility {
    if ne.is_const() {
        return if ne.constant != 0 {
            Feasibility::Feasible
        } else {
            Feasibility::Infeasible
        };
    }
    // e ≤ -1 side.
    let mut lo = ne.clone();
    lo.constant += 1;
    let mut ineqs = c.ineqs.clone();
    ineqs.push(lo);
    let left = ctx.lia(&c.eqs, &ineqs);
    if left == Feasibility::Feasible {
        return Feasibility::Feasible;
    }
    // e ≥ 1 side: -e + 1 ≤ 0.
    let mut hi = ne.scale(-1);
    hi.constant += 1;
    let mut ineqs = c.ineqs.clone();
    ineqs.push(hi);
    let right = ctx.lia(&c.eqs, &ineqs);
    if right == Feasibility::Feasible {
        return Feasibility::Feasible;
    }
    match (left, right) {
        (Feasibility::Unknown(r), _) | (_, Feasibility::Unknown(r)) => Feasibility::Unknown(r),
        _ => Feasibility::Infeasible,
    }
}

/// Is literal `lit` jointly possible with committed set `c`?
pub(crate) fn lit_feasible(lit: &Literal, c: &Committed, ctx: &mut SearchCtx<'_>) -> Feasibility {
    match lit.rel {
        Rel::Ne => ne_feasible(&lit.expr, c, ctx),
        _ => {
            let trial = c.with(lit);
            ctx.lia(&trial.eqs, &trial.ineqs)
        }
    }
}

/// Congruence closure over uninterpreted applications: whenever the
/// committed equality core entails that two same-function applications
/// have pairwise equal arguments, their equality is added to the core.
/// This is the piece of Z3's EUF reasoning FormAD relies on when an index
/// equality (e.g. a committed query `j = i`) must propagate through a
/// gather like `c(j)`/`c(i)`.
pub(crate) fn congruence_close(c: &mut Committed, ctx: &mut SearchCtx<'_>) {
    // Collect application atoms reachable from the committed constraints.
    let mut apps: BTreeSet<AtomId> = BTreeSet::new();
    for e in c.eqs.iter().chain(&c.ineqs).chain(&c.nes) {
        collect_apps(e, ctx.table, &mut apps);
    }
    if apps.len() < 2 {
        return;
    }
    let apps: Vec<AtomId> = apps.into_iter().collect();
    for _round in 0..3 {
        let mut changed = false;
        for i in 0..apps.len() {
            for j in (i + 1)..apps.len() {
                let (a, b) = (apps[i], apps[j]);
                let (AtomKey::App(fa, args_a), AtomKey::App(fb, args_b)) =
                    (ctx.table.key(a), ctx.table.key(b))
                else {
                    continue;
                };
                if fa != fb || args_a.len() != args_b.len() {
                    continue;
                }
                let eq_atoms = LinExpr::atom(a).sub(&LinExpr::atom(b));
                if entailed_zero(&eq_atoms, c, ctx) {
                    continue; // already known equal
                }
                let all_args_equal = args_a
                    .iter()
                    .zip(args_b)
                    .all(|(x, y)| entailed_zero(&x.sub(y), c, ctx));
                if all_args_equal {
                    c.eqs.push(eq_atoms);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
}

/// Application atoms reachable from `e`, including through opaque args.
pub(crate) fn collect_apps(e: &LinExpr, table: &AtomTable, out: &mut BTreeSet<AtomId>) {
    for a in e.atoms() {
        collect_apps_atom(a, table, out);
    }
}

fn collect_apps_atom(a: AtomId, table: &AtomTable, out: &mut BTreeSet<AtomId>) {
    match table.key(a) {
        AtomKey::Sym(_) => {}
        AtomKey::App(_, args) => {
            if out.insert(a) {
                for arg in args {
                    collect_apps(arg, table, out);
                }
            }
        }
        AtomKey::MulOpaque(x, y) | AtomKey::DivOpaque(x, y) | AtomKey::ModOpaque(x, y) => {
            collect_apps(x, table, out);
            collect_apps(y, table, out);
        }
    }
}

/// Is `e = 0` entailed by the committed Eq/Le core? (Both strict sides
/// must be infeasible; `Unknown` counts as not entailed — conservative.)
///
/// Fast paths: a constant `e` is entailed zero iff it *is* zero, and an
/// `e` mentioning an atom the core never constrains can always deviate
/// from zero. Both are exact whenever the core is feasible; against an
/// infeasible core they may answer "not entailed" where FM would vacuously
/// say "entailed", which only ever suppresses adding equalities to an
/// already-infeasible set — the verdict cannot change.
pub(crate) fn entailed_zero(e: &LinExpr, c: &Committed, ctx: &mut SearchCtx<'_>) -> bool {
    if e.is_const() {
        return e.constant == 0;
    }
    let core_atoms = c.core_atoms();
    if e.atoms().any(|a| !core_atoms.contains(&a)) {
        return false;
    }
    let mut lo = e.clone();
    lo.constant += 1; // e ≤ -1
    let mut ineqs = c.ineqs.clone();
    ineqs.push(lo);
    if ctx.lia(&c.eqs, &ineqs) != Feasibility::Infeasible {
        return false;
    }
    let mut hi = e.scale(-1);
    hi.constant += 1; // e ≥ 1
    let mut ineqs = c.ineqs.clone();
    ineqs.push(hi);
    ctx.lia(&c.eqs, &ineqs) == Feasibility::Infeasible
}

/// Feasibility of an explicit literal set (used by CDCL leaf checks and
/// explanation minimization): build the committed set, close it under
/// congruence, and run the committed check.
pub(crate) fn lits_feasible(lits: &[&Literal], ctx: &mut SearchCtx<'_>) -> Feasibility {
    let mut c = Committed::default();
    for lit in lits {
        c.push(lit);
    }
    congruence_close(&mut c, ctx);
    committed_feasible(&c, ctx)
}
