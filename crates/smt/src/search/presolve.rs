//! Presolve: cheap, exact (equisatisfiable over ℤ) simplifications applied
//! before the CDCL(T) search, so most Table-1-style queries resolve with
//! zero Fourier–Motzkin calls.
//!
//! Rules, run to fixpoint:
//!
//! * **Canonicalization / GCD–parity normalization** — every literal is
//!   rewritten to a canonical form: `Eq`/`Ne` divided by the coefficient
//!   gcd `g` (if `g ∤ constant` the equality is constantly false and the
//!   disequality constantly true) and sign-normalized so the leading
//!   coefficient is positive; `Le` integer-tightened (`c + Σ g·kᵢaᵢ ≤ 0`
//!   becomes `⌈c/g⌉ + Σ kᵢaᵢ ≤ 0`, exact over ℤ). Canonical literals give
//!   each boolean variable a unique [`VarKey`] with a polarity, so a
//!   literal and its negation map to one variable.
//! * **Unit extraction** — one-literal clauses move into the *fixed* set;
//!   a key fixed at both polarities is an immediate `Unsat`.
//! * **Equality substitution** — a fixed equality with a `±1`-coefficient
//!   symbol pivot (not occurring inside any opaque/application atom) is
//!   solved for that symbol and substituted through the whole problem.
//! * **Interval propagation** — single-atom fixed literals induce
//!   `[lo, hi]` intervals (disequalities shave matching endpoints); an
//!   empty interval is `Unsat`, and clause literals that are constantly
//!   true/false under interval evaluation are simplified away.
//! * **Free-atom discharge** — a literal over a symbol occurring exactly
//!   once in the whole problem (counting occurrences inside opaque atom
//!   keys) is always satisfiable (`Ne`/`Le` with any coefficient, `Eq`
//!   with coefficient `±1`), so its clause — or the fixed literal
//!   itself — is discharged.
//!
//! Every rule is verdict-exact, which is what lets the CDCL core keep
//! reports byte-identical to the legacy splitter.

use std::cmp::Ordering;
use std::collections::{HashMap, HashSet};

use crate::ctrl::StopReason;
use crate::formula::{Clause, Literal, Rel};
use crate::linexpr::{AtomId, AtomKey, AtomTable, LinExpr};

use super::SearchCtx;

/// Identity of a boolean variable in the abstraction: a relation class
/// (`0` = equality family, `1` = inequality family) plus the canonical
/// representative expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct VarKey {
    class: u8,
    expr: LinExpr,
}

impl VarKey {
    /// The concrete literal asserted when this variable takes `polarity`.
    pub(crate) fn lit(&self, polarity: bool) -> Literal {
        match self.class {
            0 => Literal {
                rel: if polarity { Rel::Eq } else { Rel::Ne },
                expr: self.expr.clone(),
            },
            _ => {
                if polarity {
                    Literal {
                        rel: Rel::Le,
                        expr: self.expr.clone(),
                    }
                } else {
                    // ¬(e ≤ 0) ⇔ -e + 1 ≤ 0.
                    let mut neg = self.expr.scale(-1);
                    neg.constant += 1;
                    Literal {
                        rel: Rel::Le,
                        expr: neg,
                    }
                }
            }
        }
    }
}

/// Total order on canonical expressions (terms, then constant) — used only
/// for deterministic tie-breaking, never exposed.
fn lin_key_cmp(a: &LinExpr, b: &LinExpr) -> Ordering {
    a.terms.cmp(&b.terms).then(a.constant.cmp(&b.constant))
}

pub(crate) fn var_key_cmp(a: &VarKey, b: &VarKey) -> Ordering {
    a.class.cmp(&b.class).then(lin_key_cmp(&a.expr, &b.expr))
}

/// A canonicalized literal: ground truth value, or a variable + polarity
/// together with the rewritten (tightened) literal to hand to the theory.
pub(crate) enum CanonLit {
    True,
    False,
    Var {
        key: VarKey,
        polarity: bool,
        lit: Literal,
    },
}

fn ceil_div(a: i128, b: i128) -> i128 {
    // b > 0.
    a.div_euclid(b) + if a.rem_euclid(b) != 0 { 1 } else { 0 }
}

fn scale_down(e: &LinExpr, g: i128, ceil_constant: bool) -> LinExpr {
    LinExpr {
        constant: if ceil_constant {
            ceil_div(e.constant, g)
        } else {
            e.constant / g
        },
        terms: e.terms.iter().map(|&(a, c)| (a, c / g)).collect(),
    }
}

/// Canonicalize one literal. Exact over ℤ.
pub(crate) fn canon_lit(lit: &Literal) -> CanonLit {
    let e = &lit.expr;
    if e.is_const() {
        let truth = match lit.rel {
            Rel::Eq => e.constant == 0,
            Rel::Ne => e.constant != 0,
            Rel::Le => e.constant <= 0,
        };
        return if truth {
            CanonLit::True
        } else {
            CanonLit::False
        };
    }
    let g = e.coeff_gcd(); // > 0: at least one nonzero coefficient
    match lit.rel {
        Rel::Eq | Rel::Ne => {
            if e.constant.rem_euclid(g) != 0 {
                // c + g·(…) is never 0 when g ∤ c (parity-style rule).
                return if lit.rel == Rel::Eq {
                    CanonLit::False
                } else {
                    CanonLit::True
                };
            }
            let mut n = scale_down(e, g, false);
            if n.terms[0].1 < 0 {
                n = n.scale(-1);
            }
            CanonLit::Var {
                key: VarKey {
                    class: 0,
                    expr: n.clone(),
                },
                polarity: lit.rel == Rel::Eq,
                lit: Literal {
                    rel: lit.rel,
                    expr: n,
                },
            }
        }
        Rel::Le => {
            let n = scale_down(e, g, true);
            let mut neg = n.scale(-1);
            neg.constant += 1;
            // The variable representative is the lesser of the literal and
            // its negation; tightening is involutive (gcd is now 1), so
            // both polarities of one constraint land on the same key.
            let (key_expr, polarity) = if lin_key_cmp(&n, &neg) != Ordering::Greater {
                (n.clone(), true)
            } else {
                (neg, false)
            };
            CanonLit::Var {
                key: VarKey {
                    class: 1,
                    expr: key_expr,
                },
                polarity,
                lit: Literal {
                    rel: Rel::Le,
                    expr: n,
                },
            }
        }
    }
}

/// Result of presolving an assertion set.
pub(crate) enum Presolved {
    /// Contradiction found without any theory call.
    Unsat,
    /// Interrupted by the governor mid-presolve.
    Stopped(StopReason),
    /// Simplified problem: conjunctive fixed literals (outside the boolean
    /// abstraction) plus residual clauses of ≥ 2 canonical literals each.
    Reduced {
        fixed: Vec<Literal>,
        clauses: Vec<Vec<Literal>>,
    },
}

/// Count symbol occurrences in `e`, descending into application/opaque
/// atom keys so a symbol feeding a gather index is never considered free.
fn count_syms(e: &LinExpr, table: &AtomTable, counts: &mut HashMap<AtomId, u64>) {
    for a in e.atoms() {
        count_syms_atom(a, table, counts);
    }
}

fn count_syms_atom(a: AtomId, table: &AtomTable, counts: &mut HashMap<AtomId, u64>) {
    match table.key(a) {
        AtomKey::Sym(_) => *counts.entry(a).or_insert(0) += 1,
        AtomKey::App(_, args) => {
            for arg in args {
                count_syms(arg, table, counts);
            }
        }
        AtomKey::MulOpaque(x, y) | AtomKey::DivOpaque(x, y) | AtomKey::ModOpaque(x, y) => {
            count_syms(x, table, counts);
            count_syms(y, table, counts);
        }
    }
}

/// Symbols appearing (transitively) inside any opaque/application key of
/// `e` — these must not be used as substitution pivots, or congruence
/// reasoning over the enclosing applications would lose the link.
fn opaque_bound_syms(e: &LinExpr, table: &AtomTable, out: &mut HashSet<AtomId>) {
    for a in e.atoms() {
        match table.key(a) {
            AtomKey::Sym(_) => {}
            AtomKey::App(_, args) => {
                for arg in args {
                    inner_syms(arg, table, out);
                }
            }
            AtomKey::MulOpaque(x, y) | AtomKey::DivOpaque(x, y) | AtomKey::ModOpaque(x, y) => {
                inner_syms(x, table, out);
                inner_syms(y, table, out);
            }
        }
    }
}

fn inner_syms(e: &LinExpr, table: &AtomTable, out: &mut HashSet<AtomId>) {
    for a in e.atoms() {
        match table.key(a) {
            AtomKey::Sym(_) => {
                out.insert(a);
            }
            AtomKey::App(_, args) => {
                out.insert(a);
                for arg in args {
                    inner_syms(arg, table, out);
                }
            }
            AtomKey::MulOpaque(x, y) | AtomKey::DivOpaque(x, y) | AtomKey::ModOpaque(x, y) => {
                inner_syms(x, table, out);
                inner_syms(y, table, out);
            }
        }
    }
}

/// Saturating interval evaluation of `e` under per-atom bounds.
fn interval_eval(e: &LinExpr, iv: &HashMap<AtomId, (i128, i128)>) -> (i128, i128) {
    let mut lo = e.constant;
    let mut hi = e.constant;
    for &(a, k) in &e.terms {
        let (alo, ahi) = iv.get(&a).copied().unwrap_or((i128::MIN, i128::MAX));
        let (tlo, thi) = if k >= 0 {
            (alo.saturating_mul(k), ahi.saturating_mul(k))
        } else {
            (ahi.saturating_mul(k), alo.saturating_mul(k))
        };
        lo = lo.saturating_add(tlo);
        hi = hi.saturating_add(thi);
    }
    (lo, hi)
}

struct Fixed {
    // Insertion-ordered for determinism; the map only answers lookups.
    items: Vec<(VarKey, bool, Literal)>,
    index: HashMap<VarKey, usize>,
}

impl Fixed {
    fn new() -> Fixed {
        Fixed {
            items: Vec::new(),
            index: HashMap::new(),
        }
    }

    fn polarity_of(&self, key: &VarKey) -> Option<bool> {
        self.index.get(key).map(|&i| self.items[i].1)
    }

    /// Returns `false` on contradiction (key already fixed oppositely).
    #[must_use]
    fn insert(&mut self, key: VarKey, polarity: bool, lit: Literal) -> bool {
        match self.index.get(&key) {
            Some(&i) => self.items[i].1 == polarity,
            None => {
                self.index.insert(key.clone(), self.items.len());
                self.items.push((key, polarity, lit));
                true
            }
        }
    }

    fn rebuild_index(&mut self) {
        self.index.clear();
        for (i, (k, _, _)) in self.items.iter().enumerate() {
            self.index.insert(k.clone(), i);
        }
    }
}

/// Run the presolve fixpoint over the asserted clauses.
pub(crate) fn presolve(clauses: &[Clause], ctx: &mut SearchCtx<'_>) -> Presolved {
    let mut fixed = Fixed::new();
    let mut work: Vec<Vec<Literal>> = clauses.iter().map(|c| c.lits.clone()).collect();

    loop {
        if let Some(r) = ctx.gov.poll() {
            return Presolved::Stopped(r);
        }
        let mut changed = false;

        // 1. Canonicalize clauses; resolve against the fixed set; extract
        //    units; drop tautologies/duplicates.
        let mut seen_clauses: HashSet<Vec<(VarKey, bool)>> = HashSet::new();
        let mut next: Vec<Vec<Literal>> = Vec::with_capacity(work.len());
        for clause in work.drain(..) {
            let mut lits: Vec<Literal> = Vec::with_capacity(clause.len());
            let mut keys: Vec<(VarKey, bool)> = Vec::with_capacity(clause.len());
            let mut satisfied = false;
            for lit in &clause {
                match canon_lit(lit) {
                    CanonLit::True => {
                        satisfied = true;
                        break;
                    }
                    CanonLit::False => {
                        changed = true;
                    }
                    CanonLit::Var { key, polarity, lit } => {
                        match fixed.polarity_of(&key) {
                            Some(p) if p == polarity => {
                                satisfied = true;
                                break;
                            }
                            Some(_) => {
                                changed = true; // falsified by a fixed literal
                                continue;
                            }
                            None => {}
                        }
                        if keys.iter().any(|(k, _)| *k == key) {
                            // Duplicate (same polarity) or tautology
                            // (opposite polarity within one clause).
                            if keys.iter().any(|(k, p)| *k == key && *p != polarity) {
                                satisfied = true;
                                break;
                            }
                            changed = true;
                            continue;
                        }
                        keys.push((key, polarity));
                        lits.push(lit);
                    }
                }
            }
            if satisfied {
                changed = true;
                continue;
            }
            match lits.len() {
                0 => return Presolved::Unsat,
                1 => {
                    let (key, polarity) = keys.pop().expect("one key");
                    let lit = lits.pop().expect("one lit");
                    if !fixed.insert(key, polarity, lit) {
                        return Presolved::Unsat;
                    }
                    changed = true;
                }
                _ => {
                    let mut sig = keys.clone();
                    sig.sort_by(|(a, pa), (b, pb)| var_key_cmp(a, b).then(pa.cmp(pb)));
                    if seen_clauses.insert(sig) {
                        next.push(lits);
                    } else {
                        changed = true; // duplicate clause dropped
                    }
                }
            }
        }
        work = next;

        // 2. Equality substitution: solve one fixed equality for a ±1
        //    symbol pivot and eliminate that symbol everywhere.
        let mut opaque: HashSet<AtomId> = HashSet::new();
        for (_, _, lit) in &fixed.items {
            opaque_bound_syms(&lit.expr, ctx.table, &mut opaque);
        }
        for clause in &work {
            for lit in clause {
                opaque_bound_syms(&lit.expr, ctx.table, &mut opaque);
            }
        }
        let mut pivot: Option<(usize, AtomId, i128)> = None;
        'outer: for (i, (key, polarity, lit)) in fixed.items.iter().enumerate() {
            if key.class != 0 || !*polarity || lit.rel != Rel::Eq {
                continue;
            }
            for &(a, k) in &lit.expr.terms {
                if (k == 1 || k == -1)
                    && matches!(ctx.table.key(a), AtomKey::Sym(_))
                    && !opaque.contains(&a)
                {
                    pivot = Some((i, a, k));
                    break 'outer;
                }
            }
        }
        if let Some((idx, a, k)) = pivot {
            // c + k·a + r = 0  ⇒  a = -k·(c + r).
            let def = fixed.items[idx].2.expr.clone();
            let rest = def.add_scaled(&LinExpr::atom(a), -k);
            let subst = rest.scale(-k);
            let apply = |e: &LinExpr| -> Option<LinExpr> {
                let c = e.coeff(a);
                if c == 0 {
                    return None;
                }
                Some(e.add_scaled(&LinExpr::atom(a), -c).add_scaled(&subst, c))
            };
            for clause in work.iter_mut() {
                for lit in clause.iter_mut() {
                    if let Some(e) = apply(&lit.expr) {
                        lit.expr = e;
                    }
                }
            }
            // Rebuild the fixed set: drop the defining equality, substitute
            // into the rest, re-canonicalize (substituted literals may
            // become ground or collide with other fixed keys).
            let old = std::mem::take(&mut fixed.items);
            fixed.index.clear();
            for (i, (key, polarity, mut lit)) in old.into_iter().enumerate() {
                if i == idx {
                    continue; // defining equality: pivot now occurs nowhere else
                }
                if let Some(e) = apply(&lit.expr) {
                    lit.expr = e;
                    match canon_lit(&lit) {
                        CanonLit::True => continue,
                        CanonLit::False => return Presolved::Unsat,
                        CanonLit::Var { key, polarity, lit } => {
                            if !fixed.insert(key, polarity, lit) {
                                return Presolved::Unsat;
                            }
                        }
                    }
                } else if !fixed.insert(key, polarity, lit) {
                    return Presolved::Unsat;
                }
            }
            fixed.rebuild_index();
            continue; // re-canonicalize clauses before further rules
        }

        // 3. Interval propagation from single-atom fixed literals.
        //    Only Eq/Le contribute bounds: shaving Ne endpoints would make
        //    presolve *more* precise than the solver's independent
        //    disequality approximation and let the two search cores
        //    diverge on jointly-unsatisfiable disequality sets.
        let mut iv: HashMap<AtomId, (i128, i128)> = HashMap::new();
        for (_, _, lit) in &fixed.items {
            if lit.expr.terms.len() != 1 {
                continue;
            }
            let (a, k) = lit.expr.terms[0];
            let c = lit.expr.constant;
            // Canonical single-atom coefficients are ±1 (gcd-normalized).
            let entry = iv.entry(a).or_insert((i128::MIN, i128::MAX));
            match (lit.rel, k) {
                (Rel::Eq, 1) => {
                    entry.0 = entry.0.max(-c);
                    entry.1 = entry.1.min(-c);
                }
                (Rel::Eq, -1) => {
                    entry.0 = entry.0.max(c);
                    entry.1 = entry.1.min(c);
                }
                (Rel::Le, 1) => entry.1 = entry.1.min(-c),
                (Rel::Le, -1) => entry.0 = entry.0.max(c),
                _ => {}
            }
        }
        if iv.values().any(|&(lo, hi)| lo > hi) {
            return Presolved::Unsat;
        }
        if !iv.is_empty() {
            let mut next: Vec<Vec<Literal>> = Vec::with_capacity(work.len());
            for clause in work.drain(..) {
                let mut lits: Vec<Literal> = Vec::with_capacity(clause.len());
                let mut satisfied = false;
                for lit in clause {
                    let (lo, hi) = interval_eval(&lit.expr, &iv);
                    let truth = match lit.rel {
                        Rel::Eq if lo == 0 && hi == 0 => Some(true),
                        Rel::Eq if lo > 0 || hi < 0 => Some(false),
                        Rel::Ne if lo == 0 && hi == 0 => Some(false),
                        Rel::Ne if lo > 0 || hi < 0 => Some(true),
                        Rel::Le if hi <= 0 => Some(true),
                        Rel::Le if lo > 0 => Some(false),
                        _ => None,
                    };
                    match truth {
                        Some(true) => {
                            satisfied = true;
                            break;
                        }
                        Some(false) => changed = true,
                        None => lits.push(lit),
                    }
                }
                if satisfied {
                    changed = true;
                    continue;
                }
                if lits.is_empty() {
                    return Presolved::Unsat;
                }
                next.push(lits);
            }
            work = next;
        }

        // 4. Free-atom discharge: a symbol with exactly one occurrence in
        //    the whole problem makes its literal unconditionally
        //    satisfiable (Ne/Le any coefficient; Eq needs ±1).
        let mut counts: HashMap<AtomId, u64> = HashMap::new();
        for (_, _, lit) in &fixed.items {
            count_syms(&lit.expr, ctx.table, &mut counts);
        }
        for clause in &work {
            for lit in clause {
                count_syms(&lit.expr, ctx.table, &mut counts);
            }
        }
        let free_lit = |lit: &Literal| -> bool {
            lit.expr.terms.iter().any(|&(a, k)| {
                matches!(ctx.table.key(a), AtomKey::Sym(_))
                    && counts.get(&a) == Some(&1)
                    && (lit.rel != Rel::Eq || k == 1 || k == -1)
            })
        };
        let before = work.len();
        work.retain(|clause| !clause.iter().any(&free_lit));
        if work.len() != before {
            changed = true;
        }
        let before = fixed.items.len();
        fixed.items.retain(|(_, _, lit)| !free_lit(lit));
        if fixed.items.len() != before {
            fixed.rebuild_index();
            changed = true;
        }

        if !changed {
            break;
        }
    }

    Presolved::Reduced {
        fixed: fixed.items.into_iter().map(|(_, _, lit)| lit).collect(),
        clauses: work,
    }
}
