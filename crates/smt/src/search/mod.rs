//! Search cores for `Solver::check()`.
//!
//! Two interchangeable engines solve the same problem — "is this CNF over
//! linear-integer literals satisfiable?" — behind one entry point:
//!
//! * [`SearchCore::Cdcl`] (default): a CDCL(T)-style engine — presolve
//!   ([`presolve`]), boolean abstraction with two-watched-literal unit
//!   propagation and a trail, theory checks through the Fourier–Motzkin
//!   core with *minimized conflict explanations*, 1UIP learning with
//!   non-chronological backjumping, VSIDS-lite decisions, Luby restarts
//!   ([`cdcl`]).
//! * [`SearchCore::Legacy`]: the original enumerate-and-split search
//!   ([`legacy`]), kept verbatim as a differential-testing oracle.
//!
//! Both cores are deterministic — no RNG, ties broken by atom/variable
//! id — so verdicts, reports, and the deterministic trace section are
//! byte-identical across `--jobs`, cache settings, and (by the
//! verdict-preserving design, validated by the differential suite and the
//! golden reports) across the cores themselves.

pub(crate) mod cdcl;
pub(crate) mod legacy;
pub(crate) mod presolve;
pub(crate) mod theory;

use crate::ctrl::{Governor, StopReason};
use crate::fm::{feasible_paced, Feasibility};
use crate::formula::Clause;
use crate::linexpr::{AtomTable, LinExpr};
use crate::solver::{SatResult, SolverBudget};

/// Which engine answers `check()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SearchCore {
    /// CDCL(T): presolve + watched-literal propagation + theory-conflict
    /// learning (the default).
    #[default]
    Cdcl,
    /// The original clause-splitting search, kept as a differential
    /// oracle (`--search-core legacy`).
    Legacy,
}

impl SearchCore {
    /// Parse a CLI/env spelling (`"cdcl"` / `"legacy"`).
    pub fn parse(s: &str) -> Option<SearchCore> {
        match s {
            "cdcl" => Some(SearchCore::Cdcl),
            "legacy" => Some(SearchCore::Legacy),
            _ => None,
        }
    }

    /// The core selected by the `FORMAD_SEARCH_CORE` environment variable
    /// (used by the CI matrix), falling back to the default. Unknown
    /// values fall back to the default rather than erroring, so a typo'd
    /// environment cannot change verdicts — only which (verdict-identical)
    /// engine produced them.
    pub fn from_env() -> SearchCore {
        match std::env::var("FORMAD_SEARCH_CORE") {
            Ok(v) => SearchCore::parse(&v).unwrap_or_default(),
            Err(_) => SearchCore::default(),
        }
    }

    /// CLI/JSON label.
    pub fn label(self) -> &'static str {
        match self {
            SearchCore::Cdcl => "cdcl",
            SearchCore::Legacy => "legacy",
        }
    }
}

/// Per-`check()` working state shared by both cores: budgets, work
/// counters, the atom table, and the paced interrupt poller.
pub(crate) struct SearchCtx<'t> {
    pub(crate) budget: SolverBudget,
    pub(crate) lia_calls: u64,
    pub(crate) branches: u64,
    pub(crate) propagations: u64,
    pub(crate) conflicts: u64,
    pub(crate) learned_clauses: u64,
    pub(crate) learned_literals: u64,
    pub(crate) restarts: u64,
    pub(crate) presolve_discharges: u64,
    pub(crate) table: &'t AtomTable,
    pub(crate) gov: Governor<'t>,
}

impl<'t> SearchCtx<'t> {
    pub(crate) fn new(
        budget: SolverBudget,
        table: &'t AtomTable,
        gov: Governor<'t>,
    ) -> SearchCtx<'t> {
        SearchCtx {
            budget,
            lia_calls: 0,
            branches: 0,
            propagations: 0,
            conflicts: 0,
            learned_clauses: 0,
            learned_literals: 0,
            restarts: 0,
            presolve_discharges: 0,
            table,
            gov,
        }
    }

    /// One governed, budgeted call into the linear feasibility core.
    pub(crate) fn lia(&mut self, eqs: &[LinExpr], ineqs: &[LinExpr]) -> Feasibility {
        if let Some(reason) = self.gov.poll() {
            return Feasibility::Unknown(reason);
        }
        if self.lia_calls >= self.budget.max_lia_calls {
            return Feasibility::Unknown(StopReason::Budget);
        }
        self.lia_calls += 1;
        feasible_paced(eqs, ineqs, &self.budget.fm, &mut self.gov)
    }
}

/// Outcome of a search run: the verdict plus (CDCL only) the clauses
/// learned along the way, exposed for soundness spot-checks.
pub(crate) struct SearchOutcome {
    pub(crate) result: SatResult,
    pub(crate) learned: Vec<Clause>,
}

/// Cheap discharge attempt for the cache fast path: run only the CDCL
/// presolve prefix (no boolean abstraction, no search) and return a
/// definite verdict when the query never needed one. `None` means the
/// query is presolve-hard — worth canonicalizing and caching — or the
/// core has no presolve layer (legacy).
pub(crate) fn try_discharge(
    core: SearchCore,
    clauses: &[Clause],
    ctx: &mut SearchCtx<'_>,
) -> Option<SatResult> {
    match core {
        SearchCore::Legacy => None,
        SearchCore::Cdcl => cdcl::presolve_discharge(clauses, ctx),
    }
}

/// Run the selected core over the flattened assertion clauses.
pub(crate) fn run(core: SearchCore, clauses: &[Clause], ctx: &mut SearchCtx<'_>) -> SearchOutcome {
    match core {
        SearchCore::Legacy => SearchOutcome {
            result: legacy::search(&theory::Committed::default(), clauses, ctx),
            learned: Vec::new(),
        },
        SearchCore::Cdcl => cdcl::solve(clauses, ctx),
    }
}
