//! The original enumerate-and-split search, preserved as a differential
//! oracle for the CDCL(T) core (`--search-core legacy`). Semantics are
//! unchanged from the pre-CDCL solver: recursive unit propagation with
//! feasibility-based literal pruning, EUF-lite closure at the leaves, and
//! branching on the smallest live clause.

use crate::ctrl::StopReason;
use crate::fm::Feasibility;
use crate::formula::{Clause, Literal};
use crate::solver::SatResult;

use super::theory::{committed_feasible, congruence_close, lit_feasible, Committed};
use super::SearchCtx;

pub(crate) fn search(c: &Committed, clauses: &[Clause], ctx: &mut SearchCtx<'_>) -> SatResult {
    if let Some(reason) = ctx.gov.poll() {
        return SatResult::Unknown(reason);
    }
    ctx.branches += 1;
    if ctx.branches > ctx.budget.max_branches {
        return SatResult::Unknown(StopReason::Budget);
    }

    // Unit propagation with feasibility-based literal pruning.
    let mut committed = c.clone();
    let mut live: Vec<Clause> = clauses.to_vec();
    loop {
        let mut changed = false;
        let mut next: Vec<Clause> = Vec::with_capacity(live.len());
        let mut saw_unknown: Option<StopReason> = None;
        for clause in live.into_iter() {
            let mut kept: Vec<Literal> = Vec::with_capacity(clause.lits.len());
            for lit in clause.lits.into_iter() {
                match lit_feasible(&lit, &committed, ctx) {
                    Feasibility::Infeasible => {
                        changed = true; // literal pruned
                    }
                    Feasibility::Unknown(r) => {
                        saw_unknown = saw_unknown.or(Some(r));
                        kept.push(lit);
                    }
                    Feasibility::Feasible => kept.push(lit),
                }
            }
            match kept.len() {
                0 => {
                    // Every disjunct contradicts the committed set.
                    return match saw_unknown {
                        Some(r) => SatResult::Unknown(r),
                        None => SatResult::Unsat,
                    };
                }
                1 => {
                    committed = committed.with(&kept[0]);
                    changed = true;
                }
                _ => next.push(Clause { lits: kept }),
            }
        }
        live = next;
        if !changed {
            break;
        }
    }

    // Propagate equalities through uninterpreted applications before the
    // final feasibility verdicts (EUF-lite).
    congruence_close(&mut committed, ctx);

    if live.is_empty() {
        return match committed_feasible(&committed, ctx) {
            Feasibility::Feasible => SatResult::Sat,
            Feasibility::Infeasible => SatResult::Unsat,
            Feasibility::Unknown(r) => SatResult::Unknown(r),
        };
    }

    // Branch on the smallest clause.
    let (idx, _) = live
        .iter()
        .enumerate()
        .min_by_key(|(_, cl)| cl.lits.len())
        .expect("live is nonempty");
    let clause = live[idx].clone();
    let rest: Vec<Clause> = live
        .iter()
        .enumerate()
        .filter(|(k, _)| *k != idx)
        .map(|(_, cl)| cl.clone())
        .collect();

    let mut any_unknown: Option<StopReason> = None;
    for lit in &clause.lits {
        let child = committed.with(lit);
        match search(&child, &rest, ctx) {
            SatResult::Sat => return SatResult::Sat,
            SatResult::Unknown(r) => any_unknown = any_unknown.or(Some(r)),
            SatResult::Unsat => {}
        }
    }
    match any_unknown {
        Some(r) => SatResult::Unknown(r),
        None => SatResult::Unsat,
    }
}
