//! CDCL(T) search: boolean abstraction over canonical atom literals,
//! two-watched-literal unit propagation with a trail, lazy theory checks
//! through the FM core with deletion-minimized conflict explanations,
//! 1UIP learning with non-chronological backjumping, VSIDS-lite activity
//! decisions, and Luby restarts.
//!
//! Everything is deterministic: variables are numbered by first occurrence
//! in (deterministic) clause order, decisions break activity ties by
//! lowest variable id, phases are the first-seen polarity, and there is no
//! randomness anywhere — so verdicts and stats are reproducible across
//! `--jobs`, caching, and process runs.
//!
//! Budget/interrupt semantics: *any* `Unknown` — from a theory call, an
//! explanation-minimization probe, the decision budget, or the governor —
//! is terminal. Continuing to search past an Unknown could let a
//! small-budget run reach a definite verdict on a different path than a
//! large-budget run, violating the budget-monotonicity contract the
//! degradation ladder relies on.
//!
//! Verdict parity with the legacy splitter: the final theory check uses
//! the *chosen-literal subset* — the fixed presolve literals plus the
//! first true literal of each problem clause — exactly the shape of a
//! legacy branch commitment, so the independent-disequality approximation
//! sees the same kind of literal sets under both cores.

use std::collections::HashMap;

use crate::ctrl::StopReason;
use crate::fm::Feasibility;
use crate::formula::{Clause, Literal};
use crate::solver::SatResult;

use super::presolve::{canon_lit, presolve, CanonLit, Presolved, VarKey};
use super::theory::lits_feasible;
use super::{SearchCtx, SearchOutcome};

/// Luby restart unit (conflicts per base interval).
const LUBY_UNIT: u64 = 32;
/// Activity decay applied after each conflict (MiniSat-style 0.95 decay,
/// implemented as growth of the increment).
const ACT_GROWTH: f64 = 1.0 / 0.95;
const ACT_RESCALE: f64 = 1e100;
/// Skip explanation minimization above this many candidate literals.
const MINIMIZE_MAX: usize = 12;

/// Boolean literal: variable index + polarity.
type BLit = (usize, bool);

fn lit_slot(l: BLit) -> usize {
    2 * l.0 + usize::from(l.1)
}

/// `i`-th element of the Luby sequence (1-indexed): 1,1,2,1,1,2,4,…
fn luby(mut i: u64) -> u64 {
    loop {
        let mut k = 1u32;
        while (1u64 << k) - 1 < i {
            k += 1;
        }
        if (1u64 << k) - 1 == i {
            return 1u64 << (k - 1);
        }
        i -= (1u64 << (k - 1)) - 1;
    }
}

struct Engine {
    keys: Vec<VarKey>,
    value: Vec<Option<bool>>,
    level: Vec<usize>,
    reason: Vec<Option<usize>>,
    phase: Vec<bool>,
    activity: Vec<f64>,
    act_inc: f64,
    /// Problem clauses (prefix of length `n_problem`) followed by learned
    /// clauses; each watches its first two literals.
    clauses: Vec<Vec<BLit>>,
    n_problem: usize,
    watches: Vec<Vec<usize>>,
    trail: Vec<BLit>,
    trail_lim: Vec<usize>,
    prop_head: usize,
}

enum PropResult {
    Ok,
    Conflict(usize),
    Stopped(StopReason),
}

impl Engine {
    fn is_true(&self, l: BLit) -> bool {
        self.value[l.0] == Some(l.1)
    }

    fn is_false(&self, l: BLit) -> bool {
        self.value[l.0] == Some(!l.1)
    }

    fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    fn assign(&mut self, l: BLit, reason: Option<usize>) {
        debug_assert!(self.value[l.0].is_none());
        self.value[l.0] = Some(l.1);
        self.level[l.0] = self.decision_level();
        self.reason[l.0] = reason;
        self.trail.push(l);
    }

    fn backjump(&mut self, target: usize) {
        while self.trail_lim.len() > target {
            let lim = self.trail_lim.pop().expect("nonempty");
            while self.trail.len() > lim {
                let (v, _) = self.trail.pop().expect("nonempty");
                self.value[v] = None;
                self.reason[v] = None;
            }
        }
        self.prop_head = self.trail.len();
    }

    fn bump(&mut self, v: usize) {
        self.activity[v] += self.act_inc;
        if self.activity[v] > ACT_RESCALE {
            for a in self.activity.iter_mut() {
                *a /= ACT_RESCALE;
            }
            self.act_inc /= ACT_RESCALE;
        }
    }

    fn propagate(&mut self, ctx: &mut SearchCtx<'_>) -> PropResult {
        while self.prop_head < self.trail.len() {
            if let Some(r) = ctx.gov.poll() {
                return PropResult::Stopped(r);
            }
            let (v, b) = self.trail[self.prop_head];
            self.prop_head += 1;
            let false_lit = (v, !b);
            let slot = lit_slot(false_lit);
            let list = std::mem::take(&mut self.watches[slot]);
            let mut keep: Vec<usize> = Vec::with_capacity(list.len());
            for (li, &ci) in list.iter().enumerate() {
                {
                    let cl = &mut self.clauses[ci];
                    if cl[0] == false_lit {
                        cl.swap(0, 1);
                    }
                    debug_assert_eq!(cl[1], false_lit);
                }
                let first = self.clauses[ci][0];
                if self.is_true(first) {
                    keep.push(ci);
                    continue;
                }
                let len = self.clauses[ci].len();
                let replacement = (2..len).find(|&k| {
                    let l = self.clauses[ci][k];
                    !self.is_false(l)
                });
                if let Some(k) = replacement {
                    self.clauses[ci].swap(1, k);
                    let moved = self.clauses[ci][1];
                    self.watches[lit_slot(moved)].push(ci);
                    continue;
                }
                keep.push(ci);
                if self.value[first.0].is_none() {
                    ctx.propagations += 1;
                    self.assign(first, Some(ci));
                } else {
                    // `first` is false: conflicting clause. Restore the
                    // unvisited tail of the watch list before returning.
                    keep.extend_from_slice(&list[li + 1..]);
                    self.watches[slot] = keep;
                    return PropResult::Conflict(ci);
                }
            }
            self.watches[slot] = keep;
        }
        PropResult::Ok
    }

    /// 1UIP conflict analysis. `confl` literals must all be false under
    /// the current assignment with at least one at the current decision
    /// level. Returns the learned clause (asserting literal first, a
    /// highest-remaining-level literal second) and the backjump level.
    fn analyze(&mut self, confl: &[BLit]) -> (Vec<BLit>, usize) {
        let cur = self.decision_level();
        debug_assert!(cur > 0);
        let mut seen = vec![false; self.keys.len()];
        let mut lower: Vec<BLit> = Vec::new();
        let mut counter = 0usize;
        let process = |this: &mut Engine,
                       lits: &[BLit],
                       skip: Option<usize>,
                       seen: &mut Vec<bool>,
                       lower: &mut Vec<BLit>,
                       counter: &mut usize| {
            for &l in lits {
                if Some(l.0) == skip || seen[l.0] || this.level[l.0] == 0 {
                    continue;
                }
                seen[l.0] = true;
                this.bump(l.0);
                if this.level[l.0] >= cur {
                    *counter += 1;
                } else {
                    lower.push(l);
                }
            }
        };

        process(self, confl, None, &mut seen, &mut lower, &mut counter);
        let mut idx = self.trail.len();
        let asserting: BLit;
        loop {
            debug_assert!(counter > 0, "no literal at the conflict level");
            idx -= 1;
            while !seen[self.trail[idx].0] {
                idx -= 1;
            }
            let v = self.trail[idx].0;
            seen[v] = false;
            counter -= 1;
            if counter == 0 {
                let val = self.value[v].expect("assigned");
                asserting = (v, !val);
                break;
            }
            let r = self.reason[v].expect("non-decision has a reason");
            let rlits = self.clauses[r].clone();
            process(self, &rlits, Some(v), &mut seen, &mut lower, &mut counter);
        }

        let mut learned = Vec::with_capacity(1 + lower.len());
        learned.push(asserting);
        learned.extend(lower);
        let mut bj = 0usize;
        if learned.len() > 1 {
            let mut at = 1usize;
            for k in 1..learned.len() {
                if self.level[learned[k].0] > self.level[learned[at].0] {
                    at = k;
                }
            }
            learned.swap(1, at);
            bj = self.level[learned[1].0];
        }
        (learned, bj)
    }

    /// Install a learned clause, backjump, and assert its first literal.
    fn learn(&mut self, learned: Vec<BLit>, bj: usize, ctx: &mut SearchCtx<'_>) -> Clause {
        ctx.learned_clauses += 1;
        ctx.learned_literals += learned.len() as u64;
        let rendered = Clause {
            lits: learned.iter().map(|&(v, p)| self.keys[v].lit(p)).collect(),
        };
        self.backjump(bj);
        let asserting = learned[0];
        if learned.len() == 1 {
            self.assign(asserting, None);
        } else {
            let ci = self.clauses.len();
            self.watches[lit_slot(learned[0])].push(ci);
            self.watches[lit_slot(learned[1])].push(ci);
            self.clauses.push(learned);
            self.assign(asserting, Some(ci));
        }
        self.act_inc *= ACT_GROWTH;
        rendered
    }

    /// The chosen-literal subset: first true literal of each problem
    /// clause (dedup'd), mirroring a legacy branch commitment.
    fn chosen_subset(&self) -> Vec<BLit> {
        let mut out: Vec<BLit> = Vec::with_capacity(self.n_problem);
        for cl in &self.clauses[..self.n_problem] {
            let l = cl
                .iter()
                .copied()
                .find(|&l| self.is_true(l))
                .expect("full assignment satisfies every problem clause");
            if !out.contains(&l) {
                out.push(l);
            }
        }
        out
    }

    /// Next decision: unassigned variable with maximal activity, ties to
    /// the lowest id; polarity is the first-occurrence phase.
    fn pick_decision(&self) -> Option<BLit> {
        let mut best: Option<usize> = None;
        for v in 0..self.keys.len() {
            if self.value[v].is_some() {
                continue;
            }
            match best {
                Some(b) if self.activity[v] <= self.activity[b] => {}
                _ => best = Some(v),
            }
        }
        best.map(|v| (v, self.phase[v]))
    }
}

/// Feasibility of `fixed` plus the literals of `subset`.
fn theory_check(
    eng: &Engine,
    fixed: &[Literal],
    subset: &[BLit],
    ctx: &mut SearchCtx<'_>,
) -> Feasibility {
    let owned: Vec<Literal> = subset.iter().map(|&(v, p)| eng.keys[v].lit(p)).collect();
    let refs: Vec<&Literal> = fixed.iter().chain(owned.iter()).collect();
    lits_feasible(&refs, ctx)
}

/// Deletion-based explanation minimization: drop subset literals (latest
/// assignment first) while the remainder stays infeasible. Any `Unknown`
/// from a probe is returned as terminal.
fn minimize_explanation(
    eng: &Engine,
    fixed: &[Literal],
    subset: Vec<BLit>,
    ctx: &mut SearchCtx<'_>,
) -> Result<Vec<BLit>, StopReason> {
    if subset.len() > MINIMIZE_MAX || subset.len() <= 1 {
        return Ok(subset);
    }
    let mut pos: HashMap<usize, usize> = HashMap::new();
    for (i, &(v, _)) in eng.trail.iter().enumerate() {
        pos.insert(v, i);
    }
    let mut order: Vec<usize> = (0..subset.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(pos.get(&subset[i].0).copied().unwrap_or(0)));
    let mut keep = vec![true; subset.len()];
    for i in order {
        keep[i] = false;
        let trial: Vec<BLit> = subset
            .iter()
            .zip(&keep)
            .filter(|(_, &k)| k)
            .map(|(&l, _)| l)
            .collect();
        match theory_check(eng, fixed, &trial, ctx) {
            Feasibility::Infeasible => {} // literal was redundant: stays dropped
            Feasibility::Feasible => keep[i] = true,
            Feasibility::Unknown(r) => return Err(r),
        }
    }
    Ok(subset
        .into_iter()
        .zip(keep)
        .filter(|(_, k)| *k)
        .map(|(l, _)| l)
        .collect())
}

/// The *boolean* discharge prefix of [`solve`] — the presolve fixpoint
/// alone, with no theory (linear-arithmetic) work. `Some` only for a
/// *definite* verdict reached by pure propagation; interrupts and
/// anything needing the feasibility core map to `None` so the full
/// search keeps sole responsibility for them. Used by the cache fast
/// path in `Solver::check()`: trivially-boolean queries die here for
/// free, while every query that would cost lia calls is canonicalized
/// and looked up first — a warm cache therefore answers repeat queries
/// with *zero* lia calls.
pub(crate) fn presolve_discharge(input: &[Clause], ctx: &mut SearchCtx<'_>) -> Option<SatResult> {
    if ctx.gov.poll().is_some() {
        return None;
    }
    let (fixed, reduced) = match presolve(input, ctx) {
        Presolved::Unsat => {
            ctx.presolve_discharges += 1;
            return Some(SatResult::Unsat);
        }
        Presolved::Stopped(_) => return None,
        Presolved::Reduced { fixed, clauses } => (fixed, clauses),
    };
    if fixed.is_empty() && reduced.is_empty() {
        // Nothing left at all after propagation: trivially satisfiable.
        ctx.presolve_discharges += 1;
        return Some(SatResult::Sat);
    }
    // Fixed literals would need a theory check, residual clauses a
    // search — both are lia-bearing, so both go through the cache.
    None
}

pub(crate) fn solve(input: &[Clause], ctx: &mut SearchCtx<'_>) -> SearchOutcome {
    let mut learned_out: Vec<Clause> = Vec::new();
    let done = |result: SatResult, learned: Vec<Clause>| SearchOutcome { result, learned };

    // A pre-tripped deadline/cancellation must win before any presolve
    // conclusion (first governor poll is immediate).
    if let Some(r) = ctx.gov.poll() {
        return done(SatResult::Unknown(r), learned_out);
    }

    let (fixed, reduced) = match presolve(input, ctx) {
        Presolved::Unsat => {
            ctx.presolve_discharges += 1;
            return done(SatResult::Unsat, learned_out);
        }
        Presolved::Stopped(r) => return done(SatResult::Unknown(r), learned_out),
        Presolved::Reduced { fixed, clauses } => (fixed, clauses),
    };

    // Level-0 theory check of the fixed (conjunctive) literals.
    {
        let refs: Vec<&Literal> = fixed.iter().collect();
        match lits_feasible(&refs, ctx) {
            Feasibility::Infeasible => {
                ctx.presolve_discharges += 1;
                return done(SatResult::Unsat, learned_out);
            }
            Feasibility::Unknown(r) => return done(SatResult::Unknown(r), learned_out),
            Feasibility::Feasible => {}
        }
    }
    if reduced.is_empty() {
        ctx.presolve_discharges += 1;
        return done(SatResult::Sat, learned_out);
    }

    // Boolean abstraction: number variables by first occurrence.
    let mut var_of: HashMap<VarKey, usize> = HashMap::new();
    let mut eng = Engine {
        keys: Vec::new(),
        value: Vec::new(),
        level: Vec::new(),
        reason: Vec::new(),
        phase: Vec::new(),
        activity: Vec::new(),
        act_inc: 1.0,
        clauses: Vec::with_capacity(reduced.len()),
        n_problem: reduced.len(),
        watches: Vec::new(),
        trail: Vec::new(),
        trail_lim: Vec::new(),
        prop_head: 0,
    };
    for clause in &reduced {
        let mut bl: Vec<BLit> = Vec::with_capacity(clause.len());
        for lit in clause {
            let CanonLit::Var { key, polarity, .. } = canon_lit(lit) else {
                unreachable!("presolve leaves only variable literals");
            };
            let v = *var_of.entry(key.clone()).or_insert_with(|| {
                eng.keys.push(key);
                eng.value.push(None);
                eng.level.push(0);
                eng.reason.push(None);
                eng.phase.push(polarity);
                eng.activity.push(0.0);
                eng.keys.len() - 1
            });
            bl.push((v, polarity));
        }
        eng.clauses.push(bl);
    }
    eng.watches = vec![Vec::new(); 2 * eng.keys.len()];
    for (ci, cl) in eng.clauses.iter().enumerate() {
        debug_assert!(cl.len() >= 2, "presolve extracts all units");
        eng.watches[lit_slot(cl[0])].push(ci);
        eng.watches[lit_slot(cl[1])].push(ci);
    }

    let mut restart_count: u64 = 0;
    let mut conflicts_since_restart: u64 = 0;

    loop {
        match eng.propagate(ctx) {
            PropResult::Stopped(r) => return done(SatResult::Unknown(r), learned_out),
            PropResult::Conflict(ci) => {
                ctx.conflicts += 1;
                if eng.decision_level() == 0 {
                    return done(SatResult::Unsat, learned_out);
                }
                let confl = eng.clauses[ci].clone();
                let (learned, bj) = eng.analyze(&confl);
                learned_out.push(eng.learn(learned, bj, ctx));
                conflicts_since_restart += 1;
                if conflicts_since_restart >= LUBY_UNIT * luby(restart_count + 1) {
                    restart_count += 1;
                    ctx.restarts += 1;
                    conflicts_since_restart = 0;
                    eng.backjump(0);
                }
            }
            PropResult::Ok => {
                if eng.trail.len() == eng.keys.len() {
                    // Full assignment: lazy theory check on the
                    // chosen-literal subset.
                    let subset = eng.chosen_subset();
                    match theory_check(&eng, &fixed, &subset, ctx) {
                        Feasibility::Feasible => return done(SatResult::Sat, learned_out),
                        Feasibility::Unknown(r) => return done(SatResult::Unknown(r), learned_out),
                        Feasibility::Infeasible => {
                            ctx.conflicts += 1;
                            let s = match minimize_explanation(&eng, &fixed, subset, ctx) {
                                Ok(s) => s,
                                Err(r) => return done(SatResult::Unknown(r), learned_out),
                            };
                            if s.is_empty() {
                                return done(SatResult::Unsat, learned_out);
                            }
                            let confl: Vec<BLit> = s.iter().map(|&(v, p)| (v, !p)).collect();
                            let lmax = confl.iter().map(|&(v, _)| eng.level[v]).max().unwrap_or(0);
                            if lmax == 0 {
                                return done(SatResult::Unsat, learned_out);
                            }
                            eng.backjump(lmax);
                            let (learned, bj) = eng.analyze(&confl);
                            learned_out.push(eng.learn(learned, bj, ctx));
                            conflicts_since_restart += 1;
                            if conflicts_since_restart >= LUBY_UNIT * luby(restart_count + 1) {
                                restart_count += 1;
                                ctx.restarts += 1;
                                conflicts_since_restart = 0;
                                eng.backjump(0);
                            }
                        }
                    }
                } else {
                    // Decision.
                    if let Some(r) = ctx.gov.poll() {
                        return done(SatResult::Unknown(r), learned_out);
                    }
                    ctx.branches += 1;
                    if ctx.branches > ctx.budget.max_branches {
                        return done(SatResult::Unknown(StopReason::Budget), learned_out);
                    }
                    let l = eng.pick_decision().expect("unassigned variable exists");
                    eng.trail_lim.push(eng.trail.len());
                    eng.assign(l, None);
                }
            }
        }
    }
}
