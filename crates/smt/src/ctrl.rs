//! Resource governance for prover queries: wall-clock deadlines and
//! cooperative cancellation, checked at branch/elimination granularity.
//!
//! The paper's pipeline treats the theorem prover like a service
//! dependency: any query may be abandoned (budget, timeout, cancellation,
//! or a prover fault) and the caller must degrade to the safe answer —
//! keep the atomic/reduction safeguard — never miscompile. The types here
//! make the "why was this query abandoned" machine-readable so the
//! degradation ladder in `formad-core` can record provenance.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a check stopped without a definite verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StopReason {
    /// A work counter (`max_lia_calls`, `max_branches`, FM row/coefficient
    /// limit) was exhausted.
    Budget,
    /// The wall-clock deadline passed.
    Deadline,
    /// The [`CancelToken`] was triggered.
    Cancelled,
    /// The prover panicked and the caller recovered (set by the recovery
    /// wrapper in `formad-core`, never by the solver itself).
    Panicked,
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StopReason::Budget => write!(f, "budget exhausted"),
            StopReason::Deadline => write!(f, "deadline expired"),
            StopReason::Cancelled => write!(f, "cancelled"),
            StopReason::Panicked => write!(f, "prover panicked"),
        }
    }
}

/// Cooperative cancellation flag, shareable across threads.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Request cancellation; every solver holding a clone observes it at
    /// its next governor poll.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// A wall-clock bound. `Deadline::none()` never expires.
#[derive(Debug, Clone, Copy, Default)]
pub struct Deadline {
    at: Option<Instant>,
}

impl Deadline {
    /// No bound.
    pub fn none() -> Deadline {
        Deadline { at: None }
    }

    /// Expires `d` from now.
    pub fn after(d: Duration) -> Deadline {
        Deadline {
            at: Some(Instant::now() + d),
        }
    }

    /// Expires `ms` milliseconds from now.
    pub fn in_ms(ms: u64) -> Deadline {
        Deadline::after(Duration::from_millis(ms))
    }

    /// Expires at `at`.
    pub fn at(at: Instant) -> Deadline {
        Deadline { at: Some(at) }
    }

    pub fn is_none(&self) -> bool {
        self.at.is_none()
    }

    pub fn expired(&self) -> bool {
        match self.at {
            Some(t) => Instant::now() >= t,
            None => false,
        }
    }

    /// Time left, `None` when unbounded, `Some(ZERO)` when expired.
    pub fn remaining(&self) -> Option<Duration> {
        self.at.map(|t| t.saturating_duration_since(Instant::now()))
    }

    /// The earlier of two deadlines.
    pub fn earliest(self, other: Deadline) -> Deadline {
        match (self.at, other.at) {
            (Some(a), Some(b)) => Deadline { at: Some(a.min(b)) },
            (Some(a), None) => Deadline { at: Some(a) },
            (None, b) => Deadline { at: b },
        }
    }
}

/// Deadline + cancellation bundle threaded through a query.
#[derive(Debug, Clone, Default)]
pub struct Interrupt {
    pub deadline: Deadline,
    pub cancel: Option<CancelToken>,
}

impl Interrupt {
    pub fn none() -> Interrupt {
        Interrupt::default()
    }

    pub fn with_deadline(deadline: Deadline) -> Interrupt {
        Interrupt {
            deadline,
            cancel: None,
        }
    }

    /// True when neither a deadline nor a token is attached (polling can
    /// be skipped entirely).
    pub fn is_inert(&self) -> bool {
        self.deadline.is_none() && self.cancel.is_none()
    }

    /// Immediate (unpaced) trip check. Cancellation outranks the
    /// deadline: an explicit cancel is reported even if the clock also
    /// ran out.
    pub fn tripped(&self) -> Option<StopReason> {
        if let Some(c) = &self.cancel {
            if c.is_cancelled() {
                return Some(StopReason::Cancelled);
            }
        }
        if self.deadline.expired() {
            return Some(StopReason::Deadline);
        }
        None
    }
}

/// Paced poller over an [`Interrupt`]: consults the clock only every
/// `period` calls so the per-branch/per-elimination overhead stays in the
/// nanoseconds, and latches the first trip so later polls are free.
#[derive(Debug)]
pub struct Governor<'a> {
    interrupt: &'a Interrupt,
    period: u32,
    countdown: u32,
    latched: Option<StopReason>,
}

/// How many polls are skipped between real clock checks. At FM/branch
/// granularity this bounds deadline overshoot to tens of microseconds.
pub const DEFAULT_POLL_PERIOD: u32 = 64;

impl<'a> Governor<'a> {
    pub fn new(interrupt: &'a Interrupt) -> Governor<'a> {
        Governor::with_period(interrupt, DEFAULT_POLL_PERIOD)
    }

    pub fn with_period(interrupt: &'a Interrupt, period: u32) -> Governor<'a> {
        Governor {
            interrupt,
            period: period.max(1),
            // First poll checks immediately, so an already-expired
            // deadline trips before any work happens.
            countdown: 0,
            latched: None,
        }
    }

    /// Poll for an interrupt. Cheap on the fast path (a decrement); every
    /// `period` calls it consults the token and the clock.
    pub fn poll(&mut self) -> Option<StopReason> {
        if self.latched.is_some() {
            return self.latched;
        }
        if self.interrupt.is_inert() {
            return None;
        }
        if self.countdown > 0 {
            self.countdown -= 1;
            return None;
        }
        self.countdown = self.period - 1;
        self.latched = self.interrupt.tripped();
        self.latched
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_interrupt_never_trips() {
        let i = Interrupt::none();
        let mut g = Governor::new(&i);
        for _ in 0..10_000 {
            assert_eq!(g.poll(), None);
        }
    }

    #[test]
    fn expired_deadline_trips_on_first_poll() {
        let i = Interrupt::with_deadline(Deadline::after(Duration::ZERO));
        let mut g = Governor::new(&i);
        assert_eq!(g.poll(), Some(StopReason::Deadline));
        // Latched thereafter.
        assert_eq!(g.poll(), Some(StopReason::Deadline));
    }

    #[test]
    fn cancel_token_observed_within_one_period() {
        let token = CancelToken::new();
        let i = Interrupt {
            deadline: Deadline::none(),
            cancel: Some(token.clone()),
        };
        let mut g = Governor::with_period(&i, 8);
        assert_eq!(g.poll(), None);
        token.cancel();
        let mut seen = None;
        for _ in 0..8 {
            seen = g.poll();
            if seen.is_some() {
                break;
            }
        }
        assert_eq!(seen, Some(StopReason::Cancelled));
    }

    #[test]
    fn cancellation_outranks_deadline() {
        let token = CancelToken::new();
        token.cancel();
        let i = Interrupt {
            deadline: Deadline::after(Duration::ZERO),
            cancel: Some(token),
        };
        assert_eq!(i.tripped(), Some(StopReason::Cancelled));
    }

    #[test]
    fn deadline_earliest_and_remaining() {
        let near = Deadline::after(Duration::from_millis(1));
        let far = Deadline::after(Duration::from_secs(3600));
        let combined = far.earliest(near);
        assert!(combined.remaining().unwrap() <= Duration::from_millis(1));
        assert!(Deadline::none().earliest(near).remaining().is_some());
        assert!(Deadline::none().earliest(Deadline::none()).is_none());
        std::thread::sleep(Duration::from_millis(2));
        assert!(near.expired());
        assert!(!far.expired());
    }
}
