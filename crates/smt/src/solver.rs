//! The incremental solver: assertion stack, search-core dispatch, and
//! statistics. This is the component that stands in for Z3 in the
//! paper's pipeline (§5.5, §6). The actual satisfiability search lives in
//! [`crate::search`]: a CDCL(T) engine by default, with the original
//! clause splitter selectable as a differential oracle.

use std::sync::Arc;
use std::time::Duration;

use crate::cache::{canonical_query_key, ProofCache};
use crate::ctrl::{CancelToken, Deadline, Governor, Interrupt, StopReason};
use crate::fm::FmBudget;
use crate::formula::{Clause, Formula};
use crate::linexpr::AtomTable;
use crate::search::{self, SearchCore, SearchCtx};

/// Result of a satisfiability check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SatResult {
    /// A model (almost certainly) exists.
    Sat,
    /// Provably no integer model exists.
    Unsat,
    /// Budget, deadline, or cancellation tripped (the payload says
    /// which); callers must treat this like `Sat` (keep safeguards).
    Unknown(StopReason),
}

impl SatResult {
    /// True for any `Unknown`, regardless of stop reason.
    pub fn is_unknown(&self) -> bool {
        matches!(self, SatResult::Unknown(_))
    }

    /// The stop reason, when the result is `Unknown`.
    pub fn stop_reason(&self) -> Option<StopReason> {
        match self {
            SatResult::Unknown(r) => Some(*r),
            _ => None,
        }
    }
}

/// Counters mirroring the statistics of Table 1 in the paper. All
/// counters saturate instead of wrapping, so aggregation over arbitrarily
/// many regions can never overflow.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of `check()` calls (the paper's "queries").
    pub checks: u64,
    /// Number of assertions currently or ever added (the paper's
    /// "Z3 size" accumulates per model; see `assertions_added`).
    pub assertions_added: u64,
    /// Number of calls into the linear feasibility core.
    pub lia_calls: u64,
    /// Number of branch nodes explored by the splitter.
    pub branches: u64,
    /// Number of `check()` calls that ended `Unknown` (any reason).
    pub unknowns: u64,
    /// `Unknown`s attributable to the wall-clock deadline or an explicit
    /// cancellation (as opposed to work-counter budgets).
    pub interrupts: u64,
    /// `check()` calls answered from the canonical proof cache.
    pub cache_hits: u64,
    /// `check()` calls that consulted the cache and missed.
    pub cache_misses: u64,
    /// Definite verdicts this solver stored into the cache.
    pub cache_inserts: u64,
    /// Literals assigned by unit propagation (CDCL core).
    pub propagations: u64,
    /// Conflicts hit — boolean or theory (CDCL core).
    pub conflicts: u64,
    /// Clauses learned from conflict analysis (CDCL core).
    pub learned_clauses: u64,
    /// Total literals across learned clauses (CDCL core).
    pub learned_literals: u64,
    /// Luby restarts performed (CDCL core).
    pub restarts: u64,
    /// `check()` calls fully resolved by the presolve layer / level-0
    /// theory check, without entering the search (CDCL core).
    pub presolve_discharges: u64,
}

impl SolverStats {
    /// Accumulate `other` into `self`, saturating on overflow. Used to
    /// aggregate per-region statistics in the pipeline without
    /// copy-paste summation.
    pub fn merge(&mut self, other: &SolverStats) {
        self.checks = self.checks.saturating_add(other.checks);
        self.assertions_added = self.assertions_added.saturating_add(other.assertions_added);
        self.lia_calls = self.lia_calls.saturating_add(other.lia_calls);
        self.branches = self.branches.saturating_add(other.branches);
        self.unknowns = self.unknowns.saturating_add(other.unknowns);
        self.interrupts = self.interrupts.saturating_add(other.interrupts);
        self.cache_hits = self.cache_hits.saturating_add(other.cache_hits);
        self.cache_misses = self.cache_misses.saturating_add(other.cache_misses);
        self.cache_inserts = self.cache_inserts.saturating_add(other.cache_inserts);
        self.propagations = self.propagations.saturating_add(other.propagations);
        self.conflicts = self.conflicts.saturating_add(other.conflicts);
        self.learned_clauses = self.learned_clauses.saturating_add(other.learned_clauses);
        self.learned_literals = self.learned_literals.saturating_add(other.learned_literals);
        self.restarts = self.restarts.saturating_add(other.restarts);
        self.presolve_discharges = self
            .presolve_discharges
            .saturating_add(other.presolve_discharges);
    }

    /// Counters accumulated since an earlier snapshot `since` of the same
    /// solver, saturating at zero. Tracing uses this to attribute work
    /// (LIA calls, branches, cache hits) to a single `check()`.
    pub fn delta(&self, since: &SolverStats) -> SolverStats {
        SolverStats {
            checks: self.checks.saturating_sub(since.checks),
            assertions_added: self.assertions_added.saturating_sub(since.assertions_added),
            lia_calls: self.lia_calls.saturating_sub(since.lia_calls),
            branches: self.branches.saturating_sub(since.branches),
            unknowns: self.unknowns.saturating_sub(since.unknowns),
            interrupts: self.interrupts.saturating_sub(since.interrupts),
            cache_hits: self.cache_hits.saturating_sub(since.cache_hits),
            cache_misses: self.cache_misses.saturating_sub(since.cache_misses),
            cache_inserts: self.cache_inserts.saturating_sub(since.cache_inserts),
            propagations: self.propagations.saturating_sub(since.propagations),
            conflicts: self.conflicts.saturating_sub(since.conflicts),
            learned_clauses: self.learned_clauses.saturating_sub(since.learned_clauses),
            learned_literals: self.learned_literals.saturating_sub(since.learned_literals),
            restarts: self.restarts.saturating_sub(since.restarts),
            presolve_discharges: self
                .presolve_discharges
                .saturating_sub(since.presolve_discharges),
        }
    }
}

/// Work limits for a single `check()`.
#[derive(Debug, Clone, Copy)]
pub struct SolverBudget {
    /// Maximum feasibility-core invocations per check.
    pub max_lia_calls: u64,
    /// Maximum branch nodes per check.
    pub max_branches: u64,
    /// Limits for each feasibility-core run.
    pub fm: FmBudget,
}

impl Default for SolverBudget {
    fn default() -> Self {
        SolverBudget {
            max_lia_calls: 500_000,
            max_branches: 100_000,
            fm: FmBudget::default(),
        }
    }
}

/// A formula lowered to CNF once, shareable across assertion sites.
///
/// `prove_array` used to `Formula::clone()` every root and fact formula
/// for every pair and re-run `to_cnf` inside `assert`; an
/// `InternedFormula` pays the CNF conversion once and is asserted by
/// reference-count bump afterwards.
#[derive(Debug, Clone)]
pub struct InternedFormula {
    clauses: Arc<Vec<Clause>>,
}

impl InternedFormula {
    /// Lower a formula to CNF and freeze it.
    pub fn new(f: Formula) -> InternedFormula {
        InternedFormula {
            clauses: Arc::new(f.to_cnf()),
        }
    }

    /// The frozen clauses.
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Number of CNF clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }
}

impl From<Formula> for InternedFormula {
    fn from(f: Formula) -> InternedFormula {
        InternedFormula::new(f)
    }
}

/// An incremental SMT-style solver for quantifier-free linear integer
/// arithmetic over free atoms (symbols and opaque applications).
///
/// Supports `push`/`pop` scopes exactly like the Z3 API used in the paper,
/// so the knowledge-exploitation procedure (`testVar`) can temporarily add
/// a candidate-conflict equality and retract it.
///
/// The assertion stack is a stack of shared *chunks* (one per `assert`),
/// so asserting an [`InternedFormula`] is a reference-count bump instead
/// of a clause copy, and [`Solver::fork`] can snapshot the whole stack in
/// O(chunks).
#[derive(Debug, Clone, Default)]
pub struct Solver {
    /// Atom interner shared by all assertions.
    pub table: AtomTable,
    chunks: Vec<Arc<Vec<Clause>>>,
    frames: Vec<usize>,
    /// Statistics accumulated over the solver's lifetime.
    pub stats: SolverStats,
    budget: SolverBudget,
    /// Absolute deadline + cancellation shared by every `check()`.
    interrupt: Interrupt,
    /// Per-`check()` wall-clock allowance, combined with the absolute
    /// deadline at each call (the tighter bound wins).
    timeout: Option<Duration>,
    /// Shared canonical-query verdict cache, if attached.
    cache: Option<ProofCache>,
    /// Which search engine answers `check()` (CDCL by default; the legacy
    /// splitter remains available as a differential oracle).
    search_core: SearchCore,
    /// Clauses learned by the CDCL core during the most recent
    /// non-cache-hit `check()` (empty for the legacy core and for cache
    /// hits). Exposed for learned-clause soundness tests.
    last_learned: Vec<Clause>,
}

impl Solver {
    /// Create a solver with default budgets.
    pub fn new() -> Solver {
        Solver::default()
    }

    /// Create a solver with a custom budget.
    pub fn with_budget(budget: SolverBudget) -> Solver {
        Solver {
            budget,
            ..Solver::new()
        }
    }

    /// Replace the work budget (used by the escalating-retry policy).
    pub fn set_budget(&mut self, budget: SolverBudget) {
        self.budget = budget;
    }

    /// The current work budget.
    pub fn budget(&self) -> SolverBudget {
        self.budget
    }

    /// Set an absolute wall-clock deadline shared by all later checks.
    pub fn set_deadline(&mut self, deadline: Deadline) {
        self.interrupt.deadline = deadline;
    }

    /// Attach a cooperative cancellation token.
    pub fn set_cancel_token(&mut self, token: CancelToken) {
        self.interrupt.cancel = Some(token);
    }

    /// Set a per-`check()` wall-clock allowance (`None` = unbounded).
    /// Combined with any absolute deadline; the tighter bound wins.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) {
        self.timeout = timeout;
    }

    /// Pop every open frame, restoring the solver to its base assertion
    /// set. Used by recovery paths after a caught panic, where an
    /// in-flight query may have left unbalanced `push`es behind.
    pub fn reset_to_base(&mut self) {
        while let Some(mark) = self.frames.pop() {
            self.chunks.truncate(mark);
        }
    }

    /// Number of asserted clauses currently on the stack.
    pub fn num_clauses(&self) -> usize {
        self.chunks.iter().map(|c| c.len()).sum()
    }

    /// Push a backtracking point.
    pub fn push(&mut self) {
        self.frames.push(self.chunks.len());
    }

    /// Pop to the previous backtracking point.
    pub fn pop(&mut self) {
        let mark = self.frames.pop().expect("pop without matching push");
        self.chunks.truncate(mark);
    }

    /// Assert a formula (converted to CNF clauses).
    pub fn assert(&mut self, f: Formula) {
        self.assert_interned(&InternedFormula::new(f));
    }

    /// Assert a pre-lowered formula by sharing its clause chunk — no
    /// clause copies, no repeated CNF conversion.
    pub fn assert_interned(&mut self, f: &InternedFormula) {
        self.stats.assertions_added += 1;
        self.chunks.push(Arc::clone(&f.clauses));
    }

    /// Attach (or detach, with `None`) a shared proof cache consulted by
    /// every later `check()`.
    pub fn set_cache(&mut self, cache: Option<ProofCache>) {
        self.cache = cache;
    }

    /// The attached proof cache, if any.
    pub fn cache(&self) -> Option<&ProofCache> {
        self.cache.as_ref()
    }

    /// Select the search engine used by later `check()` calls.
    pub fn set_search_core(&mut self, core: SearchCore) {
        self.search_core = core;
    }

    /// The currently selected search engine.
    pub fn search_core(&self) -> SearchCore {
        self.search_core
    }

    /// Clauses learned by the CDCL core during the most recent `check()`
    /// that actually ran a search (cache hits and the legacy core leave
    /// this empty). Each is a valid consequence of the assertions checked,
    /// so re-asserting them must not change any verdict — the
    /// learned-clause soundness suite relies on exactly that.
    pub fn last_learned(&self) -> &[Clause] {
        &self.last_learned
    }

    /// Snapshot this solver into an independent worker solver: same
    /// assertion stack (shared chunks), table, budget, interrupt wiring,
    /// search core, and cache, but fresh statistics.
    ///
    /// `_salt` is deliberately unused by the real solver: both search
    /// cores are RNG-free and fully deterministic, so there is no
    /// per-fork stream to seed and forked solvers return identical
    /// verdicts for every salt (covered by
    /// `fork_salt_does_not_affect_verdicts`). Fault-injecting wrappers
    /// (`ChaosSolver`) use the salt to derive per-fork fault streams.
    pub fn fork(&self, _salt: u64) -> Solver {
        let mut s = self.clone();
        s.stats = SolverStats::default();
        s
    }

    /// Check satisfiability of all assertions on the stack, respecting
    /// the work budget, the wall-clock deadline, and the cancel token.
    pub fn check(&mut self) -> SatResult {
        self.stats.checks = self.stats.checks.saturating_add(1);
        self.last_learned.clear();
        // Effective interrupt: absolute deadline ∧ per-check timeout.
        let mut interrupt = self.interrupt.clone();
        if let Some(t) = self.timeout {
            interrupt.deadline = interrupt.deadline.earliest(Deadline::after(t));
        }
        let clauses: Vec<Clause> = self
            .chunks
            .iter()
            .flat_map(|ch| ch.iter().cloned())
            .collect();
        // Canonical-cache fast path: a definite verdict cached for any
        // equisatisfiable assertion stack short-circuits the search.
        // Computing a canonical key costs more than the boolean presolve
        // prefix, so that prefix runs first; everything it cannot settle
        // needs linear-arithmetic work, and exactly those queries — the
        // ones worth remembering — are keyed and looked up, which makes
        // a warm cache answer repeats with zero lia calls. `Unknown` is
        // never served from (or stored into) the cache.
        let keyed = match self.cache.clone() {
            None => None,
            Some(cache) => {
                let gov = Governor::new(&interrupt);
                let mut ctx = SearchCtx::new(self.budget, &self.table, gov);
                let discharged = search::try_discharge(self.search_core, &clauses, &mut ctx);
                fold_search_counters(&mut self.stats, &ctx);
                if let Some(result) = discharged {
                    return result;
                }
                let key =
                    canonical_query_key(self.chunks.iter().flat_map(|ch| ch.iter()), &self.table);
                if let Some(hit) = cache.lookup(&key) {
                    self.stats.cache_hits = self.stats.cache_hits.saturating_add(1);
                    return hit;
                }
                self.stats.cache_misses = self.stats.cache_misses.saturating_add(1);
                Some((key, cache))
            }
        };
        let gov = Governor::new(&interrupt);
        let mut ctx = SearchCtx::new(self.budget, &self.table, gov);
        let outcome = search::run(self.search_core, &clauses, &mut ctx);
        let result = outcome.result;
        self.last_learned = outcome.learned;
        fold_search_counters(&mut self.stats, &ctx);
        if let SatResult::Unknown(reason) = result {
            self.stats.unknowns = self.stats.unknowns.saturating_add(1);
            if matches!(reason, StopReason::Deadline | StopReason::Cancelled) {
                self.stats.interrupts = self.stats.interrupts.saturating_add(1);
            }
        }
        if let Some((key, cache)) = keyed {
            if cache.insert(key, result) {
                self.stats.cache_inserts = self.stats.cache_inserts.saturating_add(1);
            }
        }
        result
    }

    /// `push(); assert(f); check(); pop();` in one call.
    pub fn check_with(&mut self, f: Formula) -> SatResult {
        self.push();
        self.assert(f);
        let r = self.check();
        self.pop();
        r
    }
}

/// Accumulate a search context's work counters into the solver stats
/// (shared by the discharge attempt and the full search of one `check()`).
fn fold_search_counters(stats: &mut SolverStats, ctx: &SearchCtx<'_>) {
    stats.lia_calls = stats.lia_calls.saturating_add(ctx.lia_calls);
    stats.branches = stats.branches.saturating_add(ctx.branches);
    stats.propagations = stats.propagations.saturating_add(ctx.propagations);
    stats.conflicts = stats.conflicts.saturating_add(ctx.conflicts);
    stats.learned_clauses = stats.learned_clauses.saturating_add(ctx.learned_clauses);
    stats.learned_literals = stats.learned_literals.saturating_add(ctx.learned_literals);
    stats.restarts = stats.restarts.saturating_add(ctx.restarts);
    stats.presolve_discharges = stats
        .presolve_discharges
        .saturating_add(ctx.presolve_discharges);
}

/// The solver surface the analysis pipeline programs against. Both the
/// real [`Solver`] and the fault-injecting `ChaosSolver` implement it, so
/// the degradation ladder in `formad-core` can be exercised under
/// deterministic faults without a second code path.
pub trait SolverApi {
    /// The atom interner used to normalize terms into this solver.
    fn table_mut(&mut self) -> &mut AtomTable;
    /// Push a backtracking point.
    fn push(&mut self);
    /// Pop to the previous backtracking point.
    fn pop(&mut self);
    /// Assert a formula.
    fn assert(&mut self, f: Formula);
    /// Check satisfiability of the assertion stack.
    fn check(&mut self) -> SatResult;
    /// Statistics accumulated so far.
    fn stats(&self) -> SolverStats;
    /// Replace the work budget.
    fn set_budget(&mut self, budget: SolverBudget);
    /// The current work budget.
    fn budget(&self) -> SolverBudget;
    /// Per-`check()` wall-clock allowance.
    fn set_timeout(&mut self, timeout: Option<Duration>);
    /// Absolute deadline shared by later checks.
    fn set_deadline(&mut self, deadline: Deadline);
    /// Cooperative cancellation token.
    fn set_cancel_token(&mut self, token: CancelToken);
    /// Recover after a caught panic: drop all open frames.
    fn reset_to_base(&mut self);
    /// Assert a pre-lowered formula without re-running CNF conversion or
    /// copying clauses.
    fn assert_interned(&mut self, f: &InternedFormula);
    /// Attach (or detach, with `None`) a shared canonical proof cache.
    fn set_cache(&mut self, cache: Option<ProofCache>);
    /// Select the search engine answering later `check()` calls.
    fn set_search_core(&mut self, core: SearchCore);
    /// Snapshot into an independent worker solver: same assertions,
    /// budget, interrupt wiring, and cache, fresh statistics. `salt`
    /// deterministically varies derived per-fork state (fault-injection
    /// wrappers use it to reseed their RNG).
    fn fork(&self, salt: u64) -> Self
    where
        Self: Sized;

    /// `push(); assert(f); check(); pop();` in one call.
    fn check_with(&mut self, f: Formula) -> SatResult {
        self.push();
        self.assert(f);
        let r = self.check();
        self.pop();
        r
    }
}

impl SolverApi for Solver {
    fn table_mut(&mut self) -> &mut AtomTable {
        &mut self.table
    }
    fn push(&mut self) {
        Solver::push(self);
    }
    fn pop(&mut self) {
        Solver::pop(self);
    }
    fn assert(&mut self, f: Formula) {
        Solver::assert(self, f);
    }
    fn check(&mut self) -> SatResult {
        Solver::check(self)
    }
    fn stats(&self) -> SolverStats {
        self.stats
    }
    fn set_budget(&mut self, budget: SolverBudget) {
        Solver::set_budget(self, budget);
    }
    fn budget(&self) -> SolverBudget {
        Solver::budget(self)
    }
    fn set_timeout(&mut self, timeout: Option<Duration>) {
        Solver::set_timeout(self, timeout);
    }
    fn set_deadline(&mut self, deadline: Deadline) {
        Solver::set_deadline(self, deadline);
    }
    fn set_cancel_token(&mut self, token: CancelToken) {
        Solver::set_cancel_token(self, token);
    }
    fn reset_to_base(&mut self) {
        Solver::reset_to_base(self);
    }
    fn assert_interned(&mut self, f: &InternedFormula) {
        Solver::assert_interned(self, f);
    }
    fn set_cache(&mut self, cache: Option<ProofCache>) {
        Solver::set_cache(self, cache);
    }
    fn set_search_core(&mut self, core: SearchCore) {
        Solver::set_search_core(self, core);
    }
    fn fork(&self, salt: u64) -> Solver {
        Solver::fork(self, salt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::Formula;
    use crate::linexpr::LinExpr;
    use crate::term::Term;

    fn sym(s: &str) -> Term {
        Term::sym(s)
    }

    #[test]
    fn figure2_example() {
        // Knowledge: i ≠ i', c(i) ≠ c(i').
        // Query: c(i)+7 == c(i')+7 must be UNSAT.
        let mut s = Solver::new();
        let f = Formula::term_ne(&sym("i"), &sym("i'"), &mut s.table).unwrap();
        s.assert(f);
        let ci = Term::app("c", vec![sym("i")]);
        let cip = Term::app("c", vec![sym("i'")]);
        let f = Formula::term_ne(&ci, &cip, &mut s.table).unwrap();
        s.assert(f);
        assert_eq!(s.check(), SatResult::Sat);
        let q = Formula::term_eq(
            &(ci.clone() + Term::int(7)),
            &(cip.clone() + Term::int(7)),
            &mut s.table,
        )
        .unwrap();
        assert_eq!(s.check_with(q), SatResult::Unsat);
        // A shifted query with a *different* offset is satisfiable.
        let q2 = Formula::term_eq(&(ci + Term::int(7)), &cip, &mut s.table).unwrap();
        assert_eq!(s.check_with(q2), SatResult::Sat);
    }

    #[test]
    fn push_pop_restores_state() {
        let mut s = Solver::new();
        let f = Formula::term_ne(&sym("x"), &sym("y"), &mut s.table).unwrap();
        s.assert(f);
        assert_eq!(s.num_clauses(), 1);
        s.push();
        let g = Formula::term_eq(&sym("x"), &sym("y"), &mut s.table).unwrap();
        s.assert(g);
        assert_eq!(s.check(), SatResult::Unsat);
        s.pop();
        assert_eq!(s.num_clauses(), 1);
        assert_eq!(s.check(), SatResult::Sat);
    }

    #[test]
    fn stride_two_parity() {
        // i = from + 2k, i' = from + 2k', k ≠ k'; query i' = i - 1 → UNSAT.
        let mut s = Solver::new();
        let two = Term::int(2);
        let f = Formula::term_eq(
            &sym("i"),
            &(sym("from") + two.clone() * sym("k")),
            &mut s.table,
        )
        .unwrap();
        s.assert(f);
        let f =
            Formula::term_eq(&sym("i'"), &(sym("from") + two * sym("k'")), &mut s.table).unwrap();
        s.assert(f);
        let f = Formula::term_ne(&sym("k"), &sym("k'"), &mut s.table).unwrap();
        s.assert(f);
        assert_eq!(s.check(), SatResult::Sat);
        let q = Formula::term_eq(&sym("i'"), &(sym("i") - Term::int(1)), &mut s.table).unwrap();
        assert_eq!(s.check_with(q), SatResult::Unsat);
        // Same-parity query i' = i + 2 is satisfiable.
        let q = Formula::term_eq(&sym("i'"), &(sym("i") + Term::int(2)), &mut s.table).unwrap();
        assert_eq!(s.check_with(q), SatResult::Sat);
    }

    #[test]
    fn tuple_knowledge_gfmc_style() {
        // Knowledge: ¬(idd' = idd ∧ j' = j)   (2-D write disjointness)
        // Query: idd' = idd ∧ j' = j  → UNSAT.
        let mut s = Solver::new();
        let f = Formula::tuple_ne(
            &[sym("idd'"), sym("j'")],
            &[sym("idd"), sym("j")],
            &mut s.table,
        )
        .unwrap();
        s.assert(f);
        assert_eq!(s.check(), SatResult::Sat);
        let q = Formula::tuple_eq(
            &[sym("idd'"), sym("j'")],
            &[sym("idd"), sym("j")],
            &mut s.table,
        )
        .unwrap();
        assert_eq!(s.check_with(q), SatResult::Unsat);
        // Cross pair (idd', j') vs (iuu, j) not covered by this knowledge.
        let q = Formula::tuple_eq(
            &[sym("idd'"), sym("j'")],
            &[sym("iuu"), sym("j")],
            &mut s.table,
        )
        .unwrap();
        assert_eq!(s.check_with(q), SatResult::Sat);
    }

    #[test]
    fn lbm_style_shifted_offsets_are_sat() {
        // Knowledge from writes at (eb + n*(-14399) + i); query about an
        // increment at (eb + 0·n + i) paired with (c + 0·n + i): no
        // knowledge matches, stays SAT → atomics kept (paper §7.3).
        let mut s = Solver::new();
        let n = sym("n");
        let w1 = sym("eb'") + n.clone() * Term::int(-14399) + sym("i'");
        let w2 = sym("eb") + n.clone() * Term::int(-14399) + sym("i");
        let f = Formula::term_ne(&w1, &w2, &mut s.table).unwrap();
        s.assert(f);
        let f = Formula::term_ne(&sym("i"), &sym("i'"), &mut s.table).unwrap();
        s.assert(f);
        let q = Formula::term_eq(
            &(sym("eb'") + sym("i'")),
            &(sym("c") + sym("i")),
            &mut s.table,
        )
        .unwrap();
        assert_eq!(s.check_with(q), SatResult::Sat);
    }

    #[test]
    fn clause_branching_finds_unsat_across_disjunction() {
        // (x = 0 ∨ x = 1) ∧ x ≥ 2  → UNSAT needs branching both ways.
        let mut s = Solver::new();
        let x = crate::linexpr::normalize(&sym("x"), &mut s.table).unwrap();
        let zero = LinExpr::constant(0);
        let one = LinExpr::constant(1);
        let two = LinExpr::constant(2);
        s.assert(Formula::Or(vec![
            Formula::Lit(crate::formula::Literal::eq(x.clone(), zero)),
            Formula::Lit(crate::formula::Literal::eq(x.clone(), one)),
        ]));
        s.assert(Formula::Lit(crate::formula::Literal::le(two, x)));
        assert_eq!(s.check(), SatResult::Unsat);
    }

    #[test]
    fn empty_solver_is_sat() {
        let mut s = Solver::new();
        assert_eq!(s.check(), SatResult::Sat);
    }

    #[test]
    fn stats_accumulate() {
        let mut s = Solver::new();
        let f = Formula::term_ne(&sym("a"), &sym("b"), &mut s.table).unwrap();
        s.assert(f);
        s.check();
        s.check();
        assert_eq!(s.stats.checks, 2);
        assert_eq!(s.stats.assertions_added, 1);
        assert!(s.stats.lia_calls > 0);
    }

    #[test]
    fn congruence_propagates_through_applications() {
        // Knowledge: i ≠ i', c(i) ≠ c(i').
        // Query commits j = i and asks whether c(j) can equal c(i'):
        // only EUF reasoning (j = i ⇒ c(j) = c(i)) closes this.
        let mut s = Solver::new();
        let f = Formula::term_ne(&sym("i"), &sym("i'"), &mut s.table).unwrap();
        s.assert(f);
        let ci = Term::app("c", vec![sym("i")]);
        let cip = Term::app("c", vec![sym("i'")]);
        let cj = Term::app("c", vec![sym("j")]);
        let f = Formula::term_ne(&ci, &cip, &mut s.table).unwrap();
        s.assert(f);
        s.push();
        let f = Formula::term_eq(&sym("j"), &sym("i"), &mut s.table).unwrap();
        s.assert(f);
        let q = Formula::term_eq(&cj, &cip, &mut s.table).unwrap();
        s.assert(q);
        assert_eq!(s.check(), SatResult::Unsat);
        s.pop();
        // Without the j = i commitment the query is satisfiable.
        let q = Formula::term_eq(&cj, &cip, &mut s.table).unwrap();
        assert_eq!(s.check_with(q), SatResult::Sat);
    }

    #[test]
    fn congruence_respects_argument_disequality() {
        // j ≠ i gives no grounds to equate c(j) and c(i); both outcomes
        // must remain possible (SAT for equality and for disequality).
        let mut s = Solver::new();
        let f = Formula::term_ne(&sym("j"), &sym("i"), &mut s.table).unwrap();
        s.assert(f);
        let ci = Term::app("c", vec![sym("i")]);
        let cj = Term::app("c", vec![sym("j")]);
        let q = Formula::term_eq(&cj, &ci, &mut s.table).unwrap();
        assert_eq!(s.check_with(q), SatResult::Sat);
        let q = Formula::term_ne(&cj, &ci, &mut s.table).unwrap();
        assert_eq!(s.check_with(q), SatResult::Sat);
    }

    #[test]
    fn nested_application_congruence() {
        // d(c(j)) vs d(c(i)) with j = i: needs two closure rounds.
        let mut s = Solver::new();
        let dci = Term::app("d", vec![Term::app("c", vec![sym("i")])]);
        let dcj = Term::app("d", vec![Term::app("c", vec![sym("j")])]);
        let f = Formula::term_eq(&sym("j"), &sym("i"), &mut s.table).unwrap();
        s.assert(f);
        let q = Formula::term_ne(&dcj, &dci, &mut s.table).unwrap();
        assert_eq!(s.check_with(q), SatResult::Unsat);
    }

    #[test]
    fn contradictory_ground_assertion() {
        let mut s = Solver::new();
        let f = Formula::term_eq(&Term::int(1), &Term::int(2), &mut s.table).unwrap();
        s.assert(f);
        assert_eq!(s.check(), SatResult::Unsat);
    }

    #[test]
    fn interned_assert_matches_plain_assert() {
        let mut a = Solver::new();
        let mut b = Solver::new();
        let fa = Formula::term_ne(&sym("x"), &sym("y"), &mut a.table).unwrap();
        let fb = Formula::term_ne(&sym("x"), &sym("y"), &mut b.table).unwrap();
        a.assert(fa);
        let interned = InternedFormula::new(fb);
        b.assert_interned(&interned);
        b.assert_interned(&interned); // shared chunk, second rc bump
        assert_eq!(a.num_clauses(), 1);
        assert_eq!(b.num_clauses(), 2);
        assert_eq!(b.stats.assertions_added, 2);
        assert_eq!(a.check(), b.check());
        // Interned asserts pop cleanly like plain ones.
        b.push();
        b.assert_interned(&interned);
        assert_eq!(b.num_clauses(), 3);
        b.pop();
        assert_eq!(b.num_clauses(), 2);
    }

    #[test]
    fn fork_snapshots_assertions_with_fresh_stats() {
        let mut s = Solver::new();
        let f = Formula::term_ne(&sym("x"), &sym("y"), &mut s.table).unwrap();
        s.assert(f);
        s.check();
        let mut w = s.fork(3);
        assert_eq!(w.stats, SolverStats::default());
        assert_eq!(w.num_clauses(), 1);
        assert_eq!(w.check(), SatResult::Sat);
        // Forks are independent: asserting in the fork leaves the base alone.
        let g = Formula::term_eq(&sym("x"), &sym("y"), &mut w.table).unwrap();
        w.assert(g);
        assert_eq!(w.check(), SatResult::Unsat);
        assert_eq!(s.num_clauses(), 1);
        assert_eq!(s.check(), SatResult::Sat);
    }

    #[test]
    fn fork_salt_does_not_affect_verdicts() {
        // `fork(salt)` takes a salt only for API symmetry with
        // `ChaosSolver::fork`; the plain solver is RNG-free, so every salt
        // must yield the same verdicts and the same work counters.
        for core in [SearchCore::Cdcl, SearchCore::Legacy] {
            let mut s = Solver::new();
            s.set_search_core(core);
            let f = Formula::term_ne(&sym("x"), &sym("y"), &mut s.table).unwrap();
            s.assert(f);
            let q = Formula::term_eq(&sym("x"), &sym("y"), &mut s.table).unwrap();
            let qf = InternedFormula::new(q);
            let mut baseline = None;
            for salt in [0u64, 1, 7, u64::MAX] {
                let mut w = s.fork(salt);
                let sat = w.check();
                w.assert_interned(&qf);
                let unsat = w.check();
                let run = (sat, unsat, w.stats);
                match &baseline {
                    None => baseline = Some(run),
                    Some(b) => assert_eq!(*b, run, "salt {salt} changed the outcome"),
                }
            }
            let b = baseline.unwrap();
            assert_eq!((b.0, b.1), (SatResult::Sat, SatResult::Unsat));
        }
    }

    /// A query the CDCL presolve prefix cannot discharge: a genuine
    /// disjunction of inequalities with no unit literal to fix. Keeps the
    /// cache path reachable under the default core.
    fn hard_sat_query(table: &mut AtomTable, x: &str, y: &str) -> Formula {
        let le = |a: &Term, b: &Term, t: &mut AtomTable| {
            Formula::Lit(crate::formula::Literal::le(
                crate::linexpr::normalize(a, t).unwrap(),
                crate::linexpr::normalize(b, t).unwrap(),
            ))
        };
        Formula::or(vec![
            le(&sym(x), &sym(y), table),
            le(&sym(y), &sym(x), table),
        ])
    }

    #[test]
    fn cache_serves_second_check() {
        let cache = ProofCache::new();
        let mut s = Solver::new();
        s.set_cache(Some(cache.clone()));
        let f = hard_sat_query(&mut s.table, "x", "y");
        s.assert(f);
        assert_eq!(s.check(), SatResult::Sat);
        assert_eq!(s.stats.cache_misses, 1);
        assert_eq!(s.stats.cache_inserts, 1);
        let lia_after_first = s.stats.lia_calls;
        assert_eq!(s.check(), SatResult::Sat);
        assert_eq!(s.stats.cache_hits, 1);
        assert_eq!(s.stats.lia_calls, lia_after_first, "hit skips the search");
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn presolve_discharged_checks_bypass_the_cache() {
        // `x ≠ y` dies in the presolve prefix; with a cache attached the
        // canonical key must never be computed for it — no miss, no
        // insert, the cache stays empty.
        let cache = ProofCache::new();
        let mut s = Solver::new();
        s.set_cache(Some(cache.clone()));
        let f = Formula::term_ne(&sym("x"), &sym("y"), &mut s.table).unwrap();
        s.assert(f);
        assert_eq!(s.check(), SatResult::Sat);
        assert_eq!(s.check(), SatResult::Sat);
        assert_eq!(s.stats.presolve_discharges, 2);
        assert_eq!(s.stats.cache_hits, 0);
        assert_eq!(s.stats.cache_misses, 0);
        assert!(cache.is_empty());
    }

    #[test]
    fn legacy_core_caches_every_check() {
        // The legacy splitter has no presolve prefix: with a cache
        // attached even a trivial query is keyed, missed once, and served
        // on the second check.
        let cache = ProofCache::new();
        let mut s = Solver::new();
        s.set_search_core(SearchCore::Legacy);
        s.set_cache(Some(cache.clone()));
        let f = Formula::term_ne(&sym("x"), &sym("y"), &mut s.table).unwrap();
        s.assert(f);
        assert_eq!(s.check(), SatResult::Sat);
        assert_eq!(s.stats.cache_misses, 1);
        assert_eq!(s.check(), SatResult::Sat);
        assert_eq!(s.stats.cache_hits, 1);
    }

    #[test]
    fn cache_is_shared_across_solvers_modulo_renaming() {
        let cache = ProofCache::new();
        let mut a = Solver::new();
        a.set_cache(Some(cache.clone()));
        let f = hard_sat_query(&mut a.table, "i", "i'");
        a.assert(f);
        assert_eq!(a.check(), SatResult::Sat);
        // A different solver with a renamed but isomorphic stack hits.
        let mut b = Solver::new();
        b.set_cache(Some(cache.clone()));
        let f = hard_sat_query(&mut b.table, "j", "j'");
        b.assert(f);
        assert_eq!(b.check(), SatResult::Sat);
        assert_eq!(b.stats.cache_hits, 1);
        assert_eq!(b.stats.lia_calls, 0);
    }

    #[test]
    fn cached_verdicts_respect_push_pop() {
        let cache = ProofCache::new();
        let mut s = Solver::new();
        s.set_cache(Some(cache));
        let f = hard_sat_query(&mut s.table, "x", "y");
        s.assert(f);
        assert_eq!(s.check(), SatResult::Sat);
        s.push();
        let g = Formula::term_eq(&sym("x"), &(sym("y") + Term::int(1)), &mut s.table).unwrap();
        let h = Formula::term_eq(&sym("x"), &sym("y"), &mut s.table).unwrap();
        s.assert(g);
        s.assert(h);
        assert_eq!(s.check(), SatResult::Unsat);
        s.pop();
        // Back to the base stack: the cached Sat must be served, not the
        // Unsat of the extended stack.
        assert_eq!(s.check(), SatResult::Sat);
        assert_eq!(s.stats.cache_hits, 1);
    }

    #[test]
    fn unknown_results_are_not_cached() {
        let cache = ProofCache::new();
        let mut s = Solver::with_budget(SolverBudget {
            max_lia_calls: 0, // every check exhausts immediately
            max_branches: 100,
            fm: crate::fm::FmBudget::default(),
        });
        s.set_cache(Some(cache.clone()));
        let f = hard_sat_query(&mut s.table, "x", "y");
        s.assert(f);
        assert!(s.check().is_unknown());
        assert_eq!(s.stats.cache_inserts, 0);
        assert!(cache.is_empty());
        // A later well-funded solver gets a real verdict, not a stale
        // Unknown.
        let mut s2 = Solver::new();
        s2.set_cache(Some(cache.clone()));
        let f = hard_sat_query(&mut s2.table, "x", "y");
        s2.assert(f);
        assert_eq!(s2.check(), SatResult::Sat);
        assert_eq!(cache.inserts(), 1);
    }
}
