//! Integer feasibility core for conjunctions of linear constraints.
//!
//! Decides (soundly, and for our fragment in practice exactly) whether a
//! conjunction of `e = 0` and `e ≤ 0` constraints over integer atoms has a
//! solution:
//!
//! 1. **Equality elimination**: each equality is GCD-normalized (if
//!    `gcd(coeffs) ∤ constant` → infeasible, which catches the stride/parity
//!    cases like `2k' − 2k = 1`), then used to eliminate one atom from every
//!    other row by integer cross-multiplication (multiplying inequalities by
//!    positive factors only, so direction is preserved and every derived row
//!    is a consequence of the originals — UNSAT answers are sound).
//! 2. **Fourier–Motzkin** on the remaining inequalities with integer
//!    tightening (divide by the coefficient GCD, floor the bound).
//!
//! FM decides rational feasibility exactly; a "feasible" verdict may still
//! be integer-infeasible in rare cases (no dark-shadow step), which the
//! caller treats as SAT — the conservative direction for FormAD (safeguards
//! are kept). An explicit work budget returns `Unknown` instead of blowing
//! up on adversarial inputs.

use crate::ctrl::{Governor, Interrupt, StopReason};
use crate::linexpr::{AtomId, LinExpr};

/// Outcome of a feasibility check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Feasibility {
    /// A rational solution exists (almost always an integer one too).
    Feasible,
    /// No integer solution exists (proof by derivation — sound).
    Infeasible,
    /// Work budget, deadline, or cancellation tripped; treat as feasible
    /// for safety. The payload says which resource ran out.
    Unknown(StopReason),
}

impl Feasibility {
    /// True for any `Unknown`, regardless of reason.
    pub fn is_unknown(&self) -> bool {
        matches!(self, Feasibility::Unknown(_))
    }
}

/// Resource limits for the elimination.
#[derive(Debug, Clone, Copy)]
pub struct FmBudget {
    /// Maximum number of rows the FM step may create.
    pub max_rows: usize,
    /// Maximum absolute coefficient magnitude before giving up.
    pub max_coeff: i128,
}

impl Default for FmBudget {
    fn default() -> Self {
        FmBudget {
            max_rows: 4096,
            max_coeff: 1 << 96,
        }
    }
}

/// Decide feasibility of `∧ eqs = 0 ∧ ineqs ≤ 0` over the integers,
/// with no wall-clock bound (counters from `budget` still apply).
pub fn feasible(eqs: &[LinExpr], ineqs: &[LinExpr], budget: &FmBudget) -> Feasibility {
    let inert = Interrupt::none();
    let mut gov = Governor::new(&inert);
    feasible_paced(eqs, ineqs, budget, &mut gov)
}

/// Decide feasibility under a shared [`Governor`]: the elimination polls
/// it at pivot/row granularity and abandons the run with
/// `Unknown(Deadline | Cancelled)` as soon as it trips. The solver
/// threads one governor through all its feasibility calls so pacing is
/// shared across a whole `check()`.
pub fn feasible_paced(
    eqs: &[LinExpr],
    ineqs: &[LinExpr],
    budget: &FmBudget,
    gov: &mut Governor<'_>,
) -> Feasibility {
    let mut eqs: Vec<LinExpr> = eqs.to_vec();
    let mut ineqs: Vec<LinExpr> = ineqs.to_vec();

    // --- Phase 1: equality elimination -----------------------------------
    loop {
        if let Some(reason) = gov.poll() {
            return Feasibility::Unknown(reason);
        }
        // Normalize and screen all equalities (GCD test + constant rows).
        for e in eqs.iter_mut() {
            if e.is_const() {
                if e.constant != 0 {
                    return Feasibility::Infeasible;
                }
                continue;
            }
            let g = e.coeff_gcd();
            debug_assert!(g > 0);
            if e.constant % g != 0 {
                // GCD test: Σ c·x = -d with g | Σc·x but g ∤ d.
                return Feasibility::Infeasible;
            }
            if g > 1 {
                *e = LinExpr {
                    constant: e.constant / g,
                    terms: e.terms.iter().map(|(a, c)| (*a, c / g)).collect(),
                };
            }
        }
        // Remove trivial 0 = 0 rows.
        eqs.retain(|e| !e.is_const());

        // Pick a pivot: prefer a ±1 coefficient for a clean substitution.
        let mut pivot: Option<(usize, AtomId)> = None;
        'outer: for (row_idx, e) in eqs.iter().enumerate() {
            for (a, c) in &e.terms {
                if c.abs() == 1 {
                    pivot = Some((row_idx, *a));
                    break 'outer;
                }
            }
            if pivot.is_none() {
                pivot = Some((row_idx, e.terms[0].0));
            }
        }
        let Some((row_idx, atom)) = pivot else {
            break; // no equalities left
        };
        let pivot_row = eqs[row_idx].clone();
        let a = pivot_row.coeff(atom);
        debug_assert_ne!(a, 0);

        // Eliminate `atom` from every other row. For a target row with
        // coefficient b: new = |a|·row − sign(a)·b·pivot. The multiplier
        // |a| > 0 keeps inequality directions intact.
        let elim = |row: &LinExpr| -> LinExpr {
            let b = row.coeff(atom);
            if b == 0 {
                return row.clone();
            }
            let scaled = row.scale(a.abs());
            let k = if a > 0 { -b } else { b };
            scaled.add_scaled(&pivot_row, k)
        };
        for (k, e) in eqs.iter_mut().enumerate() {
            if k != row_idx {
                *e = elim(e);
            }
        }
        for e in ineqs.iter_mut() {
            *e = elim(e);
        }
        // The pivot equality defines `atom` (rationally); drop it. Any
        // integer solution of the original system satisfies all derived
        // rows, so an infeasibility found later is a sound refutation.
        eqs.remove(row_idx);

        if exceeds(&eqs, budget) || exceeds(&ineqs, budget) {
            return Feasibility::Unknown(StopReason::Budget);
        }
    }

    // --- Phase 2: Fourier–Motzkin on inequalities ------------------------
    // Tighten, screen constants.
    let mut rows: Vec<LinExpr> = Vec::with_capacity(ineqs.len());
    for e in ineqs {
        match tighten(&e) {
            Some(r) => {
                if r.is_const() {
                    if r.constant > 0 {
                        return Feasibility::Infeasible;
                    }
                } else {
                    rows.push(r);
                }
            }
            None => return Feasibility::Unknown(StopReason::Budget),
        }
    }

    loop {
        if let Some(reason) = gov.poll() {
            return Feasibility::Unknown(reason);
        }
        // Pick the atom whose elimination creates the fewest new rows.
        let mut best: Option<(AtomId, usize)> = None;
        {
            use std::collections::HashMap;
            let mut uppers: HashMap<AtomId, usize> = HashMap::new();
            let mut lowers: HashMap<AtomId, usize> = HashMap::new();
            for r in &rows {
                for (a, c) in &r.terms {
                    if *c > 0 {
                        *uppers.entry(*a).or_insert(0) += 1;
                    } else {
                        *lowers.entry(*a).or_insert(0) += 1;
                    }
                }
            }
            let atoms: std::collections::BTreeSet<AtomId> =
                rows.iter().flat_map(|r| r.atoms()).collect();
            for a in atoms {
                let u = uppers.get(&a).copied().unwrap_or(0);
                let l = lowers.get(&a).copied().unwrap_or(0);
                let cost = u * l;
                if best.map(|(_, c)| cost < c).unwrap_or(true) {
                    best = Some((a, cost));
                }
            }
        }
        let Some((atom, _)) = best else {
            // Only constant rows remain (already screened) → feasible.
            return Feasibility::Feasible;
        };

        let (with_up, rest): (Vec<LinExpr>, Vec<LinExpr>) =
            rows.into_iter().partition(|r| r.coeff(atom) > 0);
        let (with_lo, keep): (Vec<LinExpr>, Vec<LinExpr>) =
            rest.into_iter().partition(|r| r.coeff(atom) < 0);
        let mut next = keep;
        for u in &with_up {
            let a = u.coeff(atom); // a > 0
            if let Some(reason) = gov.poll() {
                return Feasibility::Unknown(reason);
            }
            for l in &with_lo {
                let b = -l.coeff(atom); // b > 0
                                        // b·u + a·l eliminates atom; both multipliers positive.
                let combined = u.scale(b).add_scaled(l, a);
                debug_assert_eq!(combined.coeff(atom), 0);
                match tighten(&combined) {
                    Some(r) => {
                        if r.is_const() {
                            if r.constant > 0 {
                                return Feasibility::Infeasible;
                            }
                        } else {
                            next.push(r);
                        }
                    }
                    None => return Feasibility::Unknown(StopReason::Budget),
                }
            }
        }
        if next.len() > budget.max_rows || exceeds(&next, budget) {
            return Feasibility::Unknown(StopReason::Budget);
        }
        rows = next;
    }
}

/// Divide a `e ≤ 0` row by the GCD of its coefficients, flooring the bound
/// (integer tightening). Returns `None` on coefficient overflow risk.
fn tighten(e: &LinExpr) -> Option<LinExpr> {
    if e.is_const() {
        return Some(e.clone());
    }
    let g = e.coeff_gcd();
    if g <= 1 {
        return Some(e.clone());
    }
    // Σ c·x + d ≤ 0  ⇔  Σ (c/g)·x ≤ -d/g  ⇒ (integers) Σ (c/g)·x ≤ ⌊-d/g⌋.
    let bound = (-e.constant).div_euclid(g);
    Some(LinExpr {
        constant: -bound,
        terms: e.terms.iter().map(|(a, c)| (*a, c / g)).collect(),
    })
}

fn exceeds(rows: &[LinExpr], budget: &FmBudget) -> bool {
    rows.iter().any(|r| {
        r.constant.abs() > budget.max_coeff
            || r.terms.iter().any(|(_, c)| c.abs() > budget.max_coeff)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linexpr::AtomTable;

    fn lin(table: &mut AtomTable, consts: i128, terms: &[(&str, i128)]) -> LinExpr {
        let mut e = LinExpr::constant(consts);
        for (name, c) in terms {
            let id = table.sym(name);
            e = e.add_scaled(&LinExpr::atom(id), *c);
        }
        e
    }

    fn check(eqs: &[LinExpr], ineqs: &[LinExpr]) -> Feasibility {
        feasible(eqs, ineqs, &FmBudget::default())
    }

    #[test]
    fn trivial_cases() {
        assert_eq!(check(&[], &[]), Feasibility::Feasible);
        assert_eq!(check(&[LinExpr::constant(1)], &[]), Feasibility::Infeasible);
        assert_eq!(check(&[], &[LinExpr::constant(1)]), Feasibility::Infeasible);
        assert_eq!(check(&[], &[LinExpr::constant(0)]), Feasibility::Feasible);
    }

    #[test]
    fn gcd_test_catches_parity() {
        let mut t = AtomTable::new();
        // 2k - 2k' = 1  →  infeasible over the integers.
        let e = lin(&mut t, -1, &[("k", 2), ("k'", -2)]);
        assert_eq!(check(&[e], &[]), Feasibility::Infeasible);
    }

    #[test]
    fn substitution_chain() {
        let mut t = AtomTable::new();
        // i = from + 2k, i' = from + 2k', i' - i - 1 = 0 → 2(k'-k) = 1.
        let e1 = lin(&mut t, 0, &[("i", 1), ("from", -1), ("k", -2)]);
        let e2 = lin(&mut t, 0, &[("i'", 1), ("from", -1), ("k'", -2)]);
        let e3 = lin(&mut t, -1, &[("i'", 1), ("i", -1)]);
        assert_eq!(check(&[e1, e2, e3], &[]), Feasibility::Infeasible);
    }

    #[test]
    fn equal_and_apart_contradiction() {
        let mut t = AtomTable::new();
        // x - y = 0 and x - y ≥ 1 (i.e. -(x-y)+1 ≤ 0).
        let eq = lin(&mut t, 0, &[("x", 1), ("y", -1)]);
        let ge = lin(&mut t, 1, &[("x", -1), ("y", 1)]);
        assert_eq!(check(&[eq], &[ge]), Feasibility::Infeasible);
    }

    #[test]
    fn fm_bounds_window() {
        let mut t = AtomTable::new();
        // 3 ≤ x ≤ 5 is feasible; 5 ≤ x ≤ 3 is not.
        let lo = lin(&mut t, 3, &[("x", -1)]); // 3 - x ≤ 0
        let hi = lin(&mut t, -5, &[("x", 1)]); // x - 5 ≤ 0
        assert_eq!(check(&[], &[lo.clone(), hi.clone()]), Feasibility::Feasible);
        let lo2 = lin(&mut t, 5, &[("x", -1)]);
        let hi2 = lin(&mut t, -3, &[("x", 1)]);
        assert_eq!(check(&[], &[lo2, hi2]), Feasibility::Infeasible);
    }

    #[test]
    fn integer_tightening_closes_gaps() {
        let mut t = AtomTable::new();
        // 2x ≥ 1 and 2x ≤ 1: rationally x = 1/2, integer infeasible.
        // Tightening: 2x ≥ 1 → x ≥ 1; 2x ≤ 1 → x ≤ 0.
        let ge = lin(&mut t, 1, &[("x", -2)]);
        let le = lin(&mut t, -1, &[("x", 2)]);
        assert_eq!(check(&[], &[ge, le]), Feasibility::Infeasible);
    }

    #[test]
    fn chained_eliminations() {
        let mut t = AtomTable::new();
        // x ≤ y, y ≤ z, z ≤ x - 1: infeasible cycle.
        let a = lin(&mut t, 0, &[("x", 1), ("y", -1)]);
        let b = lin(&mut t, 0, &[("y", 1), ("z", -1)]);
        let c = lin(&mut t, 1, &[("z", 1), ("x", -1)]);
        assert_eq!(check(&[], &[a, b, c]), Feasibility::Infeasible);
        // Same cycle without the -1 is feasible (all equal).
        let a = lin(&mut t, 0, &[("x", 1), ("y", -1)]);
        let b = lin(&mut t, 0, &[("y", 1), ("z", -1)]);
        let c = lin(&mut t, 0, &[("z", 1), ("x", -1)]);
        assert_eq!(check(&[], &[a, b, c]), Feasibility::Feasible);
    }

    #[test]
    fn non_unit_pivot_equalities() {
        let mut t = AtomTable::new();
        // 2x + 3y = 1, x = y  →  5y = 1 → infeasible (gcd 5 ∤ 1).
        let e1 = lin(&mut t, -1, &[("x", 2), ("y", 3)]);
        let e2 = lin(&mut t, 0, &[("x", 1), ("y", -1)]);
        assert_eq!(check(&[e1, e2], &[]), Feasibility::Infeasible);
        // 2x + 3y = 5, x = y  →  5y = 5 → y = 1 feasible.
        let e1 = lin(&mut t, -5, &[("x", 2), ("y", 3)]);
        let e2 = lin(&mut t, 0, &[("x", 1), ("y", -1)]);
        assert_eq!(check(&[e1, e2], &[]), Feasibility::Feasible);
    }

    #[test]
    fn mixed_equalities_and_inequalities() {
        let mut t = AtomTable::new();
        // x = 2y, x ≥ 3, x ≤ 3  →  2y = 3 infeasible.
        let eq = lin(&mut t, 0, &[("x", 1), ("y", -2)]);
        let ge = lin(&mut t, 3, &[("x", -1)]);
        let le = lin(&mut t, -3, &[("x", 1)]);
        assert_eq!(check(&[eq], &[ge, le]), Feasibility::Infeasible);
    }
}
